"""Plain-text report formatting.

Shared by the CLI and the examples: turns characterizations, timing
analyses and flow outcomes into aligned, readable tables without any
third-party dependency.
"""


def format_table(headers, rows):
    """Render *rows* (sequences of values) under *headers* as text."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append(["%.1f" % v if isinstance(v, float) else str(v)
                      for v in row])
    widths = [max(len(line[col]) for line in cells)
              for col in range(len(headers))]
    lines = []
    for index, line in enumerate(cells):
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(line, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def characterization_report(entry):
    """Text table of one component characterization (Section IV)."""
    headers = (["precision", "fresh_ps"]
               + ["%s_ps" % label for label in entry.scenario_labels]
               + ["gates", "area_um2"])
    rows = []
    for precision in entry.precisions:
        rows.append([precision, entry.fresh_ps[precision]]
                    + [entry.aged_ps[(precision, label)]
                       for label in entry.scenario_labels]
                    + [entry.gates[precision],
                       entry.area_um2[precision]])
    lines = ["component %s (base width %d)" % (entry.key, entry.width),
             format_table(headers, rows), ""]
    for label in entry.scenario_labels:
        k = entry.required_precision(label)
        if k is None:
            lines.append("%-18s cannot be compensated within the sweep"
                         % label)
        else:
            lines.append("%-18s required precision K=%d (drop %d bits, "
                         "guardband %.1f ps removed)"
                         % (label, k, entry.width - k,
                            entry.guardband_ps(label)))
    return "\n".join(lines)


def screen_report(screen):
    """Text table of a fast truncation screen (incremental STA)."""
    headers = (["precision"]
               + ["%s_ps" % label for label in screen.scenario_labels]
               + ["cone_%", "dropped"])
    rows = []
    for row in screen.to_rows():
        rows.append([row["precision"]]
                    + [row["%s_ps" % label]
                       for label in screen.scenario_labels]
                    + ["%.0f%%" % (100 * row["cone_fraction"]),
                       row["dropped_gates"]])
    lines = ["truncation screen %s (one netlist, constants swept — "
             "upper bounds on re-synthesized delays)" % screen.key,
             format_table(headers, rows)]
    for label in screen.scenario_labels:
        k = screen.required_precision(label)
        lines.append("%-18s screen precision K>=%s"
                     % (label, k if k is not None else "none in sweep"))
    return "\n".join(lines)


def timing_report_text(netlist, library, report):
    """Summary of an STA run: critical path and slowest outputs."""
    from .sta.paths import critical_path, per_output_arrivals

    path = critical_path(netlist, report)
    lines = ["design %s under %s" % (netlist.name, report.scenario_label),
             "critical path: %.1f ps through %d gates"
             % (report.critical_path_ps, path.depth),
             "slowest outputs:"]
    for net, name, arrival in per_output_arrivals(netlist, report)[:8]:
        lines.append("  %-12s %.1f ps" % (name, arrival))
    return "\n".join(lines)


def flow_report_text(report):
    """Summary of a guardband-removal run (Section V / Fig. 8(a))."""
    lines = ["timing constraint t_CP(noAging) = %.1f ps"
             % report.constraint_ps,
             "validated: %s (residual guardband %.2f ps)"
             % (report.outcome.validated,
                report.outcome.residual_guardband_ps),
             "", "block decisions:"]
    for name, decision in report.outcome.decisions.items():
        change = ("%d -> %d bits" % (decision.original_precision,
                                     decision.chosen_precision)
                  if decision.approximated else "full precision")
        lines.append("  %-8s %-16s slack %+7.1f -> %+7.1f ps"
                     % (name, change, decision.slack_before_ps,
                        decision.slack_after_ps))
    lines.append("")
    lines.append(format_table(
        ["scenario", "original_ps", "approximated_ps", "meets"],
        [[label, report.original_delays_ps[label],
          report.approximated_delays_ps[label],
          "yes" if report.approximated_delays_ps[label]
          <= report.constraint_ps * (1 + 1e-9) else "NO"]
         for label in report.original_delays_ps]))
    return "\n".join(lines)


def instrumentation_report_text(instr, cache_stats=None):
    """Per-stage timing and cache-effectiveness summary.

    Parameters
    ----------
    instr:
        An :class:`~repro.core.instrument.Instrumentation` collector or
        the dict from its ``summary()``.
    cache_stats:
        Optional :class:`~repro.core.cache.CacheStats` (or its dict
        form) from the result cache in use.
    """
    summary = instr.summary() if hasattr(instr, "summary") else instr
    stages = summary.get("stages", {})
    counters = summary.get("counters", {})
    lines = ["per-stage timing:"]
    if stages:
        total = sum(entry["seconds"] for entry in stages.values())
        rows = [[name, entry["calls"], entry["seconds"] * 1e3,
                 100.0 * entry["seconds"] / total if total else 0.0]
                for name, entry in sorted(stages.items(),
                                          key=lambda i: -i[1]["seconds"])]
        lines.append(format_table(["stage", "calls", "ms", "share_%"],
                                  rows))
        lines.append("total instrumented: %.1f ms" % (total * 1e3))
    else:
        lines.append("  (no stages recorded)")
    if cache_stats is not None and hasattr(cache_stats, "as_dict"):
        cache_stats = cache_stats.as_dict()
    if cache_stats is None:
        cache_stats = {name[len("cache_"):]: count
                       for name, count in counters.items()
                       if name.startswith("cache_")}
    if cache_stats:
        hits = cache_stats.get("hits", 0)
        misses = cache_stats.get("misses", 0)
        looked = hits + misses
        lines.append("cache: %d hits / %d misses (%.0f%% hit rate)"
                     % (hits, misses, 100.0 * hits / looked if looked
                        else 0.0))
    memo_hits = counters.get("netlist_memo_hits", 0)
    if memo_hits:
        lines.append("netlist memo: %d reuse(s)" % memo_hits)
    return "\n".join(lines)


#: Metric-family prefixes rendered first, in this order; anything else
#: follows alphabetically.
_METRIC_GROUPS = ("cache", "serve", "sta", "synth", "sim", "obs")


def _metric_unit(name):
    """Display unit of a metric, inferred from its name ('' if none)."""
    if name.endswith("_ms") or ".latency" in name:
        return "ms"
    if "bytes" in name:
        return "B"
    if name.endswith("_ps"):
        return "ps"
    if name.endswith("_um2"):
        return "um2"
    if name.endswith("_nw"):
        return "nW"
    return ""


def _metric_value(value, unit):
    if isinstance(value, float):
        text = "%.3f" % value if abs(value) < 1e4 else "%.4g" % value
    else:
        text = str(value)
    return "%s %s" % (text, unit) if unit else text


def _histogram_line(name, state):
    """One line per histogram: count, mean and p50/p95/p99."""
    from .obs.metrics import DEFAULT_BOUNDARIES, Histogram

    hist = Histogram(state.get("boundaries", DEFAULT_BOUNDARIES))
    hist.merge_snapshot(state)
    if hist.count == 0:
        return "%s  (empty)" % name
    unit = _metric_unit(name)

    def fmt(value):
        return _metric_value(float(value), unit)

    return ("%s  count=%d mean=%s p50=%s p95=%s p99=%s min=%s max=%s"
            % (name, hist.count, fmt(hist.mean),
               fmt(hist.quantile(0.50)), fmt(hist.quantile(0.95)),
               fmt(hist.quantile(0.99)),
               fmt(hist.min if hist.min is not None
                   else hist.quantile(0.0)),
               fmt(hist.max if hist.max is not None
                   else hist.quantile(1.0))))


def metrics_report_text(snapshot):
    """Render a metrics-registry snapshot as grouped, aligned text.

    Metric families are grouped by name prefix (``cache.*``,
    ``serve.*``, ``sta.*``, ``synth.*``, ...) in a stable order,
    histograms render count/mean/p50/p95/p99 on one line each, and
    latency/bytes/area rows carry their units.

    Parameters
    ----------
    snapshot:
        A :class:`~repro.obs.metrics.MetricsRegistry` or the dict from
        its ``snapshot()``.
    """
    if hasattr(snapshot, "snapshot"):
        snapshot = snapshot.snapshot()
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    lines = ["metrics:"]
    if not (counters or gauges or histograms):
        lines.append("  (no metrics recorded)")
        return "\n".join(lines)

    def prefix_of(name):
        return name.split(".", 1)[0]

    every = set(counters) | set(gauges) | set(histograms)
    prefixes = sorted(
        {prefix_of(name) for name in every},
        key=lambda p: (_METRIC_GROUPS.index(p) if p in _METRIC_GROUPS
                       else len(_METRIC_GROUPS), p))
    for prefix in prefixes:
        lines.append("")
        lines.append("%s.*" % prefix)
        rows = []
        for name in sorted(n for n in counters
                           if prefix_of(n) == prefix):
            rows.append([name, _metric_value(counters[name],
                                             _metric_unit(name)),
                         "counter"])
        for name in sorted(n for n in gauges if prefix_of(n) == prefix):
            rows.append([name, _metric_value(float(gauges[name]),
                                             _metric_unit(name)),
                         "gauge"])
        if rows:
            for line in format_table(["name", "value", "kind"],
                                     rows).splitlines():
                lines.append("  " + line)
        for name in sorted(n for n in histograms
                           if prefix_of(n) == prefix):
            lines.append("  " + _histogram_line(name, histograms[name]))
    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    if hits or misses:
        lines.append("")
        lines.append("cache hit ratio: %.0f%% (%d read / %d written "
                     "bytes)"
                     % (100.0 * hits / (hits + misses),
                        counters.get("cache.bytes_read", 0),
                        counters.get("cache.bytes_written", 0)))
    return "\n".join(lines)


def schedule_report_text(schedule):
    """Summary of an adaptive precision schedule."""
    lines = ["graceful-degradation schedule for %s (clock %.1f ps)"
             % (schedule.design_name, schedule.constraint_ps)]
    headers = ["age_years"] + sorted(schedule.checkpoints[0][1])
    rows = [[age] + [precisions[name] for name in headers[1:]]
            for age, precisions in schedule.checkpoints]
    lines.append(format_table(headers, rows))
    return "\n".join(lines)


def verify_report_text(report):
    """Summary of a differential-verification run.

    Renders a :class:`repro.verify.VerificationReport`: one status line
    per check (golden diff, cross-engine oracle, each paper invariant,
    fuzzing), a table of scenarios covered, and pointers to any
    minimized counterexamples.
    """
    lines = ["differential verification of %s" % report.component,
             "scenarios: %s" % ", ".join(report.scenario_labels),
             ""]
    lines.append(report.describe())
    counterexamples = report.counterexamples
    if counterexamples:
        lines.append("")
        lines.append("%d minimized counterexample(s):"
                     % len(counterexamples))
        lines += ["  " + cx.describe() for cx in counterexamples]
    lines.append("")
    lines.append("verdict: %s" % ("PASS" if report.passed else "FAIL"))
    return "\n".join(lines)


def mc_report_text(result):
    """Yield curves + yield-constrained K of a Monte Carlo analysis.

    Renders a :class:`repro.mc.MCResult`: per scenario x clock the
    precision ladder with sampled yield and quantiles (``mode`` marks
    surrogate-screened rows, whose quantiles are regression estimates),
    then the yield-constrained max precision K next to its
    deterministic counterpart.
    """
    spec = result.spec
    lines = ["monte carlo yield analysis: %s (%d gates, %d samples, "
             "sigma %g mV, seed %d)"
             % (result.component, result.gates, result.samples,
                spec.sigma_mv, spec.seed),
             "fresh clock: %.3f ps; min yield: %g"
             % (result.fresh_clock_ps, spec.min_yield)]
    order = []
    grouped = {}
    for row in result.rows:
        key = (row["scenario"], row["clock_scale"])
        if key not in grouped:
            order.append(key)
            grouped[key] = []
        grouped[key].append(row)
    for scenario, scale in order:
        rows = grouped[(scenario, scale)]
        lines.append("")
        lines.append("%s @ clock x%.3g (%.2f ps):"
                     % (scenario, scale, rows[0]["clock_ps"]))
        headers = ["precision", "det_ps", "p50_ps", "mean_ps",
                   "q%g_ps" % (spec.min_yield * 100), "p99_ps",
                   "yield", "mode"]
        table = []
        for row in rows:
            if row["exact"]:
                table.append([
                    row["precision"], "%.2f" % row["det_cp_ps"],
                    "%.2f" % row["p50_ps"], "%.2f" % row["mean_ps"],
                    "%.2f" % row["q_ps"], "%.2f" % row["p99_ps"],
                    "%.4f" % row["yield_fraction"], "exact"])
            else:
                table.append([
                    row["precision"], "%.2f" % row["det_cp_ps"],
                    "%.2f" % row["p50_ps"], "-",
                    "%.2f" % row["q_ps"], "-", "-", "est"])
        lines.append(format_table(headers, table))
    lines.append("")
    lines.append("yield-constrained max precision K:")
    headers = ["scenario", "clock", "clock_ps", "det_K", "yield_K",
               "yield_at_K"]
    table = []
    for row in result.k_rows:
        table.append([
            row["scenario"], "x%.3g" % row["clock_scale"],
            "%.2f" % row["clock_ps"],
            "-" if row["det_precision"] is None
            else row["det_precision"],
            "-" if row["yield_precision"] is None
            else row["yield_precision"],
            "-" if row["yield_at_k"] is None
            else "%.4f" % row["yield_at_k"]])
    lines.append(format_table(headers, table))
    if result.surrogate:
        info = result.surrogate
        lines.append("")
        lines.append(
            "surrogate screen: degree %d fit on anchors %s; margin "
            "%.3f ps; evaluated %s; skipped %s"
            % (info["degree"], info["anchors"], info["margin_ps"],
               info["evaluated"], info["skipped"]))
        worst = max(t["max_abs_err"]
                    for t in info["cv"]["targets"].values())
        lines.append("cross-validation (%d folds): worst held-out "
                     "|err| %.3f ps" % (info["cv"]["folds"], worst))
    return "\n".join(lines)


def inject_report_text(result):
    """Error-rate ladder + comparison arms of a fault-injection campaign.

    Renders a :class:`repro.inject.CampaignResult`: the guardband-free
    fault ladder over the scenario x clock grid, then the deterministic
    alternatives — aging-induced approximation at the same clock, and
    guardbanding (clock relaxed to the aged critical path).
    """
    spec = result.spec
    lines = ["fault-injection campaign: %s (%d gates, %d vectors, seed %d)"
             % (result.component, result.gates, result.vectors, spec.seed),
             "guardband-free clock: %.3f ps (fresh critical path)"
             % result.fresh_clock_ps,
             "",
             "guardband-free + faults:"]
    headers = ["scenario", "clock", "clock_ps", "viol", "p_flip",
               "faults", "fault_rate", "word_err", "mae", "psnr_db"]
    rows = []
    for row in result.rows:
        rows.append([
            row["scenario"], "x%.3g" % row["clock_scale"],
            "%.2f" % row["clock_ps"], row["violating_gates"],
            "%.4f" % row["mean_flip_probability"], row["injected_faults"],
            "%.5f" % row["faulted_vector_rate"],
            "%.5f" % row["word_error_rate"], "%.2f" % row["mean_abs_error"],
            "%.1f" % row["psnr_db"]])
    lines.append(format_table(headers, rows))
    if result.approximation:
        lines.append("")
        lines.append("guardband-free + aging-induced approximation:")
        headers = ["scenario", "clock", "precision", "dropped",
                   "aged_cp_ps", "word_err", "mae", "psnr_db"]
        rows = []
        for row in result.approximation:
            if row["feasible"]:
                rows.append([
                    row["scenario"], "x%.3g" % row["clock_scale"],
                    row["precision"], row["dropped_bits"],
                    "%.2f" % row["aged_cp_ps"],
                    "%.5f" % row["word_error_rate"],
                    "%.2f" % row["mean_abs_error"],
                    "%.1f" % row["psnr_db"]])
            else:
                rows.append([row["scenario"],
                             "x%.3g" % row["clock_scale"],
                             "-", "-", "-", "-", "-", "infeasible"])
        lines.append(format_table(headers, rows))
    if result.guardbanded:
        lines.append("")
        lines.append("guardbanded (clock = aged critical path):")
        headers = ["scenario", "clock_ps", "penalty_pct", "viol", "faults"]
        rows = [[row["scenario"], "%.2f" % row["clock_ps"],
                 "%.2f" % row["clock_penalty_pct"], row["violating_gates"],
                 row["injected_faults"]] for row in result.guardbanded]
        lines.append(format_table(headers, rows))
    return "\n".join(lines)
