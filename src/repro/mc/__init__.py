"""Monte Carlo process-variation analysis over the batched STA engine.

``repro.mc`` answers the stochastic form of the paper's Eq. 2: under
per-gate threshold-voltage variation *and* BTI aging, what is the
probability (yield) that a precision point meets the clock — and what
is the deepest precision whose yield clears a target?

* :mod:`repro.mc.variation` — reproducible per-(seed, gate uid) Philox
  draw streams;
* :mod:`repro.mc.engine` — sample-axis batched STA
  (:func:`analyze_mc`) with chunked sample blocks and the scalar-loop
  reference baseline;
* :mod:`repro.mc.yield_curves` — specs, yield curves, the
  yield-constrained precision K, and the ``--jobs``/served drivers;
* :mod:`repro.mc.surrogate` — the cross-validated least-squares
  screen that spends exact sampled STA only near feasibility
  boundaries.
"""

from .engine import (DEFAULT_BLOCK, MCReport, analyze_mc,
                     analyze_mc_reference, sample_blocks)
from .surrogate import (SurrogateFit, cross_validate, design_matrix,
                        fit_surrogate, n_terms, pick_degree)
from .variation import (DEFAULT_CLIP_SIGMAS, SAMPLE_CHUNK, VariationModel,
                        gate_stream, standard_draws)
from .yield_curves import MCResult, MCSpec, run_mc

__all__ = [
    "DEFAULT_BLOCK", "DEFAULT_CLIP_SIGMAS", "MCReport", "MCResult",
    "MCSpec", "SAMPLE_CHUNK", "SurrogateFit", "VariationModel",
    "analyze_mc", "analyze_mc_reference", "cross_validate",
    "design_matrix", "fit_surrogate", "gate_stream", "n_terms",
    "pick_degree", "run_mc", "sample_blocks", "standard_draws",
]
