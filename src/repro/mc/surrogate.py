"""Least-squares polynomial surrogate for aged-delay quantiles.

Full sampled STA of one (precision, corner) point costs thousands of
propagations; across a truncation sweep most of those points are far
from any feasibility boundary and their exact quantiles do not change
any decision. Following the workload-dependent aging-prediction line of
work (PAPERS.md), a cheap regression from **(netlist stats, stress
moments, lifetime, sigma)** to the aged-delay quantiles screens the
sweep: anchor points are evaluated exactly, a polynomial least-squares
model is fit (:func:`fit_surrogate`) and cross-validated
(:func:`cross_validate`) on them, and only candidates whose predicted
quantile lands within the model's validated error band of a clock
target get the full sampled treatment (see
:mod:`repro.mc.yield_curves`).

Everything is plain NumPy: a normalized polynomial design matrix and
``np.linalg.lstsq`` — no learned-framework dependency, deterministic
fits (same rows -> same coefficients), and k-fold validation with a
fixed round-robin split so served and local runs agree bit-for-bit.
"""

from dataclasses import dataclass
from typing import Tuple

import numpy as np


def design_matrix(X, degree):
    """Polynomial design matrix of *X* (rows = points).

    Degree 1: ``[1, x_i]``; degree 2 adds every product ``x_i * x_j``
    with ``i <= j``. Higher degrees are rejected — with the handful of
    anchor rows a screen can afford, anything past quadratic is pure
    overfit.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError("X must be 2-D (points, features), got %r"
                         % (X.shape,))
    if degree not in (1, 2):
        raise ValueError("degree must be 1 or 2, got %r" % (degree,))
    cols = [np.ones(len(X), dtype=np.float64)]
    cols.extend(X.T)
    if degree == 2:
        for i in range(X.shape[1]):
            for j in range(i, X.shape[1]):
                cols.append(X[:, i] * X[:, j])
    return np.stack(cols, axis=1)


def n_terms(n_features, degree):
    """Number of design-matrix columns for *n_features* at *degree*."""
    terms = 1 + n_features
    if degree == 2:
        terms += n_features * (n_features + 1) // 2
    return terms


@dataclass
class SurrogateFit:
    """A fitted polynomial map ``features -> targets``.

    Features are standardized with the training mean/scale (constant
    columns keep scale 1.0, so e.g. a run-constant sigma feature stays
    harmless); coefficients come from one ``np.linalg.lstsq`` solve.
    """

    feature_names: Tuple[str, ...]
    target_names: Tuple[str, ...]
    degree: int
    mean: np.ndarray
    scale: np.ndarray
    coef: np.ndarray  # (terms, targets)

    def predict(self, X):
        """Predicted targets, ``(points, targets)`` float64."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.feature_names):
            raise ValueError(
                "expected (points, %d) features, got %r"
                % (len(self.feature_names), (X.shape,)))
        Xn = (X - self.mean) / self.scale
        return design_matrix(Xn, self.degree) @ self.coef


def fit_surrogate(X, Y, feature_names, target_names, degree=1):
    """Fit a :class:`SurrogateFit` by normalized least squares."""
    X = np.asarray(X, dtype=np.float64)
    Y = np.asarray(Y, dtype=np.float64)
    if Y.ndim == 1:
        Y = Y[:, None]
    if len(X) != len(Y):
        raise ValueError("X and Y row counts differ: %d vs %d"
                         % (len(X), len(Y)))
    if not len(X):
        raise ValueError("cannot fit a surrogate on zero points")
    mean = X.mean(axis=0)
    scale = X.std(axis=0)
    scale[scale == 0.0] = 1.0
    Xn = (X - mean) / scale
    A = design_matrix(Xn, degree)
    coef, *_ = np.linalg.lstsq(A, Y, rcond=None)
    return SurrogateFit(feature_names=tuple(feature_names),
                        target_names=tuple(target_names), degree=degree,
                        mean=mean, scale=scale, coef=coef)


def pick_degree(n_points, n_features):
    """Quadratic only when the anchor set can support it (>= 2 rows
    per coefficient), linear otherwise."""
    if n_points >= 2 * n_terms(n_features, 2):
        return 2
    return 1


def cross_validate(X, Y, feature_names, target_names, degree=1, folds=4):
    """Deterministic k-fold cross-validation of the surrogate.

    Rows are assigned to folds round-robin by index (no RNG — served
    and local runs must agree). Returns per-target held-out error
    statistics::

        {"folds": k, "degree": d,
         "targets": {name: {"max_abs_err": ..., "rmse": ...}}}

    With fewer than two rows per fold the split degenerates; folds are
    clamped to ``len(X)`` and a single fold falls back to in-sample
    error (better a pessimistic screen than a crash on tiny sweeps).
    """
    X = np.asarray(X, dtype=np.float64)
    Y = np.asarray(Y, dtype=np.float64)
    if Y.ndim == 1:
        Y = Y[:, None]
    folds = max(1, min(int(folds), len(X)))
    errors = np.empty_like(Y)
    if folds == 1:
        fit = fit_surrogate(X, Y, feature_names, target_names,
                            degree=degree)
        errors[:] = fit.predict(X) - Y
    else:
        assignment = np.arange(len(X)) % folds
        for fold in range(folds):
            held = assignment == fold
            fit = fit_surrogate(X[~held], Y[~held], feature_names,
                                target_names, degree=degree)
            errors[held] = fit.predict(X[held]) - Y[held]
    targets = {}
    for t, name in enumerate(target_names):
        err = errors[:, t]
        targets[name] = {
            "max_abs_err": float(np.abs(err).max()),
            "rmse": float(np.sqrt(np.mean(err * err))),
        }
    return {"folds": int(folds), "degree": int(degree),
            "targets": targets}
