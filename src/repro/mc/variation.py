"""Reproducible per-gate threshold-voltage variation draws.

Process variation scatters each gate's threshold voltage around the
design value; aging then shifts the scattered value. We model the
scatter as one zero-mean Gaussian ΔVth per gate — shared by the p- and
n-networks (within-gate variation is dominated by common effects such
as gate-length and oxide-thickness deviations), independent from gate
to gate — truncated at ``clip_sigmas`` standard deviations so a draw
can never consume the whole gate overdrive.

Draw streams follow the :mod:`repro.inject.masks` recipe exactly: one
counter-based Philox generator per ``(seed, gate uid, sample chunk)``
key via ``SeedSequence``, plus a domain tag so variation draws and
fault masks derived from the same campaign seed are independent.
The properties that make Monte Carlo results bit-reproducible across
``--jobs N``, worker pools and the served path:

* **partition independence** — the draw for sample ``s`` of gate ``g``
  depends only on ``(seed, g.uid, s)``, never on which process asks or
  how the sample axis is chunked into propagation blocks;
* **prefix stability** — extending a run to more samples reproduces
  every earlier draw (chunks are indexed by absolute sample position);
* **domain separation** — the trailing domain tag keeps these streams
  disjoint from any other Philox consumer keyed by the same
  ``(seed, uid)``.

Propagation block sizes (:data:`repro.mc.engine.DEFAULT_BLOCK`) that
divide :data:`SAMPLE_CHUNK` avoid re-generating chunk tails; any block
size yields the same numbers.
"""

from dataclasses import dataclass

import numpy as np

#: Standard-normal draws generated per (seed, gate, chunk) stream.
#: Absolute-indexed: sample ``s`` lives in chunk ``s // SAMPLE_CHUNK``
#: at offset ``s % SAMPLE_CHUNK`` regardless of propagation block size.
SAMPLE_CHUNK = 256

#: Truncation of the standard-normal draws, in standard deviations.
DEFAULT_CLIP_SIGMAS = 6.0

#: Domain tag appended to the SeedSequence key so variation streams are
#: independent of fault-mask streams sharing a campaign seed.
_MC_DOMAIN = 0x6D63  # "mc"


def gate_stream(seed, gate_uid, chunk):
    """The Philox generator of one ``(seed, gate, chunk)`` draw stream."""
    key = np.random.SeedSequence(
        [int(seed), int(gate_uid), int(chunk), _MC_DOMAIN])
    return np.random.Generator(np.random.Philox(key))


def standard_draws(seed, gate_uid, start, count):
    """Standard-normal draws ``start .. start+count`` of one gate.

    Slices absolute-indexed chunks, so any partition of the sample axis
    reproduces the same values (see module doc).
    """
    if count < 0 or start < 0:
        raise ValueError("draw range must be non-negative, got start=%r "
                         "count=%r" % (start, count))
    out = np.empty(count, dtype=np.float64)
    if not count:
        return out
    pos = 0
    for chunk in range(start // SAMPLE_CHUNK,
                       (start + count - 1) // SAMPLE_CHUNK + 1):
        z = gate_stream(seed, gate_uid, chunk).standard_normal(SAMPLE_CHUNK)
        lo = max(start, chunk * SAMPLE_CHUNK)
        hi = min(start + count, (chunk + 1) * SAMPLE_CHUNK)
        out[pos:pos + hi - lo] = z[lo - chunk * SAMPLE_CHUNK:
                                   hi - chunk * SAMPLE_CHUNK]
        pos += hi - lo
    return out


@dataclass(frozen=True)
class VariationModel:
    """Per-gate Vth variation: sigma, seed and truncation.

    ``sigma_mv`` is the standard deviation of the per-gate threshold
    scatter in millivolts (``0`` disables variation entirely — the
    engine then routes through the deterministic memoized path, exactly
    reproducing :func:`repro.sta.engine.analyze_batch`).
    """

    sigma_mv: float = 30.0
    seed: int = 20170618
    clip_sigmas: float = DEFAULT_CLIP_SIGMAS

    @property
    def sigma_v(self):
        """Scatter standard deviation in volts."""
        return float(self.sigma_mv) * 1e-3

    @property
    def is_zero(self):
        return float(self.sigma_mv) == 0.0

    def gate_dvth(self, gate_uids, start, count):
        """ΔVth draws in volts: ``(len(gate_uids), count)`` float64.

        Row ``i`` holds samples ``start .. start+count`` of gate
        ``gate_uids[i]`` — clipped standard normals scaled by
        ``sigma_v``. Deterministic in ``(seed, uid, sample index)``
        only.
        """
        draws = np.empty((len(gate_uids), count), dtype=np.float64)
        if self.is_zero:
            draws.fill(0.0)
            return draws
        for i, uid in enumerate(gate_uids):
            draws[i] = standard_draws(self.seed, uid, start, count)
        np.clip(draws, -self.clip_sigmas, self.clip_sigmas, out=draws)
        return draws * self.sigma_v
