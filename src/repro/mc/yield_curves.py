"""Yield curves and the yield-constrained precision K (stochastic Eq. 2).

The paper's Eq. 2 picks the deepest precision whose *deterministic*
aged critical path still meets the clock. Under per-gate process
variation that single worst case becomes a distribution, and the right
question is **yield**: per precision point, ``P(aged critical path <=
clock)`` over the variation ensemble — and the deepest precision K
whose yield still clears a target (``min_yield``). This module turns
:func:`repro.mc.engine.analyze_mc` into that report:

* one deterministic prelude per spec (synthesize once, compile one
  timing program, one cone plan per precision — the same structural
  plans the truncation sweeps replay);
* sample blocks fan out over ``--jobs`` workers; each block propagates
  the full ``(gates, corners, block)`` tensor *and* replays every
  requested precision's cone against it, so a whole sweep costs one
  propagation plus cheap cone replays per block;
* the optional surrogate screen (``surrogate="screen"``) evaluates
  anchor precisions exactly, fits the cross-validated least-squares
  model of :mod:`repro.mc.surrogate`, and spends full sampled STA only
  on candidates near a feasibility boundary — refusing to report a K
  that was not exactly evaluated.

Determinism: results are bit-identical across ``--jobs N``, worker
pools and the served ``/v1/mc`` path. Draws are keyed by ``(seed, gate
uid, absolute sample index)`` (:mod:`repro.mc.variation`), blocks are
assembled in absolute order, the screen's anchor choice / fold split /
refinement walk are pure functions of the spec, and ``sigma = 0``
routes through the deterministic memoized engine so it *equals*
:func:`repro.sta.engine.analyze_batch` rather than approximating it.
"""

import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..aging.bti import SECONDS_PER_YEAR
from ..cells.library import default_library
from ..core.parallel import map_tasks
from ..core.specs import (SpecError, parse_component, parse_effort,
                          parse_scenario)
from ..obs import logs, metrics as obs_metrics, trace as obs_trace
from ..sta.engine import (_critical_paths, _propagate, analyze_batch,
                          compile_timing, cone_plan, corner_delays,
                          corner_label, corner_stress, replay_cone,
                          truncated_input_nets)
from ..synth.synthesize import synthesize_netlist
from .engine import DEFAULT_BLOCK, sample_blocks
from .surrogate import cross_validate, fit_surrogate, pick_degree
from .variation import VariationModel

_log = logs.get_logger("mc.yield")

#: Spec fields accepted by :meth:`MCSpec.from_dict`.
_SPEC_FIELDS = ("component", "scenarios", "clock_scales", "sigma_mv",
                "samples", "seed", "sweep_bits", "min_yield", "effort",
                "width", "block", "surrogate")

#: Surrogate feature/target vocabularies (see :func:`_features`).
_FEATURES = ("det_cp_ps", "alive_gates", "stress_mean", "stress_rms",
             "age_factor", "sigma_v")
_TARGETS = ("q_ps", "p50_ps")


@dataclass(frozen=True)
class MCSpec:
    """One reproducible Monte Carlo yield analysis.

    ``scenarios`` are textual corner specs (``fresh``, ``worst10y``,
    ``10y_worst``); ``clock_scales`` multiply the deterministic fresh
    full-precision critical path, so ``1.0`` is the guardband-free
    clock. ``sweep_bits`` truncation depths below full width are
    analyzed; ``min_yield`` is the yield floor defining K.
    """

    component: str
    scenarios: Tuple[str, ...] = ("worst10y",)
    clock_scales: Tuple[float, ...] = (1.0,)
    sigma_mv: float = 30.0
    samples: int = 2000
    seed: int = 20170618
    sweep_bits: int = 8
    min_yield: float = 0.99
    effort: str = "high"
    width: Optional[int] = None
    block: int = DEFAULT_BLOCK
    surrogate: str = "off"

    def validated(self):
        """Parse/normalize every field; raises :class:`SpecError`."""
        parse_component(self.component, width=self.width)
        parse_effort(self.effort)
        labels = [corner_label(parse_scenario(s)) for s in self.scenarios]
        if not labels:
            raise SpecError("mc spec needs at least one scenario")
        if len(set(labels)) != len(labels):
            raise SpecError("duplicate scenarios in %r" % (self.scenarios,))
        if not self.clock_scales:
            raise SpecError("mc spec needs at least one clock scale")
        if any(not (0.0 < float(s) <= 4.0) for s in self.clock_scales):
            raise SpecError("clock scales must be in (0, 4], got %r"
                            % (self.clock_scales,))
        if not (0.0 <= float(self.sigma_mv) <= 50.0):
            raise SpecError("sigma_mv must be in [0, 50] mV, got %r"
                            % (self.sigma_mv,))
        if int(self.samples) < 1:
            raise SpecError("samples must be >= 1, got %r"
                            % (self.samples,))
        if int(self.seed) < 0:
            raise SpecError("seed must be non-negative, got %r"
                            % (self.seed,))
        if int(self.sweep_bits) < 0:
            raise SpecError("sweep_bits must be >= 0, got %r"
                            % (self.sweep_bits,))
        if not (0.0 < float(self.min_yield) <= 1.0):
            raise SpecError("min_yield must be in (0, 1], got %r"
                            % (self.min_yield,))
        if int(self.block) < 1:
            raise SpecError("block must be >= 1, got %r" % (self.block,))
        if self.surrogate not in ("off", "screen"):
            raise SpecError("surrogate must be 'off' or 'screen', got %r"
                            % (self.surrogate,))
        return self

    def to_dict(self):
        """JSON-serializable form (see :meth:`from_dict`)."""
        return {
            "component": self.component,
            "scenarios": list(self.scenarios),
            "clock_scales": [float(s) for s in self.clock_scales],
            "sigma_mv": float(self.sigma_mv),
            "samples": int(self.samples),
            "seed": int(self.seed),
            "sweep_bits": int(self.sweep_bits),
            "min_yield": float(self.min_yield),
            "effort": self.effort,
            "width": self.width,
            "block": int(self.block),
            "surrogate": self.surrogate,
        }

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`; unknown fields are an error."""
        if not isinstance(data, dict):
            raise SpecError("mc spec must be an object, got %r"
                            % type(data).__name__)
        unknown = sorted(set(data) - set(_SPEC_FIELDS))
        if unknown:
            raise SpecError("unknown mc spec fields: %s"
                            % ", ".join(unknown))
        if "component" not in data:
            raise SpecError("mc spec needs a component")
        kwargs = dict(data)
        if "scenarios" in kwargs:
            kwargs["scenarios"] = tuple(str(s) for s in kwargs["scenarios"])
        if "clock_scales" in kwargs:
            kwargs["clock_scales"] = tuple(
                float(s) for s in kwargs["clock_scales"])
        for key in ("samples", "seed", "sweep_bits", "block"):
            if key in kwargs:
                kwargs[key] = int(kwargs[key])
        for key in ("sigma_mv", "min_yield"):
            if key in kwargs:
                kwargs[key] = float(kwargs[key])
        if kwargs.get("width") is not None:
            kwargs["width"] = int(kwargs["width"])
        return cls(**kwargs).validated()

    def key(self):
        """Stable fingerprint for per-process prelude memoization."""
        return (self.component, tuple(self.scenarios),
                tuple(float(s) for s in self.clock_scales),
                float(self.sigma_mv), int(self.samples), int(self.seed),
                int(self.sweep_bits), float(self.min_yield), self.effort,
                self.width, int(self.block), self.surrogate)

    def variation(self):
        """The :class:`VariationModel` this spec draws from."""
        return VariationModel(sigma_mv=float(self.sigma_mv),
                              seed=int(self.seed))


@dataclass
class MCResult:
    """Yield curves + K table of one spec.

    Deterministic given the spec (no wall-clock fields): equality of
    ``to_dict()`` outputs is the ``--jobs`` reproducibility check.
    ``rows`` carry one entry per (precision, scenario, clock scale)
    with ``exact`` marking full sampled evaluation vs surrogate
    estimates; ``k_rows`` one entry per (scenario, clock scale).
    """

    spec: MCSpec
    component: str
    gates: int
    samples: int
    fresh_clock_ps: float
    labels: Tuple[str, ...]
    precisions: Tuple[int, ...]
    rows: list = field(default_factory=list)
    k_rows: list = field(default_factory=list)
    surrogate: Optional[dict] = None

    def to_dict(self):
        return {
            "schema": "repro.mc/1",
            "spec": self.spec.to_dict(),
            "component": self.component,
            "gates": int(self.gates),
            "samples": int(self.samples),
            "fresh_clock_ps": float(self.fresh_clock_ps),
            "labels": list(self.labels),
            "precisions": [int(p) for p in self.precisions],
            "rows": self.rows,
            "k_rows": self.k_rows,
            "surrogate": self.surrogate,
        }


# ---------------------------------------------------------------------------
# per-process prelude (synthesis + deterministic STA + cone plans)
# ---------------------------------------------------------------------------

@dataclass
class _Prelude:
    component: object
    netlist: object
    program: object
    corners: tuple
    labels: tuple
    batch: object
    fresh_clock_ps: float
    precisions: tuple
    plans: dict         # precision -> ConePlan (None at full precision)
    det_cp: dict        # precision -> (C,) deterministic aged CPs
    alive: dict         # precision -> surviving gate count
    stress_mean: np.ndarray   # (C,) mean per-gate stress duty
    stress_rms: np.ndarray    # (C,) rms per-gate stress duty
    age_factor: np.ndarray    # (C,) lifetime feature t_sec**(1/6)
    library: object


_PRELUDE_MEMO = {}
_PRELUDE_MEMO_LIMIT = 4


def _mc_corners(spec):
    """Corner grid: fresh first (defines the guardband-free clock),
    then the spec's scenarios in order, deduplicated by label."""
    corners = [parse_scenario("fresh")]
    labels = ["fresh"]
    for text in spec.scenarios:
        scenario = parse_scenario(text)
        label = corner_label(scenario)
        if label not in labels:
            corners.append(scenario)
            labels.append(label)
    return tuple(corners), tuple(labels)


def _build_prelude(spec, library):
    component = parse_component(spec.component, width=spec.width)
    lib = library if library is not None else default_library()
    netlist = synthesize_netlist(component, lib, effort=spec.effort)
    program = compile_timing(netlist, lib)
    corners, labels = _mc_corners(spec)
    batch = analyze_batch(netlist, lib, corners, program=program)
    fresh_clock = float(batch.critical_path_ps[0])
    low = max(1, component.width - int(spec.sweep_bits))
    precisions = tuple(range(component.width, low - 1, -1))
    plans, det_cp, alive = {}, {}, {}
    for precision in precisions:
        tied = truncated_input_nets(component, netlist, precision)
        if not tied:
            plans[precision] = None
            det_cp[precision] = batch.critical_path_ps.copy()
            alive[precision] = program.n_gates
        else:
            plan = cone_plan(program, tied)
            plans[precision] = plan
            arr = replay_cone(plan, batch.arrivals, batch.delays)
            det_cp[precision] = _critical_paths(program, arr)
            alive[precision] = program.n_gates - int(plan.dropped.sum())
    sp, sn, years = corner_stress(program, corners)
    duty = (sp + sn) / 2.0
    if program.n_gates:
        stress_mean = duty.mean(axis=0)
        stress_rms = np.sqrt((duty * duty).mean(axis=0))
    else:
        stress_mean = np.zeros(len(corners))
        stress_rms = np.zeros(len(corners))
    age_factor = (years * SECONDS_PER_YEAR) ** (1.0 / 6.0)
    return _Prelude(component=component, netlist=netlist, program=program,
                    corners=corners, labels=labels, batch=batch,
                    fresh_clock_ps=fresh_clock, precisions=precisions,
                    plans=plans, det_cp=det_cp, alive=alive,
                    stress_mean=stress_mean, stress_rms=stress_rms,
                    age_factor=age_factor, library=lib)


def _prelude(spec, library=None):
    """Per-process memoized prelude (same recipe as
    :func:`repro.inject.campaign._prelude`)."""
    key = (spec.key(), "default" if library is None else id(library))
    prelude = _PRELUDE_MEMO.get(key)
    if prelude is None:
        if len(_PRELUDE_MEMO) >= _PRELUDE_MEMO_LIMIT:
            _PRELUDE_MEMO.pop(next(iter(_PRELUDE_MEMO)))
        prelude = _build_prelude(spec, library)
        _PRELUDE_MEMO[key] = prelude
    return prelude


# ---------------------------------------------------------------------------
# sample-block worker
# ---------------------------------------------------------------------------

def _mc_block(task):
    """Module-level sample-block worker (shared by every path).

    One propagation of the full tensor block plus one cone replay per
    requested truncation depth; returns ``(C, count)`` critical paths
    per precision, keyed by absolute block start for ordered assembly.
    """
    spec = MCSpec.from_dict(task["spec"])
    with obs_trace.capture() as tracer, obs_metrics.scoped() as registry:
        with obs_trace.propagated(task.get("trace")), obs_trace.span(
                "mc.block", start=task["start"], count=task["count"],
                precisions=len(task["precisions"])):
            prelude = _prelude(spec, library=task.get("library"))
            program = prelude.program
            dvth = spec.variation().gate_dvth(
                program.gate_uids, task["start"], task["count"])
            delays = corner_delays(program, prelude.corners, dvth=dvth)
            arr = _propagate(program, delays)
            cp = {}
            for precision in task["precisions"]:
                plan = prelude.plans[precision]
                if plan is None:
                    cp[int(precision)] = _critical_paths(program, arr)
                else:
                    arr_p = replay_cone(plan, arr, delays)
                    cp[int(precision)] = _critical_paths(program, arr_p)
    return {"start": task["start"], "cp": cp, "trace": tracer.to_dicts(),
            "obs_metrics": registry.snapshot()}


def _exact_cp(spec, library, precisions, jobs, pool, prelude):
    """Sampled ``(C, samples)`` critical paths per requested precision.

    ``sigma = 0`` tiles the deterministic per-precision CPs (exact
    equality with the memoized engine by construction); otherwise the
    sample blocks are mapped over workers and concatenated in absolute
    order, so the result is independent of ``jobs``.
    """
    precisions = sorted({int(p) for p in precisions}, reverse=True)
    if not precisions:
        return {}
    if spec.variation().is_zero:
        return {p: np.repeat(prelude.det_cp[p][:, None], spec.samples,
                             axis=1) for p in precisions}
    ctx = obs_trace.propagation_context()
    tasks = [{"spec": spec.to_dict(), "start": start, "count": count,
              "precisions": precisions, "trace": ctx, "library": library}
             for start, count in sample_blocks(spec.samples, spec.block)]
    outcomes = map_tasks(_mc_block, tasks, jobs=jobs, pool=pool)
    parts = {p: [] for p in precisions}
    for outcome in outcomes:
        obs_trace.adopt(outcome["trace"])
        obs_metrics.registry().merge(outcome["obs_metrics"])
        for p in precisions:
            parts[p].append(outcome["cp"][p])
    obs_metrics.inc(obs_metrics.MC_SAMPLES,
                    int(spec.samples) * len(precisions))
    obs_metrics.inc(obs_metrics.MC_BLOCKS, len(tasks))
    return {p: np.concatenate(parts[p], axis=1) for p in precisions}


# ---------------------------------------------------------------------------
# surrogate screen
# ---------------------------------------------------------------------------

def _features(prelude, spec, precision, corner):
    """Feature vector of one (precision, corner) point — netlist stats,
    stress moments, lifetime and sigma (see module doc)."""
    return [float(prelude.det_cp[precision][corner]),
            float(prelude.alive[precision]),
            float(prelude.stress_mean[corner]),
            float(prelude.stress_rms[corner]),
            float(prelude.age_factor[corner]),
            spec.variation().sigma_v]


def _yield_fraction(cp_samples, clock_ps):
    return float(np.count_nonzero(cp_samples <= clock_ps)
                 / cp_samples.size)


def _screened_evaluation(spec, library, jobs, pool, prelude, ladder):
    """Anchor -> fit -> predict -> boundary-refine evaluation plan.

    Returns ``(exact, info, predictions)``: exactly evaluated sample
    tensors, the JSON-ready screen summary, and per ``(precision,
    corner)`` surrogate estimates for the rows that stayed screened.
    The refinement loop re-evaluates any would-be K that is not yet
    exact, so reported K values never rest on an estimate.
    """
    precisions = list(prelude.precisions)
    step = max(1, (len(precisions) - 1) // 3)
    anchors = sorted({precisions[0], precisions[-1],
                      *precisions[::step]}, reverse=True)
    exact = _exact_cp(spec, library, anchors, jobs, pool, prelude)

    X, Y = [], []
    corners = range(len(prelude.labels))
    for p in sorted(exact, reverse=True):
        for c in corners:
            X.append(_features(prelude, spec, p, c))
            Y.append([float(np.quantile(exact[p][c], spec.min_yield)),
                      float(np.quantile(exact[p][c], 0.5))])
    degree = pick_degree(len(X), len(_FEATURES))
    cv = cross_validate(X, Y, _FEATURES, _TARGETS, degree=degree)
    fit = fit_surrogate(X, Y, _FEATURES, _TARGETS, degree=degree)
    margin = max(2.0 * cv["targets"]["q_ps"]["max_abs_err"],
                 0.005 * prelude.fresh_clock_ps)

    rest = [p for p in precisions if p not in exact]
    predictions = {}
    if rest:
        Xr = [_features(prelude, spec, p, c) for p in rest for c in corners]
        pred = fit.predict(np.asarray(Xr))
        for i, (p, c) in enumerate((p, c) for p in rest for c in corners):
            predictions[(p, c)] = {"q_ps": float(pred[i, 0]),
                                   "p50_ps": float(pred[i, 1])}

    clocks = [prelude.fresh_clock_ps * float(s)
              for s in spec.clock_scales]
    ladder_corners = [prelude.labels.index(label) for label in ladder]
    boundary = [
        p for p in rest
        if any(abs(predictions[(p, c)]["q_ps"] - clock) <= margin
               for c in ladder_corners for clock in clocks)]
    if boundary:
        exact.update(_exact_cp(spec, library, boundary, jobs, pool,
                               prelude))

    # A reported K must be exact: walk each (corner, clock) ladder with
    # current knowledge and evaluate any screened would-be K.
    for _ in range(len(precisions)):
        need = set()
        for c in ladder_corners:
            for clock in clocks:
                for p in precisions:
                    if p in exact:
                        feasible = (_yield_fraction(exact[p][c], clock)
                                    >= spec.min_yield)
                    else:
                        feasible = predictions[(p, c)]["q_ps"] <= clock
                    if feasible:
                        if p not in exact:
                            need.add(p)
                        break
        if not need:
            break
        exact.update(_exact_cp(spec, library, sorted(need, reverse=True),
                               jobs, pool, prelude))

    skipped = [p for p in precisions if p not in exact]
    obs_metrics.inc(obs_metrics.MC_SURROGATE_FITS)
    obs_metrics.inc(obs_metrics.MC_SURROGATE_SKIPPED,
                    len(skipped) * len(ladder_corners))
    info = {
        "anchors": [int(p) for p in anchors],
        "degree": int(degree),
        "cv": cv,
        "margin_ps": float(margin),
        "evaluated": sorted((int(p) for p in exact), reverse=True),
        "skipped": [int(p) for p in skipped],
    }
    return exact, info, predictions


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def run_mc(spec, library=None, jobs=None, pool=None):
    """Run one Monte Carlo yield analysis; bit-identical across jobs.

    *jobs*/*pool* follow :func:`repro.core.parallel.map_tasks`
    semantics; results do not depend on either (see module doc).

    Returns
    -------
    MCResult
    """
    spec.validated()
    with obs_trace.span("mc.run", component=spec.component,
                        scenarios=len(spec.scenarios),
                        samples=int(spec.samples),
                        sigma_mv=float(spec.sigma_mv)):
        started = time.perf_counter()
        prelude = _prelude(spec, library=library)
        ladder = [corner_label(parse_scenario(s)) for s in spec.scenarios]
        precisions = prelude.precisions
        surrogate_info = None
        predictions = {}
        if (spec.surrogate == "screen" and not spec.variation().is_zero
                and len(precisions) > 3):
            exact, surrogate_info, predictions = _screened_evaluation(
                spec, library, jobs, pool, prelude, ladder)
        else:
            exact = _exact_cp(spec, library, precisions, jobs, pool,
                              prelude)

        rows = []
        for precision in precisions:
            for label in ladder:
                corner = prelude.labels.index(label)
                scenario = prelude.corners[corner]
                for scale in spec.clock_scales:
                    clock_ps = prelude.fresh_clock_ps * float(scale)
                    row = {
                        "precision": int(precision),
                        "scenario": label,
                        "years": float(scenario.years),
                        "clock_scale": float(scale),
                        "clock_ps": clock_ps,
                        "det_cp_ps": float(
                            prelude.det_cp[precision][corner]),
                    }
                    if precision in exact:
                        cps = exact[precision][corner]
                        y = _yield_fraction(cps, clock_ps)
                        row.update({
                            "exact": True,
                            "yield_fraction": y,
                            "feasible": y >= spec.min_yield,
                            "p50_ps": float(np.quantile(cps, 0.5)),
                            "mean_ps": float(cps.mean()),
                            "q_ps": float(np.quantile(cps,
                                                      spec.min_yield)),
                            "p99_ps": float(np.quantile(cps, 0.99)),
                        })
                        obs_metrics.observe(
                            obs_metrics.MC_YIELD_FRACTION, y,
                            boundaries=obs_metrics.FRACTION_BOUNDARIES)
                    else:
                        pred = predictions[(precision, corner)]
                        row.update({
                            "exact": False,
                            "yield_fraction": None,
                            "feasible": pred["q_ps"] <= clock_ps,
                            "p50_ps": pred["p50_ps"],
                            "q_ps": pred["q_ps"],
                        })
                    rows.append(row)

        k_rows = []
        for label in ladder:
            corner = prelude.labels.index(label)
            scenario = prelude.corners[corner]
            for scale in spec.clock_scales:
                clock_ps = prelude.fresh_clock_ps * float(scale)
                det_k = next(
                    (int(p) for p in precisions
                     if prelude.det_cp[p][corner] <= clock_ps), None)
                yield_k = None
                yield_at_k = None
                for p in precisions:
                    if p in exact:
                        y = _yield_fraction(exact[p][corner], clock_ps)
                        if y >= spec.min_yield:
                            yield_k, yield_at_k = int(p), y
                            break
                    elif predictions[(p, corner)]["q_ps"] <= clock_ps:
                        # Screened rows can only be K candidates before
                        # refinement; after it, a feasible screened row
                        # never outranks the exact K (see
                        # _screened_evaluation).
                        break
                k_rows.append({
                    "scenario": label,
                    "years": float(scenario.years),
                    "clock_scale": float(scale),
                    "clock_ps": clock_ps,
                    "min_yield": float(spec.min_yield),
                    "det_precision": det_k,
                    "yield_precision": yield_k,
                    "yield_at_k": yield_at_k,
                })

        obs_metrics.inc(obs_metrics.MC_RUNS)
        obs_metrics.inc(obs_metrics.MC_POINTS,
                        sum(1 for row in rows if row["exact"]))
        _log.info(
            "mc %s: %d precisions x %d corners x %d samples in %.2fs",
            spec.component, len(precisions), len(prelude.labels),
            spec.samples, time.perf_counter() - started)
        return MCResult(
            spec=spec, component=prelude.component.name,
            gates=prelude.program.n_gates, samples=int(spec.samples),
            fresh_clock_ps=prelude.fresh_clock_ps, labels=prelude.labels,
            precisions=precisions, rows=rows, k_rows=k_rows,
            surrogate=surrogate_info)


def _mc_job(task):
    """Module-level whole-run worker for the served ``/v1/mc`` path."""
    with obs_trace.capture() as tracer, obs_metrics.scoped() as registry:
        with obs_trace.propagated(task.get("trace")):
            spec = MCSpec.from_dict(task["spec"])
            result = run_mc(spec, jobs=1)
    return {"mc": result.to_dict(), "trace": tracer.to_dicts(),
            "obs_metrics": registry.snapshot()}
