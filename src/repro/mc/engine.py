"""Sample-axis Monte Carlo STA over the batched timing engine.

:func:`analyze_mc` extends :func:`repro.sta.engine.analyze_batch` with a
trailing **sample axis**: per-gate Vth draws
(:class:`~repro.mc.variation.VariationModel`) perturb the aged delay of
every gate, and the levelized propagation sweeps the whole
``(gates, corners, samples)`` tensor with the same per-level NumPy
gather/max/add the deterministic path uses — no per-gate or per-sample
Python loop anywhere on the hot path.

Memory model
------------
A full mult16 tensor at 6 corners x 2000 samples would hold ~50M
float64 arrivals. The sample axis is therefore processed in **chunked
sample blocks** (:data:`DEFAULT_BLOCK` samples at a time): each block
materializes only ``(slots, corners, block)`` arrivals, critical paths
are reduced per block, and blocks are concatenated in absolute sample
order. Peak RSS is bounded by the block size while results are
independent of it — draws are indexed by absolute sample position
(:mod:`repro.mc.variation`), and each block's propagation touches no
state outside the block.

Zero-sigma routing
------------------
``sigma = 0`` must *equal* the deterministic engine, not approximate
it: :func:`analyze_mc` then routes through
:func:`~repro.sta.engine.analyze_batch` (the memoized multiplier path)
and broadcasts its arrivals across the sample axis, so every value is
bit-identical (``==``, no epsilon) to the deterministic report. This is
also the benchmark's correctness gate.

:func:`analyze_mc_reference` is the per-sample scalar-loop oracle — the
"today's approach" baseline `benchmarks/perf_mc.py` measures against:
one scalar BTI-model call per (gate, corner, sample), one propagation
per sample.
"""

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..aging.bti import DEFAULT_BTI
from ..obs import metrics as obs_metrics, trace as obs_trace
from ..sta.engine import (_critical_paths, _propagate, analyze_batch,
                          compile_timing, corner_delays, corner_label,
                          corner_stress)
from .variation import VariationModel

#: Samples propagated per block; bounds peak arrival-tensor memory.
#: Divides :data:`repro.mc.variation.SAMPLE_CHUNK` (or vice versa) so
#: block boundaries align with draw chunks and nothing is re-generated.
DEFAULT_BLOCK = 256


def sample_blocks(samples, block=DEFAULT_BLOCK):
    """``(start, count)`` partition of the sample axis into blocks."""
    if samples < 1:
        raise ValueError("samples must be >= 1, got %r" % (samples,))
    if block < 1:
        raise ValueError("block must be >= 1, got %r" % (block,))
    return [(start, min(block, samples - start))
            for start in range(0, samples, block)]


@dataclass
class MCReport:
    """Sampled critical paths of one netlist under a corner grid.

    ``critical_path_ps`` is ``(C, S)``; ``arrivals`` (``(slots, C, S)``)
    is kept only on request — it is the block-memory model's whole point
    that full runs never materialize it.
    """

    program: object
    corners: Tuple
    labels: Tuple[str, ...]
    variation: VariationModel
    samples: int
    critical_path_ps: np.ndarray
    arrivals: Optional[np.ndarray] = None

    def corner_index(self, label):
        try:
            return self.labels.index(label)
        except ValueError:
            raise KeyError("corner %r not analyzed (have %s)"
                           % (label, list(self.labels)))

    def _corner(self, corner):
        return self.corner_index(corner) if isinstance(corner, str) \
            else corner

    def quantile_ps(self, q, corner=0):
        """Critical-path quantile (linear interpolation) of one corner."""
        return float(np.quantile(
            self.critical_path_ps[self._corner(corner)], q))

    def mean_ps(self, corner=0):
        return float(self.critical_path_ps[self._corner(corner)].mean())

    def yield_fraction(self, clock_ps, corner=0):
        """P(sampled critical path <= clock) under one corner."""
        cp = self.critical_path_ps[self._corner(corner)]
        return float(np.count_nonzero(cp <= clock_ps) / cp.size)


def analyze_mc(netlist, library, corners, variation, samples,
               bti=DEFAULT_BTI, program=None, block=DEFAULT_BLOCK,
               keep_arrivals=False):
    """Monte Carlo STA: *samples* variation draws across *corners*.

    Parameters
    ----------
    corners:
        Corner grid as in :func:`repro.sta.engine.analyze_batch`.
    variation:
        :class:`~repro.mc.variation.VariationModel`; ``sigma = 0``
        reproduces the deterministic engine exactly (see module doc).
    samples:
        Number of Monte Carlo draws (>= 1).
    block:
        Sample-block size bounding peak memory; never affects results.
    keep_arrivals:
        Materialize the full ``(slots, C, S)`` arrival tensor (tests
        and small netlists only).

    Returns
    -------
    MCReport
    """
    corners = tuple(corners)
    if not corners:
        raise ValueError("analyze_mc needs at least one corner")
    blocks = sample_blocks(samples, block)
    if program is None:
        program = compile_timing(netlist, library)
    labels = tuple(corner_label(c) for c in corners)
    started = time.perf_counter()
    with obs_trace.span("mc.analyze", design=netlist.name,
                        corners=len(corners), samples=int(samples),
                        gates=program.n_gates):
        if variation.is_zero:
            batch = analyze_batch(netlist, library, corners, bti=bti,
                                  program=program)
            cp = np.repeat(batch.critical_path_ps[:, None], samples,
                           axis=1)
            arrivals = (np.repeat(batch.arrivals[:, :, None], samples,
                                  axis=2) if keep_arrivals else None)
        else:
            uids = program.gate_uids
            parts = []
            kept = []
            for start, count in blocks:
                dvth = variation.gate_dvth(uids, start, count)
                delays = corner_delays(program, corners, bti=bti,
                                       dvth=dvth)
                arr = _propagate(program, delays)
                parts.append(_critical_paths(program, arr))
                if keep_arrivals:
                    kept.append(arr)
            cp = np.concatenate(parts, axis=1)
            arrivals = np.concatenate(kept, axis=2) if keep_arrivals \
                else None
    elapsed = time.perf_counter() - started
    if elapsed > 0.0:
        obs_metrics.set_gauge(obs_metrics.MC_SAMPLES_PER_SEC,
                              samples / elapsed)
    obs_metrics.inc(obs_metrics.MC_SAMPLES, int(samples))
    obs_metrics.inc(obs_metrics.MC_BLOCKS, len(blocks))
    return MCReport(program=program, corners=corners, labels=labels,
                    variation=variation, samples=int(samples),
                    critical_path_ps=cp, arrivals=arrivals)


def analyze_mc_reference(netlist, library, corners, variation, samples,
                         bti=DEFAULT_BTI, program=None):
    """Per-sample scalar-loop oracle: ``(C, S)`` critical paths.

    Computes every gate delay with one scalar
    :meth:`~repro.aging.bti.BTIModel.delay_multiplier_from_dvth` /
    :meth:`~repro.aging.bti.BTIModel.delta_vth` call per (gate, corner,
    sample) and propagates one sample at a time — the pre-vectorization
    approach. Draw-for-draw identical inputs to :func:`analyze_mc`
    (same Philox streams), so the two agree to float tolerance; the
    benchmark and the tier-1 suite compare them at ``rtol = 1e-12``.
    """
    corners = tuple(corners)
    if program is None:
        program = compile_timing(netlist, library)
    sp, sn, years = corner_stress(program, corners)
    wp = np.asarray([cell.wp for cell in program.cells],
                    dtype=np.float64)[program.cell_index] \
        if program.n_gates else np.zeros(0)
    wn = np.asarray([cell.wn for cell in program.cells],
                    dtype=np.float64)[program.cell_index] \
        if program.n_gates else np.zeros(0)
    dvth = variation.gate_dvth(program.gate_uids, 0, samples)
    n, C = program.n_gates, len(corners)
    cp = np.empty((C, samples), dtype=np.float64)
    delays = np.empty((n, C), dtype=np.float64)
    for s in range(samples):
        for g in range(n):
            dv = float(dvth[g, s])
            for c in range(C):
                mp = bti.delay_multiplier_from_dvth(
                    bti.delta_vth(float(sp[g, c]), float(years[c])) + dv,
                    allow_speedup=True)
                mn = bti.delay_multiplier_from_dvth(
                    bti.delta_vth(float(sn[g, c]), float(years[c])) + dv,
                    allow_speedup=True)
                mult = (1.0 + wp[g] * (mp - 1.0) + wn[g] * (mn - 1.0))
                delays[g, c] = program.base_delay_ps[g] * mult
        arr = _propagate(program, delays)
        cp[:, s] = _critical_paths(program, arr)
    return cp
