"""Cross-check of timed-simulation vs static-STA violation reports.

The faultload generator trusts static STA arrivals; the timed simulator
(:class:`repro.sim.timing.TimedSimulator`) derives *dynamic* per-vector
arrivals. The contract between them is containment: static arrivals
upper-bound dynamic ones (static sensitization can only drop
contributing inputs, never add delay), so every primary output the
timed simulator flags as violating at some clock must also be past that
clock statically. Both engines propagate float64 and add the identical
per-gate delay floats, so the bound is *exact* — no epsilon.

Historically the timed simulator accumulated arrivals in float32, which
let a dynamic arrival drift past the static bound and produced
violation reports static STA disproved. :func:`crosscheck_violations`
pins the repaired agreement; :func:`minimize_disagreement` shrinks any
future regression to a minimal netlist with the delta-debugging
machinery of :mod:`repro.verify.shrink`.
"""

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..sim.timing import TimedSimulator
from ..sta.sta import analyze
from ..verify.oracles import default_stimulus
from ..verify.shrink import shrink_netlist


@dataclass(frozen=True)
class Disagreement:
    """One PO bit where dynamic and static timing verdicts conflict."""

    net: int
    column: int
    vectors: int
    dynamic_arrival_ps: float
    static_arrival_ps: float
    clock_ps: float

    def describe(self):
        return ("output %d (net %d): dynamic arrival %.6f ps exceeds "
                "static bound %.6f ps at clock %.6f ps on %d vector(s)"
                % (self.column, self.net, self.dynamic_arrival_ps,
                   self.static_arrival_ps, self.clock_ps, self.vectors))


@dataclass
class CrosscheckReport:
    """Violating-PO sets of both engines at one clock, plus conflicts.

    ``static_violating`` / ``dynamic_violating`` are PO column tuples;
    the containment ``dynamic <= static`` (as sets, and per-vector as
    arrival bounds) is the checked invariant. ``disagreements`` lists
    every breach.
    """

    name: str
    clock_ps: float
    scenario_label: str
    vectors: int
    static_violating: Tuple[int, ...]
    dynamic_violating: Tuple[int, ...]
    disagreements: list = field(default_factory=list)

    @property
    def passed(self):
        return not self.disagreements

    def describe(self):
        lines = ["crosscheck %s @ %.3f ps (%s, %d vectors): "
                 "static flags %d PO(s), dynamic flags %d PO(s)"
                 % (self.name, self.clock_ps, self.scenario_label,
                    self.vectors, len(self.static_violating),
                    len(self.dynamic_violating))]
        for item in self.disagreements:
            lines.append("  " + item.describe())
        if self.passed:
            lines.append("  dynamic violations are a subset of static "
                         "ones; arrivals within the static bound")
        return "\n".join(lines)


def crosscheck_violations(netlist, library, clock_ps=None, scenario=None,
                          vectors=None, rng=None, glitch_model="sensitization"):
    """Compare which POs each engine reports violating at *clock_ps*.

    The clock defaults to the *fresh* critical path — the guardband-free
    operating point — while *scenario* ages the gates, which is the
    regime campaigns inject in. Checks two facts per PO bit:

    * every dynamic arrival is ``<=`` the static arrival (exactly);
    * consequently every dynamically-violating PO is statically
      violating too.
    """
    fresh_report = analyze(netlist, library)
    if clock_ps is None:
        clock_ps = fresh_report.critical_path_ps
    clock_ps = float(clock_ps)
    report = (fresh_report if scenario is None or scenario.is_fresh
              else analyze(netlist, library, scenario=scenario))
    static = np.array([report.arrivals[n] for n in netlist.primary_outputs],
                      dtype=np.float64)
    pi_bits = default_stimulus(netlist, vectors=vectors, rng=rng)
    sim = TimedSimulator(netlist, library, clock_ps, scenario=scenario,
                         glitch_model=glitch_model)
    result = sim.run_stream(pi_bits)

    static_violating = tuple(np.flatnonzero(static > clock_ps).tolist())
    dynamic_cols = np.flatnonzero(result.violations.any(axis=0))
    disagreements = []
    for col in dynamic_cols.tolist():
        over = result.arrivals[:, col] > static[col]
        bad = over | (result.violations[:, col]
                      & ~(static[col] > clock_ps))
        if bad.any():
            disagreements.append(Disagreement(
                net=int(netlist.primary_outputs[col]), column=col,
                vectors=int(bad.sum()),
                dynamic_arrival_ps=float(result.arrivals[bad, col].max()),
                static_arrival_ps=float(static[col]),
                clock_ps=clock_ps))
    label = "fresh" if scenario is None else scenario.label
    return CrosscheckReport(
        name=netlist.name, clock_ps=clock_ps, scenario_label=label,
        vectors=int(pi_bits.shape[0]),
        static_violating=static_violating,
        dynamic_violating=tuple(dynamic_cols.tolist()),
        disagreements=disagreements)


def minimize_disagreement(netlist, library, scenario=None, vectors=None,
                          rng=None, max_rounds=40):
    """Shrink a crosschecking failure to a minimal reproducing netlist.

    Returns ``(minimal netlist, its report)``; raises ``ValueError``
    when the input netlist does not disagree in the first place. The
    predicate re-derives the guardband-free clock per candidate, so
    shrinking keeps exercising the same operating point.
    """
    base = crosscheck_violations(netlist, library, scenario=scenario,
                                 vectors=vectors, rng=rng)
    if base.passed:
        raise ValueError("netlist %s shows no timed/static disagreement"
                         % netlist.name)

    def still_disagrees(candidate):
        return not crosscheck_violations(candidate, library,
                                         scenario=scenario, vectors=vectors,
                                         rng=rng).passed

    small = shrink_netlist(netlist, still_disagrees, max_rounds=max_rounds)
    return small, crosscheck_violations(small, library, scenario=scenario,
                                        vectors=vectors, rng=rng)
