"""Faultload derivation from batched STA arrivals.

A *faultload* names the gates that miss timing at a given
``(corner, clock)`` point and assigns each a flip probability. The
model follows the paper's premise for guardband-free operation: a gate
whose aged output arrival exceeds the clock period latches a stale or
metastable value on some fraction of cycles. We approximate that
fraction as::

    p(gate) = activity * (1 - clock_ps / arrival_ps)

i.e. proportional to how deep the gate is past the deadline, scaled by
an output toggle activity (default 0.5 — a late capture only matters
when the output actually changed this cycle). The comparison is
strict (``arrival > clock``), so a fresh circuit clocked at its own
critical path, or any corner under a guardbanded clock, yields an
empty faultload — the "exactly zero injections" invariant.

Probabilities are quantized to :data:`repro.inject.masks.PROB_BITS`
bits (:func:`repro.inject.masks.flip_threshold`); because ``p`` is
non-decreasing in lifetime (arrivals grow under aging) and in clock
aggressiveness (smaller ``clock_ps``), thresholds are too, which the
mask layer turns into exactly monotone injected-fault counts.
"""

from dataclasses import dataclass

import numpy as np

from ..sta.engine import corner_label
from . import masks as masks_mod

#: Default output toggle activity used to scale flip probabilities.
DEFAULT_ACTIVITY = 0.5


@dataclass(frozen=True)
class Faultload:
    """Violating gates of one ``(corner, clock)`` point.

    All arrays are aligned: entry *i* describes the same gate. ``rows``
    are indices into the topological gate order shared by
    :class:`repro.sta.engine.TimingProgram` and
    :class:`repro.sim.logic.CompiledNetlist` (both derive from
    ``netlist.topological_gates()``), so a row addresses the packed-eval
    op to XOR directly.
    """

    clock_ps: float
    corner: str
    activity: float
    rows: np.ndarray
    gate_uids: np.ndarray
    arrival_ps: np.ndarray
    flip_probability: np.ndarray
    thresholds: np.ndarray
    n_gates: int

    @property
    def n_violating(self):
        return int(self.rows.size)

    @property
    def violating_fraction(self):
        return self.n_violating / max(self.n_gates, 1)

    @property
    def mean_flip_probability(self):
        if not self.rows.size:
            return 0.0
        return float(self.flip_probability.mean())

    def masks(self, seed, words):
        """Per-op packed fault masks: ``{op row: (words,) uint64}``.

        Masks come from the per-``(seed, gate uid)`` streams of
        :mod:`repro.inject.masks`, so they are independent of which
        process builds them and nested across corners that share a
        seed.
        """
        out = {}
        for row, uid, threshold in zip(
                self.rows.tolist(), self.gate_uids.tolist(),
                self.thresholds.tolist()):
            mask = masks_mod.bernoulli_words(seed, uid, threshold, words)
            if mask.any():
                out[row] = mask
        return out


def gate_output_arrivals(program, batch, corner_index):
    """Per-gate output arrival times (float64) for one analyzed corner."""
    slots = np.fromiter(
        (program.slot_of[gate.output] for gate in program.gates),
        dtype=np.int64, count=program.n_gates)
    return np.asarray(batch.arrivals[slots, corner_index], dtype=np.float64)


def build_faultload(program, batch, corner, clock_ps,
                    activity=DEFAULT_ACTIVITY):
    """Derive the faultload of one ``(corner, clock)`` point.

    *corner* is a label from ``batch.labels`` (or an
    :class:`~repro.aging.scenario.AgingScenario` / ``None`` resolved
    via :func:`repro.sta.engine.corner_label`). *clock_ps* must be
    positive; *activity* is the toggle-activity scale in ``(0, 1]``.
    """
    clock_ps = float(clock_ps)
    if clock_ps <= 0.0:
        raise ValueError("clock_ps must be positive, got %r" % clock_ps)
    if not 0.0 < activity <= 1.0:
        raise ValueError("activity must be in (0, 1], got %r" % activity)
    label = corner if isinstance(corner, str) else corner_label(corner)
    corner_index = batch.corner_index(label)
    arrivals = gate_output_arrivals(program, batch, corner_index)
    rows = np.flatnonzero(arrivals > clock_ps)
    late = arrivals[rows]
    probs = activity * (1.0 - clock_ps / late)
    thresholds = np.fromiter(
        (masks_mod.flip_threshold(p) for p in probs.tolist()),
        dtype=np.int64, count=rows.size)
    return Faultload(
        clock_ps=clock_ps,
        corner=label,
        activity=float(activity),
        rows=rows.astype(np.int64),
        gate_uids=np.asarray(program.gate_uids, dtype=np.int64)[rows],
        arrival_ps=late,
        flip_probability=probs,
        thresholds=thresholds,
        n_gates=program.n_gates,
    )
