"""Fault-injecting twins of the :mod:`repro.sim.logic` evaluators.

Injection is an XOR on a gate's freshly computed output before any
reader consumes it: downstream gates then propagate (or logically mask)
the corrupted value exactly as real silicon would. The packed variant
flips 64 vectors per word per mask word — this is what makes campaign
throughput of millions of injected vectors per second possible — while
the scalar uint8 variant is the slow reference the property tests
compare against bit-for-bit.

Masks address ops by *row*: the index into ``compiled.ops``, which is
also the row in :class:`repro.sta.engine.TimingProgram` (both orders
come from ``netlist.topological_gates()``;
:func:`check_alignment` asserts it via gate uids).
"""

import numpy as np

from ..sim import bitpack


def check_alignment(compiled, program):
    """Assert sim ops and STA rows describe the same gate order."""
    sim_uids = [op[3] for op in compiled.ops]
    sta_uids = np.asarray(program.gate_uids).tolist()
    if sim_uids != sta_uids:
        raise AssertionError(
            "compiled netlist and timing program disagree on gate order "
            "(%d vs %d gates)" % (len(sim_uids), len(sta_uids)))


def evaluate_packed_injected(compiled, pi_bits, op_masks, release=True):
    """:func:`repro.sim.logic.evaluate_packed` with XOR fault masks.

    *op_masks* maps op row -> ``(words,)`` uint64 fault mask. With an
    empty mapping this is bit-identical to the clean evaluator.
    """
    pi_bits = np.asarray(pi_bits, dtype=np.uint8)
    if pi_bits.ndim != 2 or pi_bits.shape[1] != len(compiled.pi_slots):
        raise ValueError(
            "expected pi_bits of shape (batch, %d), got %r"
            % (len(compiled.pi_slots), pi_bits.shape))
    batch = pi_bits.shape[0]
    packed_pi = bitpack.pack_bits(pi_bits)
    words = packed_pi.shape[1]
    values = [None] * compiled.slots
    values[0] = np.zeros(words, dtype=np.uint64)
    values[1] = np.full(words, bitpack.ALL_ONES, dtype=np.uint64)
    for col, slot in enumerate(compiled.pi_slots):
        values[slot] = packed_pi[col]
    for idx, (__func, ins, out, __uid) in enumerate(compiled.ops):
        value = compiled.packed_funcs[idx](*[values[s] for s in ins])
        mask = op_masks.get(idx)
        if mask is not None:
            value = value ^ mask
        values[out] = value
        if release:
            for slot in compiled.last_use[idx]:
                values[slot] = None
    outs = np.empty((len(compiled.po_slots), words), dtype=np.uint64)
    for row, slot in enumerate(compiled.po_slots):
        outs[row] = values[slot]
    return bitpack.unpack_bits(outs, batch)


def evaluate_bytes_injected(compiled, pi_bits, op_mask_bits):
    """Scalar uint8 reference injector (one byte per vector per net).

    *op_mask_bits* maps op row -> ``(batch,)`` uint8 0/1 flip flags —
    the unpacked form of the packed masks (:func:`unpack_op_masks`).
    Exists purely as the independent oracle for the packed injector.
    """
    pi_bits = np.asarray(pi_bits, dtype=np.uint8)
    if pi_bits.ndim != 2 or pi_bits.shape[1] != len(compiled.pi_slots):
        raise ValueError(
            "expected pi_bits of shape (batch, %d), got %r"
            % (len(compiled.pi_slots), pi_bits.shape))
    batch = pi_bits.shape[0]
    values = [None] * compiled.slots
    values[0] = np.zeros(batch, dtype=np.uint8)
    values[1] = np.ones(batch, dtype=np.uint8)
    for col, slot in enumerate(compiled.pi_slots):
        values[slot] = np.ascontiguousarray(pi_bits[:, col])
    for idx, (func, ins, out, __uid) in enumerate(compiled.ops):
        value = func(*[values[s] for s in ins])
        flips = op_mask_bits.get(idx)
        if flips is not None:
            value = value ^ flips
        values[out] = value
    outs = np.empty((batch, len(compiled.po_slots)), dtype=np.uint8)
    for col, slot in enumerate(compiled.po_slots):
        outs[:, col] = values[slot]
    return outs


def unpack_op_masks(op_masks, batch):
    """Unpack ``{row: packed words}`` masks to ``{row: (batch,) uint8}``."""
    out = {}
    for row, mask in op_masks.items():
        out[row] = bitpack.unpack_bits(
            np.asarray(mask, dtype=np.uint64)[None, :], batch)[:, 0]
    return out


def count_mask_bits(op_masks, batch):
    """``(injected_faults, faulted_vectors)`` over valid (< batch) lanes.

    ``injected_faults`` sums flips across all masked gates;
    ``faulted_vectors`` counts vectors with at least one flip anywhere
    (popcount of the OR across masks). Tail bits beyond *batch* are
    masked off — mask generation is word-granular and does not know
    the batch size.
    """
    if not op_masks:
        return 0, 0
    valid = None
    injected = 0
    union = None
    for mask in op_masks.values():
        mask = np.asarray(mask, dtype=np.uint64)
        if valid is None:
            valid = np.full(mask.shape[0], bitpack.ALL_ONES, dtype=np.uint64)
            valid[-1] = bitpack.tail_mask(batch)
            union = np.zeros(mask.shape[0], dtype=np.uint64)
        live = mask & valid
        injected += int(bitpack.popcount(live).sum())
        union |= live
    return injected, int(bitpack.popcount(union).sum())
