"""Reproducible packed Bernoulli fault masks.

A fault mask is a ``(words,)`` uint64 array aligned with the 64-way
packed simulation words of :mod:`repro.sim.bitpack`: bit *i* of word
*w* set means "flip the gate output seen by vector ``w * 64 + i``".
Masks are sampled per gate with a fixed-point Bernoulli comparison so
that campaigns are bit-reproducible from ``(seed, gate uid)`` alone.

Seed-splitting scheme
---------------------
Each ``(gate, chunk)`` pair owns an independent counter-based RNG
stream::

    Generator(Philox(SeedSequence([campaign_seed, gate_uid, chunk])))

where ``chunk`` indexes :data:`CHUNK_WORDS`-word slices of the packed
vector stream. Three properties follow, and the determinism and
monotonicity guarantees of :mod:`repro.inject` rest on them:

* **Partition independence** — a stream is a pure function of
  ``(seed, uid, chunk)``, never of worker count, task order, or which
  process draws it. ``--jobs 1`` vs ``--jobs N`` and in-process vs
  served campaigns therefore produce bit-identical masks.
* **Prefix stability** — uniform bit-planes are drawn from the stream
  one at a time, most-significant first, always a full
  :data:`CHUNK_WORDS` words wide, so plane *i* is always the *i*-th
  draw and word *w* of it is always the same value regardless of how
  many planes a threshold needs or how many words a caller asks for.
  Two corners that share ``(seed, uid, chunk)`` see the same planes,
  and a shorter mask is an exact prefix of a longer one.
* **Monotone nesting** — a lane flips iff its 24-bit uniform ``U``
  (assembled from the planes) satisfies ``U < T`` for the gate's
  threshold ``T``. With shared planes, ``T1 <= T2`` implies the ``T1``
  mask is a subset of the ``T2`` mask, so injected-fault counts are
  exactly non-decreasing in flip probability — the lever behind the
  lifetime/clock monotonicity invariants of
  :func:`repro.verify.invariants.check_injection`.
"""

import math

import numpy as np

from ..sim import bitpack

#: Fixed-point resolution of flip probabilities: thresholds live in
#: ``[0, 2**PROB_BITS]`` and a lane flips when its PROB_BITS-bit
#: uniform is strictly below the threshold.
PROB_BITS = 24

#: Threshold value representing probability exactly 1.0.
PROB_ONE = 1 << PROB_BITS

#: Words per RNG chunk (8192 words = 524288 packed vectors). Chunking
#: keeps streams addressable without replaying a whole campaign's
#: worth of draws to reach a late slice.
CHUNK_WORDS = 8192


def flip_threshold(probability):
    """Quantize *probability* into a ``PROB_BITS``-bit threshold.

    Rounds up so any strictly positive probability keeps a non-zero
    chance of faulting; values at or beyond the ends clamp to the
    exact 0 / :data:`PROB_ONE` codes.
    """
    if probability <= 0.0:
        return 0
    if probability >= 1.0:
        return PROB_ONE
    return min(PROB_ONE, int(math.ceil(probability * PROB_ONE)))


def gate_stream(seed, gate_uid, chunk):
    """The Philox stream owned by ``(seed, gate_uid, chunk)``."""
    key = np.random.SeedSequence([int(seed), int(gate_uid), int(chunk)])
    return np.random.Generator(np.random.Philox(key))


def _chunk_mask(seed, gate_uid, chunk, threshold, n_words):
    """Bernoulli mask for one chunk via bitwise threshold comparison.

    Draws uniform 64-lane bit-planes MSB-first and accumulates, per
    lane, whether the assembled uniform is strictly below *threshold*:
    ``lt`` collects decided-below lanes, ``eq`` tracks lanes still
    matching the threshold prefix. Early exits never change the
    result — once the remaining threshold bits are all zero no
    undecided lane can still fall below, and once ``eq`` is empty no
    lane is undecided — they only skip draws, which is safe because
    planes are consumed strictly in order (prefix stability above).

    Planes are always drawn :data:`CHUNK_WORDS` wide and sliced, so a
    partial final chunk yields the same words as a full one would.
    """
    rng = gate_stream(seed, gate_uid, chunk)
    lt = np.zeros(n_words, dtype=np.uint64)
    eq = np.full(n_words, bitpack.ALL_ONES, dtype=np.uint64)
    for bit in range(PROB_BITS - 1, -1, -1):
        plane = rng.integers(0, 1 << 64, size=CHUNK_WORDS,
                             dtype=np.uint64)[:n_words]
        if (threshold >> bit) & 1:
            lt |= eq & ~plane
            eq &= plane
        else:
            eq &= ~plane
        if not threshold & ((1 << bit) - 1):
            break
        if not eq.any():
            break
    return lt


def bernoulli_words(seed, gate_uid, threshold, words):
    """Packed Bernoulli(``threshold / 2**PROB_BITS``) mask of *words* words."""
    out = np.zeros(int(words), dtype=np.uint64)
    if threshold <= 0:
        return out
    if threshold >= PROB_ONE:
        out[:] = bitpack.ALL_ONES
        return out
    for chunk, lo in enumerate(range(0, int(words), CHUNK_WORDS)):
        n_words = min(CHUNK_WORDS, int(words) - lo)
        out[lo:lo + n_words] = _chunk_mask(
            seed, gate_uid, chunk, int(threshold), n_words)
    return out
