"""Campaign runner: clock x lifetime x stress fault-injection grids.

A campaign quantifies the paper's baseline question — what happens to a
guardband-free circuit that keeps its fresh clock while aging, *without*
approximation — and puts the answer next to the two alternatives:

* **guardband-free + faults** — the error-rate ladder. Every grid
  point ``(scenario, clock scale)`` derives a faultload from batched
  STA arrivals (:mod:`repro.inject.faultload`), samples per-gate XOR
  masks (:mod:`repro.inject.masks`) and replays the stimulus through
  the packed injector (:mod:`repro.inject.inject_sim`).
* **guardband-free + aging-induced approximation** — the paper's
  answer: the deepest precision whose *aged* critical path still meets
  the same clock (found with cone-restricted incremental STA), with
  the deterministic quality cost of truncating those inputs.
* **guardbanded** — slow the clock to the aged critical path: zero
  faults, full precision, and the clock penalty that motivates the
  whole exercise.

Determinism
-----------
``run_campaign`` produces bit-identical :class:`CampaignResult` values
for the same spec + seed regardless of ``jobs``, worker pools, or the
in-process vs served path. Three mechanisms carry that guarantee:

1. Fault masks come from per-``(seed, gate uid, chunk)`` Philox
   streams (see :mod:`repro.inject.masks`) — independent of which
   process draws them.
2. Every grid point is computed by the same module-level worker
   (:func:`_inject_point`) on inputs re-derived deterministically from
   the spec; serial and pooled paths run the identical float
   operations in the identical order.
3. :func:`repro.core.parallel.map_tasks` returns results in task
   order, and task order is a pure function of the spec (scenario
   major, clock scale minor).
"""

import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..cells.library import default_library
from ..core.parallel import map_tasks
from ..core.specs import (SpecError, parse_component, parse_effort,
                          parse_scenario)
from ..obs import logs, metrics as obs_metrics, trace as obs_trace
from ..quality.metrics import (error_rate, max_abs_error, mean_abs_error,
                               psnr_db)
from ..sim.activity import operand_stream_bits
from ..sim.logic import bits_to_int, compile_netlist, evaluate_packed
from ..sim import bitpack
from ..sim.stimuli import STIMULUS_NAMES, make_stimulus
from ..sta.engine import (analyze_batch, analyze_incremental, compile_timing,
                          corner_label, truncated_input_nets)
from ..synth.synthesize import synthesize_netlist
from .faultload import DEFAULT_ACTIVITY, build_faultload
from .inject_sim import (check_alignment, count_mask_bits,
                         evaluate_packed_injected)

_log = logs.get_logger("inject.campaign")

#: Spec fields accepted by :meth:`CampaignSpec.from_dict`.
_SPEC_FIELDS = ("component", "scenarios", "clock_scales", "vectors", "seed",
                "stimulus", "activity", "effort", "width")


def component_spec(component):
    """The registry spelling of a component instance (inverse of
    :func:`repro.core.specs.parse_component`, width passed separately)."""
    from ..core.specs import component_registry
    for name, cls in component_registry().items():
        if type(component) is cls:
            return name
    raise SpecError("component %s has no registry spelling"
                    % getattr(component, "name", type(component).__name__))


@dataclass(frozen=True)
class CampaignSpec:
    """One reproducible campaign: everything a result depends on.

    ``scenarios`` are textual corner specs (``fresh``, ``worst10y``,
    ``balance1y``, ``10y_worst``); ``clock_scales`` multiply the fresh
    (guardband-free) critical path, so ``1.0`` is "keep the fresh
    clock" and ``0.9`` overclocks by 10%. The ladder covers the full
    scenario x scale grid.
    """

    component: str
    scenarios: Tuple[str, ...] = ("fresh", "worst10y")
    clock_scales: Tuple[float, ...] = (1.0,)
    vectors: int = 4096
    seed: int = 20170618
    stimulus: str = "normal"
    activity: float = DEFAULT_ACTIVITY
    effort: str = "high"
    width: Optional[int] = None

    def validated(self):
        """Parse/normalize every field; raises :class:`SpecError`."""
        parse_component(self.component, width=self.width)
        parse_effort(self.effort)
        labels = [corner_label(parse_scenario(s)) for s in self.scenarios]
        if not labels:
            raise SpecError("campaign needs at least one scenario")
        if len(set(labels)) != len(labels):
            raise SpecError("duplicate scenarios in %r" % (self.scenarios,))
        if not self.clock_scales:
            raise SpecError("campaign needs at least one clock scale")
        if any(not (0.0 < float(s) <= 4.0) for s in self.clock_scales):
            raise SpecError("clock scales must be in (0, 4], got %r"
                            % (self.clock_scales,))
        if int(self.vectors) < 1:
            raise SpecError("vectors must be >= 1, got %r" % (self.vectors,))
        if int(self.seed) < 0:
            raise SpecError("seed must be non-negative, got %r"
                            % (self.seed,))
        if not (0.0 < float(self.activity) <= 1.0):
            raise SpecError("activity must be in (0, 1], got %r"
                            % (self.activity,))
        if self.stimulus not in STIMULUS_NAMES:
            raise SpecError("unknown stimulus %r (choose from %s)"
                            % (self.stimulus, ", ".join(STIMULUS_NAMES)))
        return self

    def to_dict(self):
        """JSON-serializable form (see :meth:`from_dict`)."""
        return {
            "component": self.component,
            "scenarios": list(self.scenarios),
            "clock_scales": [float(s) for s in self.clock_scales],
            "vectors": int(self.vectors),
            "seed": int(self.seed),
            "stimulus": self.stimulus,
            "activity": float(self.activity),
            "effort": self.effort,
            "width": self.width,
        }

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`; unknown fields are an error."""
        if not isinstance(data, dict):
            raise SpecError("campaign spec must be an object, got %r"
                            % type(data).__name__)
        unknown = sorted(set(data) - set(_SPEC_FIELDS))
        if unknown:
            raise SpecError("unknown campaign spec fields: %s"
                            % ", ".join(unknown))
        if "component" not in data:
            raise SpecError("campaign spec needs a component")
        kwargs = dict(data)
        if "scenarios" in kwargs:
            kwargs["scenarios"] = tuple(str(s) for s in kwargs["scenarios"])
        if "clock_scales" in kwargs:
            kwargs["clock_scales"] = tuple(
                float(s) for s in kwargs["clock_scales"])
        for key in ("vectors", "seed"):
            if key in kwargs:
                kwargs[key] = int(kwargs[key])
        if kwargs.get("width") is not None:
            kwargs["width"] = int(kwargs["width"])
        return cls(**kwargs).validated()

    def key(self):
        """Stable fingerprint for per-process prelude memoization."""
        return (self.component, tuple(self.scenarios),
                tuple(float(s) for s in self.clock_scales),
                int(self.vectors), int(self.seed), self.stimulus,
                float(self.activity), self.effort, self.width)


@dataclass
class CampaignResult:
    """Ladder + comparison arms of one campaign.

    Everything here is deterministic given the spec (no wall-clock
    fields), so equality of ``to_dict()`` outputs *is* the
    reproducibility check the determinism tests perform.
    """

    spec: CampaignSpec
    component: str
    gates: int
    vectors: int
    fresh_clock_ps: float
    labels: Tuple[str, ...]
    rows: list = field(default_factory=list)
    approximation: list = field(default_factory=list)
    guardbanded: list = field(default_factory=list)

    def to_dict(self):
        return {
            "schema": "repro.inject/1",
            "spec": self.spec.to_dict(),
            "component": self.component,
            "gates": int(self.gates),
            "vectors": int(self.vectors),
            "fresh_clock_ps": float(self.fresh_clock_ps),
            "labels": list(self.labels),
            "rows": self.rows,
            "approximation": self.approximation,
            "guardbanded": self.guardbanded,
        }


# ---------------------------------------------------------------------------
# per-process prelude (synthesis + STA + clean reference outputs)
# ---------------------------------------------------------------------------

@dataclass
class _Prelude:
    component: object
    netlist: object
    compiled: object
    program: object
    corners: tuple
    labels: tuple
    batch: object
    fresh_clock_ps: float
    pi_bits: np.ndarray
    words: int
    clean_ints: np.ndarray
    peak: float
    library: object


_PRELUDE_MEMO = {}
_PRELUDE_MEMO_LIMIT = 4


def _campaign_corners(spec):
    """Corner grid: fresh first (it defines the guardband-free clock),
    then the spec's aged scenarios in order, deduplicated by label."""
    corners = [parse_scenario("fresh")]
    labels = ["fresh"]
    for text in spec.scenarios:
        scenario = parse_scenario(text)
        label = corner_label(scenario)
        if label not in labels:
            corners.append(scenario)
            labels.append(label)
    return tuple(corners), tuple(labels)


def _stimulus_operands(spec, component):
    widths = component.operand_widths
    if len(widths) == 2 and widths[0] == widths[1]:
        a, b = make_stimulus(spec.stimulus, widths[0], spec.vectors,
                             seed=spec.seed)
        return [a, b]
    if spec.stimulus in ("normal", "uniform"):
        rng = np.random.default_rng(spec.seed)
        return list(component.random_operands(
            spec.vectors, rng=rng, distribution=spec.stimulus))
    raise SpecError(
        "stimulus %r needs two equal-width operands; %s has widths %s "
        "(use normal or uniform)"
        % (spec.stimulus, component.name, list(widths)))


def _build_prelude(spec, library):
    component = parse_component(spec.component, width=spec.width)
    lib = library if library is not None else default_library()
    netlist = synthesize_netlist(component, lib, effort=spec.effort)
    compiled = compile_netlist(netlist, lib)
    program = compile_timing(netlist, lib)
    check_alignment(compiled, program)
    corners, labels = _campaign_corners(spec)
    batch = analyze_batch(netlist, lib, corners, program=program)
    fresh_clock = float(batch.critical_path_ps[0])
    operands = _stimulus_operands(spec, component)
    pi_bits = operand_stream_bits(operands, component.operand_widths)
    words = bitpack.word_count(spec.vectors)
    clean_bits = evaluate_packed(compiled, pi_bits)
    clean_ints = bits_to_int(clean_bits, signed=True)
    peak = float(2 ** (component.output_width - 1))
    return _Prelude(component=component, netlist=netlist, compiled=compiled,
                    program=program, corners=corners, labels=labels,
                    batch=batch, fresh_clock_ps=fresh_clock, pi_bits=pi_bits,
                    words=words, clean_ints=clean_ints, peak=peak,
                    library=lib)


def _prelude(spec, library=None):
    """Per-process memoized campaign prelude.

    Keyed by the spec fingerprint plus the library's identity: with the
    default library the memo is effective across tasks of a campaign
    (and across campaigns over the same spec); an explicit library
    instance keys by ``id`` so tests with custom libraries stay
    correct.
    """
    key = (spec.key(), "default" if library is None else id(library))
    prelude = _PRELUDE_MEMO.get(key)
    if prelude is None:
        if len(_PRELUDE_MEMO) >= _PRELUDE_MEMO_LIMIT:
            _PRELUDE_MEMO.pop(next(iter(_PRELUDE_MEMO)))
        prelude = _build_prelude(spec, library)
        _PRELUDE_MEMO[key] = prelude
    return prelude


# ---------------------------------------------------------------------------
# grid-point worker
# ---------------------------------------------------------------------------

def _quality_row(clean_ints, observed_ints, peak):
    return {
        "word_error_rate": float(error_rate(clean_ints, observed_ints)),
        "mean_abs_error": float(mean_abs_error(clean_ints, observed_ints)),
        "max_abs_error": float(max_abs_error(clean_ints, observed_ints)),
        "psnr_db": float(psnr_db(clean_ints, observed_ints, peak=peak)),
    }


def _point_row(spec, prelude, scenario_label, clock_scale):
    """One ladder row: faultload -> masks -> injected replay -> metrics."""
    clock_ps = prelude.fresh_clock_ps * float(clock_scale)
    corner = prelude.labels.index(scenario_label)
    scenario = prelude.corners[corner]
    faultload = build_faultload(prelude.program, prelude.batch,
                                scenario_label, clock_ps,
                                activity=spec.activity)
    started = time.perf_counter()
    masks = faultload.masks(spec.seed, prelude.words)
    injected, faulted = count_mask_bits(masks, spec.vectors)
    if masks:
        bits = evaluate_packed_injected(prelude.compiled, prelude.pi_bits,
                                        masks)
        observed = bits_to_int(bits, signed=True)
    else:
        observed = prelude.clean_ints
    elapsed = time.perf_counter() - started
    if elapsed > 0.0:
        obs_metrics.set_gauge(obs_metrics.INJECT_VECTORS_PER_SEC,
                              spec.vectors / elapsed)
    obs_metrics.inc(obs_metrics.INJECT_VECTORS, spec.vectors)
    obs_metrics.inc(obs_metrics.INJECT_FAULTS, injected)
    obs_metrics.inc(obs_metrics.INJECT_FAULTED_VECTORS, faulted)
    obs_metrics.observe(obs_metrics.INJECT_VIOLATING_FRACTION,
                        faultload.violating_fraction,
                        boundaries=obs_metrics.FRACTION_BOUNDARIES)
    row = {
        "scenario": scenario_label,
        "years": float(scenario.years),
        "clock_scale": float(clock_scale),
        "clock_ps": clock_ps,
        "aged_cp_ps": float(prelude.batch.critical_path_ps[corner]),
        "violating_gates": faultload.n_violating,
        "total_gates": faultload.n_gates,
        "violating_fraction": faultload.violating_fraction,
        "mean_flip_probability": faultload.mean_flip_probability,
        "injected_faults": int(injected),
        "faults_per_vector": injected / spec.vectors,
        "faulted_vectors": int(faulted),
        "faulted_vector_rate": faulted / spec.vectors,
    }
    row.update(_quality_row(prelude.clean_ints, observed, prelude.peak))
    return row


def _inject_point(task):
    """Module-level grid-point worker (shared by every execution path).

    Returns the ladder row plus, when run inside a pool worker, the
    spans and metrics it produced (``map_tasks`` workers run in their
    own processes; the parent adopts/merges what comes back).
    """
    spec = CampaignSpec.from_dict(task["spec"])
    with obs_trace.capture() as tracer, obs_metrics.scoped() as registry:
        with obs_trace.propagated(task.get("trace")), obs_trace.span(
                "inject.point", scenario=task["scenario"],
                clock_scale=task["clock_scale"]):
            prelude = _prelude(spec, library=task.get("library"))
            row = _point_row(spec, prelude, task["scenario"],
                             task["clock_scale"])
    return {"row": row, "trace": tracer.to_dicts(),
            "obs_metrics": registry.snapshot()}


# ---------------------------------------------------------------------------
# comparison arms
# ---------------------------------------------------------------------------

def _approximation_cp(prelude, precision):
    """Aged CPs (all corners) of the component truncated to *precision*."""
    tied = truncated_input_nets(prelude.component, prelude.netlist, precision)
    if not tied:
        return prelude.batch.critical_paths_ps
    report = analyze_incremental(prelude.netlist, prelude.library, tied,
                                 baseline=prelude.batch,
                                 program=prelude.program)
    return report.critical_paths_ps


def _truncated_ints(prelude, precision):
    """Packed replay of the *precision*-truncated circuit.

    Zeroing the tied PI columns is functionally identical to the
    :func:`repro.sta.engine.tie_low` netlist transform (the gates only
    ever see constant 0 on those nets), so the full-precision compiled
    netlist can be reused.
    """
    tied = set(truncated_input_nets(prelude.component, prelude.netlist,
                                    precision))
    if not tied:
        return prelude.clean_ints
    pi_bits = prelude.pi_bits.copy()
    for col, net in enumerate(prelude.netlist.primary_inputs):
        if net in tied:
            pi_bits[:, col] = 0
    bits = evaluate_packed(prelude.compiled, pi_bits)
    return bits_to_int(bits, signed=True)


def _arms(spec, prelude):
    """The two alternatives next to the fault ladder (see module doc)."""
    width = prelude.component.width
    cp_by_precision = {}
    approximation = []
    truncated_cache = {}
    for label, scenario in zip(prelude.labels, prelude.corners):
        if label == "fresh":
            continue
        corner = prelude.labels.index(label)
        for scale in spec.clock_scales:
            clock_ps = prelude.fresh_clock_ps * float(scale)
            chosen = None
            for precision in range(width, 0, -1):
                if precision not in cp_by_precision:
                    cp_by_precision[precision] = _approximation_cp(
                        prelude, precision)
                if cp_by_precision[precision][corner] <= clock_ps:
                    chosen = precision
                    break
            entry = {
                "scenario": label,
                "years": float(scenario.years),
                "clock_scale": float(scale),
                "clock_ps": clock_ps,
                "feasible": chosen is not None,
                "precision": chosen,
                "dropped_bits": None if chosen is None else width - chosen,
            }
            if chosen is not None:
                entry["aged_cp_ps"] = float(cp_by_precision[chosen][corner])
                if chosen not in truncated_cache:
                    truncated_cache[chosen] = _truncated_ints(prelude, chosen)
                entry.update(_quality_row(prelude.clean_ints,
                                          truncated_cache[chosen],
                                          prelude.peak))
            approximation.append(entry)
    guardbanded = []
    for label, scenario in zip(prelude.labels, prelude.corners):
        if label == "fresh":
            continue
        corner = prelude.labels.index(label)
        aged_cp = float(prelude.batch.critical_path_ps[corner])
        faultload = build_faultload(prelude.program, prelude.batch, label,
                                    aged_cp, activity=spec.activity)
        guardbanded.append({
            "scenario": label,
            "years": float(scenario.years),
            "clock_ps": aged_cp,
            "clock_penalty_pct":
                100.0 * (aged_cp / prelude.fresh_clock_ps - 1.0),
            "violating_gates": faultload.n_violating,
            "injected_faults": 0,
            "word_error_rate": 0.0,
        })
    return approximation, guardbanded


# ---------------------------------------------------------------------------
# campaign drivers
# ---------------------------------------------------------------------------

def make_point_tasks(spec, library=None):
    """The campaign's task list (scenario major, clock scale minor)."""
    ctx = obs_trace.propagation_context()
    ladder_labels = [corner_label(parse_scenario(s)) for s in spec.scenarios]
    tasks = []
    for label in ladder_labels:
        for scale in spec.clock_scales:
            tasks.append({"spec": spec.to_dict(), "scenario": label,
                          "clock_scale": float(scale), "trace": ctx,
                          "library": library})
    return tasks


def run_campaign(spec, library=None, jobs=None, pool=None):
    """Run one campaign; same spec + seed -> bit-identical result.

    *jobs*/*pool* follow :func:`repro.core.parallel.map_tasks`
    semantics; results do not depend on either (see module doc).
    """
    spec.validated()
    with obs_trace.span("inject.campaign", component=spec.component,
                        scenarios=len(spec.scenarios),
                        clock_scales=len(spec.clock_scales),
                        vectors=spec.vectors):
        started = time.perf_counter()
        tasks = make_point_tasks(spec, library=library)
        outcomes = map_tasks(_inject_point, tasks, jobs=jobs, pool=pool)
        rows = []
        for outcome in outcomes:
            obs_trace.adopt(outcome["trace"])
            obs_metrics.registry().merge(outcome["obs_metrics"])
            rows.append(outcome["row"])
        prelude = _prelude(spec, library=library)
        with obs_trace.span("inject.arms", component=spec.component):
            approximation, guardbanded = _arms(spec, prelude)
        obs_metrics.inc(obs_metrics.INJECT_CAMPAIGNS)
        obs_metrics.inc(obs_metrics.INJECT_POINTS, len(rows))
        _log.info(
            "campaign %s: %d points x %d vectors in %.2fs",
            spec.component, len(rows), spec.vectors,
            time.perf_counter() - started)
        return CampaignResult(
            spec=spec, component=prelude.component.name,
            gates=prelude.program.n_gates, vectors=int(spec.vectors),
            fresh_clock_ps=prelude.fresh_clock_ps, labels=prelude.labels,
            rows=rows, approximation=approximation, guardbanded=guardbanded)


def _inject_campaign(task):
    """Module-level whole-campaign worker for the served path.

    Mirrors :func:`repro.core.characterize._characterize_point`'s
    shipping contract: runs under its own tracer/registry and returns
    them alongside the result for the event loop to adopt/merge.
    """
    with obs_trace.capture() as tracer, obs_metrics.scoped() as registry:
        with obs_trace.propagated(task.get("trace")):
            spec = CampaignSpec.from_dict(task["spec"])
            result = run_campaign(spec, jobs=1)
    return {"campaign": result.to_dict(), "trace": tracer.to_dicts(),
            "obs_metrics": registry.snapshot()}
