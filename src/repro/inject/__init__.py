"""Statistical timing-fault injection campaigns.

Quantifies the paper's baseline: what a guardband-free aged circuit
suffers *without* aging-induced approximation. See
:mod:`repro.inject.campaign` for the experiment design and
:mod:`repro.inject.masks` for the reproducibility scheme.
"""

from .campaign import (CampaignResult, CampaignSpec, run_campaign,
                       make_point_tasks)
from .crosscheck import (CrosscheckReport, Disagreement,
                         crosscheck_violations, minimize_disagreement)
from .faultload import DEFAULT_ACTIVITY, Faultload, build_faultload
from .inject_sim import (check_alignment, count_mask_bits,
                         evaluate_bytes_injected, evaluate_packed_injected,
                         unpack_op_masks)
from .masks import (CHUNK_WORDS, PROB_BITS, PROB_ONE, bernoulli_words,
                    flip_threshold, gate_stream)

__all__ = [
    "CampaignResult", "CampaignSpec", "run_campaign", "make_point_tasks",
    "CrosscheckReport", "Disagreement", "crosscheck_violations",
    "minimize_disagreement",
    "DEFAULT_ACTIVITY", "Faultload", "build_faultload",
    "check_alignment", "count_mask_bits", "evaluate_bytes_injected",
    "evaluate_packed_injected", "unpack_op_masks",
    "CHUNK_WORDS", "PROB_BITS", "PROB_ONE", "bernoulli_words",
    "flip_threshold", "gate_stream",
]
