"""The paper's contribution: characterization, approximation library and
the microarchitecture-level guardband-removal flow."""

from .scenarios import (AgingScenario, FRESH, ONE_YEAR_BALANCE,
                        ONE_YEAR_WORST, TEN_YEARS_BALANCE, TEN_YEARS_WORST,
                        actual_case, balance_case, fresh, worst_case)
from .characterize import (ActualCaseSpec, ComponentCharacterization,
                           characterize, component_key)
from .library import AgingApproximationLibrary
from .microarch import (ApproximationOutcome, Block, BlockDecision,
                        BlockTiming, Microarchitecture,
                        apply_aging_approximations)
from .flow import (BaselineComparison, GuardbandRemovalReport,
                   compare_with_baseline, design_delay_ps,
                   microarchitecture_power, remove_guardband)
from .adaptive import PrecisionSchedule, plan_graceful_degradation
from .sensitivity import SensitivityReport, precision_sensitivity
from . import instrument
from .cache import (CharacterizationCache, CacheStats, cache_enabled,
                    get_cache, set_cache, synthesize_netlist_memoized)
from .parallel import WorkerPool, resolve_jobs

__all__ = [
    "AgingScenario", "FRESH", "ONE_YEAR_BALANCE", "ONE_YEAR_WORST",
    "TEN_YEARS_BALANCE", "TEN_YEARS_WORST", "actual_case", "balance_case",
    "fresh", "worst_case",
    "ActualCaseSpec", "ComponentCharacterization", "characterize",
    "component_key",
    "AgingApproximationLibrary",
    "ApproximationOutcome", "Block", "BlockDecision", "BlockTiming",
    "Microarchitecture", "apply_aging_approximations",
    "BaselineComparison", "GuardbandRemovalReport", "compare_with_baseline",
    "design_delay_ps", "microarchitecture_power", "remove_guardband",
    "PrecisionSchedule", "plan_graceful_degradation",
    "SensitivityReport", "precision_sensitivity",
    "CharacterizationCache", "CacheStats", "cache_enabled", "get_cache",
    "set_cache", "synthesize_netlist_memoized", "WorkerPool",
    "resolve_jobs", "instrument",
]
