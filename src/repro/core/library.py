"""The library of aging-induced approximations (Fig. 3(a)).

Characterizations are performed offline, once per component family, and
collected here. The microarchitecture flow then answers "how much
precision must block X give up to survive scenario Y?" with plain table
lookups — the paper's key claim of quantifying aging-induced
approximations *without further gate-level simulations*.

The library serializes to JSON so a characterization run can be shipped
with a design, exactly like the released degradation-aware cell library
the paper builds on.
"""

import json

from .characterize import ComponentCharacterization, component_key


class AgingApproximationLibrary:
    """Keyed store of :class:`ComponentCharacterization` entries."""

    def __init__(self, entries=()):
        self._entries = {}
        for entry in entries:
            self.add(entry)

    def add(self, entry):
        """Insert or replace a characterization."""
        self._entries[entry.key] = entry
        return entry

    def get(self, component_or_key):
        """Look up by component instance or key; None when missing."""
        key = (component_or_key if isinstance(component_or_key, str)
               else component_key(component_or_key))
        return self._entries.get(key)

    def __contains__(self, component_or_key):
        return self.get(component_or_key) is not None

    def __len__(self):
        return len(self._entries)

    def keys(self):
        return sorted(self._entries)

    def entries(self):
        return [self._entries[k] for k in self.keys()]

    def required_precision(self, component_or_key, scenario_label,
                           target_ps=None):
        """Eq. 2 lookup: largest precision meeting the timing target."""
        entry = self.get(component_or_key)
        if entry is None:
            raise KeyError("component %r not characterized"
                           % (component_or_key,))
        return entry.required_precision(scenario_label, target_ps=target_ps)

    # -- persistence -------------------------------------------------------
    def to_json(self, indent=2):
        return json.dumps({"entries": [e.to_dict()
                                       for e in self.entries()]},
                          indent=indent)

    @classmethod
    def from_json(cls, text):
        data = json.loads(text)
        return cls(ComponentCharacterization.from_dict(d)
                   for d in data["entries"])

    def save(self, path):
        """Write the library to a JSON file."""
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path):
        """Read a library previously written by :meth:`save`."""
        with open(path) as handle:
            return cls.from_json(handle.read())
