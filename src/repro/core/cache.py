"""Content-addressed on-disk cache for characterization results.

Characterizing one ``(component, precision)`` point means a full
synthesis run plus one aging-aware STA per scenario — seconds of work
that is bit-identical every time because the whole flow is
deterministic. This module keys each point by a **stable fingerprint**
of everything the result depends on:

* the component spec (class, family, width, precision),
* the synthesis effort,
* the cell-library contents (every cell's electrical parameters, plus
  the library-level load/voltage settings),
* the BTI model parameters and the optional degradation-aware library,
* the aging-scenario parameters (lifetime, stress annotation — for
  actual-case specs, a digest of the stimulus operand streams).

Entries store the :class:`~repro.synth.synthesize.SynthesisResult`
headline metrics and the per-scenario aged delays as JSON — *not* the
netlist — so a warm cache answers a repeated ``characterize()`` without
synthesizing anything. Changing any fingerprinted input (a cell's
drive resistance, the BTI prefactor, the effort knob ...) changes the
key and transparently invalidates the entry. Corrupted or truncated
entry files are treated as misses and discarded.

An **ambient cache** (configured with :func:`set_cache`, the
``REPRO_CACHE_DIR`` environment variable, or the CLI ``--cache-dir``
flag) is picked up by :func:`~repro.core.characterize.characterize`
and everything built on it, so deep flows hit the cache without
plumbing a handle through every call.

A second, in-process layer — :func:`synthesize_netlist_memoized` —
memoizes synthesized *netlists* by the same content fingerprints for
consumers that need the gate-level structure itself (e.g.
``Block.synthesized``), where a metrics-only disk entry cannot help.
"""

import collections
import dataclasses
import hashlib
import json
import os
from contextlib import contextmanager

import numpy as np

from ..obs import logs, metrics as obs_metrics
from . import instrument

_log = logs.get_logger("core.cache")

#: Bump when the entry layout changes; old entries become misses.
CACHE_SCHEMA = 1

#: Environment variable naming the ambient cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable capping the in-memory read-through tier.
MEM_ENTRIES_ENV = "REPRO_CACHE_MEM_ENTRIES"

#: Default in-memory tier capacity (entries are ~1-2 KiB of parsed JSON,
#: so the default tier tops out around half a megabyte).
DEFAULT_MEM_ENTRIES = 256


def resolve_mem_entries(mem_entries=None):
    """Normalize a memory-tier capacity; None defers to the env var."""
    if mem_entries is None:
        raw = os.environ.get(MEM_ENTRIES_ENV, "").strip()
        if not raw:
            return DEFAULT_MEM_ENTRIES
        try:
            mem_entries = int(raw)
        except ValueError:
            raise ValueError("%s must be an integer, got %r"
                             % (MEM_ENTRIES_ENV, raw))
    mem_entries = int(mem_entries)
    if mem_entries < 0:
        raise ValueError("mem_entries must be >= 0, got %d" % mem_entries)
    return mem_entries


def shard_index(key, shards):
    """Deterministic shard of *key* (a hex digest) among *shards* dirs."""
    return int(key[:8], 16) % shards


# ---------------------------------------------------------------------------
# fingerprinting
# ---------------------------------------------------------------------------

def _canonical(obj):
    """Reduce *obj* to a canonical JSON-serializable structure."""
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items(),
                                                         key=lambda i: str(i[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        return {"__ndarray__": hashlib.sha256(arr.tobytes()).hexdigest(),
                "dtype": str(arr.dtype), "shape": list(arr.shape)}
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError("cannot fingerprint %r of type %s" % (obj, type(obj)))


def fingerprint(payload):
    """SHA-256 hex digest of the canonical JSON form of *payload*."""
    text = json.dumps(_canonical(payload), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def library_fingerprint(library):
    """Content fingerprint of a cell library.

    Covers every cell's electrical parameters and the library-level
    load/voltage settings; cached on the library instance (libraries are
    built once and never mutated in this codebase).
    """
    cached = library.__dict__.get("_content_fingerprint")
    if cached is not None:
        return cached
    cells = []
    for cell in sorted(library, key=lambda c: c.name):
        cells.append({
            "name": cell.name, "kind": cell.kind, "drive": cell.drive,
            "n_inputs": cell.n_inputs, "area": cell.area,
            "leakage_nw": cell.leakage_nw,
            "input_cap_ff": cell.input_cap_ff,
            "intrinsic_ps": cell.intrinsic_ps, "drive_res": cell.drive_res,
            "wp": cell.wp, "wn": cell.wn,
        })
    fp = fingerprint({
        "name": library.name,
        "output_load_ff": library.output_load_ff,
        "wire_cap_ff": library.wire_cap_ff,
        "vdd": library.vdd, "vth": library.vth,
        "cells": cells,
    })
    library.__dict__["_content_fingerprint"] = fp
    return fp


def bti_fingerprint(bti):
    """Fingerprint of a :class:`~repro.aging.bti.BTIModel`."""
    return fingerprint(dataclasses.asdict(bti))


def degradation_fingerprint(degradation):
    """Fingerprint of an optional degradation-aware library."""
    if degradation is None:
        return "none"
    return fingerprint({
        "lifetimes": list(degradation.lifetimes),
        "bti": bti_fingerprint(degradation.bti),
        "library": library_fingerprint(degradation.library),
    })


def netlist_fingerprint(netlist):
    """Content fingerprint of a gate-level netlist.

    Covers the design name, the primary input/output net lists and every
    gate's ``(uid, cell, inputs, output)`` in gate-list order. Net
    *names* are display metadata and excluded, so two structurally
    identical netlists fingerprint equal however they were produced —
    the identity :mod:`repro.verify` checks between scratch synthesis
    and :mod:`repro.synth.sweep` derivation.
    """
    return fingerprint({
        "name": netlist.name,
        "inputs": list(netlist.primary_inputs),
        "outputs": list(netlist.primary_outputs),
        "gates": [[g.uid, g.cell, list(g.inputs), g.output]
                  for g in netlist.gates],
    })


def component_fingerprint(component, precision=None):
    """Fingerprint of a component spec at *precision* (default: its own)."""
    return fingerprint({
        "class": "%s.%s" % (type(component).__module__,
                            type(component).__qualname__),
        "family": component.family,
        "width": component.width,
        "precision": component.precision if precision is None else precision,
    })


def scenario_fingerprint(spec):
    """Fingerprint of a scenario / actual-case spec's *parameters*.

    Combined with the point key (which pins the component variant), this
    uniquely determines one aged delay: an
    :class:`~repro.core.characterize.ActualCaseSpec` is fingerprinted by
    its stimulus operand streams, and the stress extracted from them on
    a fixed variant is deterministic.
    """
    # Import here: characterize imports this module at its own top level.
    from .characterize import ActualCaseSpec
    from ..aging.stress import ActualStress, UniformStress

    if isinstance(spec, ActualCaseSpec):
        return fingerprint({
            "kind": "actual_case", "years": spec.years, "label": spec.label,
            "operands": [np.asarray(op) for op in spec.operands],
        })
    stress = spec.stress
    if isinstance(stress, UniformStress):
        return fingerprint({"kind": "uniform", "years": spec.years,
                            "s": stress.s, "label": stress.label})
    if isinstance(stress, ActualStress):
        per_gate = sorted((int(uid), list(sn)) for uid, sn
                          in stress.per_gate.items())
        return fingerprint({"kind": "actual", "years": spec.years,
                            "label": stress.label,
                            "default": list(stress.default),
                            "per_gate": per_gate})
    raise TypeError("cannot fingerprint scenario %r" % (spec,))


def point_key(component, precision, effort, library, bti, degradation):
    """Cache key of one ``(component, precision)`` characterization point."""
    return fingerprint({
        "schema": CACHE_SCHEMA,
        "component": component_fingerprint(component, precision),
        "effort": effort,
        "library": library_fingerprint(library),
        "bti": bti_fingerprint(bti),
        "degradation": degradation_fingerprint(degradation),
    })


# ---------------------------------------------------------------------------
# the on-disk store
# ---------------------------------------------------------------------------

#: Metric fields every entry must carry to count as a hit.
METRIC_FIELDS = ("delay_ps", "area_um2", "leakage_nw", "gates", "depth")


@dataclasses.dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`CharacterizationCache`.

    ``hits`` counts every successful load; ``mem_hits`` is the subset
    answered by the in-memory tier without touching disk.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0
    mem_hits: int = 0
    mem_evictions: int = 0

    def merge(self, other):
        """Fold another stats record (or its dict form) into this one."""
        if isinstance(other, dict):
            other = CacheStats(**other)
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.errors += other.errors
        self.mem_hits += other.mem_hits
        self.mem_evictions += other.mem_evictions
        return self

    def as_dict(self):
        return dataclasses.asdict(self)


class CharacterizationCache:
    """Content-addressed multi-tier JSON store of characterization points.

    Layout: ``<root>/<key[:2]>/<key>.json`` — one file per point, whose
    ``metrics`` dict holds the synthesis headline numbers and whose
    ``aged`` dict maps scenario fingerprints to ``{"label", "delay_ps"}``
    records. With ``shards=N`` the layout gains a shard level
    (``<root>/shard-<i>/<key[:2]>/...``, *i* derived from the key
    digest) so heavy concurrent writers — the serving layer's worker
    pool — spread across N directories instead of contending on one
    tree. Writes are atomic (temp file + ``os.replace``) so a crashed
    or concurrent run never leaves a torn entry; unreadable entries are
    quarantined (renamed aside to ``*.corrupt``) and treated as misses.

    A bounded in-memory LRU tier (``mem_entries``, default from
    ``REPRO_CACHE_MEM_ENTRIES`` else :data:`DEFAULT_MEM_ENTRIES`;
    0 disables it) sits in front of the disk tier: repeated warm loads
    skip the read-and-parse entirely. Loaded entries are shared between
    the tier and callers — treat them as read-only.
    """

    def __init__(self, root, shards=0, mem_entries=None):
        self.root = os.fspath(root)
        self.shards = int(shards)
        if self.shards < 0:
            raise ValueError("shards must be >= 0, got %d" % self.shards)
        self.mem_entries = resolve_mem_entries(mem_entries)
        self.stats = CacheStats()
        self._mem = collections.OrderedDict()
        self._suppress_metrics = False

    def _path(self, key):
        parts = [self.root]
        if self.shards:
            parts.append("shard-%02d" % shard_index(key, self.shards))
        parts.extend((key[:2], key + ".json"))
        return os.path.join(*parts)

    def _emit(self, name, n=1):
        """Emit to the ambient metrics registry (unless peeking)."""
        if not self._suppress_metrics:
            obs_metrics.inc(name, n)

    # -- in-memory tier ----------------------------------------------------
    def _mem_get(self, key):
        entry = self._mem.get(key)
        if entry is not None:
            self._mem.move_to_end(key)
        return entry

    def _mem_put(self, key, entry):
        if self.mem_entries <= 0:
            return
        self._mem[key] = entry
        self._mem.move_to_end(key)
        while len(self._mem) > self.mem_entries:
            self._mem.popitem(last=False)
            self.stats.mem_evictions += 1
            self._emit(obs_metrics.CACHE_MEM_EVICTIONS)

    def _mem_drop(self, key):
        self._mem.pop(key, None)

    def load(self, key):
        """Return the entry stored under *key*, or None (recording a miss)."""
        entry, __source = self.load_with_source(key)
        return entry

    def load_with_source(self, key, require=None):
        """Like :meth:`load` but also says which tier answered.

        Returns ``(entry, "mem"|"disk")`` on a hit, ``(None, None)`` on
        a miss. The serving layer uses the source to report tier hit
        ratios.

        *require* is an optional iterable of scenario fingerprints: a
        memory-tier entry missing any of them is treated as stale and
        re-read from disk, because out-of-process writers (the serving
        pool, concurrent CLI runs) extend entries the in-memory copy
        never sees. Without the fall-through, a repeat query for a
        newly stored scenario would recompute forever behind a stale
        memory hit.
        """
        entry = self._mem_get(key)
        if entry is not None:
            required = list(require or ())
            if all(fp in entry["aged"] for fp in required):
                self.stats.hits += 1
                self.stats.mem_hits += 1
                self._emit(obs_metrics.CACHE_HITS)
                self._emit(obs_metrics.CACHE_MEM_HITS)
                return entry, "mem"
        entry = self._load_disk(key)
        if entry is None:
            return None, None
        self._mem_put(key, entry)
        return entry, "disk"

    def refresh(self, key):
        """Re-read *key* from disk into the memory tier, quietly.

        Used after an out-of-process store (a serving-pool worker wrote
        the entry) to make the new scenarios visible to the memory tier
        without waiting for it to age out. No hit/miss accounting: this
        is tier maintenance, not a query. Returns the entry or None.
        """
        entry = self.peek(key)
        if entry is None:
            self._mem_drop(key)
        else:
            self._mem_put(key, entry)
        return entry

    def _load_disk(self, key):
        """Disk-tier load: the entry under *key*, or None (a miss).

        A corrupted entry (bad JSON, wrong schema, missing fields) is
        quarantined — renamed aside to ``<entry>.corrupt`` — so repeated
        loads don't re-parse a known-bad file and the follow-up store
        starts clean, while the bytes survive for post-mortems.
        """
        path = self._path(key)
        try:
            with open(path) as handle:
                text = handle.read()
            entry = json.loads(text)
            if (entry.get("schema") != CACHE_SCHEMA
                    or not isinstance(entry.get("metrics"), dict)
                    or not isinstance(entry.get("aged"), dict)
                    or any(f not in entry["metrics"]
                           for f in METRIC_FIELDS)):
                raise ValueError("malformed cache entry")
        except FileNotFoundError:
            self.stats.misses += 1
            self._emit(obs_metrics.CACHE_MISSES)
            return None
        except (OSError, ValueError) as exc:
            self.stats.errors += 1
            self.stats.misses += 1
            self._emit(obs_metrics.CACHE_ERRORS)
            self._emit(obs_metrics.CACHE_MISSES)
            _log.warning("quarantining corrupt cache entry %s (%s)",
                         path, exc)
            try:
                os.replace(path, path + ".corrupt")
            except OSError:
                pass
            return None
        self.stats.hits += 1
        self._emit(obs_metrics.CACHE_HITS)
        self._emit(obs_metrics.CACHE_BYTES_READ, len(text))
        _log.debug("cache hit %s (%d bytes)", key[:12], len(text))
        return entry

    def peek(self, key):
        """Disk-tier :meth:`load` without touching the hit/miss counters.

        Bypasses the memory tier: :meth:`store` merges over *peek*'s
        result, and the merge base must be the on-disk truth so a
        concurrent writer's scenarios are never clobbered by a stale
        in-memory copy.
        """
        stats = dataclasses.replace(self.stats)
        self._suppress_metrics = True
        try:
            entry = self._load_disk(key)
        finally:
            self._suppress_metrics = False
        self.stats = stats
        return entry

    def store(self, key, metrics, aged, meta=None):
        """Write (or extend) the entry under *key* atomically.

        Parameters
        ----------
        metrics:
            Dict with at least :data:`METRIC_FIELDS`.
        aged:
            Map scenario fingerprint -> ``{"label", "delay_ps"}``; merged
            over whatever the existing entry already holds.
        meta:
            Optional human-readable context (component name, precision,
            effort) stored alongside for debuggability.
        """
        entry = self.peek(key)
        if entry is None:
            entry = {"schema": CACHE_SCHEMA, "metrics": dict(metrics),
                     "aged": {}, "meta": dict(meta or {})}
        else:
            entry["metrics"] = dict(metrics)
            if meta:
                entry.setdefault("meta", {}).update(meta)
        entry["aged"].update(aged)
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp.%d" % os.getpid()
        text = json.dumps(entry)
        with open(tmp, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
        self._mem_put(key, entry)
        self.stats.stores += 1
        self._emit(obs_metrics.CACHE_STORES)
        self._emit(obs_metrics.CACHE_BYTES_WRITTEN, len(text))
        _log.debug("cache store %s (%d bytes, %d scenarios)",
                   key[:12], len(text), len(entry["aged"]))
        return entry

    def __repr__(self):
        return "CharacterizationCache(%r, shards=%d, mem=%d/%d, %r)" % (
            self.root, self.shards, len(self._mem), self.mem_entries,
            self.stats)


# ---------------------------------------------------------------------------
# ambient cache configuration
# ---------------------------------------------------------------------------

#: Sentinel: "use the ambient cache" (module default for ``cache=`` params).
AMBIENT = object()

_configured = AMBIENT          # AMBIENT means "fall back to the env var"
_env_caches = {}               # cache dir -> CharacterizationCache


def get_cache():
    """Return the ambient cache, or None when caching is disabled.

    Resolution order: an explicit :func:`set_cache` configuration wins;
    otherwise ``REPRO_CACHE_DIR`` names the directory; otherwise caching
    is off.
    """
    if _configured is not AMBIENT:
        return _configured
    root = os.environ.get(CACHE_DIR_ENV)
    if not root:
        return None
    if root not in _env_caches:
        _env_caches[root] = CharacterizationCache(root)
    return _env_caches[root]


def set_cache(cache):
    """Configure the ambient cache; returns the previous configuration.

    Accepts a :class:`CharacterizationCache`, a directory path, None
    (disable caching) or :data:`AMBIENT` (defer to ``REPRO_CACHE_DIR``).
    """
    global _configured
    previous = _configured
    if cache is None or cache is AMBIENT \
            or isinstance(cache, CharacterizationCache):
        _configured = cache
    else:
        _configured = CharacterizationCache(cache)
    return previous


@contextmanager
def cache_enabled(cache):
    """Scoped :func:`set_cache`: yields the active cache, then restores."""
    previous = set_cache(cache)
    try:
        yield get_cache()
    finally:
        set_cache(previous)


def resolve_cache(cache):
    """Normalize a ``cache=`` argument to an instance or None."""
    if cache is AMBIENT:
        return get_cache()
    if cache is None or isinstance(cache, CharacterizationCache):
        return cache
    return CharacterizationCache(cache)


# ---------------------------------------------------------------------------
# in-process synthesized-netlist memo
# ---------------------------------------------------------------------------

#: Keep the memo bounded; a sweep touches a few dozen variants at most.
_NETLIST_MEMO_LIMIT = 256
_netlist_memo = {}


def synthesize_netlist_memoized(component, library, effort="ultra"):
    """Synthesize *component* once per content fingerprint per process.

    Returns the shared optimized netlist for repeated requests with an
    identical (component spec, effort, library contents) triple — the
    in-memory complement of the on-disk metrics cache for callers that
    need the gate-level structure (lazy ``Block.synthesized``, repeated
    flow validations). Callers must treat the result as read-only.
    """
    from ..synth.synthesize import synthesize_netlist

    key = (component_fingerprint(component), effort,
           library_fingerprint(library))
    netlist = _netlist_memo.get(key)
    if netlist is not None:
        instrument.current().count(instrument.COUNT_NETLIST_MEMO_HITS)
        obs_metrics.inc(obs_metrics.NETLIST_MEMO_HITS)
        return netlist
    if len(_netlist_memo) >= _NETLIST_MEMO_LIMIT:
        _netlist_memo.clear()
    with instrument.current().stage(instrument.STAGE_SYNTHESIZE):
        netlist = synthesize_netlist(component, library, effort=effort)
    _netlist_memo[key] = netlist
    return netlist


def clear_netlist_memo():
    """Drop every memoized synthesized netlist (mainly for tests)."""
    _netlist_memo.clear()
