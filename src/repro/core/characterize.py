"""Component characterization (Section IV, Fig. 3).

For one RTL component, sweep the precision, synthesize each variant, and
run aging-aware STA under every requested scenario. The result — a
:class:`ComponentCharacterization` — relates every precision to its fresh
and aged delays, from which the flow derives:

* the **required precision** ``K_j``: the largest precision whose aged
  delay still meets the fresh-design timing constraint (Eq. 2),
* **guardband narrowing**: how much of the aging guardband each
  truncated bit removes (the 31% / 29% / 80% numbers in the paper),
* area/leakage per precision (for the efficiency results).

Actual-case aging is supported via :class:`ActualCaseSpec`: the given
stimulus operands are gate-level simulated on *each* precision variant
(a one-time effort, as the paper stresses) to extract per-gate stress
annotations.

The sweep itself runs through the characterization engine: every
``(precision, scenarios)`` point is an independent task that consults
the content-addressed result cache (:mod:`repro.core.cache`), records
per-stage timings (:mod:`repro.core.instrument`), and can fan out over
a process pool (:mod:`repro.core.parallel`, ``jobs=1`` serial default).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..aging.bti import DEFAULT_BTI
from ..aging.scenario import AgingScenario
from ..obs import logs, metrics as obs_metrics, trace as obs_trace
from ..sim.activity import extract_stress, operand_stream_bits
from ..sta.engine import (analyze_batch, analyze_incremental,
                          truncated_input_nets)
from ..sta.sta import critical_path_delay
from ..synth.synthesize import synthesize
from ..synth.sweep import synthesize_variant
from ..sta.paths import logic_depth
from . import cache as cache_mod
from . import instrument
from .parallel import map_tasks, resolve_jobs

_log = logs.get_logger("core.characterize")


@dataclass(frozen=True)
class ActualCaseSpec:
    """Actual-case aging request for characterization.

    Attributes
    ----------
    years:
        Lifetime in years.
    label:
        Stimulus name; the resulting scenario label is
        ``"<years>y_<label>"`` (e.g. ``"10y_actual_nd"``).
    operands:
        Tuple of integer arrays, one stream per component operand, used
        to extract per-gate stress factors by gate-level simulation.
    """

    years: float
    label: str
    operands: Tuple

    @property
    def scenario_label(self):
        return "%gy_%s" % (self.years, self.label)


@dataclass
class ComponentCharacterization:
    """Pre-characterized aging/precision table of one component.

    The central artifact of the paper's Section IV: everything the
    microarchitecture-level flow needs to know about a component without
    ever simulating it again.
    """

    key: str
    family: str
    width: int
    precisions: List[int]
    scenario_labels: List[str]
    #: precision -> fresh critical-path delay (ps)
    fresh_ps: Dict[int, float]
    #: (precision, scenario label) -> aged critical-path delay (ps)
    aged_ps: Dict[Tuple[int, str], float]
    #: precision -> area (um^2)
    area_um2: Dict[int, float]
    #: precision -> leakage (nW)
    leakage_nw: Dict[int, float]
    #: precision -> gate count
    gates: Dict[int, int]
    #: precision -> logic depth (levels)
    depth: Dict[int, int]

    # -- queries ---------------------------------------------------------
    def fresh_delay_ps(self, precision=None):
        """``t_Cj(noAging, P)``; full precision when omitted."""
        if precision is None:
            precision = self.width
        return self.fresh_ps[precision]

    def aged_delay_ps(self, precision, scenario_label):
        """``t_Cj(Aging, P)`` under a characterized scenario."""
        try:
            return self.aged_ps[(precision, scenario_label)]
        except KeyError:
            raise KeyError(
                "scenario %r / precision %r not characterized for %s"
                % (scenario_label, precision, self.key))

    def guardband_ps(self, scenario_label, precision=None):
        """Guardband still needed at *precision* against the full-precision
        fresh constraint: ``max(0, t(Aging, P) - t(noAging, N))``."""
        if precision is None:
            precision = self.width
        return max(0.0, self.aged_delay_ps(precision, scenario_label)
                   - self.fresh_delay_ps())

    def guardband_narrowing(self, scenario_label, precision):
        """Fraction of the full-precision guardband removed at *precision*.

        The paper's headline numbers: a 2-bit adder reduction narrows
        the guardband by 31%, 1 bit narrows the multiplier/MAC guardband
        by 29% / 80%.
        """
        full = self.guardband_ps(scenario_label, self.width)
        if full == 0:
            return 1.0
        return 1.0 - self.guardband_ps(scenario_label, precision) / full

    def required_precision(self, scenario_label, target_ps=None):
        """Largest precision whose aged delay meets *target_ps* (Eq. 2).

        Defaults to the full-precision fresh delay — i.e. "remove the
        guardband entirely". Returns None when no characterized
        precision satisfies the target.
        """
        if target_ps is None:
            target_ps = self.fresh_delay_ps()
        feasible = [p for p in self.precisions
                    if self.aged_delay_ps(p, scenario_label) <= target_ps]
        return max(feasible) if feasible else None

    def merge(self, other):
        """Fold another characterization of the *same component* in.

        Used when new scenarios (or precisions) are characterized later:
        tables are unioned, with *other* winning on conflicts. Raises
        ``ValueError`` for a different component key.
        """
        if other.key != self.key:
            raise ValueError("cannot merge %s into %s"
                             % (other.key, self.key))
        self.precisions = sorted(set(self.precisions)
                                 | set(other.precisions), reverse=True)
        for label in other.scenario_labels:
            if label not in self.scenario_labels:
                self.scenario_labels.append(label)
        self.fresh_ps.update(other.fresh_ps)
        self.aged_ps.update(other.aged_ps)
        self.area_um2.update(other.area_um2)
        self.leakage_nw.update(other.leakage_nw)
        self.gates.update(other.gates)
        self.depth.update(other.depth)
        return self

    def has_scenario(self, scenario_label):
        """True when every precision has an entry for *scenario_label*."""
        return all((p, scenario_label) in self.aged_ps
                   for p in self.precisions)

    def to_rows(self):
        """Flat table (list of dicts) for printing/serialization."""
        rows = []
        for p in self.precisions:
            row = {
                "precision": p,
                "fresh_ps": self.fresh_ps[p],
                "area_um2": self.area_um2[p],
                "leakage_nw": self.leakage_nw[p],
                "gates": self.gates[p],
                "depth": self.depth[p],
            }
            for label in self.scenario_labels:
                row[label + "_ps"] = self.aged_ps[(p, label)]
            rows.append(row)
        return rows

    def to_dict(self):
        """JSON-serializable form (see :meth:`from_dict`)."""
        return {
            "key": self.key,
            "family": self.family,
            "width": self.width,
            "precisions": list(self.precisions),
            "scenario_labels": list(self.scenario_labels),
            "fresh_ps": {str(k): v for k, v in self.fresh_ps.items()},
            "aged_ps": {"%d|%s" % k: v for k, v in self.aged_ps.items()},
            "area_um2": {str(k): v for k, v in self.area_um2.items()},
            "leakage_nw": {str(k): v for k, v in self.leakage_nw.items()},
            "gates": {str(k): v for k, v in self.gates.items()},
            "depth": {str(k): v for k, v in self.depth.items()},
        }

    @classmethod
    def from_dict(cls, data):
        aged = {}
        for key, value in data["aged_ps"].items():
            precision, label = key.split("|", 1)
            aged[(int(precision), label)] = value
        return cls(
            key=data["key"], family=data["family"], width=data["width"],
            precisions=list(data["precisions"]),
            scenario_labels=list(data["scenario_labels"]),
            fresh_ps={int(k): v for k, v in data["fresh_ps"].items()},
            aged_ps=aged,
            area_um2={int(k): v for k, v in data["area_um2"].items()},
            leakage_nw={int(k): v for k, v in data["leakage_nw"].items()},
            gates={int(k): v for k, v in data["gates"].items()},
            depth={int(k): v for k, v in data["depth"].items()},
        )


def component_key(component):
    """Library key of a component: family + base width."""
    return "%s_w%d" % (component.family, component.width)


def _characterize_point(task):
    """Characterize one ``(component, precision)`` point.

    Module-level so the process-pool path can pickle it; ``jobs=1`` runs
    it inline. Consults the on-disk cache when a root is given and
    reports its own stage timings, cache accounting, span tree and
    metric snapshot back to the parent (workers cannot share the
    parent's ambient collectors): the returned ``"trace"`` /
    ``"metrics"`` entries are re-parented / merged by
    :func:`characterize`. A ``"trace"`` propagation context in the task
    (stamped by :mod:`repro.core.parallel` or the serve layer) stitches
    this worker's spans into the submitting trace by identity.
    """
    with obs_trace.capture() as tracer, obs_metrics.scoped() as registry:
        with obs_trace.propagated(task.get("trace")), obs_trace.span(
                "characterize.point",
                component=task["component"].family,
                width=task["component"].width,
                precision=task["precision"],
                scenarios=[label for __s, label, __fp
                           in task["scenarios"]]) as point_span:
            result = _characterize_point_inner(task, point_span)
    result["trace"] = tracer.to_dicts()
    result["obs_metrics"] = registry.snapshot()
    return result


def _characterize_point_inner(task, point_span):
    component = task["component"]
    precision = task["precision"]
    library = task["library"]
    effort = task["effort"]
    bti = task["bti"]
    degradation = task["degradation"]
    scenarios = task["scenarios"]        # [(spec, label, fingerprint)]
    key = task["key"]
    cache_root = task["cache_root"]
    engine = task.get("engine", "packed")
    sta = task.get("sta", "batched")
    synth = task.get("synth", "sweep")

    instr = instrument.Instrumentation()
    store = (cache_mod.CharacterizationCache(
        cache_root, shards=task.get("cache_shards", 0))
        if cache_root else None)
    entry = store.load(key) if store is not None else None
    if entry is not None \
            and all(fp in entry["aged"] for __s, __l, fp in scenarios):
        # Full hit: every requested scenario already characterized.
        instr.count(instrument.COUNT_CACHE_HITS)
        point_span.attrs["cache"] = "hit"
        metrics = entry["metrics"]
        aged = [(label, entry["aged"][fp]["delay_ps"])
                for __spec, label, fp in scenarios]
        return {"precision": precision, "metrics": metrics, "aged": aged,
                "instr": instr.summary(),
                "cache_stats": store.stats.as_dict()}

    if store is not None:
        if entry is not None:
            # Partial entry: the netlist must be rebuilt for the missing
            # scenarios, so reclassify load()'s optimistic hit.
            store.stats.hits -= 1
            store.stats.misses += 1
            obs_metrics.inc(obs_metrics.CACHE_HITS, -1)
            obs_metrics.inc(obs_metrics.CACHE_MISSES)
        instr.count(instrument.COUNT_CACHE_MISSES)
    point_span.attrs["cache"] = "miss" if store is not None else "off"

    variant = component.with_precision(precision)
    with instr.stage(instrument.STAGE_SYNTHESIZE):
        if synth == "sweep":
            # One base synthesis per worker process (memoized on the
            # full-precision content), every truncated point derived by
            # cone-restricted replay — bit-identical to from-scratch.
            result = synthesize_variant(component, precision, library,
                                        effort=effort)
        else:
            result = synthesize(variant, library, effort=effort)
    netlist = result.netlist
    metrics = {
        "delay_ps": result.delay_ps,
        "area_um2": result.area_um2,
        "leakage_nw": result.leakage_nw,
        "gates": result.final_gates,
        "depth": logic_depth(netlist),
    }
    aged = []
    new_aged = {}
    pending = []                         # (slot in aged, label, fp, corner)
    for spec, label, fp in scenarios:
        if entry is not None and fp in entry["aged"]:
            aged.append((label, entry["aged"][fp]["delay_ps"]))
            continue
        if isinstance(spec, ActualCaseSpec):
            with instr.stage(instrument.STAGE_STRESS):
                bits = operand_stream_bits(spec.operands,
                                           variant.operand_widths)
                annotation = extract_stress(netlist, library, bits,
                                            label=spec.label,
                                            engine=engine)
            scenario = AgingScenario(spec.years, annotation)
        else:
            scenario = spec
        aged.append(None)
        pending.append((len(aged) - 1, label, fp, scenario))
    if pending:
        # All corners of this grid point share one compiled timing
        # program; the batched engine is bit-identical to per-corner
        # scalar analyze (sta="scalar" keeps the reference path).
        if sta == "batched":
            with instr.stage(instrument.STAGE_STA):
                batch = analyze_batch(
                    netlist, library,
                    [corner for __, __, __, corner in pending],
                    bti=bti, degradation=degradation)
            delays = batch.critical_paths_ps
        else:
            delays = []
            for __, __, __, corner in pending:
                with instr.stage(instrument.STAGE_STA):
                    delays.append(critical_path_delay(
                        netlist, library, scenario=corner, bti=bti,
                        degradation=degradation))
        for (slot, label, fp, __), delay in zip(pending, delays):
            aged[slot] = (label, delay)
            new_aged[fp] = {"label": label, "delay_ps": delay}
    if store is not None:
        store.store(key, metrics, new_aged,
                    meta={"component": variant.name,
                          "precision": precision, "effort": effort})
    return {"precision": precision, "metrics": metrics, "aged": aged,
            "instr": instr.summary(),
            "cache_stats": store.stats.as_dict()
            if store is not None else None}


def _scenario_label(spec):
    """Characterization-table label of a scenario or actual-case spec."""
    return (spec.scenario_label if isinstance(spec, ActualCaseSpec)
            else spec.label)


def scenario_specs(scenarios):
    """Fingerprint scenarios once: ``[(spec, label, fingerprint)]``.

    Shared input of every point task; hoisted out of the per-point loop
    because actual-case operand streams can be large to fingerprint.
    """
    return [(spec, _scenario_label(spec),
             cache_mod.scenario_fingerprint(spec))
            for spec in scenarios]


def make_point_task(component, precision, library, specs, effort="ultra",
                    bti=DEFAULT_BTI, degradation=None, cache_root=None,
                    cache_shards=0, engine="packed", sta="batched",
                    synth="sweep"):
    """Build one picklable ``(component, precision)`` point task.

    *specs* is a :func:`scenario_specs` list. The task is the unit both
    :func:`characterize` and the serving layer (:mod:`repro.serve`)
    dispatch to :func:`_characterize_point` — building it here keeps the
    two entry points bit-identical by construction.
    """
    return {
        "component": component,
        "precision": precision,
        "library": library,
        "effort": effort,
        "bti": bti,
        "degradation": degradation,
        "scenarios": specs,
        "key": cache_mod.point_key(component, precision, effort, library,
                                   bti, degradation),
        "cache_root": cache_root,
        "cache_shards": cache_shards,
        "engine": engine,
        "sta": sta,
        "synth": synth,
    }


def characterize(component, library, scenarios, precisions=None,
                 effort="ultra", bti=DEFAULT_BTI, degradation=None,
                 jobs=None, cache=cache_mod.AMBIENT, engine="packed",
                 sta="batched", synth="sweep", pool=None):
    """Characterize *component* across precisions and aging scenarios.

    Parameters
    ----------
    component:
        The full-precision component instance (its ``precision`` is the
        sweep's upper end).
    library:
        Cell library.
    scenarios:
        Iterable of :class:`~repro.aging.scenario.AgingScenario`
        (uniform stress) and/or :class:`ActualCaseSpec` (per-variant
        stress extraction from stimulus operands).
    precisions:
        Precisions to sweep; default ``width .. width-12`` (descending).
    effort:
        Synthesis effort for every variant.
    jobs:
        Worker processes for the sweep. None defers to ``REPRO_JOBS``
        (default 1, the deterministic serial path); 0 means one per
        CPU. The parallel result is identical to the serial one.
    cache:
        Result cache: the ambient cache by default (see
        :func:`repro.core.cache.set_cache` / ``REPRO_CACHE_DIR``), an
        explicit :class:`~repro.core.cache.CharacterizationCache` or
        directory path, or None to bypass caching.
    engine:
        Functional-simulation engine for actual-case stress extraction:
        ``"packed"`` (64-way bit-parallel, the default) or ``"bytes"``
        (uint8 reference). Both are bit-identical, so the cache
        fingerprint is engine-independent.
    sta:
        STA engine for the aged corners: ``"batched"`` (one compiled
        timing program per grid point, all corners in one vectorized
        pass — the default) or ``"scalar"`` (per-corner
        :func:`repro.sta.sta.analyze`). Both are bit-identical, so the
        cache fingerprint is engine-independent.
    synth:
        Variant synthesis strategy: ``"sweep"`` (synthesize the
        full-precision base once per worker process, derive each
        truncated point by cone-restricted replay —
        :func:`repro.synth.sweep.synthesize_variant`, the default) or
        ``"scratch"`` (independent :func:`repro.synth.synthesize` per
        point). Both are bit-identical, so the cache fingerprint is
        strategy-independent.
    pool:
        Optional persistent :class:`~repro.core.parallel.WorkerPool`
        to fan out over (overrides *jobs*); repeated sweeps reuse its
        worker processes instead of spawning a pool per call.

    Returns
    -------
    ComponentCharacterization
    """
    width = component.width
    if precisions is None:
        precisions = list(range(width, max(width - 12, 1) - 1, -1))
    precisions = sorted(set(precisions), reverse=True)
    scenarios = list(scenarios)
    if engine not in ("packed", "bytes"):
        raise ValueError("engine must be 'packed' or 'bytes', got %r"
                         % (engine,))
    if sta not in ("batched", "scalar"):
        raise ValueError("sta must be 'batched' or 'scalar', got %r"
                         % (sta,))
    if synth not in ("sweep", "scratch"):
        raise ValueError("synth must be 'sweep' or 'scratch', got %r"
                         % (synth,))

    store = cache_mod.resolve_cache(cache)
    cache_root = store.root if store is not None else None
    cache_shards = store.shards if store is not None else 0
    specs = scenario_specs(scenarios)
    tasks = [make_point_task(component, precision, library, specs,
                             effort=effort, bti=bti,
                             degradation=degradation,
                             cache_root=cache_root,
                             cache_shards=cache_shards,
                             engine=engine, sta=sta, synth=synth)
             for precision in precisions]

    jobs = pool.jobs if pool is not None else resolve_jobs(jobs)
    _log.info("characterizing %s: %d precision points x %d scenarios "
              "(effort=%s, jobs=%d, cache=%s)",
              component_key(component), len(tasks), len(scenarios),
              effort, jobs, "on" if store is not None else "off")

    instr = instrument.current()
    fresh_ps, area, leakage, gates, depth = {}, {}, {}, {}, {}
    aged_ps = {}
    labels = []
    with obs_trace.span("characterize",
                        component=component_key(component), width=width,
                        points=len(tasks), scenarios=len(scenarios),
                        jobs=jobs):
        results = map_tasks(_characterize_point, tasks, jobs=jobs,
                            pool=pool)
        for point in results:
            precision = point["precision"]
            metrics = point["metrics"]
            fresh_ps[precision] = metrics["delay_ps"]
            area[precision] = metrics["area_um2"]
            leakage[precision] = metrics["leakage_nw"]
            gates[precision] = metrics["gates"]
            depth[precision] = metrics["depth"]
            for label, delay in point["aged"]:
                if label not in labels:
                    labels.append(label)
                aged_ps[(precision, label)] = delay
            instr.merge(point["instr"])
            if store is not None and point["cache_stats"] is not None:
                store.stats.merge(point["cache_stats"])
            # Re-parent the worker's span tree and fold its metrics in.
            obs_trace.adopt(point["trace"])
            obs_metrics.registry().merge(point["obs_metrics"])

    return ComponentCharacterization(
        key=component_key(component), family=component.family, width=width,
        precisions=precisions, scenario_labels=labels, fresh_ps=fresh_ps,
        aged_ps=aged_ps, area_um2=area, leakage_nw=leakage, gates=gates,
        depth=depth)


# ---------------------------------------------------------------------------
# fast truncation screening (incremental cone re-analysis)
# ---------------------------------------------------------------------------

@dataclass
class TruncationScreen:
    """Precision/delay estimates from one netlist, no re-synthesis.

    Produced by :func:`truncation_screen`: the full-precision netlist is
    synthesized once, analyzed under all corners in one batched pass,
    and every lower precision is then re-analyzed incrementally by
    tying operand LSBs low and re-propagating only their fan-out cone.

    Delays are *exact* STA results of the tied netlist, but the netlist
    is the constant-swept full-precision one rather than the
    re-synthesized variant :func:`characterize` would build, so screen
    delays conservatively bound the characterization table (re-synthesis
    can only shrink the surviving logic further). At full precision the
    two agree exactly. Use the screen to rank precisions cheaply before
    paying for a full characterization.
    """

    key: str
    family: str
    width: int
    precisions: List[int]
    scenario_labels: List[str]
    #: (precision, scenario label) -> critical-path delay (ps)
    delays_ps: Dict[Tuple[int, str], float]
    #: precision -> fraction of gates re-propagated
    cone_fraction: Dict[int, float]
    #: precision -> gates removed by the constant sweep
    dropped_gates: Dict[int, int]

    def delay_ps(self, precision, scenario_label):
        try:
            return self.delays_ps[(precision, scenario_label)]
        except KeyError:
            raise KeyError("scenario %r / precision %r not screened for %s"
                           % (scenario_label, precision, self.key))

    def required_precision(self, scenario_label, target_ps=None):
        """Largest screened precision meeting *target_ps* (Eq. 2 analog).

        Defaults to the full-precision fresh delay. Because screen
        delays upper-bound characterized delays, the screen's required
        precision never exceeds the characterized one.
        """
        if target_ps is None:
            target_ps = self.delay_ps(self.width, "fresh")
        feasible = [p for p in self.precisions
                    if self.delay_ps(p, scenario_label) <= target_ps]
        return max(feasible) if feasible else None

    def to_rows(self):
        """Flat table (list of dicts) for printing/serialization."""
        rows = []
        for p in self.precisions:
            row = {"precision": p,
                   "cone_fraction": self.cone_fraction[p],
                   "dropped_gates": self.dropped_gates[p]}
            for label in self.scenario_labels:
                row[label + "_ps"] = self.delays_ps[(p, label)]
            rows.append(row)
        return rows


def truncation_screen(component, library, scenarios, precisions=None,
                      effort="ultra", bti=DEFAULT_BTI, degradation=None):
    """Screen a precision sweep by incremental cone re-analysis.

    One synthesis + one batched corner analysis + one incremental
    re-propagation per precision, instead of a synthesis and a full STA
    grid per precision — the cheap first pass of a characterization
    campaign.

    Parameters
    ----------
    scenarios:
        Uniform-stress :class:`~repro.aging.scenario.AgingScenario`
        objects (actual-case specs need per-variant stress extraction —
        use :func:`characterize` for those). The fresh corner is always
        included.

    Returns
    -------
    TruncationScreen
    """
    width = component.width
    if precisions is None:
        precisions = list(range(width, max(width - 12, 1) - 1, -1))
    precisions = sorted(set(precisions), reverse=True)
    corners = [None]
    for spec in scenarios:
        if isinstance(spec, ActualCaseSpec):
            raise ValueError(
                "truncation_screen supports uniform-stress scenarios "
                "only; characterize() handles actual-case specs")
        if spec is not None and not spec.is_fresh:
            corners.append(spec)
    labels = ["fresh"] + [s.label for s in corners[1:]]

    instr = instrument.current()
    with obs_trace.span("characterize.screen",
                        component=component_key(component),
                        precisions=len(precisions),
                        corners=len(corners)):
        with instr.stage(instrument.STAGE_SYNTHESIZE):
            netlist = synthesize(component, library, effort=effort).netlist
        with instr.stage(instrument.STAGE_STA):
            baseline = analyze_batch(netlist, library, corners, bti=bti,
                                     degradation=degradation)
        delays, cone, dropped = {}, {}, {}
        for precision in precisions:
            tied = truncated_input_nets(component, netlist, precision)
            if not tied:
                for label, cp in zip(labels, baseline.critical_paths_ps):
                    delays[(precision, label)] = cp
                cone[precision] = 0.0
                dropped[precision] = 0
                continue
            with instr.stage(instrument.STAGE_STA):
                inc = analyze_incremental(netlist, library, tied,
                                          baseline=baseline, bti=bti,
                                          degradation=degradation)
            for label, cp in zip(labels, inc.critical_paths_ps):
                delays[(precision, label)] = cp
            cone[precision] = inc.cone_fraction
            dropped[precision] = int(inc.dropped.sum())
    _log.info("screened %s: %d precisions x %d corners from one netlist",
              component_key(component), len(precisions), len(corners))
    return TruncationScreen(
        key=component_key(component), family=component.family, width=width,
        precisions=precisions, scenario_labels=labels, delays_ps=delays,
        cone_fraction=cone, dropped_gates=dropped)
