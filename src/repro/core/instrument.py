"""Per-stage timing instrumentation — compatibility shim over repro.obs.

This module predates the full observability layer (:mod:`repro.obs`)
and keeps its original public API — :class:`Instrumentation`,
:func:`current`, :func:`collect`, the ``STAGE_*`` / ``COUNT_*`` names —
so existing callers and tests work unchanged. Internally it is now a
thin veneer:

* an :class:`Instrumentation` records into its own
  :class:`repro.obs.metrics.MetricsRegistry` (stages as histograms,
  counters as counters) and its :meth:`~Instrumentation.stage` context
  manager additionally opens an ambient :func:`repro.obs.trace.span`,
  so stage regions show up in ``--trace`` output for free;
* the ambient collector stack lives in a :mod:`contextvars` context
  variable rather than the old module-level list, so :func:`collect`
  nests correctly under ``ThreadPoolExecutor`` threads and asyncio
  tasks instead of interleaving pushes and pops across contexts.

New code should use :mod:`repro.obs` directly.
"""

import contextvars
import time
from contextlib import contextmanager

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

#: Canonical stage names used by the characterization engine.
STAGE_SYNTHESIZE = "synthesize"
STAGE_STRESS = "stress_extraction"
STAGE_STA = "sta"

#: Canonical counter names.
COUNT_CACHE_HITS = "cache_hits"
COUNT_CACHE_MISSES = "cache_misses"
COUNT_NETLIST_MEMO_HITS = "netlist_memo_hits"

#: Legacy counter name -> canonical repro.obs metric name.
COUNTER_ALIASES = {
    COUNT_CACHE_HITS: obs_metrics.CACHE_HITS,
    COUNT_CACHE_MISSES: obs_metrics.CACHE_MISSES,
    COUNT_NETLIST_MEMO_HITS: obs_metrics.NETLIST_MEMO_HITS,
}

#: Registry namespace separating stage histograms from event counters.
_STAGE_PREFIX = "stage."


class Instrumentation:
    """Accumulates per-stage wall time and named event counters.

    Backed by a private :class:`~repro.obs.metrics.MetricsRegistry`:
    every stage is a histogram (count = calls, sum = seconds, with a
    distribution on top), every counter a plain counter. The public
    surface — including the :meth:`summary` wire format workers ship to
    the parent — is unchanged.
    """

    def __init__(self):
        self._registry = obs_metrics.MetricsRegistry()

    # -- recording ---------------------------------------------------------
    @contextmanager
    def stage(self, name):
        """Context manager timing one span of *name*.

        Also records an ambient :func:`repro.obs.trace.span` so stage
        regions appear in captured traces.
        """
        with obs_trace.span(name):
            start = time.perf_counter()
            try:
                yield
            finally:
                elapsed = time.perf_counter() - start
                self._registry.histogram(
                    _STAGE_PREFIX + name).observe(elapsed)

    def add_time(self, name, seconds, calls=1):
        """Fold *seconds* (over *calls* spans) into stage *name*."""
        self._registry.histogram(
            _STAGE_PREFIX + name).add_aggregate(calls, seconds)

    def count(self, name, n=1):
        """Increment counter *name* by *n*."""
        self._registry.counter(name).inc(n)

    # -- reporting ---------------------------------------------------------
    def _stage(self, name):
        return self._registry.get(_STAGE_PREFIX + name)

    def stage_seconds(self, name):
        """Total seconds spent in stage *name* (0.0 when never entered)."""
        hist = self._stage(name)
        return hist.sum if hist is not None else 0.0

    def stage_calls(self, name):
        """Number of spans recorded for stage *name*."""
        hist = self._stage(name)
        return hist.count if hist is not None else 0

    def counter(self, name):
        """Current value of counter *name* (0 when never incremented)."""
        metric = self._registry.get(name)
        return metric.value if metric is not None else 0

    def summary(self):
        """Machine-readable snapshot.

        Returns ``{"stages": {name: {"calls": int, "seconds": float}},
        "counters": {name: int}}`` — plain JSON-serializable data, also
        the wire format workers use to report back to the parent.
        """
        snapshot = self._registry.snapshot()
        stages = {}
        for name, state in snapshot["histograms"].items():
            if name.startswith(_STAGE_PREFIX):
                stages[name[len(_STAGE_PREFIX):]] = {
                    "calls": state["count"], "seconds": state["sum"]}
        return {"stages": stages, "counters": dict(snapshot["counters"])}

    def merge(self, summary):
        """Fold a :meth:`summary` dict (e.g. from a worker) into this one."""
        for name, entry in summary.get("stages", {}).items():
            self.add_time(name, entry["seconds"], calls=entry["calls"])
        for name, value in summary.get("counters", {}).items():
            self.count(name, value)
        return self

    def reset(self):
        """Drop all recorded spans and counters."""
        self._registry.reset()

    def __repr__(self):
        summary = self.summary()
        total = sum(entry["seconds"] for entry in summary["stages"].values())
        return "Instrumentation(stages=%d, total=%.3fs)" % (
            len(summary["stages"]), total)


#: Process-wide root collector, the bottom of every context's stack.
_ROOT = Instrumentation()

#: Ambient collector stack — a per-context immutable tuple, so nested
#: :func:`collect` scopes in different threads / asyncio tasks never
#: interleave (the old module-level list leaked state across threads).
_STACK = contextvars.ContextVar("repro_instrument_stack", default=None)


def _stack():
    stack = _STACK.get()
    return stack if stack is not None else (_ROOT,)


def current():
    """Return the innermost active collector (never None)."""
    return _stack()[-1]


@contextmanager
def collect(instr=None):
    """Route ambient instrumentation into *instr* for the enclosed region.

    A fresh :class:`Instrumentation` is created when *instr* is omitted;
    either way the active collector is yielded and restored on exit.
    """
    if instr is None:
        instr = Instrumentation()
    token = _STACK.set(_stack() + (instr,))
    try:
        yield instr
    finally:
        _STACK.reset(token)
