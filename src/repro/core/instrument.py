"""Per-stage timing instrumentation for the characterization engine.

The characterization flow has three expensive stages — synthesis,
actual-case stress extraction and aging-aware STA — plus the result
cache sitting in front of them. This module collects lightweight
``perf_counter`` spans and event counters around those stages so a run
can report *where* its wall time went and how effective the cache was,
without any third-party profiler.

Collection is ambient: :func:`current` returns the innermost active
:class:`Instrumentation`, so deeply nested flows (``remove_guardband``
-> ``apply_aging_approximations`` -> ``characterize``) record into one
collector without threading it through every signature. Wrap a region
with :func:`collect` to capture its spans in a fresh collector::

    from repro.core import instrument
    with instrument.collect() as instr:
        characterize(component, lib, scenarios=[worst_case(10)])
    print(instr.summary())

Worker processes of the parallel engine build their own collector and
ship its :meth:`~Instrumentation.summary` back to the parent, which
folds it in with :meth:`~Instrumentation.merge`.
"""

import time
from contextlib import contextmanager

#: Canonical stage names used by the characterization engine.
STAGE_SYNTHESIZE = "synthesize"
STAGE_STRESS = "stress_extraction"
STAGE_STA = "sta"

#: Canonical counter names.
COUNT_CACHE_HITS = "cache_hits"
COUNT_CACHE_MISSES = "cache_misses"
COUNT_NETLIST_MEMO_HITS = "netlist_memo_hits"


class Instrumentation:
    """Accumulates per-stage wall time and named event counters."""

    def __init__(self):
        self._stages = {}     # name -> [calls, seconds]
        self._counters = {}   # name -> count

    # -- recording ---------------------------------------------------------
    @contextmanager
    def stage(self, name):
        """Context manager timing one span of *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def add_time(self, name, seconds, calls=1):
        """Fold *seconds* (over *calls* spans) into stage *name*."""
        entry = self._stages.setdefault(name, [0, 0.0])
        entry[0] += calls
        entry[1] += seconds

    def count(self, name, n=1):
        """Increment counter *name* by *n*."""
        self._counters[name] = self._counters.get(name, 0) + n

    # -- reporting ---------------------------------------------------------
    def stage_seconds(self, name):
        """Total seconds spent in stage *name* (0.0 when never entered)."""
        return self._stages.get(name, (0, 0.0))[1]

    def stage_calls(self, name):
        """Number of spans recorded for stage *name*."""
        return self._stages.get(name, (0, 0.0))[0]

    def counter(self, name):
        """Current value of counter *name* (0 when never incremented)."""
        return self._counters.get(name, 0)

    def summary(self):
        """Machine-readable snapshot.

        Returns ``{"stages": {name: {"calls": int, "seconds": float}},
        "counters": {name: int}}`` — plain JSON-serializable data, also
        the wire format workers use to report back to the parent.
        """
        return {
            "stages": {name: {"calls": calls, "seconds": seconds}
                       for name, (calls, seconds) in self._stages.items()},
            "counters": dict(self._counters),
        }

    def merge(self, summary):
        """Fold a :meth:`summary` dict (e.g. from a worker) into this one."""
        for name, entry in summary.get("stages", {}).items():
            self.add_time(name, entry["seconds"], calls=entry["calls"])
        for name, value in summary.get("counters", {}).items():
            self.count(name, value)
        return self

    def reset(self):
        """Drop all recorded spans and counters."""
        self._stages.clear()
        self._counters.clear()

    def __repr__(self):
        total = sum(seconds for __, seconds in self._stages.values())
        return "Instrumentation(stages=%d, total=%.3fs)" % (
            len(self._stages), total)


#: Ambient collector stack; the bottom element is the process-wide root.
_STACK = [Instrumentation()]


def current():
    """Return the innermost active collector (never None)."""
    return _STACK[-1]


@contextmanager
def collect(instr=None):
    """Route ambient instrumentation into *instr* for the enclosed region.

    A fresh :class:`Instrumentation` is created when *instr* is omitted;
    either way the active collector is yielded and restored on exit.
    """
    if instr is None:
        instr = Instrumentation()
    _STACK.append(instr)
    try:
        yield instr
    finally:
        _STACK.pop()
