"""Process-pool fan-out for the characterization sweep.

The precision sweep is embarrassingly parallel: every ``(precision,
scenarios)`` point is an independent synthesize + STA pipeline over
picklable inputs (components, cell libraries, scenarios and BTI models
are all plain data). This module maps a point worker over
``concurrent.futures.ProcessPoolExecutor`` while keeping a
**deterministic serial fallback** as the default: ``jobs=1`` runs the
worker inline in submission order, and the parallel path preserves that
order on collection, so both produce byte-for-byte identical results.

Job-count resolution: an explicit ``jobs=`` argument wins; otherwise
the ``REPRO_JOBS`` environment variable; otherwise 1 (serial).
``jobs=0`` / ``REPRO_JOBS=0`` means "one worker per CPU".
"""

import os

from ..obs import logs, trace as obs_trace

#: Environment variable overriding the default worker count.
JOBS_ENV = "REPRO_JOBS"

_log = logs.get_logger("core.parallel")


def resolve_jobs(jobs=None):
    """Normalize a ``jobs=`` argument to a positive worker count.

    ``None`` defers to ``REPRO_JOBS`` (default 1); 0 expands to the CPU
    count; negative values are rejected.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError("%s must be an integer, got %r"
                             % (JOBS_ENV, raw))
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError("jobs must be >= 0, got %d" % jobs)
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return jobs


#: Sentinel distinguishing "jobs not passed" from an explicit value, so
#: the pool/jobs conflict warning only fires on a real caller mistake.
_JOBS_UNSET = object()


def _stamp_trace(tasks):
    """Shallow-copy dict tasks with the ambient trace identity.

    Pool workers cannot share the parent's contextvars; a ``"trace"``
    propagation context in the task dict lets the worker re-enter the
    submitting trace (:func:`repro.obs.trace.propagated`), so its
    shipped span tree stitches into one connected request tree. No-op
    when tracing is off, for non-dict tasks, and for tasks that already
    carry an explicit context (the serve layer stamps per-point spans).
    """
    ctx = obs_trace.propagation_context()
    if ctx is None:
        return tasks
    return [dict(task, trace=ctx)
            if isinstance(task, dict) and "trace" not in task else task
            for task in tasks]


def map_tasks(worker, tasks, jobs=_JOBS_UNSET, pool=None):
    """Apply *worker* to every task, serially or over a process pool.

    Results come back in task order either way. *worker* must be a
    module-level function and *tasks* picklable when ``jobs > 1``.
    Passing a :class:`WorkerPool` as *pool* reuses its persistent
    workers instead of spawning (and tearing down) a pool for this
    call; the pool's worker count wins, and an explicit *jobs* that
    disagrees with it raises a :class:`RuntimeWarning` instead of being
    silently ignored (``jobs=None`` defers, so it never conflicts).
    """
    tasks = list(tasks)
    if pool is not None and tasks:
        if (jobs is not _JOBS_UNSET and jobs is not None
                and resolve_jobs(jobs) != pool.jobs):
            import warnings
            warnings.warn(
                "map_tasks: explicit jobs=%r conflicts with pool (%d "
                "workers); the pool wins" % (jobs, pool.jobs),
                RuntimeWarning, stacklevel=2)
        return pool.map(worker, tasks)
    jobs = resolve_jobs(None if jobs is _JOBS_UNSET else jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return [worker(task) for task in tasks]
    from concurrent.futures import ProcessPoolExecutor

    workers = min(jobs, len(tasks))
    _log.info("fanning out %d tasks over %d worker processes",
              len(tasks), workers)
    with obs_trace.span("parallel.map", tasks=len(tasks),
                        workers=workers):
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(worker, _stamp_trace(tasks)))


class WorkerPool:
    """A persistent process pool for repeated characterization fan-out.

    :func:`map_tasks` spins a fresh ``ProcessPoolExecutor`` up (and
    down) per call — fine for one sweep, wasteful for a long-lived
    service dispatching thousands of small jobs. A ``WorkerPool`` keeps
    its worker processes alive across calls: the serving layer
    (:mod:`repro.serve`) owns one for its whole session, and
    :func:`repro.core.characterize.characterize` accepts one via
    ``pool=`` so repeated sweeps amortize pool startup.

    The executor is created lazily on first use; :meth:`submit` returns
    a :class:`concurrent.futures.Future` (the asyncio server bridges it
    with ``wrap_future``), :meth:`map` preserves task order like
    :func:`map_tasks`. Use as a context manager or call
    :meth:`shutdown` to reap the workers.
    """

    def __init__(self, jobs=None):
        self.jobs = resolve_jobs(jobs)
        self._executor = None

    @property
    def executor(self):
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor

            _log.info("starting persistent pool of %d worker processes",
                      self.jobs)
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def submit(self, worker, task):
        """Schedule one task; returns a ``concurrent.futures.Future``."""
        return self.executor.submit(worker, task)

    def map(self, worker, tasks):
        """Apply *worker* to every task, preserving task order."""
        tasks = list(tasks)
        if not tasks:
            return []
        with obs_trace.span("parallel.map", tasks=len(tasks),
                            workers=self.jobs, persistent=True):
            return list(self.executor.map(worker, _stamp_trace(tasks)))

    def shutdown(self, wait=True):
        """Reap the worker processes (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=not wait)
            self._executor = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()

    def __repr__(self):
        state = "idle" if self._executor is None else "running"
        return "WorkerPool(jobs=%d, %s)" % (self.jobs, state)
