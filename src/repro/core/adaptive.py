"""Adaptive precision scheduling over a design's lifetime.

The paper concludes: "By applying approximations adaptively we can
envision future systems that gradually degrade in quality as they age
over time." This module turns that vision into an API: given a
microarchitecture and a grid of lifetime checkpoints, plan the precision
each block must adopt *at that age* to stay timing-clean at the fresh
clock, producing a monotone schedule a runtime (or a maintenance
firmware update) could follow.
"""

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..aging.bti import DEFAULT_BTI
from ..aging.scenario import AgingScenario, worst_case
from .library import AgingApproximationLibrary
from .microarch import apply_aging_approximations


@dataclass
class PrecisionSchedule:
    """A lifetime plan: which precision each block runs at, per age.

    Attributes
    ----------
    design_name:
        The scheduled microarchitecture.
    constraint_ps:
        The (never-relaxed) fresh clock every checkpoint honours.
    checkpoints:
        Sorted ``(years, {block: precision})`` entries. The entry at
        year Y is valid from Y until the next checkpoint.
    """

    design_name: str
    constraint_ps: float
    checkpoints: List[Tuple[float, Dict[str, int]]]

    def precisions_at(self, years):
        """Precision map in effect at age *years*.

        Before the first checkpoint every block is at full precision as
        characterized at year 0 (the first checkpoint's map applies from
        its own age onward).
        """
        ages = [age for age, __ in self.checkpoints]
        idx = bisect.bisect_right(ages, years) - 1
        if idx < 0:
            raise ValueError(
                "no checkpoint covers age %r (first is %r)"
                % (years, ages[0] if ages else None))
        return self.checkpoints[idx][1]

    def adaptation_ages(self):
        """Ages at which at least one block changes precision."""
        ages = []
        previous = None
        for age, precisions in self.checkpoints:
            if precisions != previous:
                ages.append(age)
            previous = precisions
        return ages

    def total_bits_dropped(self, years):
        """Sum of truncated bits across blocks at age *years*."""
        first = self.checkpoints[0][1]
        now = self.precisions_at(years)
        return sum(first[name] - now[name] for name in now)


def plan_graceful_degradation(micro, library, years_grid,
                              approx_library=None, effort="ultra",
                              bti=DEFAULT_BTI, degradation=None,
                              scenario_factory=worst_case):
    """Build a :class:`PrecisionSchedule` for *micro*.

    Parameters
    ----------
    micro:
        The microarchitecture to protect over its lifetime.
    years_grid:
        Increasing lifetime checkpoints (years). Year 0 (full precision)
        is added implicitly.
    scenario_factory:
        Maps a lifetime to an :class:`~repro.aging.scenario.
        AgingScenario`; defaults to worst-case stress (the guaranteed
        schedule). Pass :func:`~repro.aging.scenario.balance_case` for a
        typical-stress plan.

    Notes
    -----
    Characterizations are shared across checkpoints through the supplied
    (or an internal) :class:`~repro.core.library.
    AgingApproximationLibrary`, so the sweep costs one synthesis per
    precision, not per (precision x lifetime).
    """
    years_grid = sorted(float(y) for y in years_grid)
    if not years_grid or years_grid[0] <= 0:
        raise ValueError("years_grid must contain positive lifetimes")
    if approx_library is None:
        approx_library = AgingApproximationLibrary()

    constraint = micro.timing_constraint_ps(library, effort)
    checkpoints = [(0.0, {blk.name: blk.component.precision
                          for blk in micro.blocks})]
    previous = checkpoints[0][1]
    for years in years_grid:
        scenario = scenario_factory(years)
        outcome = apply_aging_approximations(
            micro, library, scenario, approx_library, effort=effort,
            bti=bti, degradation=degradation)
        precisions = outcome.precision_map
        # Enforce monotonicity: precision can only shrink as the part
        # ages (a deployed system never regains precision).
        precisions = {name: min(previous[name], precisions[name])
                      for name in precisions}
        checkpoints.append((years, precisions))
        previous = precisions
    return PrecisionSchedule(design_name=micro.name,
                             constraint_ps=constraint,
                             checkpoints=checkpoints)
