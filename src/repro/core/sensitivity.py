"""Sensitivity of the required precision to aging-model uncertainty.

The paper's flow commits to a precision `K` derived from one calibrated
BTI model. Real aging parameters carry substantial uncertainty, so an
adopter should know how robust the chosen `K` is: if the true
degradation is 20% worse than modeled, does the design still meet
timing, and if not, how many more bits would it have cost?

:func:`precision_sensitivity` sweeps scale factors on the ΔVth
prefactor and reports `K` per factor, plus the *margin* of the nominal
choice (the largest model error the nominal `K` survives).
"""

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..aging.bti import DEFAULT_BTI
from ..aging.scenario import AgingScenario
from .characterize import characterize


@dataclass
class SensitivityReport:
    """Result of :func:`precision_sensitivity`.

    Attributes
    ----------
    scenario_label:
        The aging scenario analyzed.
    nominal_k:
        Required precision under the calibrated model (factor 1.0).
    k_by_factor:
        Map prefactor scale -> required precision (None = not
        compensable within the characterized sweep).
    """

    scenario_label: str
    nominal_k: Optional[int]
    k_by_factor: Dict[float, Optional[int]]

    def tolerated_overshoot(self):
        """Largest prefactor scale whose K still equals the nominal one.

        A value of 1.3 means the nominal precision survives a +30%
        model underestimate of ΔVth.
        """
        if self.nominal_k is None:
            return None
        tolerated = 1.0
        for factor in sorted(self.k_by_factor):
            if factor < 1.0:
                continue
            if self.k_by_factor[factor] == self.nominal_k:
                tolerated = factor
            else:
                break
        return tolerated

    def monotone(self):
        """K never increases as the model worsens (sanity invariant)."""
        ks = [self.k_by_factor[f] for f in sorted(self.k_by_factor)]
        last = None
        for k in ks:
            if k is None:
                continue
            if last is not None and k > last:
                return False
            last = k
        return True


def precision_sensitivity(component, library, scenario, factors=None,
                          precisions=None, effort="ultra",
                          bti=DEFAULT_BTI):
    """Sweep BTI-prefactor scale factors and recompute `K` for each.

    Parameters
    ----------
    component:
        Full-precision component under study.
    scenario:
        Uniform-stress aging scenario (lifetime + stress).
    factors:
        Prefactor multipliers to evaluate; default 0.6 .. 1.4.
    """
    if factors is None:
        factors = (0.6, 0.8, 1.0, 1.2, 1.4)
    k_by_factor = {}
    nominal_k = None
    for factor in factors:
        model = replace(bti, prefactor_v=bti.prefactor_v * factor)
        entry = characterize(component, library, scenarios=[scenario],
                             precisions=precisions, effort=effort,
                             bti=model)
        k = entry.required_precision(scenario.label)
        k_by_factor[float(factor)] = k
        if factor == 1.0:
            nominal_k = k
    return SensitivityReport(scenario_label=scenario.label,
                             nominal_k=nominal_k,
                             k_by_factor=k_by_factor)
