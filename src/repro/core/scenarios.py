"""Aging scenarios — re-exported here because they are the vocabulary of
the core flow (characterization tables and approximation plans are keyed
by scenario labels). See :mod:`repro.aging.scenario` for definitions."""

from ..aging.scenario import (AgingScenario, FRESH, ONE_YEAR_BALANCE,
                              ONE_YEAR_WORST, TEN_YEARS_BALANCE,
                              TEN_YEARS_WORST, actual_case, balance_case,
                              fresh, worst_case)

__all__ = [
    "AgingScenario", "FRESH", "ONE_YEAR_BALANCE", "ONE_YEAR_WORST",
    "TEN_YEARS_BALANCE", "TEN_YEARS_WORST", "actual_case", "balance_case",
    "fresh", "worst_case",
]
