"""Microarchitecture-level aging-induced approximation (Section V).

A :class:`Microarchitecture` is a set of pipelined combinational datapath
blocks, each containing one RTL database component (the paper's
assumption; glue/steering logic scales proportionally with the component
and control logic is hardened conventionally). The flow in
:func:`apply_aging_approximations` reproduces the paper's Fig. 6:

1. synthesize, obtain the timing constraint ``t_CP(noAging)``;
2. aging-aware STA of every block, giving ``t_Bk(Aging)``;
3. compute slacks ``t_Bk(Slack) = t_CP(noAging) - t_Bk(Aging)``;
4. blocks with negative slack get their component's precision reduced
   using the pre-built approximation library and the *relative slack*
   rule; positive-slack blocks stay exact;
5. validate: re-synthesize, aging-aware STA, and (optionally) check a
   quality constraint; if a small negative slack survives, reduce
   precision further and finally fall back to a (much smaller) residual
   guardband.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..aging.bti import DEFAULT_BTI
from ..sta.engine import analyze_batch
from ..sta.sta import critical_path_delay
from .cache import synthesize_netlist_memoized


@dataclass
class Block:
    """One pipelined datapath block wrapping an RTL component.

    Attributes
    ----------
    name:
        Block identifier within the microarchitecture.
    component:
        The :class:`~repro.rtl.component.RTLComponent` instance (its
        precision setting is the block's precision).
    instances:
        How many copies of the component the block instantiates (used by
        area/power roll-ups; timing is per instance).
    role:
        Free-text description for reports.
    """

    name: str
    component: object
    instances: int = 1
    role: str = ""
    netlist: Optional[object] = None

    def synthesized(self, library, effort="ultra"):
        """Return (building lazily) the synthesized netlist.

        Backed by the process-wide content-addressed netlist memo, so
        the many block copies a flow creates (``with_precisions``,
        validation rounds, delay reports) share one synthesis run per
        distinct (component, effort, library) triple. The shared netlist
        must be treated as read-only.
        """
        if self.netlist is None:
            self.netlist = synthesize_netlist_memoized(
                self.component, library, effort=effort)
        return self.netlist

    def with_component(self, component):
        """Copy of this block around a different component instance."""
        return Block(name=self.name, component=component,
                     instances=self.instances, role=self.role)


@dataclass
class BlockTiming:
    """Timing of one block under one scenario (paper's Section V terms)."""

    name: str
    precision: int
    fresh_ps: float
    aged_ps: float
    slack_ps: float
    relative_slack: float

    @property
    def violates(self):
        """True when aging would cause timing errors in this block."""
        return self.slack_ps < 0


class Microarchitecture:
    """A named collection of datapath blocks."""

    def __init__(self, name, blocks, metadata=None):
        self.name = name
        self.blocks = list(blocks)
        self.metadata = dict(metadata or {})
        names = [b.name for b in self.blocks]
        if len(set(names)) != len(names):
            raise ValueError("duplicate block names in %r" % name)

    def __iter__(self):
        return iter(self.blocks)

    def block(self, name):
        for blk in self.blocks:
            if blk.name == name:
                return blk
        raise KeyError("no block named %r in %s" % (name, self.name))

    def synthesize(self, library, effort="ultra"):
        """Synthesize every block (idempotent)."""
        for blk in self.blocks:
            blk.synthesized(library, effort=effort)
        return self

    def timing_constraint_ps(self, library, effort="ultra"):
        """``t_CP(noAging)``: the fresh critical path across all blocks."""
        return max(critical_path_delay(blk.synthesized(library, effort),
                                       library)
                   for blk in self.blocks)

    def timing(self, library, scenario=None, constraint_ps=None,
               effort="ultra", bti=DEFAULT_BTI, degradation=None):
        """Per-block timing under *scenario*.

        Returns ``{block name: BlockTiming}`` with slacks measured
        against *constraint_ps* (default: this design's fresh critical
        path).
        """
        if constraint_ps is None:
            constraint_ps = self.timing_constraint_ps(library, effort)
        rows = {}
        for blk in self.blocks:
            netlist = blk.synthesized(library, effort)
            batch = analyze_batch(netlist, library, [None, scenario],
                                  bti=bti, degradation=degradation)
            fresh, aged = batch.critical_paths_ps
            slack = constraint_ps - aged
            rows[blk.name] = BlockTiming(
                name=blk.name, precision=blk.component.precision,
                fresh_ps=fresh, aged_ps=aged, slack_ps=slack,
                relative_slack=slack / constraint_ps)
        return rows

    def with_precisions(self, precisions):
        """New microarchitecture with per-block precisions applied.

        Parameters
        ----------
        precisions:
            Map block name -> precision; omitted blocks stay unchanged.
        """
        blocks = []
        for blk in self.blocks:
            if blk.name in precisions:
                comp = blk.component.with_precision(precisions[blk.name])
                blocks.append(blk.with_component(comp))
            else:
                blocks.append(blk.with_component(blk.component))
        return Microarchitecture(self.name + "_approx", blocks,
                                 metadata=self.metadata)

    def area_um2(self, library, effort="ultra"):
        """Total area over all blocks (weighted by instance counts)."""
        return sum(blk.instances
                   * blk.synthesized(library, effort).area(library)
                   for blk in self.blocks)

    def __repr__(self):
        return "Microarchitecture(%r, blocks=%s)" % (
            self.name, [b.name for b in self.blocks])


@dataclass
class BlockDecision:
    """Approximation decision for one block (one Fig. 6 iteration)."""

    name: str
    original_precision: int
    chosen_precision: int
    slack_before_ps: float
    slack_after_ps: float
    relative_slack: float
    from_library: bool

    @property
    def approximated(self):
        return self.chosen_precision < self.original_precision


@dataclass
class ApproximationOutcome:
    """Result of :func:`apply_aging_approximations`.

    Attributes
    ----------
    design:
        The approximated :class:`Microarchitecture`.
    constraint_ps:
        The timing constraint ``t_CP(noAging)`` all blocks must meet.
    decisions:
        Per-block :class:`BlockDecision` records.
    residual_guardband_ps:
        Extra clock period still required after approximation (0 in the
        expected case; the paper notes it is "very small" otherwise).
    validated:
        True when every aged block meets the constraint without any
        residual guardband.
    iterations:
        Number of validate/refine rounds executed.
    """

    design: Microarchitecture
    constraint_ps: float
    decisions: Dict[str, BlockDecision]
    residual_guardband_ps: float
    validated: bool
    iterations: int

    @property
    def precision_map(self):
        return {name: d.chosen_precision for name, d in self.decisions.items()}


def apply_aging_approximations(micro, library, scenario, approx_library,
                               effort="ultra", bti=DEFAULT_BTI,
                               degradation=None, max_refinements=8,
                               quality_check=None, rule="eq2", jobs=None):
    """Convert aging guardbands of *micro* into precision reductions.

    Parameters
    ----------
    micro:
        The microarchitecture to protect.
    library:
        Cell library.
    scenario:
        End-of-life aging scenario to compensate (e.g. 10y worst case).
    approx_library:
        :class:`~repro.core.library.AgingApproximationLibrary` with
        pre-characterized entries for every component family used. Missing
        entries are characterized on the fly (uniform-stress scenarios
        only).
    quality_check:
        Optional callable ``design -> bool``; when it returns False the
        flow backs off one precision step on the most-approximated block
        (the paper's "if final quality is not sufficient, precision can
        be increased and a resulting guardband be similarly added").
    jobs:
        Worker processes for on-the-fly characterizations (forwarded to
        :func:`~repro.core.characterize.characterize`; None defers to
        ``REPRO_JOBS``).
    rule:
        Precision-selection rule for violating blocks.

        * ``"eq2"`` (default): pick the largest precision whose aged
          component delay meets the design constraint directly — exact
          when a block contains nothing but its database component, as
          in our microarchitectures.
        * ``"relative"``: the paper's literal relative-slack rule
          ``t_Cj(Aging, P_j) <= (1 + relSlack) * t_Cj(noAging, N_j)``,
          which additionally budgets for glue/steering logic around the
          component and is therefore more conservative here.

    Returns
    -------
    ApproximationOutcome
    """
    if rule not in ("eq2", "relative"):
        raise ValueError("rule must be 'eq2' or 'relative', got %r" % rule)
    from .characterize import characterize  # local import: avoid cycle

    constraint = micro.timing_constraint_ps(library, effort)
    before = micro.timing(library, scenario=scenario,
                          constraint_ps=constraint, effort=effort,
                          bti=bti, degradation=degradation)

    decisions = {}
    precisions = {}
    for blk in micro.blocks:
        timing = before[blk.name]
        full = blk.component.precision
        if not timing.violates:
            decisions[blk.name] = BlockDecision(
                name=blk.name, original_precision=full,
                chosen_precision=full, slack_before_ps=timing.slack_ps,
                slack_after_ps=timing.slack_ps,
                relative_slack=timing.relative_slack, from_library=True)
            continue
        entry = approx_library.get(blk.component)
        if entry is None:
            entry = characterize(blk.component, library,
                                 scenarios=[scenario], effort=effort,
                                 bti=bti, degradation=degradation,
                                 jobs=jobs)
            approx_library.add(entry)
        elif not entry.has_scenario(scenario.label):
            # Cached entry from another lifetime/stress: extend it.
            entry.merge(characterize(
                blk.component, library, scenarios=[scenario],
                precisions=entry.precisions, effort=effort, bti=bti,
                degradation=degradation, jobs=jobs))
        if rule == "relative":
            # Paper's literal relative-slack rule: pick P_j with
            # t_Cj(Aging, P_j) <= (1 + relSlack) * t_Cj(noAging, N_j).
            target = (1.0 + timing.relative_slack) * entry.fresh_delay_ps()
        else:
            # Eq. 2 applied at the design constraint (block == component).
            target = constraint
        chosen = entry.required_precision(scenario.label, target_ps=target)
        if chosen is None:
            chosen = min(entry.precisions)
        precisions[blk.name] = chosen
        decisions[blk.name] = BlockDecision(
            name=blk.name, original_precision=full, chosen_precision=chosen,
            slack_before_ps=timing.slack_ps, slack_after_ps=float("nan"),
            relative_slack=timing.relative_slack, from_library=True)

    # Validation / refinement loop (bottom of Fig. 6).
    iterations = 0
    design = micro.with_precisions(precisions)
    while True:
        iterations += 1
        after = design.timing(library, scenario=scenario,
                              constraint_ps=constraint, effort=effort,
                              bti=bti, degradation=degradation)
        worst = min(after.values(), key=lambda t: t.slack_ps)
        quality_ok = quality_check(design) if quality_check else True
        if worst.slack_ps >= 0 and quality_ok:
            residual = 0.0
            break
        if iterations > max_refinements:
            residual = max(0.0, -worst.slack_ps)
            break
        if worst.slack_ps < 0 and worst.name in precisions \
                and precisions[worst.name] > 1:
            # Timing still violated: reduce the offender further.
            precisions[worst.name] -= 1
        elif not quality_ok:
            # Quality violated: back off the deepest reduction; timing
            # is then covered by a residual guardband on exit.
            name = min(decisions, key=lambda n: precisions.get(
                n, decisions[n].original_precision))
            if name not in precisions \
                    or precisions[name] >= decisions[name].original_precision:
                residual = max(0.0, -worst.slack_ps)
                break
            precisions[name] += 1
        else:
            residual = max(0.0, -worst.slack_ps)
            break
        design = micro.with_precisions(precisions)

    for name, timing in after.items():
        decisions[name].slack_after_ps = timing.slack_ps
        decisions[name].chosen_precision = precisions.get(
            name, decisions[name].original_precision)

    return ApproximationOutcome(
        design=design, constraint_ps=constraint, decisions=decisions,
        residual_guardband_ps=residual,
        validated=residual == 0.0, iterations=iterations)
