"""End-to-end convenience flows.

Glues the pieces together for the paper's evaluation:

* :func:`remove_guardband` — take a microarchitecture, convert its aging
  guardband into precision reductions, and report the resulting delays
  (the Fig. 8(a) comparison).
* :func:`compare_with_baseline` — efficiency comparison of the
  guardband-free approximated design against the aging-aware-synthesis
  baseline [4] (the Fig. 8(c) savings).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..aging.bti import DEFAULT_BTI
from ..obs import logs, trace as obs_trace
from ..power.power import PowerReport, dynamic_power_uw
from ..sim.activity import operand_stream_bits, simulate_activity
from ..sta.engine import analyze_batch
from ..sta.sta import critical_path_delay
from ..synth.aging_aware import aging_aware_synthesize
from .library import AgingApproximationLibrary
from .microarch import ApproximationOutcome, apply_aging_approximations

_log = logs.get_logger("core.flow")


@dataclass
class GuardbandRemovalReport:
    """Everything :func:`remove_guardband` learned.

    Attributes
    ----------
    outcome:
        The :class:`~repro.core.microarch.ApproximationOutcome` (chosen
        precisions, validation status).
    constraint_ps:
        The fresh-design timing constraint (the clock both designs keep).
    original_delays_ps / approximated_delays_ps:
        Design-level delay (max over blocks) per scenario label, for the
        aging-unaware original and the approximated design — the two
        Fig. 8(a) bar groups.
    """

    outcome: ApproximationOutcome
    constraint_ps: float
    original_delays_ps: Dict[str, float]
    approximated_delays_ps: Dict[str, float]

    @property
    def meets_constraint(self):
        """True when the approximated design never exceeds the fresh clock."""
        return all(d <= self.constraint_ps * (1 + 1e-9)
                   for d in self.approximated_delays_ps.values())


def design_delay_ps(micro, library, scenario=None, effort="ultra",
                    bti=DEFAULT_BTI, degradation=None):
    """Design-level delay: the slowest block under *scenario*."""
    return max(critical_path_delay(blk.synthesized(library, effort),
                                   library, scenario=scenario, bti=bti,
                                   degradation=degradation)
               for blk in micro.blocks)


def design_delays_ps(micro, library, scenarios, effort="ultra",
                     bti=DEFAULT_BTI, degradation=None):
    """Design-level delay per corner, batched.

    Analyzes every block once under *all* corners through one compiled
    timing program per block (:func:`repro.sta.engine.analyze_batch`)
    instead of one scalar STA per ``(block, scenario)`` pair. ``None``
    entries denote the fresh corner. Returns a map from scenario label
    to the max-over-blocks delay, bit-identical to calling
    :func:`design_delay_ps` per scenario.
    """
    corners, labels, seen = [], [], set()
    for scenario in scenarios:
        label = scenario.label if scenario is not None else "fresh"
        if label in seen:
            continue
        seen.add(label)
        corners.append(scenario)
        labels.append(label)
    delays = dict.fromkeys(labels, 0.0)
    for blk in micro.blocks:
        batch = analyze_batch(blk.synthesized(library, effort), library,
                              corners, bti=bti, degradation=degradation)
        for label, cp in zip(labels, batch.critical_paths_ps):
            if cp > delays[label]:
                delays[label] = cp
    return delays


def remove_guardband(micro, library, design_scenario, report_scenarios=(),
                     approx_library=None, effort="ultra", bti=DEFAULT_BTI,
                     degradation=None, quality_check=None, jobs=None):
    """Convert *micro*'s aging guardband into approximations and report.

    Parameters
    ----------
    micro:
        The microarchitecture to protect.
    design_scenario:
        The end-of-life scenario the approximations must compensate
        (the paper designs for 10 years of worst-case aging).
    report_scenarios:
        Additional scenarios to tabulate delays for (Fig. 8(a) shows
        Initial / 1y WC / 10y WC / 10y AC).
    approx_library:
        Pre-built :class:`~repro.core.library.
        AgingApproximationLibrary`; a fresh one is created (and filled
        on demand) when omitted.
    jobs:
        Worker processes for on-the-fly characterizations (None defers
        to ``REPRO_JOBS``; 1 is the deterministic serial default).

    Returns
    -------
    GuardbandRemovalReport
    """
    if approx_library is None:
        approx_library = AgingApproximationLibrary()
    _log.info("removing guardband of %s (%d blocks) for %s",
              micro.name, len(micro.blocks), design_scenario.label)
    with obs_trace.span("flow.remove_guardband", design=micro.name,
                        blocks=len(micro.blocks),
                        scenario=design_scenario.label):
        with obs_trace.span("flow.approximate"):
            outcome = apply_aging_approximations(
                micro, library, design_scenario, approx_library,
                effort=effort, bti=bti, degradation=degradation,
                quality_check=quality_check, jobs=jobs)

        scenarios = [None, design_scenario] + list(report_scenarios)
        with obs_trace.span("flow.report_delays",
                            scenarios=len(scenarios)):
            original = design_delays_ps(
                micro, library, scenarios, effort=effort, bti=bti,
                degradation=degradation)
            approximated = design_delays_ps(
                outcome.design, library, scenarios, effort=effort,
                bti=bti, degradation=degradation)
    _log.info("guardband removal %s: residual %.2f ps after %d "
              "iteration(s)",
              "validated" if outcome.validated else "NOT validated",
              outcome.residual_guardband_ps, outcome.iterations)
    return GuardbandRemovalReport(
        outcome=outcome, constraint_ps=outcome.constraint_ps,
        original_delays_ps=original, approximated_delays_ps=approximated)


# ---------------------------------------------------------------------------
# Efficiency comparison against the aging-aware synthesis baseline [4]
# ---------------------------------------------------------------------------

def microarchitecture_power(blocks_netlists, library, clock_ps,
                            activity_vectors):
    """Aggregate a :class:`~repro.power.power.PowerReport` over blocks.

    Parameters
    ----------
    blocks_netlists:
        List of ``(block, netlist)`` pairs; each block contributes
        ``block.instances`` copies.
    clock_ps:
        Clock period for dynamic power.
    activity_vectors:
        Map block name -> PI bit matrix used to extract toggle rates.
    """
    area = leakage = dynamic = 0.0
    for block, netlist in blocks_netlists:
        report = simulate_activity(netlist, library,
                                   activity_vectors[block.name])
        dyn = dynamic_power_uw(netlist, library, report.toggle_rate,
                               clock_ps)
        area += block.instances * netlist.area(library)
        leakage += block.instances * netlist.leakage(library)
        dynamic += block.instances * dyn
    return PowerReport(area_um2=area, leakage_nw=leakage,
                       dynamic_uw=dynamic, clock_ps=clock_ps)


@dataclass
class BaselineComparison:
    """Fig. 8(c): our approximated design vs aging-aware synthesis [4].

    ``ratios`` holds ours/baseline for frequency, leakage, dynamic,
    energy, area (frequency > 1 and the rest < 1 reproduce the paper's
    savings).
    """

    ours: PowerReport
    baseline: PowerReport
    ratios: Dict[str, float]
    baseline_guardband_ps: float


def compare_with_baseline(micro, outcome, library, scenario, effort="ultra",
                          bti=DEFAULT_BTI, degradation=None,
                          activity_count=512, rng_seed=2017,
                          area_budget_ratio=1.15):
    """Build the [4]-style hardened baseline and compare efficiency.

    The baseline hardens each block by gate sizing against aged timing
    (bounded area budget) and must still clock at its aged critical path
    (its residual guardband). Our design clocks at the original fresh
    constraint with precision-reduced blocks.
    """
    from ..power.power import savings

    constraint = outcome.constraint_ps
    rng = np.random.default_rng(rng_seed)

    with obs_trace.span("flow.compare_with_baseline", design=micro.name,
                        scenario=scenario.label):
        activity = {}
        for blk in micro.blocks:
            operands = blk.component.random_operands(activity_count,
                                                     rng=rng)
            activity[blk.name] = operand_stream_bits(
                operands, blk.component.operand_widths)

        # Ours: the approximated blocks at the fresh clock.
        ours_pairs = [(blk, blk.synthesized(library, effort))
                      for blk in outcome.design.blocks]
        ours = microarchitecture_power(ours_pairs, library, constraint,
                                       activity)

        # Baseline: every original block hardened for the scenario;
        # clocked at its end-of-life critical path (the remaining
        # guardband).
        baseline_pairs = []
        baseline_aged = 0.0
        for blk in micro.blocks:
            hardened = aging_aware_synthesize(
                blk.component, library, scenario, target_ps=constraint,
                bti=bti, degradation=degradation,
                area_budget_ratio=area_budget_ratio)
            baseline_pairs.append((blk, hardened.netlist))
            baseline_aged = max(baseline_aged, hardened.aged_delay_ps)
        baseline_clock = max(constraint, baseline_aged)
        baseline = microarchitecture_power(baseline_pairs, library,
                                           baseline_clock, activity)

    return BaselineComparison(
        ours=ours, baseline=baseline, ratios=savings(ours, baseline),
        baseline_guardband_ps=baseline_clock - constraint)
