"""Textual component / scenario specs shared by the CLI and the server.

One place understands the compact spellings users type — ``mult16``,
``adder8``, ``worst10y``, ``10y_worst``, ``fresh`` — so the command line
(:mod:`repro.cli`) and the characterization service
(:mod:`repro.serve`) accept exactly the same vocabulary and fail with
the same diagnostics. Parsing errors raise :class:`SpecError` (a
``ValueError``); callers translate that into ``SystemExit`` (CLI) or an
HTTP 400 (server).
"""

import re

from ..aging import balance_case, fresh, worst_case

#: Registry of component constructors by their canonical CLI name.
#: Populated lazily (:func:`component_registry`) because ``repro.rtl``
#: imports the synthesis stack.
_COMPONENTS = None

#: Short component spellings accepted in compact ``<name><width>`` specs.
COMPONENT_ALIASES = {
    "add": "adder",
    "mult": "multiplier",
    "mul": "multiplier",
}

#: Synthesis efforts accepted everywhere a spec names one.
EFFORTS = ("low", "medium", "high", "ultra")


class SpecError(ValueError):
    """A textual spec that does not parse; the message is user-facing."""


def component_registry():
    """The ``{name: component class}`` registry behind compact specs."""
    global _COMPONENTS
    if _COMPONENTS is None:
        from ..rtl import (Adder, BoothMultiplier, CarrySelectAdder,
                           CarrySkipAdder, KoggeStoneAdder, Multiplier,
                           MultiplyAccumulate, RippleCarryAdder)
        _COMPONENTS = {
            "adder": Adder,
            "rca": RippleCarryAdder,
            "ksa": KoggeStoneAdder,
            "csel": CarrySelectAdder,
            "cskip": CarrySkipAdder,
            "multiplier": Multiplier,
            "booth": BoothMultiplier,
            "mac": MultiplyAccumulate,
        }
    return _COMPONENTS


def parse_component(spec, width=None, precision=None):
    """Resolve a component spec to an instance.

    Accepts plain registry names (``multiplier``, using *width*, default
    32) and compact ``<name><width>`` spellings (``mult16``, ``adder8``)
    that override *width*. Raises :class:`SpecError` for unknown names.
    """
    registry = component_registry()
    name = str(spec)
    if name not in registry:
        match = re.match(r"^([a-z_]+?)(\d+)$", name)
        if match:
            name, width = match.group(1), int(match.group(2))
    name = COMPONENT_ALIASES.get(name, name)
    try:
        cls = registry[name]
    except KeyError:
        raise SpecError(
            "unknown component %r (choose from %s, or a compact spec "
            "like mult16 / adder8)"
            % (spec, ", ".join(sorted(registry))))
    width = 32 if width is None else int(width)
    if width < 1:
        raise SpecError("component width must be >= 1, got %d" % width)
    return cls(width, precision=precision)


def parse_scenario(spec):
    """One scenario spec: ``fresh``, ``worst10y``/``balance1y`` or the
    characterization-label spelling ``10y_worst``."""
    spec = str(spec)
    if spec == "fresh":
        return fresh()
    match = (re.match(r"^(worst|balance)[-_]?(\d+(?:\.\d+)?)y?$", spec)
             or re.match(r"^(\d+(?:\.\d+)?)y?[-_]?(worst|balance)$", spec))
    if not match:
        raise SpecError(
            "unknown scenario %r (expected e.g. worst10y, balance1y, "
            "10y_worst or fresh)" % spec)
    first, second = match.groups()
    kind, years = ((first, second) if first in ("worst", "balance")
                   else (second, first))
    return (worst_case if kind == "worst" else balance_case)(float(years))


def parse_effort(spec):
    """Validate a synthesis-effort name."""
    effort = str(spec)
    if effort not in EFFORTS:
        raise SpecError("unknown effort %r (choose from %s)"
                        % (spec, ", ".join(EFFORTS)))
    return effort
