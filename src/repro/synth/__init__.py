"""Logic synthesis: optimization passes, sizing, aging-aware baseline."""

from .optimize import (constant_propagation, dead_gate_elimination,
                       optimize, remove_inverter_pairs,
                       structural_hashing)
from .synthesize import (EFFORTS, SynthesisResult, synthesize,
                         synthesize_netlist)
from .sizing import SizingReport, upsize_critical_paths
from .sweep import (SweepSynthesis, clear_sweep_memo, sweep_for,
                    synthesize_variant)
from .aging_aware import AgingAwareResult, aging_aware_synthesize

__all__ = [
    "constant_propagation", "dead_gate_elimination", "optimize",
    "remove_inverter_pairs", "structural_hashing",
    "EFFORTS", "SynthesisResult", "synthesize", "synthesize_netlist",
    "SizingReport", "upsize_critical_paths",
    "SweepSynthesis", "clear_sweep_memo", "sweep_for",
    "synthesize_variant",
    "AgingAwareResult", "aging_aware_synthesize",
]
