"""Top-level synthesis entry point (the Design Compiler stand-in).

``synthesize`` takes an RTL component (or a raw netlist) and produces an
optimized gate-level netlist. The paper synthesizes every circuit "under
the highest optimization effort ('ultra compile')"; the *effort* knob
here controls how many optimization rounds run and whether a timing-
driven sizing pass polishes the critical path.
"""

from dataclasses import dataclass

from ..obs import logs, metrics as obs_metrics, trace as obs_trace
from ..sta.sta import critical_path_delay
from .optimize import optimize
from .sizing import upsize_critical_paths

_log = logs.get_logger("synth")

#: effort name -> (optimization rounds, timing-driven sizing enabled)
EFFORTS = {
    "low": (1, False),
    "medium": (4, False),
    "high": (8, False),
    "ultra": (8, True),
}


@dataclass
class SynthesisResult:
    """Synthesized netlist plus headline metrics.

    Attributes
    ----------
    netlist:
        The optimized netlist.
    delay_ps:
        Fresh critical-path delay.
    area_um2 / leakage_nw:
        Totals under the synthesis library.
    source_gates / final_gates:
        Gate counts before/after optimization.
    """

    netlist: object
    delay_ps: float
    area_um2: float
    leakage_nw: float
    source_gates: int
    final_gates: int


def synthesize(source, library, effort="ultra", target_ps=None):
    """Synthesize *source* and return a :class:`SynthesisResult`.

    Parameters
    ----------
    source:
        An :class:`~repro.rtl.component.RTLComponent` (its ``build()``
        netlist is used) or a :class:`~repro.netlist.netlist.Netlist`
        (copied, the input is not mutated).
    library:
        Target :class:`~repro.cells.library.CellLibrary`.
    effort:
        One of ``"low" | "medium" | "high" | "ultra"``.
    target_ps:
        Optional timing target for the sizing pass at ``"ultra"``
        effort; defaults to a 5% tightening of the post-optimization
        critical path.
    """
    if effort not in EFFORTS:
        raise ValueError("unknown effort %r (have %s)"
                         % (effort, sorted(EFFORTS)))
    rounds, do_sizing = EFFORTS[effort]
    netlist = source.build() if hasattr(source, "_build_core") else source
    netlist = netlist.copy()
    source_gates = netlist.num_gates
    with obs_trace.span("synth.synthesize", design=netlist.name,
                        effort=effort, source_gates=source_gates) as s:
        optimize(netlist, library, max_rounds=rounds)
        if do_sizing:
            # "ultra" sizes for maximum performance by default, mirroring
            # the paper's Synopsys "ultra compile" setting.
            goal = 0.0 if target_ps is None else target_ps
            upsize_critical_paths(netlist, library, goal)
        netlist.validate()
        result = SynthesisResult(
            netlist=netlist,
            delay_ps=critical_path_delay(netlist, library),
            area_um2=netlist.area(library),
            leakage_nw=netlist.leakage(library),
            source_gates=source_gates,
            final_gates=netlist.num_gates,
        )
        if s is not None:
            s.attrs["final_gates"] = result.final_gates
    obs_metrics.inc(obs_metrics.SYNTH_RUNS)
    obs_metrics.observe(obs_metrics.SYNTH_DELAY_PS, result.delay_ps)
    obs_metrics.observe(obs_metrics.SYNTH_AREA_UM2, result.area_um2)
    _log.debug("synthesized %s: %d -> %d gates, %.1f ps, %.1f um^2 "
               "(effort=%s)", netlist.name, source_gates,
               result.final_gates, result.delay_ps, result.area_um2,
               effort)
    return result


def synthesize_netlist(source, library, effort="ultra", target_ps=None):
    """Like :func:`synthesize` but returns only the netlist."""
    return synthesize(source, library, effort=effort,
                      target_ps=target_ps).netlist
