"""Netlist optimization passes.

These passes are the working core of the reproduction's "logic
synthesis" (the stand-in for Synopsys Design Compiler): constant
propagation, algebraic single-gate simplification, inverter/buffer
cleanup and dead-gate elimination. Constant propagation is what turns a
precision reduction (operand LSBs tied to constant 0) into a physically
smaller and faster netlist — the mechanism behind the paper's
area/power/delay savings.

All passes mutate the given netlist in place and return it;
:func:`repro.synth.synthesize.synthesize` works on a copy.
"""

from ..cells.cell import cell_function
from ..netlist.net import CONST0, CONST1, is_const, const_value


def _resolver(subst):
    def resolve(net):
        seen = []
        while net in subst:
            seen.append(net)
            net = subst[net]
        for s in seen:  # path compression
            subst[s] = net
        return net
    return resolve


def _simplify(kind, ins):
    """Single-gate rewrite given resolved inputs.

    Returns one of
    ``("const", value)`` / ``("alias", net)`` / ``("gate", kind, inputs)``.
    """
    vals = [const_value(n) if is_const(n) else None for n in ins]
    if all(v is not None for v in vals):
        return ("const", cell_function(kind)(*vals))

    if kind in ("BUF",):
        return ("alias", ins[0])
    if kind == "INV":
        return ("gate", "INV", tuple(ins))

    if kind in ("AND2", "OR2", "XOR2", "XNOR2", "NAND2", "NOR2"):
        a, b = ins
        va, vb = vals
        if a == b:
            same = {"AND2": ("alias", a), "OR2": ("alias", a),
                    "XOR2": ("const", 0), "XNOR2": ("const", 1),
                    "NAND2": ("gate", "INV", (a,)),
                    "NOR2": ("gate", "INV", (a,))}
            return same[kind]
        if va is None and vb is None:
            return ("gate", kind, (a, b))
        # Exactly one constant input; name it v, the live net x.
        v, x = (va, b) if va is not None else (vb, a)
        rules = {
            ("AND2", 0): ("const", 0), ("AND2", 1): ("alias", x),
            ("OR2", 1): ("const", 1), ("OR2", 0): ("alias", x),
            ("NAND2", 0): ("const", 1), ("NAND2", 1): ("gate", "INV", (x,)),
            ("NOR2", 1): ("const", 0), ("NOR2", 0): ("gate", "INV", (x,)),
            ("XOR2", 0): ("alias", x), ("XOR2", 1): ("gate", "INV", (x,)),
            ("XNOR2", 1): ("alias", x), ("XNOR2", 0): ("gate", "INV", (x,)),
        }
        return rules[(kind, v)]

    if kind == "MUX2":
        a, b, s = ins
        va, vb, vs = vals
        if vs == 0:
            return ("alias", a)
        if vs == 1:
            return ("alias", b)
        if a == b:
            return ("alias", a)
        if va == 0 and vb == 1:
            return ("alias", s)
        if va == 1 and vb == 0:
            return ("gate", "INV", (s,))
        if va == 0:
            return ("gate", "AND2", (b, s))
        if va == 1:
            return ("gate", "OR2", (b, "~s"))  # needs an inverter; keep MUX
        if vb == 1:
            return ("gate", "OR2", (a, s))
        if vb == 0:
            return ("gate", "AND2", (a, "~s"))  # needs an inverter; keep MUX
        return ("gate", "MUX2", (a, b, s))

    if kind == "AOI21":
        a, b, c = ins
        va, vb, vc = vals
        if vc == 1:
            return ("const", 0)
        if vc == 0:
            return ("gate", "NAND2", (a, b))
        if va == 0 or vb == 0:
            return ("gate", "INV", (c,))
        if va == 1:
            return ("gate", "NOR2", (b, c))
        if vb == 1:
            return ("gate", "NOR2", (a, c))
        return ("gate", "AOI21", (a, b, c))

    if kind == "OAI21":
        a, b, c = ins
        va, vb, vc = vals
        if vc == 0:
            return ("const", 1)
        if vc == 1:
            return ("gate", "NOR2", (a, b))
        if va == 1 or vb == 1:
            return ("gate", "INV", (c,))
        if va == 0:
            return ("gate", "NAND2", (b, c))
        if vb == 0:
            return ("gate", "NAND2", (a, c))
        return ("gate", "OAI21", (a, b, c))

    return ("gate", kind, tuple(ins))


def constant_propagation(netlist, library):
    """Fold constants and algebraic identities through the netlist."""
    subst = {}
    resolve = _resolver(subst)
    kept = []
    for gate in netlist.topological_gates():
        ins = tuple(resolve(n) for n in gate.inputs)
        action = _simplify(gate.kind, ins)
        if action[0] == "gate" and "~s" in action[2]:
            # Rewrites that would need a new inverter are not worth it;
            # keep the original (resolved-input) gate.
            action = ("gate", gate.kind, ins)
        if action[0] == "const":
            subst[gate.output] = CONST1 if action[1] else CONST0
        elif action[0] == "alias":
            subst[gate.output] = action[1]
        else:
            __, kind, new_ins = action
            cell = "%s_X%d" % (kind, gate.drive)
            if cell not in library:
                cell = "%s_X1" % kind
            kept.append(gate.with_cell(cell) if cell != gate.cell else gate)
            if new_ins != gate.inputs:
                kept[-1].inputs = tuple(new_ins)
    netlist.rebuild(kept)
    netlist.primary_outputs = [resolve(n) for n in netlist.primary_outputs]
    return netlist


def remove_inverter_pairs(netlist, library):
    """Collapse INV(INV(x)) chains and BUFs into aliases."""
    subst = {}
    resolve = _resolver(subst)
    kept = []
    for gate in netlist.topological_gates():
        ins = tuple(resolve(n) for n in gate.inputs)
        if gate.kind == "BUF":
            subst[gate.output] = ins[0]
            continue
        if gate.kind == "INV":
            driver = netlist.driver_of(ins[0])
            if driver is not None and driver.kind == "INV":
                subst[gate.output] = resolve(driver.inputs[0])
                continue
        if ins != gate.inputs:
            gate.inputs = ins
        kept.append(gate)
    netlist.rebuild(kept)
    netlist.primary_outputs = [resolve(n) for n in netlist.primary_outputs]
    return netlist


_COMMUTATIVE = {"AND2", "OR2", "XOR2", "XNOR2", "NAND2", "NOR2"}


def structural_hashing(netlist, library=None):
    """Merge structurally identical gates (common-subexpression elim).

    Two gates of the same kind reading the same (canonicalized) inputs
    compute the same function; the second one is replaced by an alias to
    the first. Input order of commutative cells is canonicalized by
    sorting. Arithmetic generators produce plenty of shared
    propagate/generate terms, so this pass recovers real area.
    """
    subst = {}
    resolve = _resolver(subst)
    seen = {}
    kept = []
    for gate in netlist.topological_gates():
        ins = tuple(resolve(n) for n in gate.inputs)
        key_ins = tuple(sorted(ins)) if gate.kind in _COMMUTATIVE else ins
        key = (gate.kind, key_ins)
        existing = seen.get(key)
        if existing is not None:
            subst[gate.output] = existing
            continue
        seen[key] = gate.output
        if ins != gate.inputs:
            gate.inputs = ins
        kept.append(gate)
    netlist.rebuild(kept)
    netlist.primary_outputs = [resolve(n) for n in netlist.primary_outputs]
    return netlist


def dead_gate_elimination(netlist, library=None):
    """Drop gates whose outputs cannot reach any primary output."""
    needed = set(netlist.primary_outputs)
    # Walk backwards in reverse topological order.
    for gate in reversed(netlist.topological_gates()):
        if gate.output in needed:
            needed.update(gate.inputs)
    kept = [g for g in netlist.gates if g.output in needed]
    netlist.rebuild(kept)
    return netlist


def optimize(netlist, library, max_rounds=8):
    """Run all passes to a fixpoint (bounded by *max_rounds*)."""
    for __ in range(max_rounds):
        before = netlist.num_gates
        constant_propagation(netlist, library)
        remove_inverter_pairs(netlist, library)
        structural_hashing(netlist, library)
        dead_gate_elimination(netlist, library)
        if netlist.num_gates == before:
            break
    return netlist
