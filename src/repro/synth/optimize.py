"""Netlist optimization passes.

These passes are the working core of the reproduction's "logic
synthesis" (the stand-in for Synopsys Design Compiler): constant
propagation, algebraic single-gate simplification, inverter/buffer
cleanup and dead-gate elimination. Constant propagation is what turns a
precision reduction (operand LSBs tied to constant 0) into a physically
smaller and faster netlist — the mechanism behind the paper's
area/power/delay savings.

All passes mutate the given netlist in place and return it;
:func:`repro.synth.synthesize.synthesize` works on a copy.

Every pass can *journal* what it did — per gate, the entry state and the
outcome (kept with rewired inputs, or substituted away to a constant /
alias / hash representative). :mod:`repro.synth.sweep` replays such a
journal through the fan-out cone of tied-low inputs to derive truncated
variants without re-running the passes over the whole netlist, so the
per-gate decision logic is factored into ``_constprop_step`` /
``_hash_key`` helpers that both the passes and the replay share.
"""

from ..cells.cell import cell_function
from ..netlist.net import CONST0, CONST1, is_const, const_value
from ..obs import metrics as obs_metrics


def _resolver(subst):
    def resolve(net):
        seen = []
        while net in subst:
            seen.append(net)
            net = subst[net]
        for s in seen:  # path compression
            subst[s] = net
        return net
    return resolve


def _simplify(kind, ins):
    """Single-gate rewrite given resolved inputs.

    Returns one of
    ``("const", value)`` / ``("alias", net)`` / ``("gate", kind, inputs)``.
    """
    vals = [const_value(n) if is_const(n) else None for n in ins]
    if all(v is not None for v in vals):
        return ("const", cell_function(kind)(*vals))

    if kind in ("BUF",):
        return ("alias", ins[0])
    if kind == "INV":
        return ("gate", "INV", tuple(ins))

    if kind in ("AND2", "OR2", "XOR2", "XNOR2", "NAND2", "NOR2"):
        a, b = ins
        va, vb = vals
        if a == b:
            same = {"AND2": ("alias", a), "OR2": ("alias", a),
                    "XOR2": ("const", 0), "XNOR2": ("const", 1),
                    "NAND2": ("gate", "INV", (a,)),
                    "NOR2": ("gate", "INV", (a,))}
            return same[kind]
        if va is None and vb is None:
            return ("gate", kind, (a, b))
        # Exactly one constant input; name it v, the live net x.
        v, x = (va, b) if va is not None else (vb, a)
        rules = {
            ("AND2", 0): ("const", 0), ("AND2", 1): ("alias", x),
            ("OR2", 1): ("const", 1), ("OR2", 0): ("alias", x),
            ("NAND2", 0): ("const", 1), ("NAND2", 1): ("gate", "INV", (x,)),
            ("NOR2", 1): ("const", 0), ("NOR2", 0): ("gate", "INV", (x,)),
            ("XOR2", 0): ("alias", x), ("XOR2", 1): ("gate", "INV", (x,)),
            ("XNOR2", 1): ("alias", x), ("XNOR2", 0): ("gate", "INV", (x,)),
        }
        return rules[(kind, v)]

    if kind == "MUX2":
        a, b, s = ins
        va, vb, vs = vals
        if vs == 0:
            return ("alias", a)
        if vs == 1:
            return ("alias", b)
        if a == b:
            return ("alias", a)
        if va == 0 and vb == 1:
            return ("alias", s)
        if va == 1 and vb == 0:
            return ("gate", "INV", (s,))
        if va == 0:
            return ("gate", "AND2", (b, s))
        if va == 1:
            return ("gate", "OR2", (b, "~s"))  # needs an inverter; keep MUX
        if vb == 1:
            return ("gate", "OR2", (a, s))
        if vb == 0:
            return ("gate", "AND2", (a, "~s"))  # needs an inverter; keep MUX
        return ("gate", "MUX2", (a, b, s))

    if kind == "AOI21":
        a, b, c = ins
        va, vb, vc = vals
        if vc == 1:
            return ("const", 0)
        if vc == 0:
            return ("gate", "NAND2", (a, b))
        if va == 0 or vb == 0:
            return ("gate", "INV", (c,))
        if va == 1:
            return ("gate", "NOR2", (b, c))
        if vb == 1:
            return ("gate", "NOR2", (a, c))
        return ("gate", "AOI21", (a, b, c))

    if kind == "OAI21":
        a, b, c = ins
        va, vb, vc = vals
        if vc == 0:
            return ("const", 1)
        if vc == 1:
            return ("gate", "NOR2", (a, b))
        if va == 1 or vb == 1:
            return ("gate", "INV", (c,))
        if va == 0:
            return ("gate", "NAND2", (b, c))
        if vb == 0:
            return ("gate", "NAND2", (a, c))
        return ("gate", "OAI21", (a, b, c))

    return ("gate", kind, tuple(ins))


def _constprop_step(kind, drive, ins, library):
    """Constant-propagation outcome of one gate, given resolved inputs.

    Shared by :func:`constant_propagation` and the sweep replay so both
    apply byte-identical rewrite decisions. Returns ``("k", cell,
    inputs)`` for a kept (possibly remapped) gate or ``("s", net)`` for a
    gate substituted by a constant or alias net.
    """
    action = _simplify(kind, ins)
    if action[0] == "gate" and "~s" in action[2]:
        # Rewrites that would need a new inverter are not worth it;
        # keep the original (resolved-input) gate.
        action = ("gate", kind, ins)
    if action[0] == "const":
        return ("s", CONST1 if action[1] else CONST0)
    if action[0] == "alias":
        return ("s", action[1])
    __, new_kind, new_ins = action
    cell = "%s_X%d" % (new_kind, drive)
    if cell not in library:
        cell = "%s_X1" % new_kind
    return ("k", cell, tuple(new_ins))


_COMMUTATIVE = {"AND2", "OR2", "XOR2", "XNOR2", "NAND2", "NOR2"}


def _hash_key(kind, ins):
    """Structural-hashing key: kind + canonicalized input tuple."""
    return (kind, tuple(sorted(ins)) if kind in _COMMUTATIVE else ins)


class OptimizeJournal:
    """Recording of one :func:`optimize` run for sweep replay.

    ``rounds`` holds one dict per optimization round with the per-pass
    entry lists (``"cp"`` / ``"inv"`` / ``"sh"`` / ``"dge"``) and the
    primary-output list after each substituting pass. Entry tuples are:

    * ``cp`` / ``inv``: ``(uid, out, cell, ins, kept_cell, kept_ins)``
      for kept gates (entry state + post state) or
      ``(uid, out, cell, ins, None, target)`` for substituted gates
      (*target* is the one-step substitution as created);
    * ``sh``: kept as above, substituted gates carry
      ``(uid, out, cell, ins, None, (rep, key_ins))`` — the
      representative net plus the resolved inputs that formed the hash
      key;
    * ``dge``: ``(uid, out, cell, ins, kept_bool)``.
    """

    def __init__(self):
        self.rounds = []

    def begin_round(self):
        rec = {"cp": [], "inv": [], "sh": [], "dge": [],
               "po": {}, "count_after": None}
        self.rounds.append(rec)
        return rec


def constant_propagation(netlist, library, record=None, po_record=None):
    """Fold constants and algebraic identities through the netlist."""
    subst = {}
    resolve = _resolver(subst)
    kept = []
    for gate in netlist.topological_gates():
        ins = tuple(resolve(n) for n in gate.inputs)
        step = _constprop_step(gate.kind, gate.drive, ins, library)
        if step[0] == "s":
            subst[gate.output] = step[1]
            if record is not None:
                record.append((gate.uid, gate.output, gate.cell,
                               gate.inputs, None, step[1]))
        else:
            __, cell, new_ins = step
            if record is not None:
                record.append((gate.uid, gate.output, gate.cell,
                               gate.inputs, cell, new_ins))
            kept.append(gate.with_cell(cell) if cell != gate.cell else gate)
            if new_ins != gate.inputs:
                kept[-1].inputs = new_ins
    netlist.rebuild(kept)
    netlist.primary_outputs = [resolve(n) for n in netlist.primary_outputs]
    if po_record is not None:
        po_record["cp"] = list(netlist.primary_outputs)
    return netlist


def remove_inverter_pairs(netlist, library, record=None, po_record=None):
    """Collapse INV(INV(x)) chains and BUFs into aliases."""
    subst = {}
    resolve = _resolver(subst)
    kept = []
    for gate in netlist.topological_gates():
        ins = tuple(resolve(n) for n in gate.inputs)
        if gate.kind == "BUF":
            subst[gate.output] = ins[0]
            if record is not None:
                record.append((gate.uid, gate.output, gate.cell,
                               gate.inputs, None, ins[0]))
            continue
        if gate.kind == "INV":
            driver = netlist.driver_of(ins[0])
            if driver is not None and driver.kind == "INV":
                target = resolve(driver.inputs[0])
                subst[gate.output] = target
                if record is not None:
                    record.append((gate.uid, gate.output, gate.cell,
                                   gate.inputs, None, target))
                continue
        if record is not None:
            record.append((gate.uid, gate.output, gate.cell, gate.inputs,
                           gate.cell, ins))
        if ins != gate.inputs:
            gate.inputs = ins
        kept.append(gate)
    netlist.rebuild(kept)
    netlist.primary_outputs = [resolve(n) for n in netlist.primary_outputs]
    if po_record is not None:
        po_record["inv"] = list(netlist.primary_outputs)
    return netlist


def structural_hashing(netlist, library=None, record=None, po_record=None):
    """Merge structurally identical gates (common-subexpression elim).

    Two gates of the same kind reading the same (canonicalized) inputs
    compute the same function; the second one is replaced by an alias to
    the first. Input order of commutative cells is canonicalized by
    sorting. Arithmetic generators produce plenty of shared
    propagate/generate terms, so this pass recovers real area.
    """
    subst = {}
    resolve = _resolver(subst)
    seen = {}
    kept = []
    for gate in netlist.topological_gates():
        ins = tuple(resolve(n) for n in gate.inputs)
        key = _hash_key(gate.kind, ins)
        existing = seen.get(key)
        if existing is not None:
            subst[gate.output] = existing
            if record is not None:
                record.append((gate.uid, gate.output, gate.cell,
                               gate.inputs, None, (existing, key[1])))
            continue
        seen[key] = gate.output
        if record is not None:
            record.append((gate.uid, gate.output, gate.cell, gate.inputs,
                           gate.cell, ins))
        if ins != gate.inputs:
            gate.inputs = ins
        kept.append(gate)
    netlist.rebuild(kept)
    netlist.primary_outputs = [resolve(n) for n in netlist.primary_outputs]
    if po_record is not None:
        po_record["sh"] = list(netlist.primary_outputs)
    return netlist


def dead_gate_elimination(netlist, library=None, record=None):
    """Drop gates whose outputs cannot reach any primary output."""
    needed = set(netlist.primary_outputs)
    # Walk backwards in reverse topological order.
    for gate in reversed(netlist.topological_gates()):
        if gate.output in needed:
            needed.update(gate.inputs)
    if record is not None:
        for gate in netlist.gates:
            record.append((gate.uid, gate.output, gate.cell, gate.inputs,
                           gate.output in needed))
    kept = [g for g in netlist.gates if g.output in needed]
    netlist.rebuild(kept)
    return netlist


def optimize(netlist, library, max_rounds=8, journal=None):
    """Run all passes to a fixpoint (bounded by *max_rounds*).

    When *journal* (an :class:`OptimizeJournal`) is given, every pass
    application is recorded for cone-restricted replay by
    :mod:`repro.synth.sweep`.
    """
    for __ in range(max_rounds):
        before = netlist.num_gates
        rec = journal.begin_round() if journal is not None else None
        if rec is None:
            constant_propagation(netlist, library)
            after_cp = netlist.num_gates
            remove_inverter_pairs(netlist, library)
            structural_hashing(netlist, library)
            after_sh = netlist.num_gates
            dead_gate_elimination(netlist, library)
        else:
            constant_propagation(netlist, library, record=rec["cp"],
                                 po_record=rec["po"])
            after_cp = netlist.num_gates
            remove_inverter_pairs(netlist, library, record=rec["inv"],
                                  po_record=rec["po"])
            structural_hashing(netlist, library, record=rec["sh"],
                               po_record=rec["po"])
            after_sh = netlist.num_gates
            dead_gate_elimination(netlist, library, record=rec["dge"])
            rec["count_after"] = netlist.num_gates
        obs_metrics.inc(obs_metrics.SYNTH_CONSTPROP_REWRITES,
                        before - after_cp)
        obs_metrics.inc(obs_metrics.SYNTH_DEAD_GATES,
                        after_sh - netlist.num_gates)
        if netlist.num_gates == before:
            break
    return netlist
