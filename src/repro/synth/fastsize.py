"""Array-compiled timing-driven sizing (exact fast path).

:func:`repro.synth.sizing.upsize_critical_paths` runs one full STA
compile per sizing round — for a multi-thousand-gate multiplier that is
the dominant cost of ``"ultra"``-effort synthesis. This module lowers
the netlist into a :class:`SizerProgram` once and then:

* re-propagates arrivals **incrementally** per round: only gates whose
  delay changed (upsized cells and their fan-in drivers, whose loads
  changed) and the slots downstream of them are recomputed;
* computes required times / slacks as vectorized level sweeps;
* derives the program of a *truncated variant* by **patching** a base
  program (:func:`patch_sizer`) instead of recompiling: rows are
  dropped/overridden/appended and loads, levels and delays are
  recomputed only where the deltas touch them.

Everything is **bit-identical** to the scalar pass: loads are summed in
the exact gate-list order of :meth:`Netlist.load_caps`, delays come from
the same ``cell.delay_ps(load)`` calls, arrival propagation performs the
same IEEE-754 max/add (unchanged gates keep their previous — equal —
values), and candidate selection replays the scalar loop's sorted-uid
order, margins, stall and round limits. ``repro.synth.sweep`` relies on
this exactness for fingerprint-equal sweep-vs-scratch synthesis;
``tests/test_synth_sweep.py`` enforces it.
"""

import heapq
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..obs import metrics as obs_metrics
from .sizing import SizingReport

#: Global pin-count pad; every library cell has at most 3 inputs
#: (MUX2/AOI21/OAI21). Padding uses slot 0 (CONST0, arrival 0.0) — the
#: same identity the scalar max-loop starts from.
_MAX_PINS = 3


@dataclass
class SizerProgram:
    """A netlist lowered for incremental sizing rounds.

    Per-row arrays follow the netlist's gate-list order (which the
    synthesis pipeline keeps raw-position ascending). ``readers`` maps a
    net to ``(uid, pin_count)`` pairs in gate-list order — uid-keyed so
    the index survives row renumbering during :func:`patch_sizer`.
    """

    netlist: object
    library: object
    n: int
    uids: np.ndarray                  # (n,) int64
    uid_row: Dict[int, int]
    cellnames: List[str]
    cells: List                       # Cell objects, per row
    ins: List[tuple]                  # input net tuples, per row
    out_net: List[int]
    out_slot: np.ndarray              # (n,) int64
    in_slots: np.ndarray              # (n, _MAX_PINS) int64, slot-0 padded
    row_level: np.ndarray             # (n,) int64
    incap: List[float]                # per-row cell input cap (fF)
    loads: np.ndarray                 # (n,) float64
    delay: np.ndarray                 # (n,) float64 fresh delays
    slots: int
    slot_of: Dict[int, int]
    slot_level: np.ndarray            # (slots,) int64 (PIs/consts at 0)
    po_slots: np.ndarray
    po_count: Dict[int, int]          # net -> multiplicity in PO list
    readers: Dict[int, list]          # net -> [(uid, pins)] in list order
    driver_row: Dict[int, int]        # net -> driving row
    level_order: np.ndarray = field(default=None)   # rows by (level, pos)
    level_bounds: List = field(default=None)        # [(start, end)] slices

    def finish(self):
        """(Re)build the level schedule from ``row_level``."""
        order = np.argsort(self.row_level, kind="stable").astype(np.int64)
        self.level_order = order
        bounds = []
        if self.n:
            lv = self.row_level[order]
            cut = np.flatnonzero(lv[1:] != lv[:-1]) + 1
            starts = np.concatenate(([0], cut))
            ends = np.concatenate((cut, [self.n]))
            bounds = list(zip(starts.tolist(), ends.tolist()))
        self.level_bounds = bounds
        return self

    def clone(self):
        """Copy with private cells/loads/delays (structure shared).

        :func:`upsize_fast` mutates exactly ``cellnames`` / ``cells`` /
        ``incap`` / ``loads`` / ``delay``; cloning before sizing
        preserves the pre-sizing program for :func:`patch_sizer` while
        the clone absorbs the sizing mutations. Everything else (slots,
        levels, readers, schedules) is upsizing-invariant and shared.
        """
        return SizerProgram(
            netlist=self.netlist, library=self.library, n=self.n,
            uids=self.uids, uid_row=self.uid_row,
            cellnames=list(self.cellnames), cells=list(self.cells),
            ins=self.ins, out_net=self.out_net, out_slot=self.out_slot,
            in_slots=self.in_slots, row_level=self.row_level,
            incap=list(self.incap),
            loads=self.loads.copy(), delay=self.delay.copy(),
            slots=self.slots, slot_of=self.slot_of,
            slot_level=self.slot_level, po_slots=self.po_slots,
            po_count=self.po_count, readers=self.readers,
            driver_row=self.driver_row,
            level_order=self.level_order, level_bounds=self.level_bounds)


def _gate_load(program, row):
    """Output load of one row, summed in exact ``load_caps`` order."""
    library = program.library
    wire = library.wire_cap_ff
    out = program.out_net[row]
    pc = program.po_count.get(out, 0)
    total = library.output_load_ff * pc
    incap = program.incap
    uid_row = program.uid_row
    for uid, pins in program.readers.get(out, ()):
        if pins == 1:
            total += incap[uid_row[uid]] + wire
        else:
            # ``load_caps`` visits a sink once per pin and adds the
            # *full* multiplicity each time (pins^2 terms for
            # duplicate-pin reads); replicate the exact accumulation
            # for bit equality.
            term = pins * (incap[uid_row[uid]] + wire)
            for __ in range(pins):
                total += term
    return total + wire * pc


def compile_sizer(netlist, library):
    """Lower *netlist* into a :class:`SizerProgram` (fresh delays)."""
    gates = netlist.topological_gates()
    n = len(gates)
    slot_of = {0: 0, 1: 1}
    for net in netlist.primary_inputs:
        slot_of.setdefault(net, len(slot_of))
    for g in gates:
        slot_of.setdefault(g.output, len(slot_of))

    po_count = {}
    for net in netlist.primary_outputs:
        po_count[net] = po_count.get(net, 0) + 1

    readers = {}
    for row, g in enumerate(gates):
        seen = {}
        for net in g.inputs:
            seen[net] = seen.get(net, 0) + 1
        for net, pins in seen.items():
            readers.setdefault(net, []).append((g.uid, pins))

    cells = [library[g.cell] for g in gates]
    prog = SizerProgram(
        netlist=netlist, library=library, n=n,
        uids=np.asarray([g.uid for g in gates], dtype=np.int64),
        uid_row={g.uid: row for row, g in enumerate(gates)},
        cellnames=[g.cell for g in gates],
        cells=cells,
        ins=[g.inputs for g in gates],
        out_net=[g.output for g in gates],
        out_slot=np.asarray([slot_of[g.output] for g in gates],
                            dtype=np.int64),
        in_slots=np.zeros((n, _MAX_PINS), dtype=np.int64),
        row_level=np.zeros(n, dtype=np.int64),
        incap=[c.input_cap_ff for c in cells],
        loads=np.zeros(n, dtype=np.float64),
        delay=np.zeros(n, dtype=np.float64),
        slots=len(slot_of), slot_of=slot_of,
        slot_level=np.zeros(len(slot_of), dtype=np.int64),
        po_slots=np.asarray([slot_of[net]
                             for net in netlist.primary_outputs],
                            dtype=np.int64),
        po_count=po_count, readers=readers,
        driver_row={g.output: row for row, g in enumerate(gates)})

    slot_level = prog.slot_level
    for row, g in enumerate(gates):
        level = 0
        for pin, net in enumerate(g.inputs):
            s = slot_of[net]
            prog.in_slots[row, pin] = s
            lv = slot_level[s]
            if lv > level:
                level = lv
        level += 1
        slot_level[prog.out_slot[row]] = level
        prog.row_level[row] = level
    for row in range(n):
        prog.loads[row] = _gate_load(prog, row)
        prog.delay[row] = prog.cells[row].delay_ps(prog.loads[row])
    return prog.finish()


def propagate_full(program):
    """Levelized arrival propagation (same arithmetic as the STA engine)."""
    arr = np.zeros(program.slots, dtype=np.float64)
    order = program.level_order
    for start, end in program.level_bounds:
        rows = order[start:end]
        at = arr[program.in_slots[rows]].max(axis=1) + program.delay[rows]
        arr[program.out_slot[rows]] = at
    return arr


def _propagate_masked(program, arr, forced_rows):
    """Re-propagate only rows whose delay or any input arrival changed.

    Skipped rows would recompute the identical float, so the result is
    bit-equal to :func:`propagate_full` on the updated program.
    """
    changed = np.zeros(program.slots, dtype=bool)
    order = program.level_order
    for start, end in program.level_bounds:
        rows = order[start:end]
        touched = forced_rows[rows] | changed[program.in_slots[rows]].any(axis=1)
        if not touched.any():
            continue
        rr = rows[touched]
        at = arr[program.in_slots[rr]].max(axis=1) + program.delay[rr]
        outs = program.out_slot[rr]
        diff = at != arr[outs]
        arr[outs] = at
        changed[outs[diff]] = True
    return arr


def critical_path(program, arr):
    """Critical path as the STA engine computes it (clipped at 0)."""
    if not len(program.po_slots):
        return 0.0
    return float(np.maximum(arr[program.po_slots].max(), 0.0))


def _slacks(program, arr, constraint):
    """Per-row slack, float-identical to ``sizing.gate_slacks``."""
    req = np.full(program.slots, np.inf, dtype=np.float64)
    np.minimum.at(req, program.po_slots, constraint)
    order = program.level_order
    for start, end in reversed(program.level_bounds):
        rows = order[start:end]
        budget = req[program.out_slot[rows]] - program.delay[rows]
        np.minimum.at(req, program.in_slots[rows],
                      np.broadcast_to(budget[:, None],
                                      (len(rows), _MAX_PINS)))
    return req[program.out_slot] - arr[program.out_slot]


def upsize_fast(netlist, library, target_ps, program, max_rounds=40,
                slack_margin=0.05, stall_rounds=3):
    """Exact fast replay of ``sizing.upsize_critical_paths``.

    Fresh-silicon sizing only (``scenario=None``, no area budget) — the
    configuration plain synthesis uses. Mutates *netlist* cells exactly
    like the scalar pass and updates *program* in place (cells, loads,
    delays). Returns ``(SizingReport, arrivals, critical_path)`` so
    callers can reuse the final timing without another STA.
    """
    upsized = 0
    best_cp = float("inf")
    stalled = 0
    rounds = 0
    arr = propagate_full(program)
    cp = critical_path(program, arr)
    cellnames = program.cellnames
    cells = program.cells
    incap = program.incap
    loads = program.loads
    delay = program.delay
    driver_row = program.driver_row
    up = library.next_drive_up
    cell_of = library.__getitem__
    while rounds < max_rounds:
        if cp <= target_ps:
            break
        if cp < best_cp - 1e-9:
            best_cp = cp
            stalled = 0
        else:
            stalled += 1
            if stalled >= stall_rounds:
                break
        slack = _slacks(program, arr, cp)
        margin = slack_margin * cp
        cand = np.flatnonzero(slack <= margin)
        # Sorted-uid candidate order, mirroring the canonicalized
        # scalar loop.
        cand = cand[np.argsort(program.uids[cand], kind="stable")]
        changed_rows = []
        for row in cand.tolist():
            stronger = up(cellnames[row])
            if stronger is not None:
                cellnames[row] = stronger
                cell = cell_of(stronger)
                cells[row] = cell
                incap[row] = cell.input_cap_ff
                changed_rows.append(row)
        if not changed_rows:
            break
        upsized += len(changed_rows)
        rounds += 1
        # Upsized cells change their own delay directly and — via input
        # capacitance — the load (hence delay) of their fan-in drivers;
        # everything else recomputes to the identical float.
        fanin = set()
        for row in changed_rows:
            for net in program.ins[row]:
                drow = driver_row.get(net)
                if drow is not None:
                    fanin.add(drow)
        forced = np.zeros(program.n, dtype=bool)
        for row in fanin:
            loads[row] = _gate_load(program, row)
            delay[row] = cells[row].delay_ps(loads[row])
            forced[row] = True
        for row in changed_rows:
            if row not in fanin:
                delay[row] = cells[row].delay_ps(loads[row])
                forced[row] = True
        arr = _propagate_masked(program, arr, forced)
        cp = critical_path(program, arr)
    # The scalar pass mutates gate cells round by round; only the final
    # cells are observable, so apply them once at the end.
    if upsized:
        uid_row = program.uid_row
        for g in netlist.gates:
            g.cell = cellnames[uid_row[g.uid]]
        netlist._topo_cache = None
    _size_metrics(rounds, upsized)
    return (SizingReport(met=cp <= target_ps, target_ps=target_ps,
                         achieved_ps=cp, upsized=upsized, rounds=rounds),
            arr, cp)


def _size_metrics(rounds, upsized):
    obs_metrics.inc(obs_metrics.SYNTH_SIZING_ROUNDS, rounds)
    obs_metrics.inc(obs_metrics.SYNTH_SIZING_UPSIZES, upsized)


def patch_sizer(base, netlist, library, gone_uids, changed_uids,
                extra_uids):
    """Derive the :class:`SizerProgram` of *netlist* from *base*.

    *netlist* must differ from ``base.netlist`` only by: removed gates
    (*gone_uids*), gates with changed cell/inputs (*changed_uids*),
    appended-or-revived gates (*extra_uids*), and its primary-output
    list — exactly the deltas a sweep derive produces. Loads, levels and
    delays are recomputed only where those deltas reach; every untouched
    value is byte-copied from *base*, so the result equals
    :func:`compile_sizer` on *netlist* bit-for-bit.
    """
    gone = set(gone_uids)
    changed = set(changed_uids)
    extra = set(extra_uids)
    gates = netlist.topological_gates()
    n = len(gates)
    uid_row = {g.uid: row for row, g in enumerate(gates)}

    # --- slots: base mapping plus fresh slots for new outputs ---------
    slot_of = dict(base.slot_of)
    for g in gates:
        slot_of.setdefault(g.output, len(slot_of))
    slots = len(slot_of)

    po_count = {}
    for net in netlist.primary_outputs:
        po_count[net] = po_count.get(net, 0) + 1

    # --- per-row metadata: copy clean rows, rebuild dirty ones --------
    dirty = changed | extra
    cellnames = [None] * n
    cells = [None] * n
    incap = [0.0] * n
    ins = [None] * n
    out_net = [None] * n
    out_slot = np.empty(n, dtype=np.int64)
    in_slots = np.zeros((n, _MAX_PINS), dtype=np.int64)
    base_row = base.uid_row
    clean_rows = []
    clean_brs = []
    hb_rows = []        # rows present in base (clean or changed)
    hb_brs = []
    new_rows = []
    for row, g in enumerate(gates):
        out = g.output
        out_net[row] = out
        out_slot[row] = slot_of[out]
        br = base_row.get(g.uid)
        if br is None:
            new_rows.append(row)
        else:
            hb_rows.append(row)
            hb_brs.append(br)
        if g.uid in dirty or br is None:
            cellnames[row] = g.cell
            cell = library[g.cell]
            cells[row] = cell
            incap[row] = cell.input_cap_ff
            ins[row] = g.inputs
            for pin, net in enumerate(g.inputs):
                in_slots[row, pin] = slot_of[net]
        else:
            cellnames[row] = base.cellnames[br]
            cells[row] = base.cells[br]
            incap[row] = base.incap[br]
            ins[row] = base.ins[br]
            clean_rows.append(row)
            clean_brs.append(br)
    if clean_rows:
        crows = np.asarray(clean_rows, dtype=np.int64)
        cbrs = np.asarray(clean_brs, dtype=np.int64)
        in_slots[crows] = base.in_slots[cbrs]
    hb_rows = np.asarray(hb_rows, dtype=np.int64)
    hb_brs = np.asarray(hb_brs, dtype=np.int64)

    prog = SizerProgram(
        netlist=netlist, library=library, n=n,
        uids=np.asarray([g.uid for g in gates], dtype=np.int64),
        uid_row=uid_row, cellnames=cellnames, cells=cells, ins=ins,
        out_net=out_net, out_slot=out_slot, in_slots=in_slots,
        row_level=np.zeros(n, dtype=np.int64),
        incap=incap,
        loads=np.zeros(n, dtype=np.float64),
        delay=np.zeros(n, dtype=np.float64),
        slots=slots, slot_of=slot_of,
        slot_level=np.zeros(slots, dtype=np.int64),
        po_slots=np.asarray([slot_of[net]
                             for net in netlist.primary_outputs],
                            dtype=np.int64),
        po_count=po_count, readers=None, driver_row=None)

    # --- readers: filter base lists, splice in dirty rows' reads ------
    # Affected nets: everything read by a removed/changed row before, or
    # by a changed/extra row now, plus PO-multiplicity diffs.
    affected = set()
    removed_reads = {}
    for uid in gone | changed:
        br = base_row.get(uid)
        if br is not None:
            removed_reads[uid] = True
            affected.update(base.ins[br])
    added = {}
    for row, g in enumerate(gates):
        if g.uid in dirty:
            affected.update(g.inputs)
            seen = {}
            for net in g.inputs:
                seen[net] = seen.get(net, 0) + 1
            for net, pins in seen.items():
                added.setdefault(net, []).append((g.uid, pins))
    for net in set(base.po_count) | set(po_count):
        if base.po_count.get(net) != po_count.get(net):
            affected.add(net)

    readers = _PatchedReaders(base.readers, removed_reads, added, uid_row)
    prog.readers = readers
    prog.driver_row = {g.output: row for row, g in enumerate(gates)}

    # --- levels: copy, then worklist-propagate from dirty rows --------
    slot_level = prog.slot_level
    slot_level[:base.slots] = base.slot_level
    prog.row_level[hb_rows] = base.row_level[hb_brs]
    prog.row_level[new_rows] = -1
    pending = sorted(uid_row[u] for u in dirty if u in uid_row)
    heap = list(pending)
    heapq.heapify(heap)
    queued = set(heap)
    while heap:
        row = heapq.heappop(heap)
        queued.discard(row)
        level = 0
        for net in ins[row]:
            lv = slot_level[slot_of[net]]
            if lv > level:
                level = lv
        level += 1
        if level == prog.row_level[row]:
            continue
        prog.row_level[row] = level
        slot_level[out_slot[row]] = level
        for uid, __ in readers.get(out_net[row], ()):
            r = uid_row.get(uid)
            if r is not None and r not in queued:
                heapq.heappush(heap, r)
                queued.add(r)

    # --- loads and delays: copy, recompute where affected -------------
    prog.loads[hb_rows] = base.loads[hb_brs]
    prog.delay[hb_rows] = base.delay[hb_brs]
    redo = set(new_rows)
    driver_row = prog.driver_row
    for uid in changed:
        row = uid_row.get(uid)
        if row is not None:
            redo.add(row)
    for net in affected:
        row = driver_row.get(net)
        if row is not None:
            redo.add(row)
    for row in redo:
        prog.loads[row] = _gate_load(prog, row)
        prog.delay[row] = prog.cells[row].delay_ps(prog.loads[row])
    return prog.finish()


class _PatchedReaders:
    """Reader index of a patched program, resolved lazily per net.

    ``base`` lists survive unfiltered for untouched nets; nets read by
    removed/changed/added rows merge the filtered base list with the
    dirty rows' current reads, ordered by gate-list position.
    """

    def __init__(self, base, removed_uids, added, uid_row):
        self._base = base
        self._removed = removed_uids
        self._added = added
        self._uid_row = uid_row
        self._memo = {}

    def get(self, net, default=()):
        got = self._memo.get(net)
        if got is not None:
            return got
        uid_row = self._uid_row
        removed = self._removed
        base = self._base.get(net, ())
        add = self._added.get(net)
        if add is None:
            for uid, __ in base:
                if uid in removed or uid not in uid_row:
                    break
            else:
                # untouched net: the base list survives verbatim (reader
                # lists are never mutated, so sharing it is safe)
                self._memo[net] = base
                return base
        entries = [e for e in base
                   if e[0] not in removed and e[0] in uid_row]
        if add is not None:
            entries.extend(e for e in add if e[0] in uid_row)
            entries.sort(key=lambda e: uid_row[e[0]])
        self._memo[net] = entries
        return entries
