"""Incremental sweep synthesis: synthesize once, derive every variant.

A characterization sweep synthesizes the *same* component at a dozen
precisions; each truncated variant differs from the full-precision
netlist only in that some operand LSB inputs are tied to constant 0.
From-scratch synthesis re-runs every optimization pass over every gate
for every precision, even though constant propagation only *does*
anything inside the fan-out cone of the tied inputs — the same
observation :func:`repro.sta.engine.analyze_incremental` exploits for
timing.

This module makes the whole sweep incremental:

1. the full-precision component is synthesized **once**, with every
   optimization pass recording an :class:`~repro.synth.optimize.
   OptimizeJournal` of its per-gate decisions;
2. each truncated variant is derived by **replaying** that journal
   through the cone of divergence only: gates whose inputs (or input
   resolutions, or hash representatives, or liveness refcounts) differ
   from the base run are re-decided with the *same* shared step helpers
   (``_constprop_step`` / ``_hash_key``), everything untouched is
   carried over byte-for-byte;
3. the sizing pass runs on a :func:`~repro.synth.fastsize.patch_sizer`\\
   -derived program instead of a fresh compile, replaying the scalar
   pass's exact upsize sequence.

The derived netlist is **bit-identical** (``repro.core.cache.
netlist_fingerprint``-equal) to ``synthesize(component.with_precision(p)
)`` — same gate uids, cells, input tuples, outputs and gate order — so
downstream consumers (STA, simulation, caching) cannot tell the
difference. ``repro.verify.check_synth_sweep`` and
``tests/test_synth_sweep.py`` enforce the identity; any replay surprise
falls back to scratch synthesis (counted by
``synth.sweep.fallbacks``).

Why replay is exact
-------------------
The passes are deterministic functions of the netlist content, and the
truncated build differs from the base build *only* by a substitution
``phi`` (tied PI nets -> CONST0) applied to gate inputs and primary
outputs — gate uids, outputs and list order are identical (asserted
empirically for every component family; the fallback guards the rest).
Replay maintains, per pass, the delta between variant and base state
(``override``/``extra``/``gone`` gates plus net-resolution differences)
and processes dirty gates in ascending raw-gate-list position — the
exact order the real pass visits them — so every re-decided gate sees
the same resolved inputs the real pass would.
"""

import heapq

from ..netlist.gate import Gate
from ..netlist.net import CONST0
from ..netlist.netlist import Netlist
from ..obs import logs, metrics as obs_metrics, trace as obs_trace
from ..sta.engine import truncated_input_nets
from .fastsize import (compile_sizer, critical_path, patch_sizer,
                       propagate_full, upsize_fast)
from .optimize import OptimizeJournal, _constprop_step, _hash_key, optimize
from .synthesize import EFFORTS, SynthesisResult, synthesize

_log = logs.get_logger("synth.sweep")

#: Substitution sentinel: the variant keeps the gate driving this net
#: (stop chasing), where the base run may have substituted it away.
_KEEP = object()


class SweepFallback(Exception):
    """Raised when a derive cannot (or should not) use journal replay."""


_KIND_MEMO = {}
_DRIVE_MEMO = {}


def _cell_kind(cell):
    """Cell name -> logic kind, replicating :meth:`Gate.kind`."""
    got = _KIND_MEMO.get(cell)
    if got is None:
        base, sep, drive = cell.rpartition("_X")
        got = _KIND_MEMO[cell] = base if (sep and drive.isdigit()) else cell
    return got


def _cell_drive(cell):
    """Cell name -> drive strength, replicating :meth:`Gate.drive`."""
    got = _DRIVE_MEMO.get(cell)
    if got is None:
        base, sep, drive = cell.rpartition("_X")
        got = _DRIVE_MEMO[cell] = (int(drive) if (sep and drive.isdigit())
                                   else 1)
    return got


class _SubstIndex:
    """Lazy per-(round, pass) index over a substitution pass's journal.

    ``readers`` maps a net to the raw positions of entries that store it
    as an input; ``one_step``/``rev`` capture the base substitution
    graph (out -> target and its reverse); ``drv`` maps an output net to
    its entry's uid. For structural hashing, ``key_of`` / ``key_
    positions`` index entries by their base hash key (the first position
    of a key is its base representative).
    """

    __slots__ = ("ents", "readers", "one_step", "rev", "drv",
                 "key_of", "key_positions")

    def __init__(self, entries, raw_pos, sh=False):
        self.ents = ents = {}
        self.readers = readers = {}
        self.one_step = one_step = {}
        self.rev = rev = {}
        self.drv = drv = {}
        self.key_of = key_of = {} if sh else None
        self.key_positions = key_positions = {} if sh else None
        for e in entries:
            uid, out, cell, ins = e[0], e[1], e[2], e[3]
            ents[uid] = e
            drv[out] = uid
            p = raw_pos[uid]
            for n in ins:
                got = readers.get(n)
                if got is None:
                    readers[n] = [p]
                elif got[-1] != p:
                    got.append(p)
            if e[4] is None:
                t = e[5][0] if sh else e[5]
                one_step[out] = t
                rev.setdefault(t, []).append(out)
            if sh:
                key = _hash_key(_cell_kind(cell),
                                e[5] if e[4] is not None else e[5][1])
                key_of[uid] = key
                key_positions.setdefault(key, []).append(p)


class _DgeIndex:
    """Refcount index of one dead-gate-elimination journal pass.

    ``rc`` counts, per net, reads by base-live gates plus primary-output
    occurrences — a gate is live exactly when its output's refcount is
    positive, which is what the real pass's backward reachability
    computes.
    """

    __slots__ = ("ents", "rc", "drv", "kept_count")

    def __init__(self, entries, po_after_sh):
        self.ents = ents = {}
        self.rc = rc = {}
        self.drv = drv = {}
        kept = 0
        rc_get = rc.get
        for e in entries:
            ents[e[0]] = e
            drv[e[1]] = e[0]
            if e[4]:
                kept += 1
                for n in e[3]:
                    rc[n] = rc_get(n, 0) + 1
        for n in po_after_sh:
            rc[n] = rc_get(n, 0) + 1
        self.kept_count = kept


class SweepSynthesis:
    """One synthesized base component plus its replayable journal.

    Synthesizes *component* at full precision on construction (recording
    the optimization journal and the pre-sizing sizer program), then
    :meth:`derive` produces each truncated variant by cone-restricted
    replay. Derived results are memoized per precision; netlists must be
    treated as read-only by callers (same contract as
    ``synthesize_netlist_memoized``).
    """

    def __init__(self, component, library, effort="ultra", target_ps=None):
        if effort not in EFFORTS:
            raise ValueError("unknown effort %r (have %s)"
                             % (effort, sorted(EFFORTS)))
        if component.precision != component.width:
            component = component.with_precision(component.width)
        self.component = component
        self.library = library
        self.effort = effort
        self.target_ps = target_ps
        self._max_rounds, self._do_sizing = EFFORTS[effort]

        raw = component.build()
        self._raw = raw
        self._raw_pos = {g.uid: i for i, g in enumerate(raw.gates)}
        self._uid_at = [g.uid for g in raw.gates]
        self._raw_out = {g.uid: g.output for g in raw.gates}
        self._raw_name = {g.uid: g.name for g in raw.gates}
        self._raw_readers = raw_readers = {}
        for g in raw.gates:
            for n in g.inputs:
                got = raw_readers.get(n)
                if got is None:
                    raw_readers[n] = [g]
                elif got[-1] is not g:
                    got.append(g)
        journal = OptimizeJournal() if raw._list_is_topological() else None

        work = raw.copy()
        source_gates = work.num_gates
        with obs_trace.span("synth.synthesize", design=work.name,
                            effort=effort, source_gates=source_gates) as s:
            optimize(work, library, max_rounds=self._max_rounds,
                     journal=journal)
            # Post-optimize, pre-sizing snapshots: the reference state
            # variant deltas are diffed against (sizing mutates cells in
            # place, so both must be captured here).
            self._bmap = {g.uid: (g.cell, g.inputs) for g in work.gates}
            self._presize = compile_sizer(work, library)
            if self._do_sizing:
                goal = 0.0 if target_ps is None else target_ps
                __, __, delay = upsize_fast(work, library, goal,
                                            self._presize.clone())
            else:
                delay = critical_path(self._presize,
                                      propagate_full(self._presize))
            work.validate()
            self.base_result = SynthesisResult(
                netlist=work, delay_ps=delay,
                area_um2=work.area(library),
                leakage_nw=work.leakage(library),
                source_gates=source_gates, final_gates=work.num_gates)
            if s is not None:
                s.attrs["final_gates"] = work.num_gates
        obs_metrics.inc(obs_metrics.SYNTH_RUNS)
        obs_metrics.observe(obs_metrics.SYNTH_DELAY_PS, delay)
        obs_metrics.observe(obs_metrics.SYNTH_AREA_UM2,
                            self.base_result.area_um2)
        _log.debug("sweep base %s: %d -> %d gates, %.1f ps (effort=%s)",
                   work.name, source_gates, work.num_gates, delay, effort)
        self._journal = journal
        self._idx = {}
        self._derived = {}
        # Pure-step memos shared across rounds and derives: a constprop
        # decision / hash key is a function of (cell, resolved inputs)
        # and the fixed library only.
        self._step_memo = {}
        self._key_memo = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def derive(self, precision):
        """Synthesis result of the component truncated to *precision*.

        Bit-identical to ``synthesize(component.with_precision(
        precision), library, effort, target_ps)``; falls back to exactly
        that call when replay is unavailable or surprises.
        """
        if precision == self.component.width:
            with obs_trace.span("synth.sweep.derive",
                                design=self.component.name,
                                precision=precision, cached=True):
                return self.base_result
        got = self._derived.get(precision)
        if got is not None:
            # Memo-served points still trace: a characterization sweep
            # over a warm base shows one (near-zero) span per point.
            with obs_trace.span("synth.sweep.derive",
                                design=self.component.name,
                                precision=precision, cached=True):
                return got
        try:
            result = self._derive(precision)
        except SweepFallback as exc:
            obs_metrics.inc(obs_metrics.SYNTH_SWEEP_FALLBACKS)
            _log.debug("sweep derive unavailable for %s p=%d (%s); "
                       "synthesizing from scratch",
                       self.component.name, precision, exc)
            result = self._scratch(precision)
        except Exception:
            obs_metrics.inc(obs_metrics.SYNTH_SWEEP_FALLBACKS)
            _log.warning("sweep derive failed for %s p=%d; synthesizing "
                         "from scratch", self.component.name, precision,
                         exc_info=True)
            result = self._scratch(precision)
        self._derived[precision] = result
        return result

    def clear_derived(self):
        """Drop memoized derivations (benchmarks re-time the replay)."""
        self._derived.clear()

    def _scratch(self, precision):
        return synthesize(self.component.with_precision(precision),
                          self.library, effort=self.effort,
                          target_ps=self.target_ps)

    # ------------------------------------------------------------------
    # derive pipeline
    # ------------------------------------------------------------------
    def _derive(self, precision):
        if self._journal is None:
            raise SweepFallback("raw netlist is not list-topological")
        component = self.component
        library = self.library
        tied = set(truncated_input_nets(component, self._raw, precision))
        cone = set()
        with obs_trace.span("synth.sweep.derive", design=component.name,
                            precision=precision) as s:
            netlist, stable, replayed = self._replay(tied, cone)
            if not stable and replayed < self._max_rounds:
                # The base run settled (or journaling stopped) before
                # the variant did; finish with the real passes.
                optimize(netlist, library,
                         max_rounds=self._max_rounds - replayed)
            netlist.name = component.with_precision(precision).name
            vmap = {g.uid: (g.cell, g.inputs) for g in netlist.gates}
            bmap = self._bmap
            prog = patch_sizer(
                self._presize, netlist, library,
                [u for u in bmap if u not in vmap],
                [u for u, st in vmap.items()
                 if u in bmap and bmap[u] != st],
                [u for u in vmap if u not in bmap])
            if self._do_sizing:
                goal = 0.0 if self.target_ps is None else self.target_ps
                __, __, delay = upsize_fast(netlist, library, goal, prog)
            else:
                delay = critical_path(prog, propagate_full(prog))
            result = SynthesisResult(
                netlist=netlist, delay_ps=delay,
                area_um2=netlist.area(library),
                leakage_nw=netlist.leakage(library),
                source_gates=len(self._raw.gates),
                final_gates=netlist.num_gates)
            if s is not None:
                s.attrs["final_gates"] = result.final_gates
                s.attrs["cone_gates"] = len(cone)
        obs_metrics.inc(obs_metrics.SYNTH_RUNS)
        obs_metrics.observe(obs_metrics.SYNTH_DELAY_PS, delay)
        obs_metrics.observe(obs_metrics.SYNTH_AREA_UM2, result.area_um2)
        obs_metrics.inc(obs_metrics.SYNTH_SWEEP_DERIVES)
        obs_metrics.observe(obs_metrics.SYNTH_SWEEP_CONE_GATES, len(cone))
        _log.debug("sweep derived %s: %d gates, %.1f ps, cone=%d",
                   netlist.name, result.final_gates, delay, len(cone))
        return result

    def _replay(self, tied, cone):
        """Replay the journal under the tie-low substitution *tied*.

        Returns ``(netlist, stable, rounds_replayed)`` where *netlist*
        is the materialized variant after the last replayed round and
        *stable* says whether the variant's gate count had settled
        (the real ``optimize`` stopping rule).
        """
        raw = self._raw
        override = {}
        raw_readers = self._raw_readers
        for net in tied:
            for g in raw_readers.get(net, ()):
                if g.uid not in override:
                    override[g.uid] = (g.cell, tuple(
                        CONST0 if n in tied else n for n in g.inputs))
        extra = {}
        gone = set()
        po_v = [CONST0 if n in tied else n for n in raw.primary_outputs]
        prev_count = len(raw.gates)
        stable = False
        last = 0
        for rnum, rec in enumerate(self._journal.rounds):
            last = rnum
            for passname in ("cp", "inv", "sh"):
                idx = self._subst_index(rnum, passname)
                override, extra, gone, po_v = self._replay_subst(
                    passname, idx, override, extra, gone, po_v, cone)
            override, extra, gone, count_v = self._replay_dge(
                self._dge_index(rnum), rec, override, extra, gone, po_v,
                cone)
            if count_v == prev_count:
                stable = True
                break
            prev_count = count_v
        netlist = self._materialize(last, override, extra, gone, po_v)
        return netlist, stable, last + 1

    def _subst_index(self, rnum, passname):
        key = (rnum, passname)
        got = self._idx.get(key)
        if got is None:
            got = _SubstIndex(self._journal.rounds[rnum][passname],
                              self._raw_pos, sh=(passname == "sh"))
            self._idx[key] = got
        return got

    def _dge_index(self, rnum):
        key = (rnum, "dge")
        got = self._idx.get(key)
        if got is None:
            rec = self._journal.rounds[rnum]
            got = _DgeIndex(rec["dge"], rec["po"]["sh"])
            self._idx[key] = got
        return got

    # ------------------------------------------------------------------
    # substitution passes (constprop / inverter cleanup / strhash)
    # ------------------------------------------------------------------
    def _replay_subst(self, passname, idx, override, extra, gone, po_v,
                      cone):
        raw_pos = self._raw_pos
        uid_at = self._uid_at
        raw_out = self._raw_out
        library = self.library
        ents = idx.ents
        ents_get = ents.get
        one_step_get = idx.one_step.get
        rev_get = idx.rev.get
        readers_get = idx.readers.get
        override_get = override.get
        extra_get = extra.get
        step_memo = self._step_memo
        key_memo = self._key_memo
        is_cp = passname == "cp"
        is_sh = passname == "sh"
        heappush = heapq.heappush
        heappop = heapq.heappop

        # Seed positions: every gate whose state diverges from the base
        # (pushed positions are unique, so each pops exactly once).
        pushed = {raw_pos[uid] for uid in override}
        for uid in extra:
            pushed.add(raw_pos[uid])
        if is_sh:
            # A gone gate may have been a hash representative; its later
            # same-key contributors must re-elect one.
            key_of_get = idx.key_of.get
            key_positions = idx.key_positions
            for uid in gone:
                key = key_of_get(uid)
                if key is not None:
                    p0 = raw_pos[uid]
                    for q in key_positions[key]:
                        if q > p0:
                            pushed.add(q)
        heap = list(pushed)
        heapq.heapify(heap)

        def push(p):
            if p not in pushed:
                pushed.add(p)
                heappush(heap, p)

        vsub = {}        # out -> variant one-step target, or _KEEP
        vres = {}        # resolution memo (safe: chases strictly upstream)
        vstate = {}      # uid -> variant kept (cell, ins)
        vdropped = set()
        vclaims = {} if is_sh else None
        extra_out = {raw_out[uid]: uid for uid in extra}
        vsub_get = vsub.get
        vres_get = vres.get
        marked = set()

        def resolve(n):
            got = vres_get(n)
            if got is not None:
                return got
            chain = []
            cur = n
            while True:
                t = vsub_get(cur)
                if t is not None:
                    if t is _KEEP:
                        break
                    chain.append(cur)
                    cur = t
                    continue
                t = one_step_get(cur)
                if t is None:
                    break
                chain.append(cur)
                cur = t
            for m in chain:
                vres[m] = cur
            vres[n] = cur
            return cur

        def mark(n):
            # Every entry whose input-resolution chain passes through a
            # net in the reverse-substitution closure of *n* may decide
            # differently now; push them (always downstream of the
            # current position, so the ascending heap stays valid).
            # ``marked`` memoizes across calls — the closure and reader
            # index are static and pushes are idempotent.
            if n in marked:
                return
            stack = [n]
            while stack:
                m = stack.pop()
                if m in marked:
                    continue
                marked.add(m)
                for q in readers_get(m, ()):
                    push(q)
                rs = rev_get(m)
                if rs:
                    stack.extend(rs)

        cone_add = cone.add
        while heap:
            p = heappop(heap)
            uid = uid_at[p]
            if uid in gone:
                continue
            ent = ents_get(uid)
            st = override_get(uid) or extra_get(uid)
            if st is None:
                if ent is None:
                    continue  # stale mark: not in this pass's input
                st = (ent[2], ent[3])
            cone_add(uid)
            cell_v, ins_v = st
            out = raw_out[uid]
            ins_r = []
            for n in ins_v:
                r = vres_get(n)
                ins_r.append(r if r is not None else resolve(n))
            ins_r = tuple(ins_r)
            key_v = key_b = None

            if is_cp:
                mk = (cell_v, ins_r)
                outcome = step_memo.get(mk)
                if outcome is None:
                    step = _constprop_step(_cell_kind(cell_v),
                                           _cell_drive(cell_v), ins_r,
                                           library)
                    outcome = (("d", step[1]) if step[0] == "s"
                               else ("k", step[1], step[2]))
                    step_memo[mk] = outcome
            elif is_sh:
                mk = (cell_v, ins_r)
                key_v = key_memo.get(mk)
                if key_v is None:
                    key_v = key_memo[mk] = _hash_key(_cell_kind(cell_v),
                                                     ins_r)
                key_b = idx.key_of.get(uid)
                rep = self._sh_rep(idx, key_v, p, gone, vclaims, pushed)
                if rep is not None:
                    outcome = ("d", rep)
                else:
                    vclaims.setdefault(key_v, []).append((p, out))
                    outcome = ("k", cell_v, ins_r)
            else:  # inv
                kind = _cell_kind(cell_v)
                if kind == "BUF":
                    outcome = ("d", ins_r[0])
                elif kind == "INV":
                    target = self._inv_target(idx, ins_r[0], gone,
                                              extra_out, vstate, vdropped,
                                              resolve)
                    outcome = (("d", target) if target is not None
                               else ("k", cell_v, ins_r))
                else:
                    outcome = ("k", cell_v, ins_r)

            if outcome[0] == "d":
                target = outcome[1]
                vsub[out] = target
                vdropped.add(uid)
                base_target = (None if ent is None or ent[4] is not None
                               else (ent[5][0] if is_sh else ent[5]))
                diverged = base_target != target
            else:
                vsub[out] = _KEEP
                vstate[uid] = vst = (outcome[1], outcome[2])
                diverged = (ent is None or ent[4] is None
                            or ent[4] != vst[0] or ent[5] != vst[1])
            if diverged:
                mark(out)
            if is_sh and (diverged or key_v != key_b):
                # The representative election of both keys may shift for
                # everything downstream of this position.
                for key in (key_b, key_v):
                    if key is None:
                        continue
                    for q in idx.key_positions.get(key, ()):
                        if q > p:
                            push(q)

        new_override = {}
        new_extra = {}
        new_gone = set()
        for uid in gone:
            ent = ents_get(uid)
            if ent is not None and ent[4] is not None:
                new_gone.add(uid)
        for uid in vdropped:
            ent = ents_get(uid)
            if ent is not None and ent[4] is not None:
                new_gone.add(uid)
        for uid, st in vstate.items():
            ent = ents_get(uid)
            if ent is None or ent[4] is None:
                new_extra[uid] = st
            elif ent[4] != st[0] or ent[5] != st[1]:
                new_override[uid] = st
        return (new_override, new_extra, new_gone,
                [resolve(n) for n in po_v])

    def _inv_target(self, idx, d_net, gone, extra_out, vstate, vdropped,
                    resolve):
        """Collapse target of an INV reading *d_net*, or None to keep.

        Mirrors the real pass: look at the variant driver's post-pass
        state; a driver that is itself an INV collapses the pair.
        """
        duid = extra_out.get(d_net)
        if duid is None:
            duid = idx.drv.get(d_net)
        if duid is None or duid in gone or duid in vdropped:
            return None
        st = vstate.get(duid)
        if st is None:
            ent = idx.ents.get(duid)
            if ent is None or ent[4] is None:
                return None
            st = (ent[4], ent[5])
        if _cell_kind(st[0]) != "INV":
            return None
        return resolve(st[1][0])

    def _sh_rep(self, idx, key, p, gone, vclaims, pushed):
        """Variant hash representative for *key* upstream of position *p*.

        Candidates: the base representative (first base position of the
        key), valid while clean (never pushed for reprocessing — pushes
        at positions below *p* have all been processed by now) and
        present in the variant, merged with every processed variant
        claim; the earliest wins, exactly like the real pass's
        first-seen rule.
        """
        best_pos = None
        best_out = None
        plist = idx.key_positions.get(key)
        if plist:
            p0 = plist[0]
            if (p0 < p and p0 not in pushed
                    and self._uid_at[p0] not in gone):
                best_pos = p0
                best_out = self._raw_out[self._uid_at[p0]]
        for q, o in vclaims.get(key, ()):
            if q < p and (best_pos is None or q < best_pos):
                best_pos = q
                best_out = o
        return best_out

    # ------------------------------------------------------------------
    # dead-gate elimination
    # ------------------------------------------------------------------
    def _replay_dge(self, idx, rec, override, extra, gone, po_v, cone):
        raw_pos = self._raw_pos
        uid_at = self._uid_at
        raw_out = self._raw_out
        ents = idx.ents
        ents_get = ents.get
        override_get = override.get
        extra_get = extra.get
        rc = idx.rc
        rc_get = rc.get
        drv_get = idx.drv.get
        heappush = heapq.heappush
        heappop = heapq.heappop

        heap = []  # max-heap (negated): liveness flows output-to-input
        pushed = set()
        delta = {}
        delta_get = delta.get
        extra_out = {raw_out[u]: u for u in extra}
        extra_out_get = extra_out.get

        def bump(net, d):
            old = delta_get(net, 0)
            delta[net] = old + d
            base = rc_get(net, 0)
            if (base + old > 0) != (base + old + d > 0):
                duid = extra_out_get(net)
                if duid is None:
                    duid = drv_get(net)
                if duid is not None and duid not in gone:
                    p = raw_pos[duid]
                    if p not in pushed:
                        pushed.add(p)
                        heappush(heap, -p)

        for uid in override:
            pushed.add(raw_pos[uid])
        for uid in extra:
            pushed.add(raw_pos[uid])
        for uid in gone:
            if uid in ents:
                pushed.add(raw_pos[uid])
        heap.extend(-p for p in pushed)
        heapq.heapify(heap)
        pdiff = {}
        for net in po_v:
            pdiff[net] = pdiff.get(net, 0) + 1
        for net in rec["po"]["sh"]:
            pdiff[net] = pdiff.get(net, 0) - 1
        for net, d in pdiff.items():
            if d:
                bump(net, d)

        new_override = {}
        new_extra = {}
        new_gone = set()
        cone_add = cone.add
        while heap:
            p = -heappop(heap)
            uid = uid_at[p]
            ent = ents_get(uid)
            if uid in gone:
                if ent is not None and ent[4]:
                    new_gone.add(uid)
                    rm = {}
                    for net in ent[3]:
                        rm[net] = rm.get(net, 0) + 1
                    for net, m in rm.items():
                        bump(net, -m)
                continue
            st = override_get(uid) or extra_get(uid)
            if st is None:
                if ent is None:
                    continue
                st = (ent[2], ent[3])
            cone_add(uid)
            out = raw_out[uid]
            # Readers of *out* sit at higher positions, all settled by
            # now, so the refcount (hence liveness) is final.
            live_v = rc_get(out, 0) + delta_get(out, 0) > 0
            live_b = ent is not None and bool(ent[4])
            # Read-count diff between the variant's and the base's
            # contribution of this gate.
            if live_v != live_b or st[1] is not (ent[3] if ent is not None
                                                 else None):
                d = {}
                d_get = d.get
                if live_v:
                    for net in st[1]:
                        d[net] = d_get(net, 0) + 1
                if live_b:
                    for net in ent[3]:
                        d[net] = d_get(net, 0) - 1
                for net, dv in d.items():
                    if dv:
                        bump(net, dv)
            if live_v:
                if not live_b:
                    new_extra[uid] = st
                elif st[0] != ent[2] or st[1] != ent[3]:
                    new_override[uid] = st
            elif live_b:
                new_gone.add(uid)
        count_v = idx.kept_count - len(new_gone) + len(new_extra)
        return new_override, new_extra, new_gone, count_v

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def _materialize(self, rnum, override, extra, gone, po_v):
        """Variant netlist after the last replayed round.

        Merges the base round's post-DGE survivors (minus *gone*, states
        overridden where diverged) with the variant-only *extra* gates,
        ordered by raw position — the same relative order every real
        pass preserves, so the list is topological by construction.
        """
        raw = self._raw
        raw_pos = self._raw_pos
        entries = self._journal.rounds[rnum]["dge"]
        extras = sorted(extra.items(), key=lambda kv: raw_pos[kv[0]])
        gates = []
        ei = 0

        def emit_extra(xu, xst):
            gates.append(Gate(uid=xu, cell=xst[0], inputs=tuple(xst[1]),
                              output=self._raw_out[xu],
                              name=self._raw_name[xu]))

        for e in entries:
            p = raw_pos[e[0]]
            while ei < len(extras) and raw_pos[extras[ei][0]] < p:
                emit_extra(*extras[ei])
                ei += 1
            if not e[4] or e[0] in gone:
                continue
            st = override.get(e[0])
            cell, ins = st if st is not None else (e[2], e[3])
            gates.append(Gate(uid=e[0], cell=cell, inputs=tuple(ins),
                              output=e[1], name=self._raw_name[e[0]]))
        while ei < len(extras):
            emit_extra(*extras[ei])
            ei += 1

        nl = Netlist(raw.name)
        nl._next_net = raw._next_net
        nl._next_gate_uid = raw._next_gate_uid
        nl.net_names = dict(raw.net_names)
        nl.primary_inputs = list(raw.primary_inputs)
        nl.primary_outputs = list(po_v)
        nl.gates = gates
        nl._driver = {g.output: g for g in gates}
        if len(nl._driver) != len(gates):
            raise SweepFallback("materialized netlist multiply drives "
                                "a net")
        nl._topo_cache = list(gates)
        return nl


# ---------------------------------------------------------------------------
# per-process memo
# ---------------------------------------------------------------------------

#: A sweep holds one base netlist + journal per (component, effort,
#: target, library); a characterization run touches a handful.
_SWEEP_MEMO_LIMIT = 4
_sweep_memo = {}


def sweep_for(component, library, effort="ultra", target_ps=None):
    """Shared :class:`SweepSynthesis` for *component*'s family sweep.

    Memoized per process on the full-precision component content, so
    every precision point of a sweep (and repeated sweeps over the same
    component) reuses one base synthesis and journal.
    """
    from ..core.cache import component_fingerprint, library_fingerprint

    base = (component if component.precision == component.width
            else component.with_precision(component.width))
    key = (component_fingerprint(base), effort, repr(target_ps),
           library_fingerprint(library))
    got = _sweep_memo.get(key)
    if got is not None:
        obs_metrics.inc(obs_metrics.SYNTH_SWEEP_BASE_MEMO_HITS)
        return got
    if len(_sweep_memo) >= _SWEEP_MEMO_LIMIT:
        _sweep_memo.clear()
    got = SweepSynthesis(base, library, effort=effort, target_ps=target_ps)
    _sweep_memo[key] = got
    return got


def clear_sweep_memo():
    """Drop every memoized sweep (mainly for tests)."""
    _sweep_memo.clear()


def synthesize_variant(component, precision, library, effort="ultra",
                       target_ps=None):
    """Sweep-derive one truncated characterization point.

    Drop-in equivalent of ``synthesize(component.with_precision(
    precision), library, effort, target_ps)`` — bit-identical result,
    incremental cost.
    """
    return sweep_for(component, library, effort=effort,
                     target_ps=target_ps).derive(precision)
