"""Timing-driven gate sizing.

Iteratively upsizes cells along (possibly aged) near-critical paths
until a delay target is met, the library runs out of stronger variants,
or an area budget is exhausted. Sizing proceeds in *rounds*: one STA per
round, then every gate whose slack is within a small margin of zero is
upsized one step — this batched strategy converges in a handful of STA
runs even for multi-thousand-gate multipliers.

Two users:

* plain synthesis at "ultra" effort sizes for **maximum performance**
  (``target_ps=0``), reproducing the paper's "ultra compile" setting —
  this is also what flattens the path-delay distribution into the
  timing wall that makes naive guardband removal so error-prone;
* the aging-aware baseline [4] sizes against **aged** delays to a fixed
  constraint, trading bounded area/power for resilience.
"""

from dataclasses import dataclass

from ..aging.bti import DEFAULT_BTI
from ..obs import metrics as obs_metrics
from ..sta.engine import analyze_batch


def _analyze(netlist, library, scenario, bti, degradation):
    """One-corner STA through the compiled engine.

    Returns the scalar-identical :class:`~repro.sta.sta.TimingReport`;
    cell upsizes change the netlist content token, so each sizing round
    compiles (and vectorizes) a fresh timing program.
    """
    return analyze_batch(netlist, library, [scenario], bti=bti,
                         degradation=degradation).report(0)


@dataclass
class SizingReport:
    """Outcome of :func:`upsize_critical_paths`.

    Attributes
    ----------
    met:
        True when the final critical path is within the target.
    target_ps / achieved_ps:
        The goal and the resulting critical-path delay.
    upsized:
        Number of cell-upsize operations applied.
    rounds:
        STA/upsizing rounds executed.
    """

    met: bool
    target_ps: float
    achieved_ps: float
    upsized: int
    rounds: int = 0


def required_times(netlist, report, constraint_ps):
    """Backward-propagated required arrival time of every net.

    Primary outputs are required at *constraint_ps*; a net feeding a
    gate must arrive early enough for that gate's output to meet its own
    requirement.
    """
    required = {}
    for net in netlist.primary_outputs:
        required[net] = min(required.get(net, constraint_ps), constraint_ps)
    for gate in reversed(netlist.topological_gates()):
        r_out = required.get(gate.output)
        if r_out is None:
            continue
        budget = r_out - report.gate_delays[gate.uid]
        for net in gate.inputs:
            prev = required.get(net)
            if prev is None or budget < prev:
                required[net] = budget
    return required


def gate_slacks(netlist, report, constraint_ps):
    """Per-gate slack (required - arrival of its output) in ps."""
    required = required_times(netlist, report, constraint_ps)
    return {g.uid: required.get(g.output, float("inf"))
            - report.arrivals[g.output]
            for g in netlist.gates}


def upsize_critical_paths(netlist, library, target_ps, scenario=None,
                          bti=DEFAULT_BTI, degradation=None, max_rounds=40,
                          max_area_um2=None, slack_margin=0.05,
                          stall_rounds=3):
    """Upsize near-critical cells until the critical path meets *target_ps*.

    Parameters
    ----------
    target_ps:
        Timing goal; pass 0 to size for maximum performance (stops when
        no upsizable near-critical gate remains or progress stalls).
    scenario:
        When given, slack is measured under *aged* delays (the baseline
        [4] hardening mode).
    max_area_um2:
        Optional area budget; the pass stops (met=False) once exceeded.
    slack_margin:
        Gates with slack below ``slack_margin * critical_path`` are
        considered near-critical and upsized together each round.
    stall_rounds:
        Abort after this many consecutive rounds without critical-path
        improvement.
    """
    gates_by_uid = {g.uid: g for g in netlist.gates}
    upsized = 0
    best_cp = float("inf")
    stalled = 0
    rounds = 0
    report = _analyze(netlist, library, scenario, bti, degradation)
    while rounds < max_rounds:
        cp = report.critical_path_ps
        if cp <= target_ps:
            return _record(SizingReport(met=True, target_ps=target_ps,
                                        achieved_ps=cp, upsized=upsized,
                                        rounds=rounds))
        if max_area_um2 is not None and netlist.area(library) >= max_area_um2:
            return _record(SizingReport(met=False, target_ps=target_ps,
                                        achieved_ps=cp, upsized=upsized,
                                        rounds=rounds))
        if cp < best_cp - 1e-9:
            best_cp = cp
            stalled = 0
        else:
            stalled += 1
            if stalled >= stall_rounds:
                break
        slacks = gate_slacks(netlist, report, cp)
        margin = slack_margin * cp
        changed = 0
        # Candidates are visited in sorted-uid order so the upsize
        # sequence is a pure function of netlist *content*, independent
        # of gate-list or dict-iteration order (required for bit-exact
        # sweep-vs-scratch equality in repro.synth.sweep).
        for uid in sorted(slacks):
            slack = slacks[uid]
            if slack > margin:
                continue
            gate = gates_by_uid[uid]
            stronger = library.next_drive_up(gate.cell)
            if stronger is not None:
                gate.cell = stronger
                changed += 1
        if changed == 0:
            break
        upsized += changed
        rounds += 1
        netlist._topo_cache = None  # cell changes keep the topology
        report = _analyze(netlist, library, scenario, bti, degradation)
    report = _analyze(netlist, library, scenario, bti, degradation)
    return _record(SizingReport(met=report.critical_path_ps <= target_ps,
                                target_ps=target_ps,
                                achieved_ps=report.critical_path_ps,
                                upsized=upsized, rounds=rounds))


def _record(report):
    """Count sizing work in the ambient metrics registry."""
    obs_metrics.inc(obs_metrics.SYNTH_SIZING_ROUNDS, report.rounds)
    obs_metrics.inc(obs_metrics.SYNTH_SIZING_UPSIZES, report.upsized)
    return report
