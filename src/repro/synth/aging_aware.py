"""Aging-aware synthesis baseline (reproduction of [4]).

The state of the art the paper compares against synthesizes the circuit
*against the degradation-aware cell library*: timing optimization sees
aged delays, so the tool strengthens cells along aging-critical paths
until the design still meets its fresh-clock constraint at end of life.
The resilience is bought with area, leakage and dynamic power — the cost
axis of the paper's Fig. 8(c) comparison.
"""

from dataclasses import dataclass

from ..aging.bti import DEFAULT_BTI
from ..sta.sta import critical_path_delay
from .optimize import optimize
from .sizing import SizingReport, upsize_critical_paths


@dataclass
class AgingAwareResult:
    """Outcome of :func:`aging_aware_synthesize`.

    Attributes
    ----------
    netlist:
        The hardened netlist.
    fresh_delay_ps / aged_delay_ps:
        Critical-path delay before and after the target lifetime.
    target_ps:
        The timing constraint the aged design had to meet.
    sizing:
        The :class:`~repro.synth.sizing.SizingReport` of the hardening
        pass.
    """

    netlist: object
    fresh_delay_ps: float
    aged_delay_ps: float
    target_ps: float
    sizing: SizingReport


def aging_aware_synthesize(source, library, scenario, target_ps=None,
                           bti=DEFAULT_BTI, degradation=None,
                           effort_rounds=8, area_budget_ratio=1.15):
    """Synthesize *source* so that its **aged** timing meets the target.

    Parameters
    ----------
    source:
        RTL component or netlist (not mutated).
    library:
        Cell library (with multiple drive strengths).
    scenario:
        The end-of-life :class:`~repro.aging.scenario.AgingScenario` the
        design must survive (the paper hardens for 10 years worst case).
    target_ps:
        Timing constraint. Defaults to the *fresh* critical path of the
        plainly optimized netlist — i.e. "keep the no-aging clock for
        the whole lifetime", the guardband-free goal.
    area_budget_ratio:
        Bound on the hardening pass's area overhead relative to the
        plain netlist (aging-aware synthesis trades bounded area/power
        for resilience; any delay it cannot close within the budget
        remains as a — reduced — guardband, as in [4]).
    """
    netlist = source.build() if hasattr(source, "_build_core") else source
    netlist = netlist.copy()
    optimize(netlist, library, max_rounds=effort_rounds)
    if target_ps is None:
        target_ps = critical_path_delay(netlist, library)
    area_budget = None
    if area_budget_ratio is not None:
        area_budget = area_budget_ratio * netlist.area(library)
    sizing = upsize_critical_paths(netlist, library, target_ps,
                                   scenario=scenario, bti=bti,
                                   degradation=degradation,
                                   max_area_um2=area_budget)
    return AgingAwareResult(
        netlist=netlist,
        fresh_delay_ps=critical_path_delay(netlist, library),
        aged_delay_ps=critical_path_delay(netlist, library,
                                          scenario=scenario, bti=bti,
                                          degradation=degradation),
        target_ps=target_ps,
        sizing=sizing,
    )
