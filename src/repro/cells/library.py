"""Cell libraries and the bundled 45 nm-like default library.

The bundled library (:func:`nangate45`) stands in for the open-source
NanGate 45 nm library the paper synthesizes against. Parameters are not
copied from any proprietary source; they are chosen so that synthesized
arithmetic components land in the paper's reported delay ballpark
(a high-effort 32-bit adder around 150-200 ps) and so that relative
area/leakage/speed trade-offs between cells are realistic:

* inverting gates are smaller and faster than their non-inverting forms,
* XOR/XNOR/MUX are the big, slow cells,
* doubling drive strength roughly halves the load-dependent delay slope
  while increasing area, leakage and input capacitance.
"""

from .cell import Cell, CELL_KINDS


class CellLibrary:
    """A named collection of :class:`~repro.cells.cell.Cell` objects.

    Supports lookup by full cell name (``lib["NAND2_X2"]``), enumeration
    of drive variants of a kind, and resizing a cell name to another
    drive strength.
    """

    def __init__(self, name, cells, output_load_ff=2.5, wire_cap_ff=0.8,
                 vdd=1.1, vth=0.45):
        self.name = name
        self._cells = {cell.name: cell for cell in cells}
        #: capacitive load added to nets that feed a primary output (fF)
        self.output_load_ff = output_load_ff
        #: estimated wire capacitance per fanout branch (fF)
        self.wire_cap_ff = wire_cap_ff
        #: supply voltage (V) used by the aging delay model
        self.vdd = vdd
        #: nominal threshold voltage (V)
        self.vth = vth

    def __getitem__(self, name):
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError("cell %r not in library %r" % (name, self.name))

    def __contains__(self, name):
        return name in self._cells

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self):
        return len(self._cells)

    def cells(self):
        """Return all cells in the library."""
        return list(self._cells.values())

    def kinds(self):
        """Return the set of logic kinds available."""
        return sorted({cell.kind for cell in self._cells.values()})

    def variants(self, kind):
        """Return cells of *kind* ordered by increasing drive strength."""
        found = [c for c in self._cells.values() if c.kind == kind]
        return sorted(found, key=lambda c: c.drive)

    def resize(self, cell_name, drive):
        """Return the cell name of *cell_name*'s kind at *drive* strength.

        Raises ``KeyError`` when that variant does not exist.
        """
        kind = self[cell_name].kind
        candidate = "%s_X%d" % (kind, drive)
        self[candidate]  # raises if missing
        return candidate

    def next_drive_up(self, cell_name):
        """Return the next stronger variant's name, or None at the top.

        Memoized per library instance — sizing asks this for every
        near-critical candidate of every round, and the drive ladder is
        immutable once the library is built.
        """
        try:
            memo = self._updrive
        except AttributeError:
            memo = self._updrive = {}
        try:
            return memo[cell_name]
        except KeyError:
            cell = self[cell_name]
            stronger = [c for c in self.variants(cell.kind)
                        if c.drive > cell.drive]
            got = stronger[0].name if stronger else None
            memo[cell_name] = got
            return got


# ---------------------------------------------------------------------------
# Bundled default library
# ---------------------------------------------------------------------------

# kind: (area um^2, leakage nW, input cap fF, intrinsic ps, drive res ps/fF,
#        wp, wn) at drive X1.
_BASE_PARAMS = {
    "INV":   (0.53, 1.0, 1.6, 3.5, 1.30, 0.50, 0.50),
    "BUF":   (0.80, 1.2, 1.6, 5.5, 1.00, 0.50, 0.50),
    "NAND2": (0.80, 1.5, 1.7, 4.5, 1.40, 0.42, 0.58),
    "NOR2":  (0.80, 1.6, 1.8, 5.2, 1.65, 0.62, 0.38),
    "AND2":  (1.06, 1.8, 1.7, 6.0, 1.25, 0.50, 0.50),
    "OR2":   (1.06, 1.9, 1.8, 6.6, 1.35, 0.55, 0.45),
    "XOR2":  (1.60, 2.6, 2.3, 8.0, 1.55, 0.50, 0.50),
    "XNOR2": (1.60, 2.6, 2.3, 8.0, 1.55, 0.50, 0.50),
    "MUX2":  (1.86, 2.9, 2.0, 7.5, 1.45, 0.50, 0.50),
    "AOI21": (1.06, 1.9, 1.9, 5.8, 1.60, 0.58, 0.42),
    "OAI21": (1.06, 1.9, 1.9, 5.8, 1.60, 0.48, 0.52),
}

#: Global delay calibration: scales every intrinsic delay and drive
#: resistance so that a high-effort 32-bit adder lands in the paper's
#: reported range (Fig. 4: roughly 150-190 ps across aging scenarios).
_DELAY_CALIBRATION = 0.55

# drive: (area x, leakage x, cap x, intrinsic x, resistance x)
_DRIVE_SCALING = {
    1: (1.00, 1.00, 1.00, 1.00, 1.00),
    2: (1.50, 1.80, 1.80, 0.95, 0.52),
    4: (2.40, 3.20, 3.20, 0.90, 0.28),
}


def nangate45(drives=(1, 2, 4)):
    """Build the bundled 45 nm-like cell library.

    Parameters
    ----------
    drives:
        Drive strengths to instantiate for every kind.

    Returns
    -------
    CellLibrary
    """
    cells = []
    for kind, (area, leak, cap, intrinsic, res, wp, wn) in _BASE_PARAMS.items():
        arity = CELL_KINDS[kind][0]
        for drive in drives:
            ax, lx, cx, ix, rx = _DRIVE_SCALING[drive]
            cells.append(Cell(
                name="%s_X%d" % (kind, drive),
                kind=kind,
                drive=drive,
                n_inputs=arity,
                area=area * ax,
                leakage_nw=leak * lx,
                input_cap_ff=cap * cx,
                intrinsic_ps=intrinsic * ix * _DELAY_CALIBRATION,
                drive_res=res * rx * _DELAY_CALIBRATION,
                wp=wp,
                wn=wn,
            ))
    return CellLibrary("repro45", cells)


_DEFAULT = None


def default_library():
    """Return a process-wide shared instance of the bundled library."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = nangate45()
    return _DEFAULT
