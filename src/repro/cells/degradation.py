"""Degradation-aware cell library (reproduction of [4]/[9]).

The paper's aging-aware STA consumes a released *degradation-aware cell
library* that tabulates each cell's delay under an 11x11 grid of
(pMOS stress, nMOS stress) duty factors for a set of lifetimes. This
module rebuilds that artifact from the BTI model: for every cell kind and
lifetime we precompute the delay multiplier on the same 11x11 grid and
look values up with bilinear interpolation.

Tabulating (instead of always evaluating the closed form) matters for two
reasons: it reproduces the actual interface the paper's flow uses, and it
lets tests quantify the interpolation error of grid-based lookup against
the exact model.
"""

import numpy as np

from ..aging.bti import DEFAULT_BTI

#: Grid axis used by the released library: 0%, 10%, ..., 100% stress.
STRESS_GRID = np.linspace(0.0, 1.0, 11)


class DegradationAwareLibrary:
    """Tabulated aging delay multipliers for every cell of a library.

    Parameters
    ----------
    library:
        The fresh :class:`~repro.cells.library.CellLibrary`.
    lifetimes:
        Lifetimes (years) to tabulate; queries must use one of these.
    bti:
        The BTI model the tables are generated from.
    """

    def __init__(self, library, lifetimes=(1.0, 10.0), bti=DEFAULT_BTI):
        self.library = library
        self.bti = bti
        self.lifetimes = tuple(sorted(float(y) for y in lifetimes))
        if not self.lifetimes:
            raise ValueError("at least one lifetime is required")
        # Multipliers depend on (wp, wn) only, so tabulate per weight pair
        # and share tables between cells (and drive variants) of one kind.
        self._tables = {}      # (wp, wn, years) -> 11x11 ndarray
        self._cell_weights = {}
        for cell in library:
            self._cell_weights[cell.name] = (cell.wp, cell.wn)
            for years in self.lifetimes:
                key = (cell.wp, cell.wn, years)
                if key not in self._tables:
                    self._tables[key] = self._build_table(cell.wp, cell.wn,
                                                          years)

    def _build_table(self, wp, wn, years):
        table = np.empty((STRESS_GRID.size, STRESS_GRID.size))
        for i, sp in enumerate(STRESS_GRID):
            for j, sn in enumerate(STRESS_GRID):
                table[i, j] = self.bti.cell_multiplier(sp, sn, years,
                                                       wp=wp, wn=wn)
        return table

    def table(self, cell_name, years):
        """Return the raw 11x11 multiplier grid for a cell and lifetime."""
        wp, wn = self._cell_weights[cell_name]
        try:
            return self._tables[(wp, wn, float(years))]
        except KeyError:
            raise KeyError(
                "lifetime %r years not tabulated (have %r)"
                % (years, self.lifetimes))

    def multiplier(self, cell_name, sp, sn, years):
        """Bilinearly interpolated delay multiplier for one cell instance.

        Parameters
        ----------
        cell_name:
            Full cell name, e.g. ``"NAND2_X1"``.
        sp, sn:
            pMOS / nMOS stress duty factors in [0, 1].
        years:
            Lifetime; must be 0 (returns 1.0) or a tabulated lifetime.
        """
        if years == 0:
            return 1.0
        table = self.table(cell_name, years)
        return float(_bilinear(table, sp, sn))

    def exact_multiplier(self, cell_name, sp, sn, years):
        """Closed-form multiplier (no table) — the interpolation oracle."""
        wp, wn = self._cell_weights[cell_name]
        return self.bti.cell_multiplier(sp, sn, years, wp=wp, wn=wn)

    def max_interpolation_error(self, cell_name, years, samples=101):
        """Worst |table - exact| multiplier error over a dense sweep."""
        worst = 0.0
        for sp in np.linspace(0, 1, samples):
            for sn in np.linspace(0, 1, int(np.sqrt(samples)) + 1):
                approx = self.multiplier(cell_name, float(sp), float(sn),
                                         years)
                exact = self.exact_multiplier(cell_name, float(sp),
                                              float(sn), years)
                worst = max(worst, abs(approx - exact))
        return worst


def _bilinear(table, x, y):
    """Bilinear interpolation on a [0,1]x[0,1] table with 11x11 knots."""
    if not (0.0 <= x <= 1.0 and 0.0 <= y <= 1.0):
        raise ValueError("stress factors must be in [0, 1]")
    n = table.shape[0] - 1
    fx, fy = x * n, y * n
    i0, j0 = int(np.floor(fx)), int(np.floor(fy))
    i1, j1 = min(i0 + 1, n), min(j0 + 1, n)
    tx, ty = fx - i0, fy - j0
    top = table[i0, j0] * (1 - ty) + table[i0, j1] * ty
    bot = table[i1, j0] * (1 - ty) + table[i1, j1] * ty
    return top * (1 - tx) + bot * tx
