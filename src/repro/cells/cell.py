"""Standard-cell types: logic functions and electrical parameters.

Each :class:`Cell` models one library cell with an NLDM-like linear delay
model::

    delay_ps = intrinsic_ps + drive_res_ps_per_ff * load_ff

plus area, leakage, input capacitance, and the pMOS/nMOS *aging weights*
``(wp, wn)`` that say how much of the cell's delay is contributed by
pMOS pull-up versus nMOS pull-down networks. The weights feed the
degradation-aware delay tables in :mod:`repro.cells.degradation`.

Logic functions are defined over values in ``{0, 1}`` and are written
with bitwise operators so they evaluate elementwise on NumPy ``uint8``
arrays as well as on Python ints.
"""

from dataclasses import dataclass


def _inv(a):
    return a ^ 1


def _buf(a):
    return a


def _nand2(a, b):
    return (a & b) ^ 1


def _nor2(a, b):
    return (a | b) ^ 1


def _and2(a, b):
    return a & b


def _or2(a, b):
    return a | b


def _xor2(a, b):
    return a ^ b


def _xnor2(a, b):
    return (a ^ b) ^ 1


def _mux2(a, b, s):
    """Select *b* when s=1 else *a*."""
    return (a & (s ^ 1)) | (b & s)


def _aoi21(a, b, c):
    return ((a & b) | c) ^ 1


def _oai21(a, b, c):
    return ((a | b) & c) ^ 1


#: kind -> (number of inputs, elementwise logic function)
CELL_KINDS = {
    "INV": (1, _inv),
    "BUF": (1, _buf),
    "NAND2": (2, _nand2),
    "NOR2": (2, _nor2),
    "AND2": (2, _and2),
    "OR2": (2, _or2),
    "XOR2": (2, _xor2),
    "XNOR2": (2, _xnor2),
    "MUX2": (3, _mux2),
    "AOI21": (3, _aoi21),
    "OAI21": (3, _oai21),
}


def cell_function(kind):
    """Return the elementwise logic function for a cell *kind*."""
    try:
        return CELL_KINDS[kind][1]
    except KeyError:
        raise KeyError("unknown cell kind %r" % (kind,))


def cell_arity(kind):
    """Return the number of inputs of a cell *kind*."""
    try:
        return CELL_KINDS[kind][0]
    except KeyError:
        raise KeyError("unknown cell kind %r" % (kind,))


@dataclass(frozen=True)
class Cell:
    """One library cell at a specific drive strength.

    Attributes
    ----------
    name:
        Full cell name, e.g. ``"NAND2_X2"``.
    kind:
        Logic function family, e.g. ``"NAND2"``.
    drive:
        Drive strength multiplier (1, 2, 4).
    n_inputs:
        Input pin count.
    area:
        Cell area in um^2.
    leakage_nw:
        Static leakage power in nW.
    input_cap_ff:
        Capacitance of one input pin in fF.
    intrinsic_ps:
        Load-independent delay component in ps.
    drive_res:
        Load-dependent slope in ps per fF of output load.
    wp, wn:
        Fractions of the delay attributable to the pMOS / nMOS network.
        Used to compose per-transistor-type BTI degradation into a cell
        delay multiplier; ``wp + wn == 1``.
    """

    name: str
    kind: str
    drive: int
    n_inputs: int
    area: float
    leakage_nw: float
    input_cap_ff: float
    intrinsic_ps: float
    drive_res: float
    wp: float
    wn: float

    @property
    def function(self):
        """Elementwise logic function of this cell."""
        return cell_function(self.kind)

    def delay_ps(self, load_ff):
        """Fresh (unaged) delay in ps driving *load_ff* fF."""
        return self.intrinsic_ps + self.drive_res * load_ff

    def evaluate(self, *inputs):
        """Evaluate the cell's logic function on scalar or array inputs."""
        return self.function(*inputs)
