"""Standard-cell substrate: cells, libraries, degradation tables."""

from .cell import Cell, CELL_KINDS, cell_function, cell_arity
from .library import CellLibrary, nangate45, default_library
from .degradation import DegradationAwareLibrary, STRESS_GRID
from .liberty import degradation_tables_text, read_liberty_cells, to_liberty

__all__ = [
    "Cell", "CELL_KINDS", "cell_function", "cell_arity",
    "CellLibrary", "nangate45", "default_library",
    "DegradationAwareLibrary", "STRESS_GRID",
    "degradation_tables_text", "read_liberty_cells", "to_liberty",
]
