"""Clients for the characterization service.

:class:`ServeClient` is the asyncio client used by the tests and the
load generator: one keep-alive connection, JSON requests, and an async
iterator over streamed batch (chunked NDJSON) responses.

:func:`http_request` is a synchronous one-shot helper over
``http.client`` for scripts that just want to poke an endpoint without
an event loop.

When tracing is active (:func:`repro.obs.trace.capture`), every request
carries the caller's trace identity in the ``X-Repro-Trace`` header, so
the server's spans — and its workers' — stitch into the client's trace.
"""

import asyncio
import http.client
import json

from ..obs import trace as obs_trace


class ServeError(RuntimeError):
    """A non-2xx server response."""

    def __init__(self, status, payload):
        message = payload.get("error", payload) \
            if isinstance(payload, dict) else payload
        super().__init__("HTTP %d: %s" % (status, message))
        self.status = status
        self.payload = payload


class ServeClient:
    """Asyncio client speaking the server's HTTP/JSON protocol.

    One instance holds one keep-alive connection (reconnecting when the
    server closes it); use separate instances for concurrent in-flight
    requests — the load generator opens one per simulated client.
    """

    def __init__(self, host, port):
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None

    # -- connection --------------------------------------------------------
    async def _connection(self):
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port)
        return self._reader, self._writer

    async def close(self):
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self):
        return self

    async def __aexit__(self, *exc_info):
        await self.close()

    # -- HTTP --------------------------------------------------------------
    async def _send(self, method, path, payload=None):
        reader, writer = await self._connection()
        body = b"" if payload is None else json.dumps(payload).encode()
        head = ("%s %s HTTP/1.1\r\n"
                "Host: %s:%d\r\n"
                "Content-Type: application/json\r\n"
                "Content-Length: %d\r\n"
                % (method, path, self.host, self.port, len(body)))
        traceparent = obs_trace.format_traceparent()
        if traceparent is not None:
            head += "%s: %s\r\n" % (obs_trace.TRACE_HEADER, traceparent)
        head += "\r\n"
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        return reader

    async def _read_head(self, reader):
        status_line = await reader.readline()
        if not status_line:
            raise ConnectionResetError("server closed the connection")
        try:
            status = int(status_line.split()[1])
        except (IndexError, ValueError):
            raise ServeError(0, "malformed status line: %r" % status_line)
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        return status, headers

    async def request(self, method, path, payload=None):
        """One request/response; returns the decoded JSON body.

        Raises :class:`ServeError` on a non-2xx status.
        """
        reader = await self._send(method, path, payload)
        status, headers = await self._read_head(reader)
        if headers.get("transfer-encoding", "").lower() == "chunked":
            body = b"".join([chunk async for chunk in
                             self._iter_chunks(reader)])
        else:
            length = int(headers.get("content-length", "0"))
            body = await reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        if not body:
            decoded = None
        elif "json" in headers.get("content-type", "json"):
            decoded = json.loads(body)
        else:
            decoded = body.decode("utf-8", "replace")
        if not 200 <= status < 300:
            raise ServeError(status, decoded)
        return decoded

    @staticmethod
    async def _iter_chunks(reader):
        while True:
            size_line = await reader.readline()
            size = int(size_line.strip() or b"0", 16)
            if size == 0:
                await reader.readline()          # trailing CRLF
                return
            chunk = await reader.readexactly(size)
            await reader.readexactly(2)          # chunk CRLF
            yield chunk

    # -- endpoints ---------------------------------------------------------
    async def healthz(self):
        return await self.request("GET", "/healthz")

    async def stats(self):
        return await self.request("GET", "/v1/stats")

    async def metrics(self):
        return await self.request("GET", "/v1/metrics")

    async def prometheus(self):
        """GET ``/metrics``; returns the Prometheus text (a str)."""
        return await self.request("GET", "/metrics")

    async def timeseries(self, window_s=None):
        """GET ``/v1/timeseries`` (optionally a trailing window)."""
        path = "/v1/timeseries"
        if window_s is not None:
            path += "?window_s=%g" % window_s
        return await self.request("GET", path)

    async def profile(self, seconds=1.0, fmt=None):
        """GET ``/v1/profile`` — sample the server for *seconds*.

        *fmt* ``"chrome"`` returns the flame-chart trace JSON instead
        of the collapsed-stack summary report.
        """
        path = "/v1/profile?seconds=%g" % seconds
        if fmt:
            path += "&format=%s" % fmt
        return await self.request("GET", path)

    async def characterize(self, query):
        """POST one query; returns the full response dict."""
        return await self.request("POST", "/v1/characterize", query)

    async def inject(self, spec):
        """POST one campaign spec dict to ``/v1/inject``.

        Returns the response dict; its ``"campaign"`` entry is the
        served :meth:`repro.inject.CampaignResult.to_dict`.
        """
        return await self.request("POST", "/v1/inject", spec)

    async def mc(self, spec):
        """POST one Monte Carlo spec dict to ``/v1/mc``.

        Returns the response dict; its ``"mc"`` entry is the served
        :meth:`repro.mc.MCResult.to_dict`.
        """
        return await self.request("POST", "/v1/mc", spec)

    async def batch(self, query):
        """POST one query to ``/v1/batch``; yield records as streamed.

        Yields each NDJSON point record the moment its chunk arrives
        (completion order), ending with the ``{"done": true}`` summary.
        """
        reader = await self._send("POST", "/v1/batch", query)
        status, headers = await self._read_head(reader)
        if not 200 <= status < 300:
            length = int(headers.get("content-length", "0"))
            body = await reader.readexactly(length) if length else b""
            raise ServeError(status, json.loads(body) if body else None)
        buffer = b""
        async for chunk in self._iter_chunks(reader):
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if line.strip():
                    yield json.loads(line)
        if buffer.strip():
            yield json.loads(buffer)
        if headers.get("connection", "").lower() == "close":
            await self.close()

    async def shutdown(self):
        """Ask the server to shut down gracefully."""
        return await self.request("POST", "/v1/shutdown")


def http_request(host, port, method, path, payload=None, timeout=30.0):
    """Synchronous one-shot request; returns ``(status, decoded_json)``.

    For scripts and smoke tests that don't run an event loop. Streams
    are drained whole, so use :meth:`ServeClient.batch` when incremental
    consumption matters.
    """
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"}
        traceparent = obs_trace.format_traceparent()
        if traceparent is not None:
            headers[obs_trace.TRACE_HEADER] = traceparent
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        ctype = response.getheader("Content-Type") or ""
        if "ndjson" in ctype:
            decoded = [json.loads(line) for line in raw.splitlines()
                       if line.strip()]
        elif "json" in ctype:
            decoded = json.loads(raw) if raw else None
        else:
            decoded = raw.decode("utf-8", "replace")
        return response.status, decoded
    finally:
        conn.close()
