"""Characterization as a service.

The pre-characterized aging/precision library (the paper's central
artifact) is consumed by downstream flows — DSE loops, quantization
searches, Monte Carlo campaigns — as thousands of overlapping
``component x precision x scenario x lifetime`` queries. This package
turns the library into a production API for that traffic: a
dependency-free asyncio HTTP/JSON job server
(:class:`~repro.serve.server.CharacterizationServer`) layered over the
content-addressed cache with

* an **in-memory LRU tier** over the on-disk store (warm queries never
  re-read or re-parse JSON),
* **single-flight dedup** of in-flight misses by cache digest — N
  identical concurrent requests trigger exactly one ``characterize()``,
* a **persistent process pool** (:class:`~repro.core.parallel.
  WorkerPool`) computing misses over a **sharded** cache directory,
* **incremental streaming** of batch grids as points complete, and
* full :mod:`repro.obs` wiring: per-request spans (worker traces
  re-parented), ``serve.*`` metrics and latency histograms.

Results are bit-identical to calling
:func:`repro.core.characterize.characterize` directly: the server
dispatches the very same point tasks to the very same worker function.
"""

from .client import ServeClient, http_request
from .protocol import ProtocolError, parse_query
from .server import CharacterizationServer

__all__ = [
    "CharacterizationServer", "ServeClient", "http_request",
    "ProtocolError", "parse_query",
]
