"""The asyncio characterization job server.

Stdlib only — ``asyncio.start_server`` plus a minimal HTTP/1.1 layer
(request-line + headers + Content-Length bodies, keep-alive, chunked
responses for streaming). No framework.

Request lifecycle of a characterization query:

1. every grid point resolves against the **multi-tier cache** first —
   the in-memory LRU, then the sharded on-disk store; a full hit
   answers immediately (``source: "mem" | "disk"``);
2. a miss becomes a **single-flight computation**: the point task is
   keyed by its cache digest, and identical concurrent requests coalesce
   onto one in-flight future (``source: "dedup"``) instead of each
   running ``characterize()``;
3. the computation itself runs on a **persistent process pool**
   (:class:`~repro.core.parallel.WorkerPool`) via the same
   ``_characterize_point`` worker the library's ``characterize()``
   dispatches — results are bit-identical by construction, and the
   worker's span tree / metric snapshot are re-parented into the
   server's trace (:func:`repro.obs.trace.adopt`).

Endpoints
---------
``GET /healthz``
    Liveness: ``{"status": "ok"}`` plus uptime.
``POST /v1/characterize``
    One query (see :mod:`repro.serve.protocol`); answers with all point
    records once the grid is complete.
``POST /v1/batch``
    Same query, but streams one NDJSON point record per chunk *as grid
    points complete* (completion order), then a ``{"done": true}``
    summary line.
``POST /v1/inject``
    A fault-injection campaign spec
    (:meth:`repro.inject.CampaignSpec.to_dict`); runs the campaign in
    a pool worker and answers with the full
    :meth:`~repro.inject.CampaignResult.to_dict` — bit-identical to an
    in-process ``run_campaign`` of the same spec.
``POST /v1/mc``
    A Monte Carlo yield-analysis spec
    (:meth:`repro.mc.MCSpec.to_dict`); runs the sampled sweep in a
    pool worker and answers with the full
    :meth:`~repro.mc.MCResult.to_dict` — bit-identical to an
    in-process ``run_mc`` of the same spec.
``GET /v1/stats``
    Serving counters: requests, in-flight dedup hits, tier hit ratios,
    queue depth, latency percentiles (p50/p95/p99), cache stats, SLO
    burn rates (the overload signal).
``GET /v1/metrics``
    Full :mod:`repro.obs.metrics` registry snapshot.
``GET /metrics``
    The same registry in Prometheus text exposition format, scrapable
    by any Prometheus-compatible collector.
``GET /v1/timeseries``
    The :class:`~repro.obs.timeseries.TimeSeriesRecorder` ring —
    periodic samples with counter rates and latency quantiles
    (``?window_s=N`` trims to a trailing window).
``GET /v1/profile?seconds=N``
    Run the sampling profiler (:mod:`repro.obs.profile`) on the live
    server for N seconds; returns collapsed stacks (or the Chrome
    flame chart with ``&format=chrome``). One run at a time (409).
``POST /v1/shutdown``
    Graceful shutdown (acknowledged before the server stops).

Every request is access-logged (trace id, peer, latency, tier/dedup
outcome) on the ``repro.serve.access`` logger, and an inbound
``X-Repro-Trace`` header stitches the request's spans — including the
pool workers' — into the calling client's trace.

Shutdown — signal-driven or ``--max-requests`` budget — **drains**:
accepting stops, idle keep-alive connections close immediately,
in-flight requests run to completion (bounded by *drain_grace_s*),
and a final time-series sample is taken and flushed before exit.
"""

import asyncio
import contextvars
import json
import signal
import time
import urllib.parse
from collections import OrderedDict

from ..core import cache as cache_mod
from ..core.characterize import _characterize_point, component_key
from ..core.parallel import WorkerPool
from ..obs import (logs, metrics as obs_metrics, profile as obs_profile,
                   slo as obs_slo, timeseries as obs_timeseries,
                   trace as obs_trace)
from . import protocol

_log = logs.get_logger("serve.server")

#: Per-request tier/dedup outcome counts, shared with the point
#: resolution tasks a request fans out (they inherit the request
#: handler's context, and mutate the same dict).
_REQ_SOURCES = contextvars.ContextVar("repro_serve_req_sources",
                                      default=None)

#: Reject request bodies beyond this size (queries are tiny).
MAX_BODY_BYTES = 1 << 20

#: Distinct query bodies whose parsed point tasks are kept memoized.
TASK_MEMO_ENTRIES = 4096

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
            413: "Payload Too Large", 500: "Internal Server Error"}


class _BadRequest(Exception):
    """Malformed HTTP request; message becomes the 400 body."""


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "version", "headers", "body")

    def __init__(self, method, path, version, headers, body):
        self.method = method
        self.path = path
        self.version = version
        self.headers = headers
        self.body = body

    @property
    def keep_alive(self):
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


class CharacterizationServer:
    """Serve characterization queries over HTTP/JSON (see module docs).

    Parameters
    ----------
    cache:
        A :class:`~repro.core.cache.CharacterizationCache` or a cache
        directory path. A path gets a sharded, memory-tiered cache with
        one shard per worker by default.
    library:
        Cell library answering queries (default: the bundled library).
    host / port:
        Bind address; port 0 picks an ephemeral port (read ``.port``
        after :meth:`start`).
    workers:
        Persistent pool size (``None`` defers to ``REPRO_JOBS``,
        0 = one per CPU — see :func:`repro.core.parallel.resolve_jobs`).
    shards / mem_entries:
        Cache layout knobs, used only when *cache* is a path.
    dedup:
        Single-flight coalescing of identical in-flight misses; disable
        only to measure its effect (the benchmark's baseline).
    ts_interval / ts_capacity / ts_jsonl:
        Time-series sampling cadence (seconds), ring size, and optional
        JSONL journal path.
    slos:
        Iterable of SLO specs (:func:`repro.obs.slo.parse_slo` strings
        or :class:`~repro.obs.slo.SLO` objects). None enables the
        defaults (p99 < 500 ms, 99.9% availability); an empty iterable
        disables SLO evaluation.
    drain_grace_s:
        Seconds shutdown waits for in-flight requests before
        force-closing their connections.
    """

    def __init__(self, cache, library=None, host="127.0.0.1", port=0,
                 workers=None, shards=None, mem_entries=None, dedup=True,
                 max_requests=None, ts_interval=1.0, ts_capacity=600,
                 ts_jsonl=None, slos=None, drain_grace_s=10.0):
        self.pool = WorkerPool(workers)
        if isinstance(cache, cache_mod.CharacterizationCache):
            self.cache = cache
        else:
            self.cache = cache_mod.CharacterizationCache(
                cache, shards=self.pool.jobs if shards is None else shards,
                mem_entries=mem_entries)
        if library is None:
            from ..cells import default_library
            library = default_library()
        self.library = library
        self.host = host
        self.port = port
        self.dedup = bool(dedup)
        self.max_requests = max_requests
        self.ts_interval = float(ts_interval)
        self.ts_capacity = int(ts_capacity)
        self.ts_jsonl = ts_jsonl
        self.slos = slos
        self.drain_grace_s = float(drain_grace_s)
        self._served = 0
        self._inflight = {}
        self._task_memo = OrderedDict()
        self._queue_depth = 0
        self._connections = {}
        self._busy = set()
        self._draining = False
        self._server = None
        self._shutdown = None
        self._registry = None
        self._tracer = None
        self.recorder = None
        self._slo_eval = None
        self._slo_results = []
        self._ts_task = None
        self._profiling = False
        self.started_unix = None

    # -- lifecycle ---------------------------------------------------------
    async def start(self):
        """Bind and start accepting; resolves the ephemeral port."""
        self._registry = obs_metrics.registry()
        self._tracer = obs_trace.active_tracer()
        self._shutdown = asyncio.Event()
        self._draining = False
        self.started_unix = time.time()
        self.recorder = obs_timeseries.TimeSeriesRecorder(
            registry=self._registry, interval=self.ts_interval,
            capacity=self.ts_capacity, jsonl_path=self.ts_jsonl)
        specs = obs_slo.DEFAULT_SLOS if self.slos is None else self.slos
        objectives = [spec if isinstance(spec, obs_slo.SLO)
                      else obs_slo.parse_slo(spec) for spec in specs]
        self._slo_eval = (obs_slo.SLOEvaluator(
            objectives, self.recorder, registry=self._registry)
            if objectives else None)
        self.recorder.sample_now()  # t0 baseline for windowed deltas
        self._ts_task = asyncio.ensure_future(self._telemetry_loop())
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        _log.info("serving characterization on %s:%d (workers=%d, "
                  "shards=%d, mem_entries=%d, dedup=%s)",
                  self.host, self.port, self.pool.jobs, self.cache.shards,
                  self.cache.mem_entries, self.dedup)
        return self

    async def _telemetry_loop(self):
        """Periodic sample + JSONL flush + SLO evaluation."""
        while True:
            await asyncio.sleep(self.ts_interval)
            try:
                self.recorder.sample_now()
                if self._slo_eval is not None:
                    self._slo_results = self._slo_eval.evaluate()
                self.recorder.flush()
            except asyncio.CancelledError:
                raise
            except Exception:
                _log.exception("telemetry tick failed")

    async def stop(self):
        """Drain in-flight requests, then stop (idempotent).

        One shutdown routine for every trigger (signal, request budget,
        ``/v1/shutdown``, direct call): stop accepting, close **idle**
        keep-alive connections immediately, let requests already being
        handled run to completion (bounded by ``drain_grace_s``, then
        force-closed), take and flush a final time-series sample, and
        reap the worker pool.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            if writer not in self._busy:
                writer.close()
        tasks = [t for t in self._connections.values() if not t.done()]
        if tasks:
            __done, pending = await asyncio.wait(
                tasks, timeout=self.drain_grace_s)
            if pending:
                _log.warning(
                    "%d request(s) still in flight after %.1fs drain; "
                    "force-closing", len(pending), self.drain_grace_s)
                for writer in list(self._connections):
                    writer.close()
                await asyncio.wait(pending, timeout=5.0)
        self._connections.clear()
        self._busy.clear()
        if self._ts_task is not None:
            self._ts_task.cancel()
            try:
                await self._ts_task
            except asyncio.CancelledError:
                pass
            self._ts_task = None
        if self.recorder is not None:
            self.recorder.sample_now()
            if self._slo_eval is not None:
                self._slo_results = self._slo_eval.evaluate()
            self.recorder.flush()
        self.pool.shutdown()

    def request_shutdown(self):
        """Ask :meth:`run` to exit (safe from signal handlers)."""
        if self._shutdown is not None:
            self._shutdown.set()

    async def run(self, install_signal_handlers=True, ready=None):
        """Start, serve until shutdown is requested, then stop.

        *ready*, when given, is called with the server right after the
        port is bound (the CLI prints the listening address there).
        """
        await self.start()
        if ready is not None:
            ready(self)
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, self.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass
        try:
            await self._shutdown.wait()
        finally:
            await self.stop()

    # -- connection handling -----------------------------------------------
    async def _client_connected(self, reader, writer):
        # Pin the observability scope captured at start(): connection
        # tasks must record into the server session's registry/tracer no
        # matter which context asyncio spawned them from.
        self._connections[writer] = asyncio.current_task()
        try:
            with obs_metrics.scoped(self._registry):
                if self._tracer is not None:
                    with obs_trace.capture(self._tracer):
                        await self._serve_connection(reader, writer)
                else:
                    await self._serve_connection(reader, writer)
        finally:
            self._connections.pop(writer, None)

    async def _serve_connection(self, reader, writer):
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    self._respond(writer, 400, {"error": str(exc)},
                                  keep=False)
                    await writer.drain()
                    break
                if request is None:
                    break
                # Busy connections are spared the immediate close at
                # drain time; idle ones (parked in _read_request above)
                # are not.
                self._busy.add(writer)
                try:
                    keep = await self._handle(request, writer)
                finally:
                    self._busy.discard(writer)
                await writer.drain()
                if self._draining:
                    keep = False
                if not keep:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader):
        """Parse one request; None on clean EOF before a request line."""
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest("malformed request line")
        method, path, version = parts
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _BadRequest("bad Content-Length")
        if length > MAX_BODY_BYTES:
            raise _BadRequest("request body too large")
        body = await reader.readexactly(length) if length else b""
        return Request(method, path, version, headers, body)

    # -- dispatch ----------------------------------------------------------
    async def _handle(self, request, writer):
        t0 = time.perf_counter()
        self._registry.counter(obs_metrics.SERVE_REQUESTS).inc()
        keep = request.keep_alive
        remote = obs_trace.parse_traceparent(
            request.headers.get(obs_trace.TRACE_HEADER.lower()))
        sources = {"mem": 0, "disk": 0, "dedup": 0, "computed": 0}
        sources_token = _REQ_SOURCES.set(sources)
        status = 200
        # Every access line gets a trace id, even with tracing off —
        # a remote header or active span wins, else a fresh one.
        trace_id = (remote["trace_id"] if remote
                    else obs_trace.new_id())
        try:
            with obs_trace.propagated(remote), \
                    obs_trace.span("serve.request", method=request.method,
                                   path=request.path) as span:
                if span is not None:
                    trace_id = span.trace_id
                try:
                    keep = await self._route(request, writer, keep)
                except (protocol.ProtocolError, _BadRequest) as exc:
                    status = 400
                    self._respond(writer, 400, {"error": str(exc)},
                                  keep=keep)
                except _Routed as routed:
                    status = routed.status
                    self._respond(writer, routed.status,
                                  {"error": routed.message}, keep=keep)
                except (ConnectionResetError, BrokenPipeError):
                    status = 0  # peer gone; logged, not answered
                    raise
                except Exception as exc:
                    status = 500
                    self._registry.counter(obs_metrics.SERVE_ERRORS).inc()
                    _log.exception("request %s %s failed", request.method,
                                   request.path)
                    self._respond(writer, 500,
                                  {"error": "%s: %s"
                                   % (type(exc).__name__, exc)},
                                  keep=keep)
                finally:
                    if span is not None:
                        span.attrs["status"] = status
        finally:
            _REQ_SOURCES.reset(sources_token)
            elapsed_ms = (time.perf_counter() - t0) * 1e3
            self._registry.histogram(
                obs_metrics.SERVE_LATENCY_MS,
                obs_metrics.LATENCY_BOUNDARIES_MS).observe(elapsed_ms)
            self._log_access(request, writer, status, elapsed_ms,
                             trace_id, sources)
        self._served += 1
        if self.max_requests and self._served >= self.max_requests:
            _log.info("request budget of %d reached, shutting down",
                      self.max_requests)
            self.request_shutdown()
            keep = False
        return keep

    @staticmethod
    def _log_access(request, writer, status, elapsed_ms, trace_id,
                    sources):
        """One ``repro.serve.access`` line per request."""
        peer = writer.get_extra_info("peername")
        client = ("%s:%s" % peer[:2] if isinstance(peer, tuple)
                  and len(peer) >= 2 else str(peer))
        tiers = ",".join("%s:%d" % (name, count)
                         for name, count in sorted(sources.items())
                         if count and name != "dedup") or None
        logs.log_access(
            trace=trace_id, client=client, method=request.method,
            path=request.path, status=status, latency_ms=elapsed_ms,
            tier=tiers, dedup=sources["dedup"] or None)

    async def _route(self, request, writer, keep):
        path = request.path.split("?", 1)[0]
        if path == "/healthz":
            self._require(request, "GET")
            self._respond(writer, 200, {
                "status": "ok",
                "uptime_s": time.time() - self.started_unix,
            }, keep=keep)
        elif path == "/v1/stats":
            self._require(request, "GET")
            self._respond(writer, 200, self.stats(), keep=keep)
        elif path == "/v1/metrics":
            self._require(request, "GET")
            self._respond(writer, 200, self._registry.snapshot(),
                          keep=keep)
        elif path == "/metrics":
            self._require(request, "GET")
            self._respond_text(
                writer, 200,
                obs_metrics.prometheus_text(self._registry.snapshot()),
                content_type="text/plain; version=0.0.4; charset=utf-8",
                keep=keep)
        elif path == "/v1/timeseries":
            self._require(request, "GET")
            query = self._query_params(request)
            window = query.get("window_s")
            self._respond(writer, 200, {
                "schema": obs_timeseries.TS_SCHEMA,
                "interval_s": self.recorder.interval,
                "capacity": self.recorder.capacity,
                "dropped": self.recorder.dropped(),
                "samples": self.recorder.samples(
                    window_s=float(window) if window else None),
            }, keep=keep)
        elif path == "/v1/profile":
            self._require(request, "GET")
            keep = await self._profile(request, writer, keep)
        elif path == "/v1/characterize":
            self._require(request, "POST")
            tasks = self._tasks(request)
            records = await asyncio.gather(
                *[self._resolve_point(task) for task in tasks])
            self._respond(writer, 200, {
                "protocol": protocol.PROTOCOL_VERSION,
                "points": list(records),
            }, keep=keep)
        elif path == "/v1/batch":
            self._require(request, "POST")
            keep = await self._stream_batch(request, writer, keep)
        elif path == "/v1/inject":
            self._require(request, "POST")
            keep = await self._inject(request, writer, keep)
        elif path == "/v1/mc":
            self._require(request, "POST")
            keep = await self._mc(request, writer, keep)
        elif path == "/v1/shutdown":
            self._require(request, "POST")
            self._respond(writer, 200, {"status": "shutting down"},
                          keep=False)
            keep = False
            self.request_shutdown()
        else:
            raise _Routed(404, "no such endpoint: %s" % path)
        return keep

    @staticmethod
    def _require(request, method):
        if request.method != method:
            raise _Routed(405, "%s needs %s" % (request.path, method))

    @staticmethod
    def _query_params(request):
        """First value of each query-string parameter."""
        query = urllib.parse.urlsplit(request.path).query
        return {name: values[0] for name, values
                in urllib.parse.parse_qs(query).items()}

    async def _profile(self, request, writer, keep):
        """``/v1/profile``: sample the server process on demand."""
        query = self._query_params(request)
        try:
            seconds = float(query.get("seconds", "1.0"))
        except ValueError:
            raise _BadRequest("seconds must be a number")
        if not 0.0 < seconds <= 60.0:
            raise _BadRequest("seconds must be in (0, 60]")
        fmt = query.get("format", "collapsed")
        if fmt not in ("collapsed", "chrome"):
            raise _BadRequest("format must be collapsed or chrome")
        if self._profiling:
            raise _Routed(409, "a profiling run is already in progress")
        self._profiling = True
        profiler = obs_profile.SamplingProfiler(registry=self._registry)
        try:
            profiler.start()
            await asyncio.sleep(seconds)
        finally:
            profiler.stop()
            self._profiling = False
        if fmt == "chrome":
            payload = {"traceEvents": profiler.chrome_events(),
                       "displayTimeUnit": "ms",
                       "otherData": {"producer": "repro.obs.profile",
                                     "interval_s": profiler.interval}}
        else:
            payload = profiler.report()
            payload["collapsed"] = profiler.collapsed()
        self._respond(writer, 200, payload, keep=keep)
        return keep

    def _tasks(self, request):
        """Parse the query body into point tasks.

        Memoized on the raw body bytes: computing the content-addressed
        cache keys means fingerprinting the component and the cell
        library per grid point, which dominates the warm serving path.
        A fleet replaying the same queries (the expected traffic shape)
        sends byte-identical bodies, so repeats skip straight to the
        previously built task list. Tasks are treated as read-only
        everywhere (workers get pickled copies), which makes the shared
        list safe.
        """
        cached = self._task_memo.get(request.body)
        if cached is not None:
            self._task_memo.move_to_end(request.body)
            return cached
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise protocol.ProtocolError("request body is not valid JSON")
        component, precisions, scenarios, effort = \
            protocol.parse_query(payload)
        tasks = protocol.point_tasks(
            component, precisions, scenarios, self.library, effort=effort,
            cache_root=self.cache.root, cache_shards=self.cache.shards)
        self._task_memo[request.body] = tasks
        while len(self._task_memo) > TASK_MEMO_ENTRIES:
            self._task_memo.popitem(last=False)
        return tasks

    # -- the serving core: tiers + single-flight + pool ---------------------
    @staticmethod
    def _count_source(source):
        """Credit a point outcome to the enclosing request's tally."""
        sources = _REQ_SOURCES.get()
        if sources is not None:
            sources[source] = sources.get(source, 0) + 1

    async def _resolve_point(self, task):
        """Answer one grid point from the fastest tier that can."""
        key = task["key"]
        fps = [fp for __spec, __label, fp in task["scenarios"]]
        with obs_trace.span(
                "serve.point", component=component_key(task["component"]),
                precision=task["precision"]) as span:
            # Single-flight check first: when the herd piles onto an
            # in-flight point, the flight owner already consulted the
            # cache, so waiters skip the tier lookup (and the disk read
            # a stale memory entry would otherwise trigger) entirely.
            flight = key + ":" + ":".join(fps)
            inflight = self._inflight.get(flight) if self.dedup else None
            if inflight is not None:
                self._registry.counter(obs_metrics.SERVE_DEDUP_HITS).inc()
                self._count_source("dedup")
                if span is not None:
                    span.attrs["source"] = "dedup"
                result = await asyncio.shield(inflight)
                return protocol.record_from_result(task, result, "dedup")

            entry, tier = self.cache.load_with_source(key, require=fps)
            if entry is not None and all(fp in entry["aged"] for fp in fps):
                self._registry.counter(
                    obs_metrics.SERVE_TIER_MEM if tier == "mem"
                    else obs_metrics.SERVE_TIER_DISK).inc()
                self._count_source(tier)
                if span is not None:
                    span.attrs["source"] = tier
                return protocol.record_from_entry(task, entry, tier)

            # Stamp this point span's trace identity into a shallow copy
            # (the memoized task list is shared and read-only) so the
            # worker's span tree stitches under it across the process
            # boundary.
            ctx = obs_trace.propagation_context()
            worker_task = dict(task, trace=ctx) if ctx is not None \
                else task
            loop = asyncio.get_running_loop()
            future = loop.run_in_executor(self.pool.executor,
                                          _characterize_point,
                                          worker_task)
            if self.dedup:
                self._inflight[flight] = future
            self._queue_depth += 1
            self._registry.gauge(
                obs_metrics.SERVE_QUEUE_DEPTH).set(self._queue_depth)

            def _done(__future):
                self._inflight.pop(flight, None)
                self._queue_depth -= 1
                self._registry.gauge(
                    obs_metrics.SERVE_QUEUE_DEPTH).set(self._queue_depth)

            future.add_done_callback(_done)
            result = await asyncio.shield(future)
            self._registry.counter(obs_metrics.SERVE_COMPUTES).inc()
            self._count_source("computed")
            # Re-parent the worker's span tree and fold its metrics and
            # cache accounting into the server session.
            obs_trace.adopt(result["trace"])
            self._registry.merge(result["obs_metrics"])
            if result.get("cache_stats"):
                self.cache.stats.merge(result["cache_stats"])
            # The worker stored the entry out of process: pull it into
            # the memory tier so repeats of this query are mem hits.
            self.cache.refresh(key)
            if span is not None:
                span.attrs["source"] = "computed"
            return protocol.record_from_result(task, result, "computed")

    async def _inject(self, request, writer, keep):
        """``/v1/inject``: one fault-injection campaign per request.

        The whole campaign runs in a single pool worker
        (:func:`repro.inject.campaign._inject_campaign`); its result is
        deterministic from the spec, so the served answer is
        bit-identical to an in-process ``run_campaign`` — the
        determinism suite compares the two verbatim.
        """
        from ..core.specs import SpecError
        from ..inject import CampaignSpec
        from ..inject.campaign import _inject_campaign

        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise protocol.ProtocolError("request body is not valid JSON")
        try:
            # Validate on the event loop so bad specs answer 400.
            spec = CampaignSpec.from_dict(payload)
        except SpecError as exc:
            raise protocol.ProtocolError(str(exc))
        ctx = obs_trace.propagation_context()
        task = {"spec": spec.to_dict(), "trace": ctx}
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self.pool.executor,
                                      _inject_campaign, task)
        result = await asyncio.shield(future)
        obs_trace.adopt(result["trace"])
        self._registry.merge(result["obs_metrics"])
        self._respond(writer, 200, {
            "protocol": protocol.PROTOCOL_VERSION,
            "campaign": result["campaign"],
        }, keep=keep)
        return keep

    async def _mc(self, request, writer, keep):
        """``/v1/mc``: one Monte Carlo yield analysis per request.

        The whole run executes in a single pool worker
        (:func:`repro.mc.yield_curves._mc_job`); the result is
        deterministic from the spec (per-gate Philox streams indexed by
        absolute sample position), so the served answer is bit-identical
        to an in-process ``run_mc`` at any ``--jobs``.
        """
        from ..core.specs import SpecError
        from ..mc import MCSpec
        from ..mc.yield_curves import _mc_job

        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise protocol.ProtocolError("request body is not valid JSON")
        try:
            # Validate on the event loop so bad specs answer 400.
            spec = MCSpec.from_dict(payload)
        except SpecError as exc:
            raise protocol.ProtocolError(str(exc))
        ctx = obs_trace.propagation_context()
        task = {"spec": spec.to_dict(), "trace": ctx}
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self.pool.executor, _mc_job, task)
        result = await asyncio.shield(future)
        obs_trace.adopt(result["trace"])
        self._registry.merge(result["obs_metrics"])
        self._respond(writer, 200, {
            "protocol": protocol.PROTOCOL_VERSION,
            "mc": result["mc"],
        }, keep=keep)
        return keep

    # -- streaming ---------------------------------------------------------
    async def _stream_batch(self, request, writer, keep):
        tasks = self._tasks(request)
        t0 = time.perf_counter()
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Transfer-Encoding: chunked\r\n"
                "Connection: %s\r\n\r\n"
                % ("keep-alive" if keep else "close"))
        writer.write(head.encode("latin-1"))
        pending = [asyncio.ensure_future(self._resolve_point(task))
                   for task in tasks]
        errors = 0
        try:
            for future in asyncio.as_completed(pending):
                try:
                    record = await future
                except (protocol.ProtocolError, Exception) as exc:
                    if isinstance(exc, (ConnectionResetError,
                                        BrokenPipeError)):
                        raise
                    errors += 1
                    self._registry.counter(obs_metrics.SERVE_ERRORS).inc()
                    record = {"error": "%s: %s"
                              % (type(exc).__name__, exc)}
                self._write_chunk(writer, record)
                await writer.drain()
            self._write_chunk(writer, {
                "done": True, "points": len(tasks) - errors,
                "errors": errors,
                "elapsed_ms": (time.perf_counter() - t0) * 1e3,
            })
            writer.write(b"0\r\n\r\n")
        except (ConnectionResetError, BrokenPipeError):
            for future in pending:
                future.cancel()
            raise
        return keep

    @staticmethod
    def _write_chunk(writer, record):
        data = json.dumps(record).encode("utf-8") + b"\n"
        writer.write(b"%x\r\n" % len(data) + data + b"\r\n")

    # -- plain responses ----------------------------------------------------
    @staticmethod
    def _respond_text(writer, status, text, content_type="text/plain",
                      keep=True):
        body = text.encode("utf-8")
        head = ("HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %d\r\n"
                "Connection: %s\r\n\r\n"
                % (status, _REASONS.get(status, "Unknown"), content_type,
                   len(body), "keep-alive" if keep else "close"))
        writer.write(head.encode("latin-1") + body)

    @staticmethod
    def _respond(writer, status, payload, keep=True):
        body = json.dumps(payload).encode("utf-8")
        head = ("HTTP/1.1 %d %s\r\n"
                "Content-Type: application/json\r\n"
                "Content-Length: %d\r\n"
                "Connection: %s\r\n\r\n"
                % (status, _REASONS.get(status, "Unknown"), len(body),
                   "keep-alive" if keep else "close"))
        writer.write(head.encode("latin-1") + body)

    # -- introspection ------------------------------------------------------
    def stats(self):
        """The ``/v1/stats`` payload (also handy after :meth:`run`)."""
        reg = self._registry if self._registry is not None \
            else obs_metrics.registry()
        requests = reg.value(obs_metrics.SERVE_REQUESTS)
        dedup_hits = reg.value(obs_metrics.SERVE_DEDUP_HITS)
        tier_mem = reg.value(obs_metrics.SERVE_TIER_MEM)
        tier_disk = reg.value(obs_metrics.SERVE_TIER_DISK)
        computes = reg.value(obs_metrics.SERVE_COMPUTES)
        points = dedup_hits + tier_mem + tier_disk + computes
        latency = {}
        histogram = reg.get(obs_metrics.SERVE_LATENCY_MS)
        if histogram is not None and histogram.count:
            latency = {
                "count": histogram.count,
                "mean": histogram.mean,
                "p50": histogram.quantile(0.50),
                "p95": histogram.quantile(0.95),
                "p99": histogram.quantile(0.99),
                "max": histogram.max,
            }
        return {
            "uptime_s": (time.time() - self.started_unix
                         if self.started_unix else 0.0),
            "requests": requests,
            "errors": reg.value(obs_metrics.SERVE_ERRORS),
            "points": points,
            "dedup_hits": dedup_hits,
            "tier_hits": {"mem": tier_mem, "disk": tier_disk},
            "computes": computes,
            "dedup_ratio": dedup_hits / points if points else 0.0,
            "tier_hit_ratio": ((tier_mem + tier_disk) / points
                               if points else 0.0),
            "mem_hit_ratio": tier_mem / points if points else 0.0,
            "queue_depth": self._queue_depth,
            "inflight": len(self._inflight),
            "latency_ms": latency,
            "slo": {
                "objectives": list(self._slo_results),
                "worst_burn_rate": reg.value(
                    obs_metrics.SERVE_SLO_WORST, 0.0),
                "breaches": reg.value(obs_metrics.SERVE_SLO_BREACHES),
            },
            "timeseries": {
                "samples": len(self.recorder) if self.recorder else 0,
                "interval_s": (self.recorder.interval
                               if self.recorder else None),
                "dropped": (self.recorder.dropped()
                            if self.recorder else 0),
            },
            "cache": self.cache.stats.as_dict(),
            "config": {
                "workers": self.pool.jobs,
                "shards": self.cache.shards,
                "mem_entries": self.cache.mem_entries,
                "dedup": self.dedup,
            },
        }


class _Routed(Exception):
    """Routing-level HTTP error (404/405) with a JSON message."""

    def __init__(self, status, message):
        super().__init__(message)
        self.status = status
        self.message = message
