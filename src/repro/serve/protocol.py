"""Query wire format of the characterization service.

A **query** is a JSON object selecting a characterization grid::

    {"component": "mult16",            # compact spec, or name + "width"
     "precisions": [16, 15, 14],       # or "precision": 16; default width
     "scenarios": ["worst10y", "balance1y", "fresh"],
     "effort": "high"}                 # default "ultra"

It parses (via :mod:`repro.core.specs`, the same vocabulary the CLI
accepts) into one point task per precision — the exact task dicts
:func:`repro.core.characterize.characterize` builds, so server answers
are bit-identical to direct library calls by construction.

A **point record** is the JSON answer for one grid point::

    {"key": <cache digest>, "component": "multiplier_w16", "width": 16,
     "precision": 14, "metrics": {"delay_ps": ..., "area_um2": ..., ...},
     "aged": {"10y_worst": <delay_ps>, ...}, "source": "mem"}

``source`` reports which tier answered: ``"mem"`` / ``"disk"`` (cache
tiers), ``"computed"`` (this request ran the characterization) or
``"dedup"`` (coalesced onto another request's in-flight computation).
"""

from ..core import specs
from ..core.characterize import (component_key, make_point_task,
                                 scenario_specs)
from ..obs.trace import TRACE_HEADER  # noqa: F401  (wire-format surface)

#: Wire-format version, echoed in server responses.
PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """A malformed query; the message is sent back as an HTTP 400."""


def parse_query(payload):
    """Parse a query JSON object.

    Returns ``(component, precisions, scenarios, effort)``; raises
    :class:`ProtocolError` with a user-facing message on any problem.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("query must be a JSON object, got %s"
                            % type(payload).__name__)
    unknown = set(payload) - {"component", "width", "precision",
                              "precisions", "scenarios", "effort"}
    if unknown:
        raise ProtocolError("unknown query fields: %s"
                            % ", ".join(sorted(unknown)))
    spec = payload.get("component")
    if not isinstance(spec, str):
        raise ProtocolError('query needs a "component" string '
                            '(e.g. "mult16" or "adder" with "width")')
    width = payload.get("width")
    if width is not None and not isinstance(width, int):
        raise ProtocolError('"width" must be an integer')
    try:
        component = specs.parse_component(spec, width=width)
    except specs.SpecError as exc:
        raise ProtocolError(str(exc))

    if "precision" in payload and "precisions" in payload:
        raise ProtocolError('give either "precision" or "precisions", '
                            'not both')
    raw = payload.get("precisions", payload.get("precision"))
    if raw is None:
        precisions = [component.width]
    else:
        if isinstance(raw, int):
            raw = [raw]
        if (not isinstance(raw, list) or not raw
                or not all(isinstance(p, int) for p in raw)):
            raise ProtocolError('"precisions" must be a non-empty list '
                                'of integers')
        precisions = sorted(set(raw), reverse=True)
    for precision in precisions:
        if not 1 <= precision <= component.width:
            raise ProtocolError(
                "precision %d out of range 1..%d for %s"
                % (precision, component.width, component_key(component)))

    raw = payload.get("scenarios", ["10y_worst"])
    if isinstance(raw, str):
        raw = [raw]
    if not isinstance(raw, list) or not raw:
        raise ProtocolError('"scenarios" must be a non-empty list of '
                            'scenario specs (e.g. ["worst10y", "fresh"])')
    try:
        scenarios = [specs.parse_scenario(s) for s in raw]
        effort = specs.parse_effort(payload.get("effort", "ultra"))
    except specs.SpecError as exc:
        raise ProtocolError(str(exc))
    return component, precisions, scenarios, effort


def point_tasks(component, precisions, scenarios, library, effort="ultra",
                cache_root=None, cache_shards=0):
    """Build the point tasks of a parsed query (one per precision)."""
    shared = scenario_specs(scenarios)
    return [make_point_task(
        component, precision, library, shared, effort=effort,
        cache_root=cache_root, cache_shards=cache_shards)
        for precision in precisions]


def record_from_entry(task, entry, source):
    """Point record answered from a cache *entry* (all scenarios hit)."""
    component = task["component"]
    return {
        "protocol": PROTOCOL_VERSION,
        "key": task["key"],
        "component": component_key(component),
        "width": component.width,
        "precision": task["precision"],
        "metrics": {name: entry["metrics"][name]
                    for name in ("delay_ps", "area_um2", "leakage_nw",
                                 "gates", "depth")},
        "aged": {label: entry["aged"][fp]["delay_ps"]
                 for __spec, label, fp in task["scenarios"]},
        "source": source,
    }


def record_from_result(task, result, source):
    """Point record from a ``_characterize_point`` worker *result*."""
    component = task["component"]
    return {
        "protocol": PROTOCOL_VERSION,
        "key": task["key"],
        "component": component_key(component),
        "width": component.width,
        "precision": result["precision"],
        "metrics": dict(result["metrics"]),
        "aged": {label: delay for label, delay in result["aged"]},
        "source": source,
    }
