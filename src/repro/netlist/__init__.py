"""Gate-level netlist substrate: nets, gates, graphs and builders."""

from .net import CONST0, CONST1, is_const, const_value
from .gate import Gate
from .netlist import Netlist, NetlistError
from .builder import NetlistBuilder
from .verilog import from_verilog, to_verilog

__all__ = [
    "CONST0", "CONST1", "is_const", "const_value",
    "Gate", "Netlist", "NetlistError", "NetlistBuilder",
    "from_verilog", "to_verilog",
]
