"""Structural netlist construction helpers.

:class:`NetlistBuilder` wraps a :class:`~repro.netlist.netlist.Netlist`
with one method per logic primitive, so the RTL component generators in
:mod:`repro.rtl` read like structural RTL. All gates are instantiated at
the default drive strength; the synthesizer's sizing pass upgrades drives
where timing needs it.
"""

from .net import CONST0, CONST1
from .netlist import Netlist


class NetlistBuilder:
    """Fluent construction facade over a :class:`Netlist`.

    Parameters
    ----------
    netlist:
        Target netlist; a fresh one is created when omitted.
    drive:
        Default drive strength suffix for instantiated cells.
    """

    def __init__(self, netlist=None, name="design", drive=1):
        self.netlist = netlist if netlist is not None else Netlist(name)
        self.drive = drive
        self.const0 = CONST0
        self.const1 = CONST1

    def _cell(self, kind):
        return "%s_X%d" % (kind, self.drive)

    # -- primitive gates -------------------------------------------------
    def inv(self, a, name=""):
        return self.netlist.add_gate(self._cell("INV"), (a,), name=name)

    def buf(self, a, name=""):
        return self.netlist.add_gate(self._cell("BUF"), (a,), name=name)

    def nand2(self, a, b, name=""):
        return self.netlist.add_gate(self._cell("NAND2"), (a, b), name=name)

    def nor2(self, a, b, name=""):
        return self.netlist.add_gate(self._cell("NOR2"), (a, b), name=name)

    def and2(self, a, b, name=""):
        return self.netlist.add_gate(self._cell("AND2"), (a, b), name=name)

    def or2(self, a, b, name=""):
        return self.netlist.add_gate(self._cell("OR2"), (a, b), name=name)

    def xor2(self, a, b, name=""):
        return self.netlist.add_gate(self._cell("XOR2"), (a, b), name=name)

    def xnor2(self, a, b, name=""):
        return self.netlist.add_gate(self._cell("XNOR2"), (a, b), name=name)

    def mux2(self, a, b, sel, name=""):
        """2:1 multiplexer: output = *b* when *sel* else *a*."""
        return self.netlist.add_gate(self._cell("MUX2"), (a, b, sel), name=name)

    def aoi21(self, a, b, c, name=""):
        """AND-OR-invert: ``~((a & b) | c)``."""
        return self.netlist.add_gate(self._cell("AOI21"), (a, b, c), name=name)

    def oai21(self, a, b, c, name=""):
        """OR-AND-invert: ``~((a | b) & c)``."""
        return self.netlist.add_gate(self._cell("OAI21"), (a, b, c), name=name)

    # -- wide helpers -----------------------------------------------------
    def and_tree(self, nets, name=""):
        """Balanced AND reduction of an arbitrary list of nets."""
        return self._tree(self.and2, nets, CONST1, name)

    def or_tree(self, nets, name=""):
        """Balanced OR reduction of an arbitrary list of nets."""
        return self._tree(self.or2, nets, CONST0, name)

    def xor_tree(self, nets, name=""):
        """Balanced XOR reduction of an arbitrary list of nets."""
        return self._tree(self.xor2, nets, CONST0, name)

    def _tree(self, op, nets, identity, name):
        nets = list(nets)
        if not nets:
            return identity
        while len(nets) > 1:
            nxt = []
            for i in range(0, len(nets) - 1, 2):
                nxt.append(op(nets[i], nets[i + 1], name=name))
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return nets[0]

    # -- arithmetic bricks -------------------------------------------------
    def half_adder(self, a, b, name=""):
        """Return ``(sum, carry)`` of a half adder."""
        s = self.xor2(a, b, name=name + ".s" if name else "")
        c = self.and2(a, b, name=name + ".c" if name else "")
        return s, c

    def full_adder(self, a, b, cin, name=""):
        """Return ``(sum, carry)`` of a full adder built from 2 HAs + OR."""
        s1 = self.xor2(a, b, name=name + ".x1" if name else "")
        s = self.xor2(s1, cin, name=name + ".s" if name else "")
        c1 = self.and2(a, b, name=name + ".c1" if name else "")
        c2 = self.and2(s1, cin, name=name + ".c2" if name else "")
        c = self.or2(c1, c2, name=name + ".c" if name else "")
        return s, c

    # -- I/O ---------------------------------------------------------------
    def inputs(self, count, prefix):
        """Declare *count* primary inputs named ``prefix[i]``, LSB first."""
        return self.netlist.add_inputs(count, prefix)

    def outputs(self, nets, prefix="y"):
        """Declare *nets* as the primary outputs, LSB first."""
        self.netlist.set_outputs(list(nets), prefix=prefix)
        return self.netlist
