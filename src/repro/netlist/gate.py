"""Gate instances.

A :class:`Gate` is one standard-cell instance inside a
:class:`~repro.netlist.netlist.Netlist`: a cell type name (a key into a
:class:`~repro.cells.library.CellLibrary`), an ordered tuple of input nets
and a single output net.
"""

from dataclasses import dataclass, field
from typing import Tuple


@dataclass
class Gate:
    """One standard-cell instance.

    Attributes
    ----------
    uid:
        Unique id of this gate within its netlist. Stable across
        optimization passes so that aging stress annotations (which are
        keyed by gate uid) survive netlist rewrites that keep the gate.
    cell:
        Cell type name, e.g. ``"NAND2_X1"``. Resolved against a
        :class:`~repro.cells.library.CellLibrary` at analysis time so a
        netlist is not tied to one library instance.
    inputs:
        Ordered input net ids. Order matters for non-commutative cells
        (``MUX2`` select is the last input).
    output:
        The single output net id driven by this gate.
    """

    uid: int
    cell: str
    inputs: Tuple[int, ...]
    output: int
    name: str = field(default="")

    def __post_init__(self):
        self.inputs = tuple(self.inputs)

    @property
    def kind(self):
        """Base cell kind without the drive-strength suffix.

        ``"NAND2_X1"`` -> ``"NAND2"``. Cell names without a drive suffix
        are returned unchanged.
        """
        base, sep, drive = self.cell.rpartition("_X")
        if sep and drive.isdigit():
            return base
        return self.cell

    @property
    def drive(self):
        """Drive strength (1, 2, 4, ...) encoded in the cell name."""
        __, sep, drive = self.cell.rpartition("_X")
        if sep and drive.isdigit():
            return int(drive)
        return 1

    def with_cell(self, cell):
        """Return a copy of this gate mapped to a different cell type."""
        return Gate(uid=self.uid, cell=cell, inputs=self.inputs,
                    output=self.output, name=self.name)
