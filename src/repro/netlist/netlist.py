"""Gate-level netlist graph.

The :class:`Netlist` is the central data structure of the reproduction:
RTL component generators produce netlists, the synthesizer rewrites them,
static timing analysis and the gate-level simulators consume them.

Nets are plain integers (ids); ids 0 and 1 are the reserved constants
``CONST0``/``CONST1``. Each net is driven by at most one gate. Primary
inputs and outputs are ordered lists of net ids — bit 0 (LSB) first for
the arithmetic components built on top.
"""

from collections import deque

from .gate import Gate
from .net import CONST0, CONST1, FIRST_FREE_NET, is_const


class NetlistError(Exception):
    """Raised when a netlist is structurally invalid."""


class Netlist:
    """A combinational gate-level netlist.

    Parameters
    ----------
    name:
        Human-readable design name (e.g. ``"kogge_stone_adder_w32"``).
    """

    def __init__(self, name="netlist"):
        self.name = name
        self._next_net = FIRST_FREE_NET
        self._next_gate_uid = 0
        self.net_names = {CONST0: "const0", CONST1: "const1"}
        self.primary_inputs = []
        self.primary_outputs = []
        self.gates = []
        self._driver = {}      # net id -> Gate
        self._topo_cache = None
        #: monotonically increasing structural-mutation counter; lets
        #: consumers (e.g. the compiled-program memo) key derived
        #: artifacts to one structural state of the netlist.
        self._version = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def new_net(self, name=None):
        """Allocate and return a fresh net id."""
        net = self._next_net
        self._next_net += 1
        if name is not None:
            self.net_names[net] = name
        self._topo_cache = None
        self._version += 1
        return net

    def new_nets(self, count, prefix=None):
        """Allocate *count* fresh nets, optionally named ``prefix[i]``."""
        return [self.new_net(None if prefix is None else "%s[%d]" % (prefix, i))
                for i in range(count)]

    def add_input(self, name=None):
        """Allocate a fresh net and register it as a primary input."""
        net = self.new_net(name)
        self.primary_inputs.append(net)
        return net

    def add_inputs(self, count, prefix):
        """Allocate *count* primary inputs named ``prefix[i]`` (LSB first)."""
        return [self.add_input("%s[%d]" % (prefix, i)) for i in range(count)]

    def set_outputs(self, nets, prefix=None):
        """Register *nets* (LSB first) as the primary outputs."""
        self.primary_outputs = list(nets)
        self._version += 1
        if prefix is not None:
            for i, net in enumerate(nets):
                self.net_names.setdefault(net, "%s[%d]" % (prefix, i))

    def add_gate(self, cell, inputs, output=None, name=""):
        """Instantiate a gate of type *cell*.

        Parameters
        ----------
        cell:
            Cell type name (e.g. ``"NAND2_X1"``).
        inputs:
            Iterable of input net ids.
        output:
            Output net id; a fresh net is allocated when omitted.

        Returns
        -------
        int
            The output net id.
        """
        if output is None:
            output = self.new_net()
        if output in self._driver:
            raise NetlistError("net %d already driven" % output)
        if is_const(output):
            raise NetlistError("cannot drive a constant net")
        gate = Gate(uid=self._next_gate_uid, cell=cell,
                    inputs=tuple(inputs), output=output, name=name)
        self._next_gate_uid += 1
        self.gates.append(gate)
        self._driver[output] = gate
        self._topo_cache = None
        self._version += 1
        return output

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def driver_of(self, net):
        """Return the gate driving *net*, or None for PIs/constants."""
        return self._driver.get(net)

    def fanout_map(self):
        """Map each net id to the list of gates that read it."""
        fanout = {}
        for gate in self.gates:
            for net in gate.inputs:
                fanout.setdefault(net, []).append(gate)
        return fanout

    @property
    def num_gates(self):
        return len(self.gates)

    def nets(self):
        """Return the set of all net ids referenced by the netlist."""
        referenced = {CONST0, CONST1}
        referenced.update(self.primary_inputs)
        referenced.update(self.primary_outputs)
        for gate in self.gates:
            referenced.update(gate.inputs)
            referenced.add(gate.output)
        return referenced

    def _list_is_topological(self):
        """True when ``self.gates`` is already input-to-output ordered.

        A single forward scan: every gate must read only constants,
        primary inputs, or outputs of earlier gates in the list. Builder
        netlists satisfy this by construction (gates reference nets that
        already exist), and the synthesis passes preserve it (rewires
        always point at upstream nets).
        """
        ready = {CONST0, CONST1}
        ready.update(self.primary_inputs)
        for gate in self.gates:
            for net in gate.inputs:
                if net not in ready and net in self._driver:
                    return False
            ready.add(gate.output)
        return True

    def topological_gates(self):
        """Return gates in topological (input-to-output) order.

        When the gate list itself is already topologically sorted — true
        for every builder-constructed netlist and everything the
        synthesis passes produce — the list *is* the order, which makes
        the order canonical (gate uids ascend for builder netlists) and
        independent of traversal details. Kahn's algorithm is the
        fallback for arbitrarily ordered netlists. The result is cached
        until the netlist is mutated.

        Raises
        ------
        NetlistError
            If the netlist contains a combinational cycle or a gate reads
            an undriven, non-input net.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        if self._list_is_topological():
            # Still validate that every read net is driven.
            driven = {CONST0, CONST1}
            driven.update(self.primary_inputs)
            driven.update(self._driver)
            for gate in self.gates:
                for net in gate.inputs:
                    if net not in driven:
                        raise NetlistError(
                            "gate %d (%s) reads undriven net %d"
                            % (gate.uid, gate.cell, net))
            self._topo_cache = list(self.gates)
            return self._topo_cache

        ready = {CONST0, CONST1}
        ready.update(self.primary_inputs)
        # Kahn's algorithm on the gate graph. A gate may read the same
        # net on several pins, so dependencies are tracked per *unique*
        # input net (one waiter registration, one pending count each).
        pending = {}           # gate uid -> number of unresolved inputs
        waiters = {}           # net id -> gates waiting on it
        queue = deque()
        for gate in self.gates:
            unresolved = 0
            for net in set(gate.inputs):
                if net not in ready and net not in self._driver:
                    raise NetlistError(
                        "gate %d (%s) reads undriven net %d"
                        % (gate.uid, gate.cell, net))
                if net not in ready:
                    unresolved += 1
                    waiters.setdefault(net, []).append(gate)
            if unresolved:
                pending[gate.uid] = unresolved
            else:
                queue.append(gate)

        order = []
        while queue:
            gate = queue.popleft()
            order.append(gate)
            produced = gate.output
            for waiter in waiters.get(produced, ()):  # resolve dependants
                pending[waiter.uid] -= 1
                if pending[waiter.uid] == 0:
                    queue.append(waiter)
        if len(order) != len(self.gates):
            raise NetlistError(
                "combinational cycle: %d of %d gates unordered"
                % (len(self.gates) - len(order), len(self.gates)))
        self._topo_cache = order
        return order

    def validate(self):
        """Check structural invariants; raise :class:`NetlistError` if broken.

        Invariants: single driver per net, no driven constants, no driven
        primary inputs, every primary output driven or a PI/constant, and
        the gate graph is acyclic.
        """
        seen_outputs = set()
        for gate in self.gates:
            if gate.output in seen_outputs:
                raise NetlistError("net %d multiply driven" % gate.output)
            seen_outputs.add(gate.output)
            if is_const(gate.output):
                raise NetlistError("constant net driven by gate %d" % gate.uid)
            if gate.output in self.primary_inputs:
                raise NetlistError("primary input %d driven" % gate.output)
        driven = seen_outputs | set(self.primary_inputs) | {CONST0, CONST1}
        for net in self.primary_outputs:
            if net not in driven:
                raise NetlistError("primary output %d undriven" % net)
        self.topological_gates()
        return True

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def area(self, library):
        """Total cell area in um^2 under *library*."""
        return sum(library[g.cell].area for g in self.gates)

    def leakage(self, library):
        """Total leakage power in nW under *library*."""
        return sum(library[g.cell].leakage_nw for g in self.gates)

    def cell_histogram(self):
        """Map cell type name -> instance count."""
        hist = {}
        for gate in self.gates:
            hist[gate.cell] = hist.get(gate.cell, 0) + 1
        return hist

    def load_caps(self, library, wire_cap_ff=0.8):
        """Per-gate output load capacitance in fF.

        The load of a gate is the sum of the input capacitances of its
        fanout cells plus *wire_cap_ff* per fanout branch. Primary outputs
        add one standard load (an implicit register/pin).
        """
        po_set = {}
        for net in self.primary_outputs:
            po_set[net] = po_set.get(net, 0) + 1
        loads = {}
        for gate in self.gates:
            loads[gate.uid] = library.output_load_ff * po_set.get(gate.output, 0)
        fanout = self.fanout_map()
        for gate in self.gates:
            total = loads[gate.uid]
            for sink in fanout.get(gate.output, ()):
                cell = library[sink.cell]
                pin = list(sink.inputs).count(gate.output)
                total += pin * (cell.input_cap_ff + wire_cap_ff)
            loads[gate.uid] = total + wire_cap_ff * po_set.get(gate.output, 0)
        return loads

    # ------------------------------------------------------------------
    # mutation used by synthesis
    # ------------------------------------------------------------------
    def rebuild(self, gates):
        """Replace the gate list with *gates* and refresh internal maps.

        Used by optimization passes that produce a filtered/rewired gate
        list. Gate uids are preserved.
        """
        self.gates = list(gates)
        self._driver = {g.output: g for g in self.gates}
        if len(self._driver) != len(self.gates):
            raise NetlistError("rebuild produced multiply-driven nets")
        self._topo_cache = None
        self._version += 1

    def copy(self):
        """Return a deep-enough copy (gates are re-created, ids preserved)."""
        dup = Netlist(self.name)
        dup._next_net = self._next_net
        dup._next_gate_uid = self._next_gate_uid
        dup.net_names = dict(self.net_names)
        dup.primary_inputs = list(self.primary_inputs)
        dup.primary_outputs = list(self.primary_outputs)
        dup.gates = [Gate(uid=g.uid, cell=g.cell, inputs=g.inputs,
                          output=g.output, name=g.name) for g in self.gates]
        dup._driver = {g.output: g for g in dup.gates}
        return dup

    def __repr__(self):
        return ("Netlist(%r, gates=%d, inputs=%d, outputs=%d)"
                % (self.name, len(self.gates), len(self.primary_inputs),
                   len(self.primary_outputs)))
