"""Net identifiers and constant nets.

A *net* is a single-bit wire in a gate-level netlist. For performance the
rest of the package represents nets as plain integers allocated by a
:class:`~repro.netlist.netlist.Netlist`; this module only defines the two
reserved identifiers used for logic constants.

Reserved identifiers
--------------------
``CONST0``
    Net id 0, permanently tied to logic 0. Precision reduction by LSB
    truncation is realized by connecting component inputs to this net and
    letting constant propagation shrink the netlist.
``CONST1``
    Net id 1, permanently tied to logic 1. Used e.g. by the Baugh-Wooley
    signed multiplier's correction terms.
"""

CONST0 = 0
CONST1 = 1

#: Net ids below this value are reserved constants.
FIRST_FREE_NET = 2


def is_const(net):
    """Return True if *net* is one of the reserved constant nets."""
    return net == CONST0 or net == CONST1


def const_value(net):
    """Return the logic value (0 or 1) of a constant net.

    Raises ``ValueError`` if *net* is not a constant.
    """
    if net == CONST0:
        return 0
    if net == CONST1:
        return 1
    raise ValueError("net %r is not a constant net" % (net,))
