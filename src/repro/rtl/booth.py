"""Radix-4 (modified) Booth multiplier.

The third multiplier architecture of the ablation set. Booth recoding
halves the number of partial products (one per operand bit *pair*),
which is how commercial tools build large multipliers; its behaviour
under truncation and aging differs from the plain Baugh-Wooley array in
interesting ways (fewer, wider partial products -> steeper delay steps).

Recoding: for digit ``i`` the bit triple ``(b[2i+1], b[2i], b[2i-1])``
(with ``b[-1] = 0`` and sign extension above the MSB) selects a partial
product from ``{0, ±A, ±2A}``:

    single = b[2i] xor b[2i-1]
    double = (b[2i] xnor b[2i-1]) and (b[2i+1] xor b[2i])
    neg    = b[2i+1]

Negative digits are applied as one's complement plus a correction bit at
weight ``2^(2i)``; every partial product is sign-extended across the
full 2N columns, which also makes the "negative zero" digit (triple
``111``) vanish identically.
"""

from ..netlist.net import CONST0
from .adder import cla_core, kogge_stone_core
from .multiplier import _MultiplierBase, columns_to_operands, wallace_reduce


def booth_digit_controls(builder, b1, b0, bm1):
    """Decode one Booth digit into ``(single, double, neg)`` nets.

    ``neg`` is simply the triple's top bit: negative digits are exactly
    those with ``b[2i+1] = 1`` (the ``111`` "negative zero" resolves to
    0 through the sign-extended complement-plus-one path).
    """
    single = builder.xor2(b0, bm1)
    double = builder.and2(builder.xnor2(b0, bm1), builder.xor2(b1, b0))
    return single, double, b1


def booth_columns(builder, a_nets, b_nets):
    """Partial-product columns of a radix-4 Booth NxN signed multiply."""
    n = len(a_nets)
    if len(b_nets) != n:
        raise ValueError("operand widths differ")
    width = 2 * n
    cols = [[] for __ in range(width)]

    def b_bit(index):
        if index < 0:
            return CONST0
        if index >= n:
            return b_nets[n - 1]        # sign extension of B
        return b_nets[index]

    def a_bit(index):
        if index < 0:
            return CONST0
        if index >= n:
            return a_nets[n - 1]        # sign extension of A (for 2A)
        return a_nets[index]

    digits = (n + 1) // 2
    for i in range(digits):
        b1, b0, bm1 = b_bit(2 * i + 1), b_bit(2 * i), b_bit(2 * i - 1)
        single, double, neg = booth_digit_controls(builder, b1, b0, bm1)
        base = 2 * i
        # Bits of |pp| before negation: sel_j = single*a_j | double*a_{j-1}
        sel_bits = []
        for j in range(n + 1):
            sel = builder.or2(builder.and2(single, a_bit(j)),
                              builder.and2(double, a_bit(j - 1)))
            sel_bits.append(sel)
        # Apply conditional negation and place into columns with full
        # sign extension (replicating the top selected bit).
        for col in range(base, width):
            j = col - base
            sel = sel_bits[j] if j <= n else sel_bits[n]
            cols[col].append(builder.xor2(sel, neg))
        cols[base].append(neg)          # two's-complement correction
    return cols


class BoothMultiplier(_MultiplierBase):
    """Radix-4 Booth recoded multiplier with carry-save reduction.

    Parameters
    ----------
    final_adder:
        ``"cla"`` (default) or ``"ks"``, as for
        :class:`~repro.rtl.multiplier.WallaceMultiplier`.
    """

    family = "booth"

    def __init__(self, width, precision=None, final_adder="cla"):
        super().__init__(width, precision=precision)
        if final_adder not in ("cla", "ks"):
            raise ValueError("final_adder must be 'cla' or 'ks'")
        self.final_adder = final_adder

    def _build_core(self, builder, operands):
        cols = booth_columns(builder, operands[0], operands[1])
        cols = wallace_reduce(builder, cols)
        row_a, row_b = columns_to_operands(cols)
        core = cla_core if self.final_adder == "cla" else kogge_stone_core
        sums, __cout = core(builder, row_a, row_b)
        return sums

    def with_precision(self, precision):
        return BoothMultiplier(self.width, precision=precision,
                               final_adder=self.final_adder)
