"""RTL component generators: adders, multipliers, MAC, DCT/IDCT."""

from .component import RTLComponent, truncate_lsbs, wrap_signed
from .adder import (Adder, CarryLookaheadAdder, KoggeStoneAdder,
                    RippleCarryAdder, cla_core, kogge_stone_core,
                    ripple_core)
from .multiplier import (ArrayMultiplier, Multiplier, WallaceMultiplier,
                         baugh_wooley_columns, wallace_reduce)
from .mac import MultiplyAccumulate
from .dct import (DEFAULT_COEFF_BITS, FixedPointTransform8, POINTS,
                  dct_matrix, dct_microarchitecture, descale,
                  fixed_coefficients, idct_microarchitecture)
from .fir import (DEFAULT_FIR_COEFF_BITS, FixedPointFIR,
                  fir_microarchitecture, lowpass_taps)
from .adder_variants import CarrySelectAdder, CarrySkipAdder
from .booth import BoothMultiplier
from .approx_adders import LowerOrAdder
from .approx_multipliers import TruncatedProductMultiplier

__all__ = [
    "RTLComponent", "truncate_lsbs", "wrap_signed",
    "Adder", "CarryLookaheadAdder", "KoggeStoneAdder", "RippleCarryAdder",
    "cla_core", "kogge_stone_core", "ripple_core",
    "ArrayMultiplier", "Multiplier", "WallaceMultiplier",
    "baugh_wooley_columns", "wallace_reduce",
    "MultiplyAccumulate",
    "DEFAULT_COEFF_BITS", "FixedPointTransform8", "POINTS", "dct_matrix",
    "dct_microarchitecture", "descale", "fixed_coefficients",
    "idct_microarchitecture",
    "DEFAULT_FIR_COEFF_BITS", "FixedPointFIR", "fir_microarchitecture",
    "lowpass_taps",
    "CarrySelectAdder", "CarrySkipAdder", "BoothMultiplier", "LowerOrAdder",
    "TruncatedProductMultiplier",
]
