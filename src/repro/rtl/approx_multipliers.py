"""Approximate multipliers from the literature.

Complements :mod:`repro.rtl.approx_adders`: the **partial-product
truncated (PPT) multiplier** drops the low-weight partial-product
columns entirely instead of zeroing operand LSBs. Compared to operand
truncation at the same precision it keeps more information (operand bits
still contribute through the *retained* columns) while removing a
similar amount of carry-save hardware — another point on the
technique-generality axis the paper claims.
"""

import numpy as np

from ..netlist.net import CONST0
from .adder import cla_core
from .multiplier import (_MultiplierBase, baugh_wooley_columns,
                         columns_to_operands, wallace_reduce)


class TruncatedProductMultiplier(_MultiplierBase):
    """Wallace multiplier with the lowest product columns removed.

    The *precision* knob maps to the cut: at precision ``P`` the
    ``width - P`` lowest product columns are dropped (their partial
    products are never generated; the corresponding output bits read
    constant 0). Because the dropped columns sit strictly below the
    Baugh-Wooley sign-handling region, the value model is exact:

        approx(a, b) = a*b - sum_{i+j < cut} a_j * b_i * 2^(i+j)

    with ``a_j, b_i`` the operands' two's-complement bit values.
    """

    family = "ppt_multiplier"

    def __init__(self, width, precision=None, final_adder="cla"):
        super().__init__(width, precision=precision)
        if final_adder not in ("cla",):
            raise ValueError("PPT multiplier supports the 'cla' final "
                             "adder")
        if self.drop_bits >= width - 1:
            raise ValueError(
                "cut of %d columns reaches the Baugh-Wooley sign region "
                "of a %d-bit multiplier" % (self.drop_bits, width))
        self.final_adder = final_adder

    def build(self, drive=1):
        from ..netlist.builder import NetlistBuilder

        builder = NetlistBuilder(name=self.name, drive=drive)
        a = builder.inputs(self.width, "a")
        b = builder.inputs(self.width, "b")
        return builder.outputs(self._build_core(builder, [a, b]),
                               prefix="y")

    def _build_core(self, builder, operands):
        cols = baugh_wooley_columns(builder, operands[0], operands[1])
        cut = self.drop_bits
        # Drop the low columns wholesale; downstream sees constant 0s.
        # (The netlist still *creates* those AND gates via
        # baugh_wooley_columns; dead-gate elimination removes them.)
        for index in range(cut):
            cols[index] = []
        cols = wallace_reduce(builder, cols)
        row_a, row_b = columns_to_operands(cols)
        sums, __cout = cla_core(builder, row_a[cut:], row_b[cut:])
        return [CONST0] * cut + sums

    def approximate(self, a, b):
        """Exact closed form of the column-dropped product."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        cut = self.drop_bits
        dropped = np.zeros_like(a)
        for j in range(cut):
            a_bit = (a >> np.int64(j)) & 1
            for i in range(cut - j):
                b_bit = (b >> np.int64(i)) & 1
                dropped += (a_bit & b_bit) << np.int64(i + j)
        return a * b - dropped

    def max_error_bound(self):
        """Every dropped column bit is worth its weight; column ``c``
        holds ``c+1`` partial products, all potentially 1."""
        return sum((c + 1) << c for c in range(self.drop_bits))

    def with_precision(self, precision):
        return TruncatedProductMultiplier(self.width, precision=precision,
                                          final_adder=self.final_adder)
