"""Signed multipliers: Wallace-tree and carry-save array.

Both use the Baugh-Wooley formulation for two's-complement operands:
for ``N``-bit inputs the exact ``2N``-bit product is the sum of

* the positive partial products ``a_j & b_i`` for ``i, j < N-1``,
* the complemented cross terms ``~(a_{N-1} & b_i)`` and
  ``~(a_j & b_{N-1})`` at weight ``2**(N-1+i)`` / ``2**(N-1+j)``,
* the MSB product ``a_{N-1} & b_{N-1}`` at weight ``2**(2N-2)``,
* correction constants ``1`` at weights ``2**N`` and ``2**(2N-1)``
  (modulo ``2**(2N)``).

:class:`WallaceMultiplier` (the default) reduces the partial-product
columns with a carry-save tree (logarithmic depth) and resolves the last
two rows with a carry-lookahead adder — matching a performance-driven
synthesis result, as the paper's "ultra compile" setting would produce.
:class:`ArrayMultiplier` accumulates rows with ripple adders (linear
depth) and exists for the architecture ablation.
"""

from ..netlist.net import CONST0, CONST1
from .adder import cla_core, kogge_stone_core, ripple_core
from .component import RTLComponent, wrap_signed


def baugh_wooley_columns(builder, a_nets, b_nets):
    """Partial-product columns of a signed NxN multiply.

    Returns ``columns``: a list of ``2N`` lists of net ids; column ``c``
    holds all bits of weight ``2**c``.
    """
    n = len(a_nets)
    if len(b_nets) != n:
        raise ValueError("operand widths differ")
    cols = [[] for __ in range(2 * n)]
    for i in range(n - 1):
        for j in range(n - 1):
            cols[i + j].append(builder.and2(a_nets[j], b_nets[i]))
        cols[i + n - 1].append(builder.nand2(a_nets[n - 1], b_nets[i]))
    for j in range(n - 1):
        cols[j + n - 1].append(builder.nand2(a_nets[j], b_nets[n - 1]))
    cols[2 * n - 2].append(builder.and2(a_nets[n - 1], b_nets[n - 1]))
    cols[n].append(CONST1)
    cols[2 * n - 1].append(CONST1)
    return cols


def wallace_reduce(builder, columns):
    """Carry-save reduction of *columns* down to height <= 2.

    Carries that would overflow past the last column are dropped
    (modular arithmetic). Returns the reduced column list (same length).
    """
    width = len(columns)
    cols = [list(col) for col in columns]
    while max(len(col) for col in cols) > 2:
        nxt = [[] for __ in range(width)]
        for c, col in enumerate(cols):
            i = 0
            while len(col) - i >= 3:
                s, cy = builder.full_adder(col[i], col[i + 1], col[i + 2])
                nxt[c].append(s)
                if c + 1 < width:
                    nxt[c + 1].append(cy)
                i += 3
            if len(col) - i == 2:
                s, cy = builder.half_adder(col[i], col[i + 1])
                nxt[c].append(s)
                if c + 1 < width:
                    nxt[c + 1].append(cy)
                i += 2
            nxt[c].extend(col[i:])
        cols = nxt
    return cols


def columns_to_operands(columns):
    """Split height-<=2 columns into two aligned addend bit vectors."""
    a_bits, b_bits = [], []
    for col in columns:
        a_bits.append(col[0] if len(col) > 0 else CONST0)
        b_bits.append(col[1] if len(col) > 1 else CONST0)
    return a_bits, b_bits


class _MultiplierBase(RTLComponent):
    """Shared behaviour of the signed NxN -> 2N multipliers."""

    family = "multiplier"

    @property
    def operand_widths(self):
        return [self.width, self.width]

    @property
    def output_width(self):
        return 2 * self.width

    def exact(self, a, b):
        """Exact signed product (always representable in 2N bits)."""
        import numpy as np
        return (np.asarray(a, dtype=np.int64)
                * np.asarray(b, dtype=np.int64))

    def max_error_bound(self):
        """|error| < 2**(drop+N): |a*b - a_t*b_t| <= 2**t*(|a|+|b|)."""
        t = self.drop_bits
        if t == 0:
            return 0
        return (1 << t) * (2 * (1 << (self.width - 1)))


class WallaceMultiplier(_MultiplierBase):
    """Wallace carry-save tree + final carry-propagate adder.

    Parameters
    ----------
    final_adder:
        ``"cla"`` (default) resolves the two carry-save rows with a
        group carry-lookahead adder, whose delay falls steadily as
        precision is truncated; ``"ks"`` uses a Kogge-Stone adder —
        faster and with many simultaneously-near-critical paths, but
        nearly insensitive to truncation (explored in the ablations).
    """

    def __init__(self, width, precision=None, final_adder="cla"):
        super().__init__(width, precision=precision)
        if final_adder not in ("cla", "ks"):
            raise ValueError("final_adder must be 'cla' or 'ks'")
        self.final_adder = final_adder

    def _build_core(self, builder, operands):
        cols = baugh_wooley_columns(builder, operands[0], operands[1])
        cols = wallace_reduce(builder, cols)
        a_bits, b_bits = columns_to_operands(cols)
        core = cla_core if self.final_adder == "cla" else kogge_stone_core
        sums, __cout = core(builder, a_bits, b_bits)
        return sums

    def with_precision(self, precision):
        return WallaceMultiplier(self.width, precision=precision,
                                 final_adder=self.final_adder)


class ArrayMultiplier(_MultiplierBase):
    """Row-by-row ripple accumulation (linear depth, ablation only)."""

    family = "array_multiplier"

    def _build_core(self, builder, operands):
        cols = baugh_wooley_columns(builder, operands[0], operands[1])
        width = len(cols)
        acc = [CONST0] * width
        pending = [list(col) for col in cols]
        while any(pending_col for pending_col in pending):
            row = [col.pop(0) if col else CONST0 for col in pending]
            acc, __cout = ripple_core(builder, acc, row)
        return acc


#: The multiplier variant used by the paper-reproduction experiments.
Multiplier = WallaceMultiplier
