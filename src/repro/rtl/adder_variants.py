"""Additional adder architectures: carry-select and carry-skip.

These extend the architecture ablation between the extremes already in
:mod:`repro.rtl.adder`: both are classic mid-range designs — faster than
ripple, cheaper than parallel-prefix — and they occupy interesting
points on the two axes the reproduction studies (dynamic timing-error
exposure and truncation responsiveness).
"""

from ..netlist.net import CONST0, CONST1
from .adder import _AdderBase, ripple_core


def carry_select_core(builder, a_nets, b_nets, group=4):
    """Carry-select adder: per group, compute both carry cases and mux.

    Returns ``(sum_nets, carry_out)``.
    """
    if len(a_nets) != len(b_nets):
        raise ValueError("operand widths differ")
    n = len(a_nets)
    sums = [None] * n
    carry = CONST0
    for lo in range(0, n, group):
        hi = min(lo + group, n)
        a_grp = a_nets[lo:hi]
        b_grp = b_nets[lo:hi]
        if lo == 0:
            # First group needs no speculation: carry-in is known 0.
            group_sums, carry = ripple_core(builder, a_grp, b_grp, CONST0)
            sums[lo:hi] = group_sums
            continue
        sums0, cout0 = ripple_core(builder, a_grp, b_grp, CONST0)
        sums1, cout1 = ripple_core(builder, a_grp, b_grp, CONST1)
        for offset in range(hi - lo):
            sums[lo + offset] = builder.mux2(sums0[offset], sums1[offset],
                                             carry)
        carry = builder.mux2(cout0, cout1, carry)
    return sums, carry


def carry_skip_core(builder, a_nets, b_nets, group=4):
    """Carry-skip adder: ripple groups with propagate-bypass muxes.

    Returns ``(sum_nets, carry_out)``.
    """
    if len(a_nets) != len(b_nets):
        raise ValueError("operand widths differ")
    n = len(a_nets)
    sums = [None] * n
    carry = CONST0
    for lo in range(0, n, group):
        hi = min(lo + group, n)
        a_grp = a_nets[lo:hi]
        b_grp = b_nets[lo:hi]
        group_sums, ripple_out = ripple_core(builder, a_grp, b_grp, carry)
        sums[lo:hi] = group_sums
        # Group propagate: when every bit propagates, the carry-in
        # bypasses the ripple chain through the skip mux.
        props = [builder.xor2(a, b) for a, b in zip(a_grp, b_grp)]
        p_group = builder.and_tree(props)
        carry = builder.mux2(ripple_out, carry, p_group)
    return sums, carry


class CarrySelectAdder(_AdderBase):
    """Speculative dual-ripple groups resolved by carry muxes."""

    family = "csel"

    def __init__(self, width, precision=None, group=4):
        super().__init__(width, precision=precision)
        if group < 2:
            raise ValueError("select group must be at least 2")
        self.group = int(group)

    def _build_core(self, builder, operands):
        sums, __cout = carry_select_core(builder, operands[0], operands[1],
                                         group=self.group)
        return sums

    def with_precision(self, precision):
        return CarrySelectAdder(self.width, precision=precision,
                                group=self.group)


class CarrySkipAdder(_AdderBase):
    """Ripple groups with carry-bypass (skip) muxes."""

    family = "cskip"

    def __init__(self, width, precision=None, group=4):
        super().__init__(width, precision=precision)
        if group < 2:
            raise ValueError("skip group must be at least 2")
        self.group = int(group)

    def _build_core(self, builder, operands):
        sums, __cout = carry_skip_core(builder, operands[0], operands[1],
                                       group=self.group)
        return sums

    def with_precision(self, precision):
        return CarrySkipAdder(self.width, precision=precision,
                              group=self.group)
