"""Fixed-point FIR filter datapath (extension case study).

The paper's methodology is application-agnostic: any datapath whose
components trade precision for delay can convert its aging guardband
into approximations. This module exercises that claim on a second
microarchitecture — a direct-form FIR low-pass filter built from the
same multiplier/adder components as the IDCT:

* one multiplier block computes the tap products (coefficient constant
  per lane, left-aligned as in the DCT datapath),
* an adder tree accumulates them.

The functional model routes every multiply/add through a pluggable
:class:`~repro.approx.arith.ArithmeticModel`, so exact, truncated and
gate-level timing-error behaviour all share one code path.
"""

import math

import numpy as np

from ..approx.arith import ExactArithmetic
from ..core.microarch import Block, Microarchitecture
from .adder import Adder
from .dct import descale
from .multiplier import Multiplier

#: Default coefficient scale (fraction bits of the constant operand).
DEFAULT_FIR_COEFF_BITS = 9
#: Left-alignment of the coefficient operand inside the multiplier word
#: (same rationale as the DCT datapath: the product's useful bits come
#: from the aging-critical upper columns).
DEFAULT_FIR_ALIGN_BITS = 21


def lowpass_taps(taps=16, cutoff=0.25, coeff_bits=DEFAULT_FIR_COEFF_BITS):
    """Hamming-windowed-sinc low-pass coefficients, fixed point.

    Parameters
    ----------
    taps:
        Filter length.
    cutoff:
        Normalized cutoff (fraction of Nyquist, 0..1).
    coeff_bits:
        Quantization scale; returns integers at ``2**coeff_bits``.
    """
    if taps < 2:
        raise ValueError("need at least 2 taps")
    if not 0.0 < cutoff < 1.0:
        raise ValueError("cutoff must be in (0, 1)")
    mid = (taps - 1) / 2.0
    coeffs = []
    for n in range(taps):
        x = n - mid
        ideal = cutoff if x == 0 else math.sin(math.pi * cutoff * x) \
            / (math.pi * x)
        window = 0.54 - 0.46 * math.cos(2 * math.pi * n / (taps - 1))
        coeffs.append(ideal * window)
    scale = sum(coeffs)  # normalize to unity DC gain
    quantized = np.rint(np.array(coeffs) / scale
                        * (1 << coeff_bits)).astype(np.int64)
    return quantized


class FixedPointFIR:
    """Direct-form FIR filter over pluggable integer arithmetic.

    Parameters
    ----------
    taps:
        Integer coefficient array at scale ``2**coeff_bits``
        (see :func:`lowpass_taps`).
    coeff_bits:
        The coefficients' fixed-point scale.
    align_bits:
        Left-alignment applied to the coefficient operand before each
        multiply (removed again when the product register takes its top
        slice).
    arithmetic:
        :class:`~repro.approx.arith.ArithmeticModel`; exact by default.
    """

    def __init__(self, taps, coeff_bits=DEFAULT_FIR_COEFF_BITS,
                 align_bits=DEFAULT_FIR_ALIGN_BITS, arithmetic=None):
        self.taps = np.asarray(taps, dtype=np.int64)
        self.coeff_bits = int(coeff_bits)
        self.align_bits = int(align_bits)
        self.arithmetic = arithmetic if arithmetic is not None \
            else ExactArithmetic()
        self._aligned = self.taps << np.int64(self.align_bits)

    def __len__(self):
        return len(self.taps)

    def filter(self, signal):
        """Filter an integer *signal* (zero-padded history).

        Returns an int64 array of the same length at the input scale.
        """
        signal = np.asarray(signal, dtype=np.int64)
        n_taps = len(self.taps)
        padded = np.concatenate([np.zeros(n_taps - 1, dtype=np.int64),
                                 signal])
        # One batched multiply per tap lane, then a tree of adds —
        # mirroring the hardware (one multiplier block, one adder tree).
        windows = np.stack([padded[k:k + signal.size]
                            for k in range(n_taps)])         # (taps, N)
        coeffs = np.broadcast_to(self._aligned[::-1, None], windows.shape)
        prods = self.arithmetic.mul(coeffs, windows)
        prods = descale(prods, self.coeff_bits + self.align_bits)
        acc = prods
        while acc.shape[0] > 1:
            if acc.shape[0] % 2:
                acc = np.concatenate(
                    [acc, np.zeros((1,) + acc.shape[1:], dtype=np.int64)])
            acc = self.arithmetic.add(acc[0::2], acc[1::2])
        return acc[0]

    def reference(self, signal):
        """Float-free exact reference (same quantized taps)."""
        exact = FixedPointFIR(self.taps, coeff_bits=self.coeff_bits,
                              align_bits=self.align_bits)
        return exact.filter(signal)


def fir_microarchitecture(width=32, taps=16,
                          coeff_bits=DEFAULT_FIR_COEFF_BITS):
    """FIR microarchitecture for the Section-V flow.

    Same two-block structure as the IDCT: the tap multiplier dominates
    timing, the accumulation adder keeps slack.
    """
    blocks = [
        Block(name="mult", component=Multiplier(width), instances=taps,
              role="tap-product multiplier"),
        Block(name="acc", component=Adder(width), instances=taps - 1,
              role="tap accumulation adder tree"),
    ]
    return Microarchitecture("fir%d_w%d" % (taps, width), blocks,
                             metadata={"taps": taps,
                                       "coeff_bits": coeff_bits})
