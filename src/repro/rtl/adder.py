"""Adder generators: ripple-carry, carry-lookahead, Kogge-Stone.

All adders use wraparound (modulo ``2**width``) two's-complement
semantics, matching typical synthesized RTL datapaths. Three
architectures are provided because the precision <-> delay trade-off at
the heart of the paper depends on adder structure:

* :class:`RippleCarryAdder` — delay linear in width; truncation buys the
  most delay per bit.
* :class:`CarryLookaheadAdder` — 4-bit lookahead groups with rippled
  group carries; delay ~ width/group. This is the default "synthesized
  adder" of the reproduction: its smooth, gradual delay-vs-precision
  curve matches the paper's Fig. 4.
* :class:`KoggeStoneAdder` — parallel-prefix, delay ~ log2(width); the
  fastest but least truncation-sensitive (explored in the adder
  architecture ablation).
"""

from ..netlist.net import CONST0
from .component import RTLComponent, wrap_signed


def ripple_core(builder, a_nets, b_nets, cin=CONST0):
    """Chain of full adders. Returns ``(sum_nets, carry_out)``."""
    if len(a_nets) != len(b_nets):
        raise ValueError("operand widths differ")
    sums = []
    carry = cin
    for i, (a, b) in enumerate(zip(a_nets, b_nets)):
        s, carry = builder.full_adder(a, b, carry, name="fa%d" % i)
        sums.append(s)
    return sums, carry


def cla_core(builder, a_nets, b_nets, cin=CONST0, group=4):
    """Carry-lookahead groups with rippled inter-group carries."""
    if len(a_nets) != len(b_nets):
        raise ValueError("operand widths differ")
    n = len(a_nets)
    prop = [builder.xor2(a, b, name="p%d" % i)
            for i, (a, b) in enumerate(zip(a_nets, b_nets))]
    gen = [builder.and2(a, b, name="g%d" % i)
           for i, (a, b) in enumerate(zip(a_nets, b_nets))]
    sums = [None] * n
    carry = cin
    for lo in range(0, n, group):
        hi = min(lo + group, n)
        p_grp = prop[lo:hi]
        g_grp = gen[lo:hi]
        size = hi - lo
        # Local carries into each bit of the group, 2 logic levels each.
        local_carry = [carry]
        for j in range(1, size):
            terms = []
            for k in range(j - 1, -1, -1):
                factors = p_grp[k + 1:j] + [g_grp[k]]
                terms.append(builder.and_tree(factors))
            terms.append(builder.and_tree(p_grp[:j] + [carry]))
            local_carry.append(builder.or_tree(terms))
        for j in range(size):
            sums[lo + j] = builder.xor2(p_grp[j], local_carry[j],
                                        name="s%d" % (lo + j))
        # Group generate / propagate feed the next group's carry.
        g_terms = []
        for k in range(size - 1, -1, -1):
            g_terms.append(builder.and_tree(p_grp[k + 1:] + [g_grp[k]]))
        g_group = builder.or_tree(g_terms)
        p_group = builder.and_tree(p_grp)
        carry = builder.or2(g_group, builder.and2(p_group, carry))
    return sums, carry


def kogge_stone_core(builder, a_nets, b_nets):
    """Kogge-Stone parallel-prefix adder (carry-in fixed at 0)."""
    if len(a_nets) != len(b_nets):
        raise ValueError("operand widths differ")
    n = len(a_nets)
    prop = [builder.xor2(a, b, name="p%d" % i)
            for i, (a, b) in enumerate(zip(a_nets, b_nets))]
    gen = [builder.and2(a, b, name="g%d" % i)
           for i, (a, b) in enumerate(zip(a_nets, b_nets))]
    big_g = list(gen)
    big_p = list(prop)
    dist = 1
    while dist < n:
        next_g = list(big_g)
        next_p = list(big_p)
        for i in range(dist, n):
            next_g[i] = builder.or2(
                big_g[i], builder.and2(big_p[i], big_g[i - dist]))
            next_p[i] = builder.and2(big_p[i], big_p[i - dist])
        big_g, big_p = next_g, next_p
        dist *= 2
    sums = [prop[0]]
    for i in range(1, n):
        sums.append(builder.xor2(prop[i], big_g[i - 1], name="s%d" % i))
    return sums, big_g[n - 1]


class _AdderBase(RTLComponent):
    """Shared behaviour of the two-operand adders."""

    family = "adder"

    @property
    def operand_widths(self):
        return [self.width, self.width]

    @property
    def output_width(self):
        return self.width

    def exact(self, a, b):
        """Wraparound two's-complement sum."""
        import numpy as np
        return wrap_signed(np.asarray(a, dtype=np.int64)
                           + np.asarray(b, dtype=np.int64), self.width)

    def max_error_bound(self):
        """|error| <= 2*(2**drop_bits - 1): each operand loses < 2**t."""
        return 2 * ((1 << self.drop_bits) - 1)


class RippleCarryAdder(_AdderBase):
    """Full-adder chain; linear delay."""

    family = "rca"

    def _build_core(self, builder, operands):
        sums, __cout = ripple_core(builder, operands[0], operands[1])
        return sums


class CarryLookaheadAdder(_AdderBase):
    """Group carry-lookahead adder (the default characterized adder)."""

    family = "adder"

    def __init__(self, width, precision=None, group=4):
        super().__init__(width, precision=precision)
        if group < 2:
            raise ValueError("lookahead group must be at least 2")
        self.group = int(group)

    def _build_core(self, builder, operands):
        sums, __cout = cla_core(builder, operands[0], operands[1],
                                group=self.group)
        return sums

    def with_precision(self, precision):
        return CarryLookaheadAdder(self.width, precision=precision,
                                   group=self.group)


class KoggeStoneAdder(_AdderBase):
    """Parallel-prefix adder; logarithmic delay."""

    family = "ksa"

    def _build_core(self, builder, operands):
        sums, __cout = kogge_stone_core(builder, operands[0], operands[1])
        return sums


#: The adder variant used by the paper-reproduction experiments.
Adder = CarryLookaheadAdder
