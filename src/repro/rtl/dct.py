"""Fixed-point 8-point DCT / IDCT datapath.

The paper's microarchitecture-level case study is the DCT/IDCT pair used
in image codecs. This module provides:

* the fixed-point coefficient matrices (orthonormal DCT-II scaled by
  ``2**coeff_bits``),
* :class:`FixedPointTransform8` — a functional model whose every multiply
  and add is routed through a pluggable
  :class:`~repro.approx.arith.ArithmeticModel`, so the same code path
  computes the exact transform, the precision-truncated transform, or
  the gate-level timing-error transform,
* factories building the DCT/IDCT *microarchitecture* — the set of
  combinational datapath blocks (multiplier stage, adder-tree stage)
  that the Section-V flow analyzes and selectively approximates.
"""

import math

import numpy as np

from ..approx.arith import ExactArithmetic
from ..core.microarch import Block, Microarchitecture
from .adder import Adder
from .multiplier import Multiplier

#: Transform size (8x8 blocks, as in JPEG/MPEG and the paper).
POINTS = 8
#: Default coefficient scale: coefficients are round(c * 2**COEFF_BITS).
DEFAULT_COEFF_BITS = 9
#: Default fractional guard bits on the data path. Fixed-point datapaths
#: left-align their payload: the useful signal sits in the upper bits and
#: the bottom bits carry fractional precision, which is exactly where LSB
#: truncation bites first. This is what makes precision reduction a
#: *graceful* quality knob (the paper's premise).
DEFAULT_DATA_FRAC_BITS = 6
#: Left-alignment of the constant (coefficient) multiplier operand.
#: A fixed-point datapath feeds the multiplier operands aligned to the
#: word's MSB side, so the product's useful bits come out of the
#: multiplier's *upper* columns — the region whose paths age into the
#: clock period first. The product is rescaled (``>> (coeff_bits +
#: align)``) before accumulation, as a hardware product register would
#: take the top slice.
DEFAULT_COEFF_ALIGN_BITS = 21


def dct_matrix():
    """Orthonormal 8-point DCT-II matrix as float64."""
    mat = np.empty((POINTS, POINTS))
    for k in range(POINTS):
        scale = math.sqrt(1.0 / POINTS) if k == 0 else math.sqrt(2.0 / POINTS)
        for n in range(POINTS):
            mat[k, n] = scale * math.cos((2 * n + 1) * k * math.pi
                                         / (2 * POINTS))
    return mat


def fixed_coefficients(coeff_bits=DEFAULT_COEFF_BITS):
    """Integer DCT coefficients at scale ``2**coeff_bits``."""
    return np.rint(dct_matrix() * (1 << coeff_bits)).astype(np.int64)


def descale(values, coeff_bits):
    """Round-to-nearest removal of the coefficient scale."""
    half = np.int64(1) << np.int64(coeff_bits - 1)
    return (np.asarray(values, dtype=np.int64) + half) >> np.int64(coeff_bits)


class FixedPointTransform8:
    """Separable fixed-point 8x8 DCT/IDCT with pluggable arithmetic.

    Parameters
    ----------
    coeff_bits:
        Coefficient scale (fraction bits of the constant operand).
    data_frac_bits:
        Fractional guard bits carried by the data operand. Callers feed
        data already scaled by ``2**data_frac_bits`` (see
        :meth:`scale_in`/:meth:`scale_out`); both 1-D passes preserve
        that scale.
    arithmetic:
        :class:`~repro.approx.arith.ArithmeticModel` implementing ``mul``
        and ``add``. Defaults to exact integer arithmetic.

    The per-output computation mirrors the hardware: one multiplier
    block producing the eight coefficient products, then a binary adder
    tree (three adder levels) accumulating them — so component-level
    approximations and timing errors act exactly where the corresponding
    RTL blocks sit.
    """

    def __init__(self, coeff_bits=DEFAULT_COEFF_BITS,
                 data_frac_bits=DEFAULT_DATA_FRAC_BITS,
                 coeff_align_bits=DEFAULT_COEFF_ALIGN_BITS, arithmetic=None):
        self.coeff_bits = int(coeff_bits)
        self.data_frac_bits = int(data_frac_bits)
        self.coeff_align_bits = int(coeff_align_bits)
        self.arithmetic = arithmetic if arithmetic is not None \
            else ExactArithmetic()
        self.coeffs = fixed_coefficients(self.coeff_bits)
        self._aligned_coeffs = self.coeffs << np.int64(self.coeff_align_bits)

    def scale_in(self, values):
        """Lift integers to the datapath's fixed-point scale."""
        return np.asarray(values, dtype=np.int64) << np.int64(
            self.data_frac_bits)

    def scale_out(self, values):
        """Round fixed-point results back to integers."""
        if self.data_frac_bits == 0:
            return np.asarray(values, dtype=np.int64)
        return descale(values, self.data_frac_bits)

    def _apply_matrix(self, data, coeffs):
        """Multiply the last axis of *data* by *coeffs*, fixed point.

        All 64 coefficient products of a 1-D transform go through one
        batched ``mul`` call and the accumulation through three batched
        ``add`` calls — matching the hardware (eight parallel multiplier
        instances feeding an adder tree) and keeping the gate-level
        arithmetic models fast.
        """
        data = np.asarray(data, dtype=np.int64)
        base = data.shape[:-1]
        expand = (slice(None),) + (None,) * len(base) + (slice(None),)
        shape = (POINTS,) + base + (POINTS,)
        op_coeff = np.broadcast_to(coeffs[expand], shape)
        op_data = np.broadcast_to(data[None, ...], shape)
        prods = self.arithmetic.mul(op_coeff, op_data)
        # The product register keeps the top slice: drop the coefficient
        # scale and alignment, returning to the data scale.
        prods = descale(prods, self.coeff_bits + self.coeff_align_bits)
        acc = prods
        while acc.shape[-1] > 1:
            acc = self.arithmetic.add(acc[..., 0::2], acc[..., 1::2])
        return np.moveaxis(acc[..., 0], 0, -1)

    def forward_1d(self, data):
        """1-D DCT along the last axis."""
        return self._apply_matrix(data, self._aligned_coeffs)

    def inverse_1d(self, data):
        """1-D IDCT along the last axis."""
        return self._apply_matrix(data, self._aligned_coeffs.T)

    def forward_2d(self, blocks):
        """2-D DCT of ``(..., 8, 8)`` blocks (rows, then columns)."""
        rows = self.forward_1d(blocks)
        cols = self.forward_1d(np.swapaxes(rows, -1, -2))
        return np.swapaxes(cols, -1, -2)

    def inverse_2d(self, blocks):
        """2-D IDCT of ``(..., 8, 8)`` coefficient blocks."""
        cols = self.inverse_1d(np.swapaxes(blocks, -1, -2))
        rows = self.inverse_1d(np.swapaxes(cols, -1, -2))
        return rows


# ---------------------------------------------------------------------------
# Microarchitecture factories (Section V case study)
# ---------------------------------------------------------------------------

def idct_microarchitecture(width=32, coeff_bits=DEFAULT_COEFF_BITS,
                           adder_cls=Adder, multiplier_cls=Multiplier):
    """The IDCT microarchitecture the paper evaluates.

    Two pipelined combinational datapath blocks per 1-D transform:

    * ``mult`` — the coefficient multiplier (the critical-path component
      in the paper: relative slack about -8.3% after 10 years of
      worst-case aging),
    * ``acc`` — the product accumulation adder tree.

    Control/steering logic is assumed hardened by conventional means and
    is excluded, exactly as the paper assumes for datapath
    approximation.
    """
    blocks = [
        Block(name="mult", component=multiplier_cls(width),
              instances=POINTS,
              role="coefficient multiplier (stage 1)"),
        Block(name="acc", component=adder_cls(width),
              instances=POINTS - 1,
              role="product adder tree (stage 2)"),
    ]
    return Microarchitecture(name="idct8_w%d" % width, blocks=blocks,
                             metadata={"coeff_bits": coeff_bits,
                                       "points": POINTS})


def dct_microarchitecture(width=32, coeff_bits=DEFAULT_COEFF_BITS,
                          adder_cls=Adder, multiplier_cls=Multiplier):
    """The forward-DCT microarchitecture (same block structure)."""
    micro = idct_microarchitecture(width=width, coeff_bits=coeff_bits,
                                   adder_cls=adder_cls,
                                   multiplier_cls=multiplier_cls)
    micro.name = "dct8_w%d" % width
    return micro
