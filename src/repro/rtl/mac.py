"""Multiply-accumulate (MAC) unit.

Computes ``a * b + c`` with ``N``-bit multiplicands and a ``2N``-bit
addend, the third component the paper characterizes (Fig. 7(a)). The
accumulator operand is merged directly into the multiplier's carry-save
tree (a fused MAC), so the whole unit is a single combinational block —
slightly deeper than the bare multiplier, as in the paper.
"""

import numpy as np

from .adder import cla_core
from .component import RTLComponent, wrap_signed
from .multiplier import (baugh_wooley_columns, columns_to_operands,
                         wallace_reduce)


class MultiplyAccumulate(RTLComponent):
    """Fused signed MAC: ``y = wrap(a * b + c)`` over ``2N`` bits."""

    family = "mac"

    @property
    def operand_widths(self):
        return [self.width, self.width, 2 * self.width]

    @property
    def output_width(self):
        return 2 * self.width

    @property
    def operand_names(self):
        return ["a", "b", "c"]

    def _build_core(self, builder, operands):
        a_nets, b_nets, c_nets = operands
        cols = baugh_wooley_columns(builder, a_nets, b_nets)
        for weight, net in enumerate(c_nets):
            cols[weight].append(net)
        cols = wallace_reduce(builder, cols)
        row_a, row_b = columns_to_operands(cols)
        sums, __cout = cla_core(builder, row_a, row_b)
        return sums

    def exact(self, a, b, c):
        """Wraparound ``a*b + c`` over ``2N`` bits."""
        prod = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
        return wrap_signed(prod + np.asarray(c, dtype=np.int64),
                           2 * self.width)

    def max_error_bound(self):
        """Truncation error bound: product term plus addend term."""
        t = self.drop_bits
        if t == 0:
            return 0
        return (1 << t) * (2 * (1 << (self.width - 1))) + ((1 << t) - 1)
