"""RTL component abstraction.

An :class:`RTLComponent` is a parameterized generator for a combinational
arithmetic block: it knows its operand widths, builds a gate-level
netlist, provides the exact ("golden") integer function, and supports the
paper's generic approximation technique — *precision reduction by LSB
truncation* (Section III: "Without loss of generality, we use precision
reduction through truncation of least significant bits as generic
approximation technique").

Truncation semantics
--------------------
A component of base width ``N`` at precision ``P <= N`` keeps its full
``N``-bit interface, but the lowest ``N - P`` bits of every operand are
tied to constant 0 inside the netlist. Constant propagation during
synthesis then physically removes the affected gates, which is how the
precision reduction shortens the critical path and shrinks area/power —
the effect the characterization flow measures.

The same semantics are mirrored arithmetically by
:meth:`RTLComponent.approximate`, so RTL-level (fast) and gate-level
models agree bit-exactly — the key property that lets the paper quantify
quality *without* gate-level simulation.
"""

from abc import ABC, abstractmethod

import numpy as np

from ..approx.truncation import truncate_lsbs
from ..netlist.builder import NetlistBuilder
from ..netlist.net import CONST0


def wrap_signed(values, width):
    """Reduce integers modulo ``2**width`` into the signed range.

    For ``width >= 64`` the native int64 wraparound already implements
    the modular semantics, so values are returned unchanged.
    """
    if width >= 64:
        return values
    if isinstance(values, np.ndarray):
        mod = np.int64(1) << np.int64(width)
        half = np.int64(1) << np.int64(width - 1)
        wrapped = values & (mod - 1)
        return np.where(wrapped >= half, wrapped - mod, wrapped)
    mod = 1 << width
    wrapped = values & (mod - 1)
    return wrapped - mod if wrapped >= (mod >> 1) else wrapped


class RTLComponent(ABC):
    """A combinational datapath component with a tunable precision.

    Parameters
    ----------
    width:
        Base operand bit width ``N_j`` (the paper uses 32).
    precision:
        Effective precision ``P_j``; ``width - precision`` operand LSBs
        are truncated. Defaults to full precision.

    Subclasses implement :meth:`_build_core` (structural netlist over
    operand net lists) and :meth:`exact` (golden integer function).
    """

    #: short family name, e.g. "adder"; set by subclasses
    family = "component"

    def __init__(self, width, precision=None):
        if width < 2:
            raise ValueError("width must be at least 2")
        if precision is None:
            precision = width
        if not 1 <= precision <= width:
            raise ValueError(
                "precision must be in [1, %d], got %r" % (width, precision))
        self.width = int(width)
        self.precision = int(precision)

    # -- interface metadata ------------------------------------------------
    @property
    def drop_bits(self):
        """Number of truncated operand LSBs (``N_j - P_j``)."""
        return self.width - self.precision

    @property
    @abstractmethod
    def operand_widths(self):
        """Bit width of each input operand, in PI order."""

    @property
    @abstractmethod
    def output_width(self):
        """Bit width of the result."""

    @property
    def operand_names(self):
        return [chr(ord("a") + i) for i in range(len(self.operand_widths))]

    @property
    def name(self):
        """Readable instance name, e.g. ``"adder_w32_p29"``."""
        base = "%s_w%d" % (self.family, self.width)
        if self.precision != self.width:
            base += "_p%d" % self.precision
        return base

    # -- construction --------------------------------------------------
    @abstractmethod
    def _build_core(self, builder, operands):
        """Construct the component over *operands* (lists of net ids).

        Must return the list of output nets, LSB first, of length
        :attr:`output_width`.
        """

    def build(self, drive=1):
        """Generate the gate-level netlist (pre-synthesis).

        The netlist keeps the full-width interface; truncated operand
        bits are replaced with ``CONST0`` internally, to be swept away by
        constant propagation during synthesis.
        """
        builder = NetlistBuilder(name=self.name, drive=drive)
        operands = []
        for opname, opwidth in zip(self.operand_names, self.operand_widths):
            pis = builder.inputs(opwidth, opname)
            drop = min(self.drop_bits, opwidth)
            operands.append([CONST0] * drop + pis[drop:])
        outputs = self._build_core(builder, operands)
        if len(outputs) != self.output_width:
            raise AssertionError(
                "%s produced %d output bits, expected %d"
                % (self.name, len(outputs), self.output_width))
        return builder.outputs(outputs, prefix="y")

    # -- functional models ----------------------------------------------
    @abstractmethod
    def exact(self, *operands):
        """Golden full-precision result (wrapped to the output width)."""

    def approximate(self, *operands):
        """Result at the configured precision.

        Bit-exact with the truncated netlist: operand LSBs are zeroed
        before the exact function is applied.
        """
        truncated = [truncate_lsbs(np.asarray(op, dtype=np.int64),
                                   min(self.drop_bits, w))
                     for op, w in zip(operands, self.operand_widths)]
        return self.exact(*truncated)

    def max_error_bound(self):
        """Deterministic upper bound on ``|exact - approximate|``.

        This is what makes the induced errors *bounded* approximations
        rather than arbitrary timing errors. Subclasses refine it.
        """
        raise NotImplementedError

    # -- plumbing ---------------------------------------------------------
    def with_precision(self, precision):
        """Return a copy of this component at another precision."""
        return type(self)(self.width, precision=precision)

    def random_operands(self, count, rng=None, distribution="normal"):
        """Draw stimulus operands as the paper does.

        ``"normal"`` mirrors the paper's normal-distribution stimuli
        (scaled to cover about half the operand range, clipped to the
        representable signed range); ``"uniform"`` covers the full range.
        """
        rng = np.random.default_rng(rng)
        ops = []
        for opwidth in self.operand_widths:
            lo = -(1 << (opwidth - 1))
            hi = (1 << (opwidth - 1)) - 1
            if distribution == "normal":
                sigma = (1 << (opwidth - 1)) / 4.0
                vals = rng.normal(0.0, sigma, size=count)
                vals = np.clip(np.rint(vals), lo, hi).astype(np.int64)
            elif distribution == "uniform":
                vals = rng.integers(lo, hi + 1, size=count, dtype=np.int64)
            else:
                raise ValueError("unknown distribution %r" % (distribution,))
            ops.append(vals)
        return ops

    def __repr__(self):
        return "%s(width=%d, precision=%d)" % (
            type(self).__name__, self.width, self.precision)
