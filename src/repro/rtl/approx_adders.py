"""Approximate adders from the literature.

The paper (Section III) stresses that its methodology "is orthogonal to
and allows applying any such component approximations" — truncation is
just the generic choice. This module provides a classic alternative, the
**lower-part-OR adder (LOA)** [Mahdiani et al.]: the upper part is an
exact adder, while the lower ``k`` bits are approximated by bitwise OR
(a cheap, carry-free guess that is exact whenever the operands don't
both have 1s in the same column). Like truncation it shortens the carry
path — so it plugs straight into the aging characterization — but it
keeps about half a bit more accuracy per approximated bit.
"""

import numpy as np

from .adder import _AdderBase, cla_core
from .component import wrap_signed


class LowerOrAdder(_AdderBase):
    """Lower-part-OR approximate adder.

    The component's *precision* knob maps onto the LOA split point: at
    precision ``P`` the lower ``width - P`` bits are computed by OR and
    the upper ``P`` bits by an exact carry-lookahead adder (with no
    carry into the upper part — the classic LOA formulation without the
    AND carry-guess, keeping the parts fully decoupled and the delay
    benefit maximal).
    """

    family = "loa"

    def __init__(self, width, precision=None, group=4):
        super().__init__(width, precision=precision)
        if group < 2:
            raise ValueError("lookahead group must be at least 2")
        self.group = int(group)

    def build(self, drive=1):
        """LOA netlists implement the approximation structurally, so the
        generic tie-LSBs-to-zero path is bypassed."""
        from ..netlist.builder import NetlistBuilder

        builder = NetlistBuilder(name=self.name, drive=drive)
        a = builder.inputs(self.width, "a")
        b = builder.inputs(self.width, "b")
        return builder.outputs(self._build_core(builder, [a, b]),
                               prefix="y")

    def _build_core(self, builder, operands):
        a, b = operands
        split = self.drop_bits
        outputs = [builder.or2(a[i], b[i]) for i in range(split)]
        if split < self.width:
            sums, __carry = cla_core(builder, a[split:], b[split:],
                                     group=self.group)
            outputs.extend(sums)
        return outputs

    def approximate(self, a, b):
        """Value-level model, bit-exact with the netlist."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        split = self.drop_bits
        if split == 0:
            return self.exact(a, b)
        mask = np.int64((1 << split) - 1)
        low = (a & mask) | (b & mask)
        high = wrap_signed((a >> np.int64(split))
                           + (b >> np.int64(split)), self.width - split)
        return (high << np.int64(split)) | low

    def max_error_bound(self):
        """Bound on the *modular* error ``wrap(exact - approx, width)``.

        The OR part misses at most the lower columns' AND terms plus the
        dropped inter-part carry: ``|error| <= 2**(drop+1) - 1``. As with
        any wraparound adder the bound applies in modular arithmetic —
        near the representable range's edge the raw integer difference
        aliases by ``2**width``.
        """
        return (1 << (self.drop_bits + 1)) - 1

    def with_precision(self, precision):
        return LowerOrAdder(self.width, precision=precision,
                            group=self.group)
