"""Benchmark-trajectory regression analysis (``repro bench-report``).

The committed ``BENCH_*.json`` files are perf *trajectories* (see
``benchmarks/bench_util.py``): every benchmark run appends a
machine-stamped entry instead of overwriting, so the history of each
speedup metric is in the repository. This module turns those
trajectories into a regression gate:

* every ``*_speedup`` field of the latest run is compared against the
  benchmark's **recorded floor** — an explicit ``min_<field>`` value
  when the run carries one, otherwise the minimum of the field across
  *prior* runs scaled by a tolerance (new metrics with no history pass
  vacuously);
* aspirational ``target_<field>`` values are annotated but **never
  gate** — a target is where the benchmark wants to get to, not where
  it has been.

``repro bench-report`` renders the analysis; ``--check`` exits nonzero
on any regression, which is how CI gates on it.
"""

import glob
import json
import os

from .report import format_table

#: Fraction of the historical floor a run may drop below before it
#: counts as a regression (run-to-run noise allowance).
DEFAULT_TOLERANCE = 0.2


def load_trajectory(path):
    """Load a ``BENCH_*.json`` file as ``{"benchmark", "runs": [...]}``.

    Handles both the ``repro.bench/2`` trajectory schema and legacy
    single-run documents (wrapped as a one-entry trajectory).
    """
    with open(path) as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        raise ValueError("%s: not a benchmark document" % path)
    if "runs" in doc:
        runs = [run for run in doc["runs"] if isinstance(run, dict)]
        name = doc.get("benchmark") or _name_from_path(path)
    else:
        runs = [doc]
        name = doc.get("benchmark") or _name_from_path(path)
    return {"benchmark": name, "runs": runs}


def _name_from_path(path):
    base = os.path.basename(path)
    if base.startswith("BENCH_") and base.endswith(".json"):
        return base[len("BENCH_"):-len(".json")]
    return base


def speedup_fields(run):
    """Gated metric names of a run: every numeric ``*_speedup`` field
    that is not itself a floor (``min_*``) or target (``target_*``)."""
    return sorted(
        name for name, value in run.items()
        if name.endswith("_speedup")
        and not name.startswith(("min_", "target_"))
        and isinstance(value, (int, float)))


def analyze_trajectory(doc, tolerance=DEFAULT_TOLERANCE):
    """Regression rows for one trajectory dict (see
    :func:`load_trajectory`). One row per speedup field of the latest
    run::

        {"benchmark", "field", "latest", "floor", "floor_source",
         "ok", "target", "target_met", "runs"}

    ``floor`` is None (and ``ok`` True) when there is neither an
    explicit ``min_<field>`` nor any prior run recording the field.
    """
    runs = doc["runs"]
    if not runs:
        return []
    latest = runs[-1]
    prior = runs[:-1]
    rows = []
    for field in speedup_fields(latest):
        value = float(latest[field])
        explicit = latest.get("min_" + field)
        if isinstance(explicit, (int, float)):
            floor = float(explicit)
            source = "explicit min_%s" % field
        else:
            history = [float(run[field]) for run in prior
                       if isinstance(run.get(field), (int, float))]
            if history:
                floor = min(history) * (1.0 - tolerance)
                source = ("trajectory min %.2f - %d%% tolerance"
                          % (min(history), round(tolerance * 100)))
            else:
                floor = None
                source = "no history"
        target = latest.get("target_" + field)
        target = (float(target)
                  if isinstance(target, (int, float)) else None)
        rows.append({
            "benchmark": doc["benchmark"],
            "field": field,
            "latest": value,
            "floor": floor,
            "floor_source": source,
            "ok": floor is None or value >= floor,
            "target": target,
            "target_met": (None if target is None
                           else value >= target),
            "runs": len(runs),
        })
    return rows


def analyze_paths(paths, tolerance=DEFAULT_TOLERANCE):
    """Rows (see :func:`analyze_trajectory`) for many BENCH files."""
    rows = []
    for path in paths:
        rows.extend(analyze_trajectory(load_trajectory(path),
                                       tolerance=tolerance))
    return rows


def default_paths(root="."):
    """The committed ``BENCH_*.json`` files under *root*, sorted."""
    return sorted(glob.glob(os.path.join(root, "BENCH_*.json")))


def bench_report_text(rows):
    """Aligned text report of :func:`analyze_paths` rows."""
    if not rows:
        return "bench-report: no benchmark trajectories found"
    table = format_table(
        ["benchmark", "metric", "latest", "floor", "runs", "status"],
        [[row["benchmark"], row["field"],
          "%.2fx" % row["latest"],
          "%.2fx" % row["floor"] if row["floor"] is not None else "-",
          row["runs"],
          "ok" if row["ok"] else "REGRESSED"]
         for row in rows])
    lines = [table]
    for row in rows:
        if not row["ok"]:
            lines.append(
                "REGRESSION: %s %s = %.2fx is below its floor %.2fx "
                "(%s)" % (row["benchmark"], row["field"], row["latest"],
                          row["floor"], row["floor_source"]))
    targets = [row for row in rows if row["target"] is not None]
    if targets:
        lines.append("")
        lines.append("targets (aspirational, non-gating):")
        for row in targets:
            lines.append("  %s %s: %.2fx of target %.2fx (%s)"
                         % (row["benchmark"], row["field"],
                            row["latest"], row["target"],
                            "met" if row["target_met"] else "not met"))
    regressed = sum(1 for row in rows if not row["ok"])
    lines.append("")
    lines.append("bench-report: %d metric(s) checked, %d regression(s)"
                 % (len(rows), regressed))
    return "\n".join(lines)


def run_report(paths=None, check=False, tolerance=DEFAULT_TOLERANCE,
               out=None):
    """CLI entry: print the report, return a process exit code.

    *check* makes regressions fatal (exit 1); without it the report is
    informational (always exit 0, the "annotated step" CI mode).
    """
    import sys

    if out is None:
        out = sys.stdout
    if not paths:
        paths = default_paths()
    rows = analyze_paths(paths, tolerance=tolerance)
    out.write(bench_report_text(rows) + "\n")
    if check and any(not row["ok"] for row in rows):
        return 1
    return 0
