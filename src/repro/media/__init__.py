"""Image substrate: synthetic test images and the DCT block codec."""

from .images import IMAGE_NAMES, all_images, make_image
from .codec import TransformCodec, blockize, deblockize, roundtrip_psnr
from .signals import SIGNAL_NAMES, all_signals, make_signal

__all__ = [
    "IMAGE_NAMES", "all_images", "make_image",
    "TransformCodec", "blockize", "deblockize", "roundtrip_psnr",
    "SIGNAL_NAMES", "all_signals", "make_signal",
]
