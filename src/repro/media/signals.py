"""Synthetic 1-D test signals for the FIR filter case study.

The paper motivates approximation with multimedia workloads generally;
the FIR extension exercises the same flow on an audio-style datapath.
All generators are deterministic functions of ``(samples, seed)`` and
return int16-range integer arrays (15-bit signed payload).
"""

import numpy as np

#: Named test signals of the FIR case study.
SIGNAL_NAMES = ("speech", "music", "tone", "chirp", "noise")

_FULL_SCALE = 2 ** 14  # leave 1 bit of headroom below int16


def _finish(wave):
    return np.clip(np.rint(wave * _FULL_SCALE), -2 ** 15,
                   2 ** 15 - 1).astype(np.int64)


def speech(samples=4096, seed=11):
    """Speech-like: low-frequency formants, amplitude-modulated bursts."""
    rng = np.random.default_rng(seed)
    t = np.arange(samples) / samples
    envelope = 0.5 * (1 + np.sin(2 * np.pi * 7 * t)) \
        * (rng.random(samples // 256 + 1).repeat(256)[:samples] > 0.3)
    formants = (0.5 * np.sin(2 * np.pi * 45 * t)
                + 0.3 * np.sin(2 * np.pi * 110 * t + 1.0)
                + 0.15 * np.sin(2 * np.pi * 240 * t + 2.0))
    return _finish(0.8 * envelope * formants)


def music(samples=4096, seed=12):
    """Music-like: harmonic stack with vibrato plus soft noise floor."""
    rng = np.random.default_rng(seed)
    t = np.arange(samples) / samples
    vibrato = 1.0 + 0.01 * np.sin(2 * np.pi * 5 * t)
    wave = sum((0.5 ** k) * np.sin(2 * np.pi * 30 * (k + 1) * vibrato * t)
               for k in range(4))
    wave += 0.02 * rng.normal(size=samples)
    return _finish(0.5 * wave)


def tone(samples=4096, seed=13):
    """Pure mid-band sine."""
    t = np.arange(samples) / samples
    return _finish(0.7 * np.sin(2 * np.pi * 60 * t))


def chirp(samples=4096, seed=14):
    """Linear frequency sweep crossing the filter's transition band."""
    t = np.arange(samples) / samples
    return _finish(0.7 * np.sin(2 * np.pi * (20 + 400 * t) * t))


def noise(samples=4096, seed=15):
    """White noise (the broadband stress case)."""
    rng = np.random.default_rng(seed)
    return _finish(0.4 * rng.normal(size=samples).clip(-3, 3) / 3)


_GENERATORS = {"speech": speech, "music": music, "tone": tone,
               "chirp": chirp, "noise": noise}


def make_signal(name, samples=4096, seed=None):
    """Generate the named test signal."""
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise KeyError("unknown signal %r (have %s)"
                       % (name, ", ".join(SIGNAL_NAMES)))
    if seed is None:
        return generator(samples=samples)
    return generator(samples=samples, seed=seed)


def all_signals(samples=4096):
    """Map of every named signal."""
    return {name: make_signal(name, samples=samples)
            for name in SIGNAL_NAMES}
