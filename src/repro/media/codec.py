"""8x8-block DCT image codec over pluggable arithmetic.

The paper's microarchitecture case study encodes images with a DCT and
decodes them with an IDCT ("as typically employed in multimedia designs").
This codec mirrors that chain: images are split into 8x8 blocks, centered,
transformed with :class:`~repro.rtl.dct.FixedPointTransform8`, and
reconstructed. The encode and decode stages take independent arithmetic
models, so any combination of exact / truncated / timing-error hardware
can be evaluated (exact encode + aged decode reproduces Fig. 8(b);
aged encode + aged decode reproduces Fig. 2).
"""

import numpy as np

from ..approx.arith import ExactArithmetic
from ..quality.metrics import psnr_db
from ..rtl.dct import (DEFAULT_COEFF_BITS, DEFAULT_DATA_FRAC_BITS,
                       FixedPointTransform8)


def blockize(image):
    """Split an ``(H, W)`` image into ``(n_blocks, 8, 8)`` blocks.

    Height and width must be multiples of 8. Returns ``(blocks, shape)``
    where *shape* reconstructs the layout in :func:`deblockize`.
    """
    image = np.asarray(image)
    h, w = image.shape
    if h % 8 or w % 8:
        raise ValueError("image dimensions must be multiples of 8, got %r"
                         % (image.shape,))
    blocks = (image.reshape(h // 8, 8, w // 8, 8)
              .transpose(0, 2, 1, 3)
              .reshape(-1, 8, 8))
    return blocks, (h, w)


def deblockize(blocks, shape):
    """Inverse of :func:`blockize`."""
    h, w = shape
    return (np.asarray(blocks)
            .reshape(h // 8, w // 8, 8, 8)
            .transpose(0, 2, 1, 3)
            .reshape(h, w))


class TransformCodec:
    """DCT encode / IDCT decode with independent arithmetic models.

    Parameters
    ----------
    encode_arithmetic / decode_arithmetic:
        :class:`~repro.approx.arith.ArithmeticModel` used by the forward
        and inverse transforms (exact by default).
    coeff_bits:
        Fixed-point coefficient scale of both transforms.
    quant_bits:
        Coefficient quantization: transmitted coefficients are rounded
        to multiples of ``2**quant_bits``. The default (2) sets the
        exact chain's baseline quality near the paper's reported 45 dB.
    """

    def __init__(self, encode_arithmetic=None, decode_arithmetic=None,
                 coeff_bits=DEFAULT_COEFF_BITS,
                 data_frac_bits=DEFAULT_DATA_FRAC_BITS, quant_bits=2):
        self.coeff_bits = coeff_bits
        self.data_frac_bits = data_frac_bits
        self.quant_bits = int(quant_bits)
        self._fwd = FixedPointTransform8(
            coeff_bits=coeff_bits, data_frac_bits=data_frac_bits,
            arithmetic=encode_arithmetic or ExactArithmetic())
        self._inv = FixedPointTransform8(
            coeff_bits=coeff_bits, data_frac_bits=data_frac_bits,
            arithmetic=decode_arithmetic or ExactArithmetic())

    def encode(self, image):
        """Image -> DCT coefficient blocks ``(n_blocks, 8, 8)``.

        Coefficients stay at the datapath's fixed-point scale
        (``2**data_frac_bits``), exactly as they would travel between a
        hardware DCT and IDCT.
        """
        blocks, shape = blockize(image)
        centered = self._fwd.scale_in(blocks.astype(np.int64) - 128)
        self._shape = shape
        transformed = self._fwd.forward_2d(centered)
        # Coefficients leave the encoder quantized to integer multiples
        # of 2**quant_bits (the transmission format); this rounding is
        # the codec's only intrinsic loss and sets the paper-like finite
        # baseline PSNR of the exact chain.
        from ..rtl.dct import descale
        return descale(transformed,
                       self.data_frac_bits + self.quant_bits)

    def decode(self, coefficients, shape=None):
        """Coefficient blocks -> reconstructed 8-bit image."""
        if shape is None:
            shape = self._shape
        lifted = np.asarray(coefficients, dtype=np.int64) << np.int64(
            self.data_frac_bits + self.quant_bits)
        pixels = self._inv.inverse_2d(lifted)
        pixels = self._inv.scale_out(pixels)
        pixels = np.clip(pixels + 128, 0, 255).astype(np.uint8)
        return deblockize(pixels, shape)

    def roundtrip(self, image):
        """Encode then decode an image."""
        coefficients = self.encode(image)
        return self.decode(coefficients)


def roundtrip_psnr(image, encode_arithmetic=None, decode_arithmetic=None,
                   coeff_bits=DEFAULT_COEFF_BITS,
                   data_frac_bits=DEFAULT_DATA_FRAC_BITS, quant_bits=2):
    """PSNR of an image after a DCT-IDCT round trip.

    Convenience wrapper used by the quality experiments.
    """
    codec = TransformCodec(encode_arithmetic=encode_arithmetic,
                           decode_arithmetic=decode_arithmetic,
                           coeff_bits=coeff_bits,
                           data_frac_bits=data_frac_bits,
                           quant_bits=quant_bits)
    return psnr_db(image, codec.roundtrip(image))
