"""Synthetic grayscale test images (video-trace-library substitute).

The paper evaluates on frames of nine standard sequences from the ASU
"video trace library" (akiyo, carphone, foreman, grandmother, miss,
mobile, mother, salesman, suzie). Those traces are not redistributable,
so this module generates deterministic synthetic images that mimic each
sequence's *spectral character* — which is what the DCT-domain quality
results depend on:

* head-and-shoulders sequences (akiyo, miss, suzie, grandmother, mother)
  are smooth with a dominant low-frequency face/background structure,
* carphone/foreman/salesman add edges and mid-frequency detail,
* mobile is the stress case: dense high-frequency texture (calendar
  print, striped toy train), and accordingly comes out worst in the
  paper's Fig. 8(b) — a behaviour these generators reproduce.

All generators are pure functions of ``(size, seed)``.
"""

import numpy as np

#: The nine sequences of the paper's Fig. 8(b), in its plot order.
IMAGE_NAMES = (
    "akiyo", "carphone", "foreman", "grand", "miss",
    "mobile", "mother", "salesman", "suzie",
)


def _grid(size):
    """Normalized coordinate grids in [0, 1]."""
    axis = np.linspace(0.0, 1.0, size)
    return np.meshgrid(axis, axis, indexing="xy")


def _blob(x, y, cx, cy, sx, sy, amp):
    """Anisotropic Gaussian blob."""
    return amp * np.exp(-(((x - cx) / sx) ** 2 + ((y - cy) / sy) ** 2))


def _finish(img):
    """Clip to 8-bit range and round."""
    return np.clip(np.rint(img), 0, 255).astype(np.uint8)


def _portrait(size, seed, background, face_amp, detail_amp, smoothness):
    """Shared head-and-shoulders scene with tunable detail level."""
    x, y = _grid(size)
    rng = np.random.default_rng(seed)
    img = background + 40.0 * (1.0 - y)                     # lit backdrop
    img += _blob(x, y, 0.5, 0.38, 0.16, 0.2, face_amp)      # head
    img += _blob(x, y, 0.5, 0.95, 0.38, 0.35, face_amp * 0.7)  # shoulders
    img -= _blob(x, y, 0.43, 0.34, 0.03, 0.02, face_amp * 0.5)  # eyes
    img -= _blob(x, y, 0.57, 0.34, 0.03, 0.02, face_amp * 0.5)
    img -= _blob(x, y, 0.5, 0.47, 0.05, 0.015, face_amp * 0.4)  # mouth
    texture = rng.normal(0.0, 1.0, (size, size))
    for __ in range(smoothness):                             # cheap blur
        texture = 0.25 * (np.roll(texture, 1, 0) + np.roll(texture, -1, 0)
                          + np.roll(texture, 1, 1) + np.roll(texture, -1, 1))
    img += detail_amp * texture
    return _finish(img)


def akiyo(size=64, seed=101):
    """News anchor: static smooth background, centered face."""
    return _portrait(size, seed, background=70.0, face_amp=90.0,
                     detail_amp=6.0, smoothness=3)


def miss(size=64, seed=105):
    """'Miss America': the smoothest portrait in the set."""
    return _portrait(size, seed, background=60.0, face_amp=100.0,
                     detail_amp=4.0, smoothness=4)


def suzie(size=64, seed=109):
    """Portrait on the phone; smooth with a bright highlight."""
    x, y = _grid(size)
    img = _portrait(size, seed, background=75.0, face_amp=85.0,
                    detail_amp=5.0, smoothness=3).astype(np.float64)
    img += _blob(x, y, 0.78, 0.52, 0.07, 0.16, 50.0)  # handset highlight
    return _finish(img)


def grand(size=64, seed=104):
    """'Grandmother': low contrast, soft features."""
    return _portrait(size, seed, background=90.0, face_amp=60.0,
                     detail_amp=5.0, smoothness=4)


def mother(size=64, seed=107):
    """'Mother & daughter': two overlapping smooth subjects."""
    x, y = _grid(size)
    img = _portrait(size, seed, background=80.0, face_amp=75.0,
                    detail_amp=6.0, smoothness=3).astype(np.float64)
    img += _blob(x, y, 0.72, 0.5, 0.1, 0.13, 60.0)    # second head
    return _finish(img)


def carphone(size=64, seed=102):
    """Face in a moving car: window edges and moderate texture."""
    x, y = _grid(size)
    rng = np.random.default_rng(seed)
    img = 60.0 + 70.0 * (x > 0.62)                    # bright car window
    img += 25.0 * np.sin(14.0 * np.pi * x) * (x > 0.62)  # passing scenery
    img += _blob(x, y, 0.38, 0.42, 0.17, 0.22, 95.0)  # face
    img -= _blob(x, y, 0.32, 0.36, 0.03, 0.02, 45.0)
    img -= _blob(x, y, 0.45, 0.36, 0.03, 0.02, 45.0)
    img += 9.0 * rng.normal(0.0, 1.0, (size, size))
    return _finish(img)


def foreman(size=64, seed=103):
    """Construction-site portrait: hard hat edge, diagonal structure."""
    x, y = _grid(size)
    rng = np.random.default_rng(seed)
    img = 95.0 + 50.0 * ((x + y) % 0.25 < 0.04)       # diagonal girders
    img += _blob(x, y, 0.5, 0.45, 0.18, 0.24, 80.0)   # face
    img += 60.0 * (((y - 0.18) ** 2 + 0.4 * (x - 0.5) ** 2) < 0.02)  # hat
    img -= _blob(x, y, 0.44, 0.42, 0.03, 0.02, 40.0)
    img -= _blob(x, y, 0.56, 0.42, 0.03, 0.02, 40.0)
    img += 10.0 * rng.normal(0.0, 1.0, (size, size))
    return _finish(img)


def salesman(size=64, seed=108):
    """Man at a desk: mid-level detail, strong horizontal edge."""
    x, y = _grid(size)
    rng = np.random.default_rng(seed)
    img = 75.0 + 45.0 * (y > 0.7)                     # desk edge
    img += _blob(x, y, 0.5, 0.4, 0.2, 0.26, 85.0)     # torso + head
    img += 20.0 * np.sin(10.0 * np.pi * y) * (x < 0.2)  # shelf background
    img += 12.0 * rng.normal(0.0, 1.0, (size, size))
    return _finish(img)


def mobile(size=64, seed=106):
    """'Mobile & calendar': dense high-frequency texture (stress case)."""
    x, y = _grid(size)
    rng = np.random.default_rng(seed)
    img = 110.0 + 55.0 * np.sign(np.sin(24.0 * np.pi * x)
                                 * np.sin(24.0 * np.pi * y))  # fine checks
    img += 35.0 * np.sin(40.0 * np.pi * x)            # train stripes
    img += 30.0 * ((y * 11.0) % 1.0 < 0.28)           # calendar rules
    img += 22.0 * rng.normal(0.0, 1.0, (size, size))  # print-like noise
    return _finish(img)


_GENERATORS = {
    "akiyo": akiyo,
    "carphone": carphone,
    "foreman": foreman,
    "grand": grand,
    "miss": miss,
    "mobile": mobile,
    "mother": mother,
    "salesman": salesman,
    "suzie": suzie,
}


def make_image(name, size=64, seed=None):
    """Generate the named test image.

    Parameters
    ----------
    name:
        One of :data:`IMAGE_NAMES`.
    size:
        Square edge length in pixels; must be a multiple of 8 for the
        8x8 block codec.
    seed:
        Optional RNG seed override (each image has its own default so
        the suite is deterministic).
    """
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise KeyError("unknown image %r (have %s)"
                       % (name, ", ".join(IMAGE_NAMES)))
    if size % 8 != 0:
        raise ValueError("size must be a multiple of 8, got %d" % size)
    if seed is None:
        return generator(size=size)
    return generator(size=size, seed=seed)


def all_images(size=64):
    """Map of every named image at the given size."""
    return {name: make_image(name, size=size) for name in IMAGE_NAMES}
