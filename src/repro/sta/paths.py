"""Critical-path extraction and reporting on top of STA results."""

from dataclasses import dataclass
from typing import List, Tuple


@dataclass
class TimingPath:
    """One input-to-output path.

    Attributes
    ----------
    nets:
        Net ids along the path, from launching PI/constant to the PO.
    gates:
        Gate uids traversed (one fewer than or equal to nets).
    delay_ps:
        Total path delay.
    """

    nets: List[int]
    gates: List[int]
    delay_ps: float

    @property
    def depth(self):
        """Number of gates (logic levels) on the path."""
        return len(self.gates)


def critical_path(netlist, report):
    """Extract the worst path from a :class:`~repro.sta.sta.TimingReport`.

    Backtracks from the latest-arriving primary output, at each gate
    following the input with the largest arrival time.
    """
    if not netlist.primary_outputs:
        return TimingPath(nets=[], gates=[], delay_ps=0.0)
    end = max(netlist.primary_outputs,
              key=lambda n: report.arrivals.get(n, 0.0))
    nets = [end]
    gates = []
    net = end
    while True:
        gate = netlist.driver_of(net)
        if gate is None:
            break
        gates.append(gate.uid)
        net = max(gate.inputs, key=lambda n: report.arrivals.get(n, 0.0))
        nets.append(net)
    nets.reverse()
    gates.reverse()
    return TimingPath(nets=nets, gates=gates,
                      delay_ps=report.arrivals.get(end, 0.0))


def logic_depth(netlist):
    """Maximum number of gate levels from any PI to any PO."""
    depth = {}
    for gate in netlist.topological_gates():
        depth[gate.output] = 1 + max(
            (depth.get(n, 0) for n in gate.inputs), default=0)
    return max((depth.get(n, 0) for n in netlist.primary_outputs), default=0)


def per_output_arrivals(netlist, report):
    """``[(net, name, arrival_ps)]`` for every primary output, worst first."""
    rows = []
    for net in netlist.primary_outputs:
        rows.append((net, netlist.net_names.get(net, "n%d" % net),
                     report.arrivals.get(net, 0.0)))
    rows.sort(key=lambda row: -row[2])
    return rows
