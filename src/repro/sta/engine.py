"""Vectorized batched STA: compile timing once, sweep corners as arrays.

Scalar :func:`repro.sta.sta.analyze` re-walks the gate list and
recomputes load-dependent base delays for every ``(netlist, scenario)``
pair, even though a characterization grid analyzes one netlist under
dozens of aging corners. This module lowers a netlist **once** into a
levelized :class:`TimingProgram` — topological order, dense net slots,
per-gate base delays and per-level gather/scatter index arrays — and
then:

* :func:`analyze_batch` propagates arrival times for *all* corners of a
  ``scenario x lifetime`` grid in one vectorized pass: aging only scales
  per-gate delay columns, so each logic level is a single NumPy
  gather / max / add / scatter over a ``(gates, pins, corners)`` block;
* :func:`analyze_incremental` re-analyzes a truncation (``K`` LSB inputs
  tied low) by re-propagating only the structural fan-out cone of the
  tied primary inputs against the cached baseline arrivals, dropping
  gates whose inputs all become constant. The cone is captured once per
  tied set as a structural :class:`ConePlan` (memoized on the program)
  and replayed by :func:`replay_cone`;
* both :func:`_propagate` and :func:`replay_cone` are dimension-agnostic
  past the gate axis: :func:`corner_delays` with per-gate Vth draws
  (``dvth=``) emits a ``(gates, corners, samples)`` tensor and the same
  level loop propagates thousands of Monte Carlo variation samples in
  one pass (see :mod:`repro.mc`).

Both paths are **bit-identical** to the scalar engine: base delays come
from the same ``cell.delay_ps(load)`` calls, aging multipliers from the
same memoized closed-form/table lookups (:mod:`repro.aging.delay`), and
float64 ``max``/``+``/``*`` are the same IEEE-754 operations the scalar
loop performs. ``tests/test_sta_engine.py`` and the ``verify``
invariants enforce exact equality, and :func:`tie_low` provides the
explicit netlist transform that serves as the incremental path's scalar
oracle.

Programs are memoized on the netlist instance exactly like
:func:`repro.sim.logic.compile_netlist` (content token + library
weakref, bounded LRU), so repeated analyses of an unchanged netlist
skip the lowering entirely.
"""

import weakref
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..aging.bti import DEFAULT_BTI
from ..aging.delay import _stress_multiplier
from ..aging.stress import UniformStress
from ..netlist.gate import Gate
from ..netlist.net import CONST0, CONST1
from ..netlist.netlist import Netlist, NetlistError
from ..obs import metrics as obs_metrics, trace as obs_trace
from .sta import TimingReport


@dataclass
class _Level:
    """One topological level of the compiled program.

    ``in_slots`` is padded to the level's max pin count with slot 0
    (``CONST0``, arrival 0.0) — the same identity the scalar loop uses
    by starting its max at 0.0 — so the gather/max is rectangular.
    """

    rows: np.ndarray       # gate rows (indices into per-gate arrays)
    in_slots: np.ndarray   # (len(rows), max pins) input slots, padded
    out_slots: np.ndarray  # (len(rows),) output slot per gate


@dataclass
class TimingProgram:
    """A netlist lowered to arrays for vectorized arrival propagation.

    Attributes
    ----------
    netlist:
        The source netlist (kept for metadata).
    slots / slot_of:
        Dense re-indexing of net ids (constants, PIs, gate outputs).
    gates:
        Gate objects in topological order; row ``i`` of every per-gate
        array refers to ``gates[i]``.
    gate_uids:
        Per-row gate uid (for reconstructing scalar reports).
    base_delay_ps:
        Per-row fresh delay, ``cell.delay_ps(load)`` — float64.
    cells / cell_index:
        Distinct cells and the per-row index into them (aging scales
        delays per cell under uniform stress).
    levels:
        :class:`_Level` groups in propagation order.
    pi_slots / po_slots:
        Slot arrays for the interface nets.
    """

    netlist: object
    slots: int
    slot_of: Dict[int, int]
    gates: Tuple
    gate_uids: np.ndarray
    base_delay_ps: np.ndarray
    cells: List
    cell_index: np.ndarray
    levels: List[_Level]
    pi_slots: np.ndarray
    po_slots: np.ndarray

    @property
    def n_gates(self):
        return len(self.gates)

    @property
    def depth(self):
        """Number of logic levels."""
        return len(self.levels)


#: Per-netlist memo bound (several libraries may compile one netlist).
_TIMING_MEMO_LIMIT = 8


def compile_timing(netlist, library, memo=True):
    """Lower *netlist* into a :class:`TimingProgram`.

    Memoized on the netlist instance with the same content token as
    :func:`repro.sim.logic.compile_netlist` (library weakref + interface
    + every gate's cell/pins), so all corner batches of one sweep share
    a single lowering while any structural mutation — including in-place
    ``gate.cell`` edits by the sizing passes — recompiles. Pass
    ``memo=False`` to force a fresh lowering.
    """
    if not memo:
        return _compile_timing(netlist, library)
    try:
        lib_key = weakref.ref(library)
    except TypeError:  # un-weakref-able library stand-in (e.g. a dict)
        lib_key = id(library)
    token = (lib_key, tuple(netlist.primary_inputs),
             tuple(netlist.primary_outputs),
             tuple((g.cell, g.inputs, g.output) for g in netlist.gates))
    cache = getattr(netlist, "_timing_memo", None)
    if cache is None:
        cache = {}
        netlist._timing_memo = cache
    program = cache.get(token)
    if program is None:
        if len(cache) >= _TIMING_MEMO_LIMIT:
            cache.pop(next(iter(cache)))
        program = _compile_timing(netlist, library)
        cache[token] = program
    else:
        cache[token] = cache.pop(token)  # refresh LRU position
        obs_metrics.inc(obs_metrics.TIMING_MEMO_HITS)
    return program


def _compile_timing(netlist, library):
    order = netlist.topological_gates()
    slot_of = {CONST0: 0, CONST1: 1}
    for net in netlist.primary_inputs:
        slot_of.setdefault(net, len(slot_of))
    for gate in order:
        slot_of.setdefault(gate.output, len(slot_of))
    for net in netlist.primary_outputs:
        if net not in slot_of:
            raise NetlistError(
                "primary output %d is undriven (not a PI, constant or "
                "gate output)" % net)

    loads = netlist.load_caps(library, wire_cap_ff=library.wire_cap_ff)
    n = len(order)
    base = np.empty(n, dtype=np.float64)
    uids = np.empty(n, dtype=np.int64)
    cell_index = np.empty(n, dtype=np.int64)
    cells = []
    cell_row = {}
    level_of = {}          # slot -> logic level (PIs/constants at 0)
    gate_level = np.empty(n, dtype=np.int64)
    for row, gate in enumerate(order):
        cell = library[gate.cell]
        idx = cell_row.get(gate.cell)
        if idx is None:
            idx = cell_row[gate.cell] = len(cells)
            cells.append(cell)
        cell_index[row] = idx
        base[row] = cell.delay_ps(loads[gate.uid])
        uids[row] = gate.uid
        level = 0
        for net in gate.inputs:
            level = max(level, level_of.get(slot_of[net], 0))
        level += 1
        level_of[slot_of[gate.output]] = level
        gate_level[row] = level

    levels = []
    if n:
        rows_by_level = {}
        for row in range(n):
            rows_by_level.setdefault(int(gate_level[row]), []).append(row)
        for level in sorted(rows_by_level):
            rows = np.asarray(rows_by_level[level], dtype=np.int64)
            arity = max(len(order[r].inputs) for r in rows_by_level[level])
            arity = max(arity, 1)
            in_slots = np.zeros((len(rows), arity), dtype=np.int64)
            out_slots = np.empty(len(rows), dtype=np.int64)
            for i, row in enumerate(rows_by_level[level]):
                gate = order[row]
                for pin, net in enumerate(gate.inputs):
                    in_slots[i, pin] = slot_of[net]
                out_slots[i] = slot_of[gate.output]
            levels.append(_Level(rows=rows, in_slots=in_slots,
                                 out_slots=out_slots))

    pi_slots = np.asarray([slot_of[net] for net in netlist.primary_inputs],
                          dtype=np.int64)
    po_slots = np.asarray([slot_of[net] for net in netlist.primary_outputs],
                          dtype=np.int64)
    return TimingProgram(netlist=netlist, slots=len(slot_of),
                         slot_of=slot_of, gates=tuple(order),
                         gate_uids=uids, base_delay_ps=base, cells=cells,
                         cell_index=cell_index, levels=levels,
                         pi_slots=pi_slots, po_slots=po_slots)


# ---------------------------------------------------------------------------
# corner fan-out
# ---------------------------------------------------------------------------

def corner_label(scenario):
    """Stable label of a corner (``"fresh"`` for ``None``)."""
    return "fresh" if scenario is None else scenario.label


def corner_stress(program, corners):
    """Stress/lifetime arrays of a corner grid.

    Returns ``(sp, sn, years)``: per-gate pMOS/nMOS stress duty factors
    shaped ``(n_gates, C)`` plus per-corner lifetimes shaped ``(C,)``.
    Fresh corners contribute zero stress and zero years. This is the
    array form the sampled (Monte Carlo) delay path feeds to the
    vectorized BTI model instead of the per-key memo.
    """
    n = program.n_gates
    C = len(corners)
    sp = np.zeros((n, C), dtype=np.float64)
    sn = np.zeros((n, C), dtype=np.float64)
    years = np.zeros(C, dtype=np.float64)
    for col, scenario in enumerate(corners):
        if scenario is None or scenario.is_fresh:
            continue
        years[col] = float(scenario.years)
        if isinstance(scenario.stress, UniformStress):
            sp[:, col] = sn[:, col] = float(scenario.stress.s)
        else:
            for row, gate in enumerate(program.gates):
                p, q = scenario.gate_stress(gate)
                sp[row, col] = p
                sn[row, col] = q
    return sp, sn, years


def _sampled_corner_delays(program, corners, dvth, bti):
    """Delay tensor ``(n_gates, C, S)`` for per-gate Vth draws *dvth*.

    ``dvth`` is ``(n_gates, S)`` extra threshold shift per (gate,
    sample), shared by the p- and n-networks (within-gate variation is
    fully correlated; gate-to-gate draws are independent). The whole
    tensor is a handful of broadcast NumPy ops over the ndarray-native
    BTI model — it never touches the ``(cell, stress, lifetime)``
    multiplier memo, which variation draws would otherwise flood with
    per-sample keys (see :mod:`repro.aging.delay`).
    """
    dvth = np.asarray(dvth, dtype=np.float64)
    if dvth.ndim != 2 or dvth.shape[0] != program.n_gates:
        raise ValueError(
            "dvth must be (n_gates, samples) = (%d, S), got %r"
            % (program.n_gates, dvth.shape))
    sp, sn, years = corner_stress(program, corners)
    aged_p = bti.delta_vth(sp, years[None, :])     # (G, C)
    aged_n = bti.delta_vth(sn, years[None, :])
    var = dvth[:, None, :]                         # (G, 1, S)
    mp = bti.delay_multiplier_from_dvth(aged_p[:, :, None] + var,
                                        allow_speedup=True)
    mn = bti.delay_multiplier_from_dvth(aged_n[:, :, None] + var,
                                        allow_speedup=True)
    wp = np.asarray([cell.wp for cell in program.cells],
                    dtype=np.float64)[program.cell_index]
    wn = np.asarray([cell.wn for cell in program.cells],
                    dtype=np.float64)[program.cell_index]
    mult = (1.0 + wp[:, None, None] * (mp - 1.0)
            + wn[:, None, None] * (mn - 1.0))
    return program.base_delay_ps[:, None, None] * mult


def corner_delays(program, corners, bti=DEFAULT_BTI, degradation=None,
                  dvth=None):
    """Per-gate aged delays for every corner: ``(n_gates, C)`` float64.

    The per-corner multiplier table is built from the same memoized
    closed-form/table lookups the scalar path uses
    (:mod:`repro.aging.delay`) — per *distinct cell* under uniform
    stress, per gate under :class:`~repro.aging.stress.ActualStress` —
    so ``base * mult`` is the exact float the scalar loop computes.

    With *dvth* (per-gate Vth variation draws, ``(n_gates, S)``) the
    result instead carries a trailing sample axis — ``(n_gates, C, S)``
    — computed by :func:`_sampled_corner_delays` on the vectorized BTI
    model, bypassing the memo entirely. The ``dvth=None`` path is
    bit-identical to previous releases. Sampling needs the closed-form
    model: degradation-aware tables have no per-gate Vth semantics.
    """
    if dvth is not None:
        if degradation is not None:
            raise ValueError(
                "sampled corner delays need the closed-form BTI model; "
                "degradation-aware tables have no per-gate Vth semantics")
        return _sampled_corner_delays(program, corners, dvth, bti)
    n = program.n_gates
    mult = np.ones((n, len(corners)), dtype=np.float64)
    for col, scenario in enumerate(corners):
        if scenario is None or scenario.is_fresh:
            continue
        if isinstance(scenario.stress, UniformStress):
            s = scenario.stress.s
            per_cell = np.asarray(
                [_stress_multiplier(cell, s, s, scenario.years, bti,
                                    degradation)
                 for cell in program.cells], dtype=np.float64)
            if n:
                mult[:, col] = per_cell[program.cell_index]
        else:
            cells = program.cells
            index = program.cell_index
            for row, gate in enumerate(program.gates):
                sp, sn = scenario.gate_stress(gate)
                mult[row, col] = _stress_multiplier(
                    cells[index[row]], sp, sn, scenario.years, bti,
                    degradation)
    return program.base_delay_ps[:, None] * mult


def _propagate(program, delays):
    """Levelized arrival propagation.

    Dimension-agnostic past the leading gate axis: ``(n_gates, C)``
    delays yield ``(slots, C)`` arrivals, ``(n_gates, C, S)`` sampled
    delays yield ``(slots, C, S)`` — the per-level gather/max/add is
    the same broadcast expression either way, so deterministic corners
    are literally the samples-free case of the Monte Carlo sweep.
    """
    arr = np.zeros((program.slots,) + delays.shape[1:], dtype=np.float64)
    for level in program.levels:
        at = arr[level.in_slots].max(axis=1)       # (gates, C[, S])
        arr[level.out_slots] = at + delays[level.rows]
    return arr


def _critical_paths(program, arrivals):
    """Max PO arrival per trailing cell: ``(C,)`` or ``(C, S)``."""
    if not len(program.po_slots):
        return np.zeros(arrivals.shape[1:], dtype=np.float64)
    return np.maximum(arrivals[program.po_slots].max(axis=0), 0.0)


@dataclass
class BatchTimingReport:
    """Arrival times of one netlist under a whole corner grid.

    ``arrivals`` is ``(slots, C)`` and ``delays`` ``(n_gates, C)``;
    :meth:`report` reconstructs the scalar
    :class:`~repro.sta.sta.TimingReport` of any corner, float-identical
    to what :func:`repro.sta.sta.analyze` would return.
    """

    program: TimingProgram
    corners: Tuple
    labels: Tuple[str, ...]
    arrivals: np.ndarray
    delays: np.ndarray
    critical_path_ps: np.ndarray

    def __len__(self):
        return len(self.corners)

    @property
    def critical_paths_ps(self):
        """Critical-path delays as plain floats, in corner order."""
        return [float(v) for v in self.critical_path_ps]

    def corner_index(self, label):
        try:
            return self.labels.index(label)
        except ValueError:
            raise KeyError("corner %r not analyzed (have %s)"
                           % (label, list(self.labels)))

    def arrival_ps(self, net, corner=0):
        """Arrival of one net under one corner (index or label)."""
        if isinstance(corner, str):
            corner = self.corner_index(corner)
        return float(self.arrivals[self.program.slot_of[net], corner])

    def report(self, corner=0):
        """Scalar :class:`~repro.sta.sta.TimingReport` of one corner."""
        if isinstance(corner, str):
            corner = self.corner_index(corner)
        arrivals = {net: float(self.arrivals[slot, corner])
                    for net, slot in self.program.slot_of.items()}
        gate_delays = {int(uid): float(self.delays[row, corner])
                       for row, uid in enumerate(self.program.gate_uids)}
        return TimingReport(arrivals=arrivals, gate_delays=gate_delays,
                            critical_path_ps=float(
                                self.critical_path_ps[corner]),
                            scenario_label=self.labels[corner])

    def reports(self):
        return [self.report(i) for i in range(len(self.corners))]


def analyze_batch(netlist, library, corners, bti=DEFAULT_BTI,
                  degradation=None, program=None):
    """Run STA for every corner of a grid in one vectorized pass.

    Parameters
    ----------
    netlist:
        Design under analysis; must be acyclic.
    library:
        Cell library resolving cell names to delays.
    corners:
        Iterable of :class:`~repro.aging.scenario.AgingScenario` (or
        ``None`` for fresh silicon); uniform and per-gate
        (:class:`~repro.aging.stress.ActualStress`) annotations mix
        freely.
    program:
        Pre-compiled :class:`TimingProgram` (compiled/memoized from
        *netlist* when omitted).

    Returns
    -------
    BatchTimingReport
    """
    corners = tuple(corners)
    if not corners:
        raise ValueError("analyze_batch needs at least one corner")
    if program is None:
        program = compile_timing(netlist, library)
    labels = tuple(corner_label(c) for c in corners)
    with obs_trace.span("sta.analyze_batch", design=netlist.name,
                        corners=len(corners), gates=program.n_gates):
        delays = corner_delays(program, corners, bti=bti,
                               degradation=degradation)
        arrivals = _propagate(program, delays)
        cp = _critical_paths(program, arrivals)
    obs_metrics.inc(obs_metrics.STA_BATCH_RUNS)
    obs_metrics.inc(obs_metrics.STA_BATCH_CORNERS, len(corners))
    return BatchTimingReport(program=program, corners=corners,
                             labels=labels, arrivals=arrivals,
                             delays=delays, critical_path_ps=cp)


# ---------------------------------------------------------------------------
# incremental cone re-analysis (truncation sweeps)
# ---------------------------------------------------------------------------

@dataclass
class IncrementalTimingReport:
    """Result of re-analyzing a truncation against cached arrivals.

    ``dropped`` marks gates whose inputs all became constant (they
    vanish under constant propagation and contribute no delay);
    ``const_slots`` marks nets that are constant after the tie. Arrival
    values are bit-identical to scalar STA on the :func:`tie_low`
    transform of the netlist.
    """

    program: TimingProgram
    baseline: BatchTimingReport
    tied: Tuple[int, ...]
    labels: Tuple[str, ...]
    arrivals: np.ndarray
    critical_path_ps: np.ndarray
    dropped: np.ndarray
    const_slots: np.ndarray
    cone_gates: int

    @property
    def cone_fraction(self):
        """Fraction of gates inside the re-propagated fan-out cone."""
        return self.cone_gates / max(self.program.n_gates, 1)

    @property
    def critical_paths_ps(self):
        return [float(v) for v in self.critical_path_ps]

    def corner_index(self, label):
        try:
            return self.labels.index(label)
        except ValueError:
            raise KeyError("corner %r not analyzed (have %s)"
                           % (label, list(self.labels)))

    def report(self, corner=0):
        """Scalar :class:`~repro.sta.sta.TimingReport` of one corner.

        Arrivals cover every net of the *original* netlist (constant
        nets, including tied PIs and dropped-gate outputs, arrive at
        0.0); ``gate_delays`` covers only the surviving gates — exactly
        the gate set of the :func:`tie_low` netlist, under the same
        uids.
        """
        if isinstance(corner, str):
            corner = self.corner_index(corner)
        arrivals = {net: float(self.arrivals[slot, corner])
                    for net, slot in self.program.slot_of.items()}
        gate_delays = {int(uid): float(self.baseline.delays[row, corner])
                       for row, uid in enumerate(self.program.gate_uids)
                       if not self.dropped[row]}
        return TimingReport(arrivals=arrivals, gate_delays=gate_delays,
                            critical_path_ps=float(
                                self.critical_path_ps[corner]),
                            scenario_label=self.labels[corner])


@dataclass
class _ConeStep:
    """One touched level of a cone plan (index arrays + const masks)."""

    rows: np.ndarray       # touched gate rows
    ins: np.ndarray        # (g, pins) input slots of touched gates
    outs: np.ndarray       # (g,) output slots
    in_const: np.ndarray   # (g, pins) bool: input constant after tie
    all_const: np.ndarray  # (g,) bool: gate drops (all inputs const)


@dataclass
class ConePlan:
    """Structural fan-out-cone plan of one tied-PI set.

    Which gates are touched, which inputs become constant and which
    gates drop is a function of netlist *structure* only — independent
    of corners, delays, or sample draws — so a plan is computed once
    per ``(program, tied)`` and replayed against any baseline arrival
    tensor (deterministic ``(slots, C)`` or sampled ``(slots, C, S)``)
    by :func:`replay_cone`. Plans are memoized on the program (bounded
    LRU), which turns a precision sweep's per-corner-batch cone walks
    into array replays.
    """

    tied: Tuple[int, ...]
    steps: List
    dropped: np.ndarray     # (n_gates,) bool
    const_slots: np.ndarray  # (slots,) bool
    cone_gates: int


#: Per-program bound on memoized cone plans (a sweep touches one plan
#: per precision point).
_CONE_MEMO_LIMIT = 32


def cone_plan(program, tied_pis):
    """Memoized :class:`ConePlan` for *tied_pis* tied to constant 0."""
    tied = tuple(dict.fromkeys(tied_pis))
    stray = [net for net in tied if net not in program.slot_of
             or net not in program.netlist.primary_inputs]
    if stray:
        raise ValueError("tied nets %s are not primary inputs of %s"
                         % (stray[:5], program.netlist.name))
    cache = getattr(program, "_cone_memo", None)
    if cache is None:
        cache = {}
        program._cone_memo = cache
    plan = cache.get(tied)
    if plan is None:
        if len(cache) >= _CONE_MEMO_LIMIT:
            cache.pop(next(iter(cache)))
        plan = _build_cone_plan(program, tied)
        cache[tied] = plan
    else:
        cache[tied] = cache.pop(tied)  # refresh LRU position
        obs_metrics.inc(obs_metrics.STA_CONE_PLAN_HITS)
    return plan


def _build_cone_plan(program, tied):
    const = np.zeros(program.slots, dtype=bool)
    const[0] = const[1] = True                 # CONST0 / CONST1
    changed = np.zeros(program.slots, dtype=bool)
    # The constant rails seed the cone alongside the tied inputs:
    # tie_low also sweeps gates that were all-constant *before* the
    # tie, and bit-exactness against that oracle must not depend on
    # the netlist having been constant-swept already.
    changed[0] = changed[1] = True
    for net in tied:
        slot = program.slot_of[net]
        const[slot] = True
        changed[slot] = True
    dropped = np.zeros(program.n_gates, dtype=bool)
    steps = []
    cone = 0
    for level in program.levels:
        touched = changed[level.in_slots].any(axis=1)
        if not touched.any():
            continue
        ins = level.in_slots[touched]
        outs = level.out_slots[touched]
        rows = level.rows[touched]
        cone += len(rows)
        in_const = const[ins]                  # (g, pins)
        all_const = in_const.all(axis=1)
        const[outs] = all_const
        dropped[rows] = all_const
        changed[outs] = True
        steps.append(_ConeStep(rows=rows, ins=ins, outs=outs,
                               in_const=in_const, all_const=all_const))
    return ConePlan(tied=tied, steps=steps, dropped=dropped,
                    const_slots=const, cone_gates=cone)


def replay_cone(plan, baseline_arrivals, delays):
    """Re-propagate a cone plan against baseline arrivals.

    *baseline_arrivals* is ``(slots, ...)`` and *delays*
    ``(n_gates, ...)`` with matching trailing dims — ``(C,)`` for
    deterministic batches, ``(C, S)`` for sampled Monte Carlo tensors.
    Returns a fresh arrival tensor; slots outside the cone keep their
    baseline values, dropped gates arrive at 0.0. Bit-identical to
    scalar STA on the :func:`tie_low` transform for the deterministic
    shape (same gather/where/max/add, same order).
    """
    arr = baseline_arrivals.copy()
    tail = (1,) * (arr.ndim - 1)
    for step in plan.steps:
        mask = step.in_const.reshape(step.in_const.shape + tail)
        vals = np.where(mask, 0.0, arr[step.ins])
        at = vals.max(axis=1) + delays[step.rows]  # (g, C[, S])
        at[step.all_const] = 0.0
        arr[step.outs] = at
    return arr


def analyze_incremental(netlist, library, tied_pis, corners=(None,),
                        bti=DEFAULT_BTI, degradation=None, baseline=None,
                        program=None):
    """Re-analyze *netlist* with *tied_pis* tied to constant 0.

    Only the structural fan-out cone of the tied primary inputs is
    re-propagated; arrivals outside the cone are reused from the
    baseline batch. Gates whose inputs all become constant are dropped
    (arrival 0.0, no delay contribution) — the timing view of the
    constant propagation a truncation sweep performs during synthesis.

    Parameters
    ----------
    tied_pis:
        Primary-input net ids to tie low (e.g. the K LSBs of each
        operand; see :func:`truncated_input_nets`).
    corners:
        Corner grid, as in :func:`analyze_batch`; ignored when
        *baseline* is given (its corners are reused).
    baseline:
        A :class:`BatchTimingReport` of the same program to re-analyze
        against; computed on the fly when omitted.

    Returns
    -------
    IncrementalTimingReport
    """
    if program is None:
        program = compile_timing(netlist, library)
    tied = tuple(dict.fromkeys(tied_pis))
    stray = [net for net in tied if net not in program.slot_of
             or net not in netlist.primary_inputs]
    if stray:
        raise ValueError("tied nets %s are not primary inputs of %s"
                         % (stray[:5], netlist.name))
    if baseline is None:
        baseline = analyze_batch(netlist, library, corners, bti=bti,
                                 degradation=degradation, program=program)
    elif baseline.program is not program:
        raise ValueError("baseline was computed for a different "
                         "timing program")
    labels = baseline.labels

    with obs_trace.span("sta.analyze_incremental", design=netlist.name,
                        tied=len(tied), corners=len(labels)):
        plan = cone_plan(program, tied)
        arr = replay_cone(plan, baseline.arrivals, baseline.delays)
        cp = _critical_paths(program, arr)
    fraction = plan.cone_gates / max(program.n_gates, 1)
    obs_metrics.inc(obs_metrics.STA_INCREMENTAL_RUNS)
    obs_metrics.observe(obs_metrics.STA_INCREMENTAL_CONE_FRACTION,
                        fraction,
                        boundaries=obs_metrics.FRACTION_BOUNDARIES)
    return IncrementalTimingReport(program=program, baseline=baseline,
                                   tied=plan.tied, labels=labels,
                                   arrivals=arr, critical_path_ps=cp,
                                   dropped=plan.dropped,
                                   const_slots=plan.const_slots,
                                   cone_gates=plan.cone_gates)


# ---------------------------------------------------------------------------
# truncation helpers + scalar oracle transform
# ---------------------------------------------------------------------------

def truncated_input_nets(component, netlist, precision):
    """PI nets of *netlist* tied low when *component* runs at *precision*.

    Mirrors :meth:`repro.rtl.component.RTLComponent.build`: each operand
    loses its ``min(width - precision, operand width)`` LSBs, and the
    netlist's primary inputs concatenate the operands in declaration
    order, LSB first.
    """
    drop = component.width - precision
    if drop < 0:
        raise ValueError("precision %d exceeds width %d"
                         % (precision, component.width))
    tied = []
    offset = 0
    for opwidth in component.operand_widths:
        k = min(drop, opwidth)
        tied.extend(netlist.primary_inputs[offset:offset + k])
        offset += opwidth
    if offset != len(netlist.primary_inputs):
        raise ValueError(
            "netlist has %d primary inputs but %s declares %d operand "
            "bits" % (len(netlist.primary_inputs), component.name, offset))
    return tied


def tie_low(netlist, tied_pis):
    """Explicitly tie *tied_pis* to ``CONST0`` and sweep constants.

    Returns a new netlist with the tied inputs removed from the
    interface, every gate whose inputs all became constant deleted, and
    surviving gates' constant inputs rewired to the ``CONST0`` rail.
    Gate uids and net ids are preserved, so per-gate annotations (e.g.
    :class:`~repro.aging.stress.ActualStress`) remain valid.

    This is the *scalar oracle* for :func:`analyze_incremental`: running
    plain :func:`repro.sta.sta.analyze` on the transformed netlist gives
    float-identical arrivals for every surviving net.
    """
    tied = set(tied_pis)
    stray = tied - set(netlist.primary_inputs)
    if stray:
        raise ValueError("tied nets %s are not primary inputs of %s"
                         % (sorted(stray)[:5], netlist.name))
    const = {CONST0, CONST1} | tied
    swept = Netlist(netlist.name + "_tied")
    swept._next_net = netlist._next_net
    swept._next_gate_uid = netlist._next_gate_uid
    swept.net_names = dict(netlist.net_names)
    swept.primary_inputs = [net for net in netlist.primary_inputs
                            if net not in tied]
    for gate in netlist.topological_gates():
        if all(net in const for net in gate.inputs):
            const.add(gate.output)
    # Keep the *original* gate-list order: load_caps sums fanout
    # contributions in that order, and a reordered sum can differ in
    # the last ulp — which would break the bit-exactness oracle.
    gates = []
    for gate in netlist.gates:
        if gate.output in const:
            continue
        inputs = tuple(CONST0 if net in const else net
                       for net in gate.inputs)
        gates.append(Gate(uid=gate.uid, cell=gate.cell, inputs=inputs,
                          output=gate.output, name=gate.name))
    swept.rebuild(gates)
    swept.set_outputs([CONST0 if net in const else net
                       for net in netlist.primary_outputs])
    swept.validate()
    return swept
