"""Timing-statistics utilities: slack/path-delay distributions.

The likelihood that removing a guardband produces errors is governed by
how much of the design lives near the critical path — the "timing wall"
a max-performance compile produces. These helpers quantify that
structure, feeding the error-anatomy benchmarks and reports.
"""

from dataclasses import dataclass
from typing import List

import numpy as np

from ..aging.bti import DEFAULT_BTI
from .sta import analyze
from ..synth.sizing import gate_slacks


@dataclass
class TimingWallReport:
    """Distribution of per-gate slacks against the critical path.

    Attributes
    ----------
    critical_path_ps:
        The reference delay.
    slacks_ps:
        Per-gate slack values (required - arrival of the gate output).
    """

    critical_path_ps: float
    slacks_ps: List[float]

    def fraction_within(self, margin):
        """Fraction of gates with slack <= margin * critical path."""
        if not self.slacks_ps:
            return 0.0
        limit = margin * self.critical_path_ps
        return sum(1 for s in self.slacks_ps if s <= limit) \
            / len(self.slacks_ps)

    def histogram(self, bins=10):
        """``(edges, counts)`` of slack normalized to the critical path."""
        normalized = np.asarray(self.slacks_ps) / self.critical_path_ps
        counts, edges = np.histogram(np.clip(normalized, 0.0, 1.0),
                                     bins=bins, range=(0.0, 1.0))
        return edges, counts

    def text_histogram(self, bins=10, width=40):
        """ASCII rendering of :meth:`histogram` for reports."""
        edges, counts = self.histogram(bins=bins)
        peak = max(int(counts.max()), 1)
        lines = []
        for i, count in enumerate(counts):
            bar = "#" * int(round(width * count / peak))
            lines.append("%4.0f%%-%3.0f%% |%-*s| %d"
                         % (100 * edges[i], 100 * edges[i + 1], width,
                            bar, count))
        return "\n".join(lines)


def timing_wall(netlist, library, scenario=None, bti=DEFAULT_BTI,
                degradation=None):
    """Build a :class:`TimingWallReport` for a netlist."""
    report = analyze(netlist, library, scenario=scenario, bti=bti,
                     degradation=degradation)
    slacks = gate_slacks(netlist, report, report.critical_path_ps)
    finite = [s for s in slacks.values() if np.isfinite(s)]
    return TimingWallReport(critical_path_ps=report.critical_path_ps,
                            slacks_ps=finite)


def output_arrival_spread(netlist, library, scenario=None,
                          bti=DEFAULT_BTI, degradation=None):
    """Per-output arrival times normalized to the critical path.

    Returns a dict net id -> arrival / critical path; outputs close to
    1.0 are the ones a removed guardband endangers first.
    """
    report = analyze(netlist, library, scenario=scenario, bti=bti,
                     degradation=degradation)
    cp = report.critical_path_ps or 1.0
    return {net: report.arrivals.get(net, 0.0) / cp
            for net in netlist.primary_outputs}
