"""Aging-aware static timing analysis."""

from .sta import TimingReport, analyze, critical_path_delay
from .paths import TimingPath, critical_path, logic_depth, per_output_arrivals
from .sdf import from_sdf, gate_delays_from_sdf, to_sdf
from .stats import TimingWallReport, output_arrival_spread, timing_wall

__all__ = [
    "TimingReport", "analyze", "critical_path_delay",
    "TimingPath", "critical_path", "logic_depth", "per_output_arrivals",
    "from_sdf", "gate_delays_from_sdf", "to_sdf",
    "TimingWallReport", "output_arrival_spread", "timing_wall",
]
