"""Aging-aware static timing analysis."""

from .sta import TimingReport, analyze, critical_path_delay
from .engine import (BatchTimingReport, IncrementalTimingReport,
                     TimingProgram, analyze_batch, analyze_incremental,
                     compile_timing, corner_delays, tie_low,
                     truncated_input_nets)
from .paths import TimingPath, critical_path, logic_depth, per_output_arrivals
from .sdf import from_sdf, gate_delays_from_sdf, to_sdf
from .stats import TimingWallReport, output_arrival_spread, timing_wall

__all__ = [
    "TimingReport", "analyze", "critical_path_delay",
    "BatchTimingReport", "IncrementalTimingReport", "TimingProgram",
    "analyze_batch", "analyze_incremental", "compile_timing",
    "corner_delays", "tie_low", "truncated_input_nets",
    "TimingPath", "critical_path", "logic_depth", "per_output_arrivals",
    "from_sdf", "gate_delays_from_sdf", "to_sdf",
    "TimingWallReport", "output_arrival_spread", "timing_wall",
]
