"""Standard Delay Format (SDF) export for aged netlists.

The paper's flow performs "gate-level simulations of the analyzed
circuit under aging" by handing the simulator an aging-annotated ``.sdf``
file produced by STA. This module reproduces that artifact: per-instance
IOPATH delays under a chosen aging scenario, written in SDF 3.0 syntax,
plus a parser for the subset we emit so delays can round-trip into the
event-driven simulator.
"""

import re

from ..aging.bti import DEFAULT_BTI
from ..aging.delay import gate_delays

_PIN_NAMES = ("A", "B", "C", "D")


def to_sdf(netlist, library, scenario=None, bti=DEFAULT_BTI,
           degradation=None, design_name=None, timescale="1ps"):
    """Serialize per-gate (aged) delays as an SDF file."""
    delays = gate_delays(netlist, library, scenario=scenario, bti=bti,
                         degradation=degradation)
    label = scenario.label if scenario is not None else "fresh"
    lines = [
        "(DELAYFILE",
        '  (SDFVERSION "3.0")',
        '  (DESIGN "%s")' % (design_name or netlist.name),
        '  (PROCESS "aging:%s")' % label,
        "  (TIMESCALE %s)" % timescale,
    ]
    for gate in netlist.gates:
        delay = delays[gate.uid]
        triple = "(%.4f:%.4f:%.4f)" % (delay, delay, delay)
        lines.append("  (CELL")
        lines.append('    (CELLTYPE "%s")' % gate.cell)
        lines.append("    (INSTANCE g%d)" % gate.uid)
        lines.append("    (DELAY (ABSOLUTE")
        for i in range(len(gate.inputs)):
            lines.append("      (IOPATH %s Y %s %s)"
                         % (_PIN_NAMES[i], triple, triple))
        lines.append("    ))")
        lines.append("  )")
    lines.append(")")
    return "\n".join(lines) + "\n"


_INSTANCE_RE = re.compile(r"\(INSTANCE\s+g(\d+)\)")
_IOPATH_RE = re.compile(r"\(IOPATH\s+(\w+)\s+Y\s+\(([\d.]+):")


def from_sdf(text):
    """Parse delays from SDF produced by :func:`to_sdf`.

    Returns ``{gate uid: {input pin name: delay}}``. The writer emits
    one identical delay per input pin, but the parser keeps them
    separate to accept hand-edited files. Line-oriented, so nested
    parentheses inside a CELL body need no balancing.
    """
    result = {}
    current = None
    for line in text.splitlines():
        instance = _INSTANCE_RE.search(line)
        if instance:
            current = int(instance.group(1))
            result.setdefault(current, {})
            continue
        iopath = _IOPATH_RE.search(line)
        if iopath and current is not None:
            pin, value = iopath.groups()
            result[current][pin] = float(value)
    return result


def gate_delays_from_sdf(text):
    """Collapse an SDF parse into per-gate worst delays (uid -> ps)."""
    return {uid: max(pins.values())
            for uid, pins in from_sdf(text).items() if pins}
