"""Aging-aware static timing analysis.

Computes per-net arrival times over a combinational netlist in
topological order, using per-gate delays that may be scaled for aging
(via closed-form BTI or a degradation-aware library table). This is the
reproduction's stand-in for the paper's Synopsys STA with the
degradation-aware cell library.

The model is purely topological (no false-path analysis): the arrival of
a gate output is the max input arrival plus the gate's (load-dependent,
possibly aged) delay. The timed gate-level simulator produces arrival
times that are always bounded by these static values — a property the
test suite checks.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..aging.bti import DEFAULT_BTI
from ..aging.delay import gate_delays
from ..netlist.net import CONST0, CONST1
from ..obs import logs, metrics as obs_metrics, trace as obs_trace

_log = logs.get_logger("sta")


@dataclass
class TimingReport:
    """Result of :func:`analyze`.

    Attributes
    ----------
    arrivals:
        Map net id -> arrival time in ps (PIs and constants arrive at 0).
    gate_delays:
        Map gate uid -> the delay used for that gate, in ps.
    critical_path_ps:
        Max arrival over the primary outputs.
    scenario_label:
        Label of the aging scenario analyzed (``"fresh"`` when unaged).
    """

    arrivals: Dict[int, float]
    gate_delays: Dict[int, float]
    critical_path_ps: float
    scenario_label: str = "fresh"

    def po_arrivals(self, netlist, missing="raise"):
        """Arrival time of each primary output, in PO order.

        A primary output absent from ``arrivals`` means the report was
        computed on a different netlist or the output is disconnected —
        silently reporting 0.0 would mask such bugs. ``missing`` selects
        the reaction: ``"raise"`` (default) raises ``KeyError``,
        ``"warn"`` logs through the ``repro.sta`` logger and substitutes
        0.0.
        """
        if missing not in ("raise", "warn"):
            raise ValueError("missing must be 'raise' or 'warn', got %r"
                             % (missing,))
        out = []
        for net in netlist.primary_outputs:
            try:
                out.append(self.arrivals[net])
            except KeyError:
                if missing == "raise":
                    raise KeyError(
                        "primary output net %d has no arrival time — was "
                        "this report computed on %r?"
                        % (net, netlist.name))
                _log.warning("primary output net %d of %r has no arrival "
                             "time; reporting 0.0", net, netlist.name)
                out.append(0.0)
        return out

    def slack_ps(self, t_clock_ps):
        """Worst slack against a clock period (negative = violation)."""
        return t_clock_ps - self.critical_path_ps


def analyze(netlist, library, scenario=None, bti=DEFAULT_BTI,
            degradation=None):
    """Run (aging-aware) STA and return a :class:`TimingReport`.

    Parameters
    ----------
    netlist:
        Design under analysis; must be acyclic.
    library:
        Cell library resolving cell names to delays.
    scenario:
        Optional :class:`~repro.aging.scenario.AgingScenario`. Omitted or
        fresh scenarios analyze unaged silicon.
    bti:
        BTI model for closed-form aging multipliers.
    degradation:
        Optional :class:`~repro.cells.degradation.DegradationAwareLibrary`
        for table-based multipliers (the paper's artifact interface).
    """
    label = scenario.label if scenario is not None else "fresh"
    with obs_trace.span("sta.analyze", design=netlist.name,
                        scenario=label, gates=netlist.num_gates):
        delays = gate_delays(netlist, library, scenario=scenario, bti=bti,
                             degradation=degradation)
        arrivals = {CONST0: 0.0, CONST1: 0.0}
        for net in netlist.primary_inputs:
            arrivals[net] = 0.0
        for gate in netlist.topological_gates():
            at = 0.0
            for net in gate.inputs:
                a = arrivals[net]
                if a > at:
                    at = a
            arrivals[gate.output] = at + delays[gate.uid]
        cp = 0.0
        for net in netlist.primary_outputs:
            a = arrivals.get(net, 0.0)
            if a > cp:
                cp = a
    obs_metrics.inc(obs_metrics.STA_RUNS)
    return TimingReport(arrivals=arrivals, gate_delays=delays,
                        critical_path_ps=cp, scenario_label=label)


def critical_path_delay(netlist, library, scenario=None, bti=DEFAULT_BTI,
                        degradation=None):
    """Convenience wrapper: critical-path delay in ps."""
    return analyze(netlist, library, scenario=scenario, bti=bti,
                   degradation=degradation).critical_path_ps
