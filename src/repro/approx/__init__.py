"""Approximation techniques and pluggable arithmetic models."""

from .truncation import (product_error_bound, sum_error_bound,
                         truncate_lsbs, truncation_error_bound)
from .arith import (ArithmeticModel, ComponentArithmetic, ExactArithmetic,
                    RecordingArithmetic, TruncatedArithmetic)
from .gate_level import (GateLevelArithmetic, TimedComponentModel,
                         timed_datapath_arithmetic)

__all__ = [
    "product_error_bound", "sum_error_bound", "truncate_lsbs",
    "truncation_error_bound",
    "ArithmeticModel", "ComponentArithmetic", "ExactArithmetic",
    "RecordingArithmetic",
    "TruncatedArithmetic",
    "GateLevelArithmetic", "TimedComponentModel",
    "timed_datapath_arithmetic",
]
