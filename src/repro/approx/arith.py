"""Pluggable arithmetic models.

Everything quality-related in the reproduction funnels integer multiplies
and adds through an :class:`ArithmeticModel`, so the *same* transform /
codec code computes:

* the exact result (:class:`ExactArithmetic`),
* the deterministic precision-reduced result
  (:class:`TruncatedArithmetic`, :class:`ComponentArithmetic`) — the
  paper's controlled approximation, and
* the aged, guardband-free, timing-error-afflicted result
  (:class:`~repro.approx.gate_level.GateLevelArithmetic`) — the
  uncontrolled behaviour the paper's motivational study measures.
"""

from abc import ABC, abstractmethod

import numpy as np

from .truncation import truncate_lsbs


class ArithmeticModel(ABC):
    """Elementwise integer multiply/add over NumPy int64 arrays."""

    @abstractmethod
    def mul(self, a, b):
        """Elementwise product."""

    @abstractmethod
    def add(self, a, b):
        """Elementwise sum."""

    @property
    def label(self):
        return type(self).__name__


class ExactArithmetic(ArithmeticModel):
    """Plain int64 arithmetic — the golden reference."""

    def mul(self, a, b):
        return np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)

    def add(self, a, b):
        return np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)


class TruncatedArithmetic(ArithmeticModel):
    """Value-level LSB truncation of operands before each operation.

    Parameters
    ----------
    mul_drop_bits / add_drop_bits:
        Operand LSBs zeroed before multiplies / adds. These correspond
        to ``N_j - P_j`` of the multiplier and adder components.
    """

    def __init__(self, mul_drop_bits=0, add_drop_bits=0):
        if mul_drop_bits < 0 or add_drop_bits < 0:
            raise ValueError("drop bit counts must be non-negative")
        self.mul_drop_bits = int(mul_drop_bits)
        self.add_drop_bits = int(add_drop_bits)

    def mul(self, a, b):
        a = truncate_lsbs(np.asarray(a, dtype=np.int64),
                                 self.mul_drop_bits)
        b = truncate_lsbs(np.asarray(b, dtype=np.int64),
                                 self.mul_drop_bits)
        return a * b

    def add(self, a, b):
        a = truncate_lsbs(np.asarray(a, dtype=np.int64),
                                 self.add_drop_bits)
        b = truncate_lsbs(np.asarray(b, dtype=np.int64),
                                 self.add_drop_bits)
        return a + b

    @property
    def label(self):
        return "truncated(mul-%d, add-%d)" % (self.mul_drop_bits,
                                              self.add_drop_bits)


class ComponentArithmetic(ArithmeticModel):
    """Arithmetic backed by configured RTL components.

    Uses each component's fast :meth:`~repro.rtl.component.RTLComponent.
    approximate` model (bit-exact with its truncated netlist), falling
    back to exact arithmetic for operations without a component.
    """

    def __init__(self, mul_component=None, add_component=None):
        self.mul_component = mul_component
        self.add_component = add_component

    def mul(self, a, b):
        if self.mul_component is None:
            return np.asarray(a, dtype=np.int64) * np.asarray(b,
                                                              dtype=np.int64)
        return self.mul_component.approximate(a, b)

    def add(self, a, b):
        if self.add_component is None:
            return np.asarray(a, dtype=np.int64) + np.asarray(b,
                                                              dtype=np.int64)
        return self.add_component.approximate(a, b)

    @property
    def label(self):
        parts = []
        if self.mul_component is not None:
            parts.append("mul=%s" % self.mul_component.name)
        if self.add_component is not None:
            parts.append("add=%s" % self.add_component.name)
        return "components(%s)" % ", ".join(parts) if parts else "exact"


class RecordingArithmetic(ArithmeticModel):
    """Decorator model that records every operand pair it sees.

    Used to extract realistic per-operation stimulus streams from a
    running application (e.g. the multiplier inputs of an IDCT decoding
    an image) for actual-case aging characterization — the paper's
    "(AC, IDCT)" data points.
    """

    def __init__(self, inner=None):
        self.inner = inner if inner is not None else ExactArithmetic()
        self.mul_operands = []
        self.add_operands = []

    def mul(self, a, b):
        self.mul_operands.append((np.asarray(a, dtype=np.int64).ravel(),
                                  np.asarray(b, dtype=np.int64).ravel()))
        return self.inner.mul(a, b)

    def add(self, a, b):
        self.add_operands.append((np.asarray(a, dtype=np.int64).ravel(),
                                  np.asarray(b, dtype=np.int64).ravel()))
        return self.inner.add(a, b)

    def recorded_mul_stream(self, limit=None):
        """Concatenated ``(a, b)`` multiplier operand streams."""
        return self._stream(self.mul_operands, limit)

    def recorded_add_stream(self, limit=None):
        """Concatenated ``(a, b)`` adder operand streams."""
        return self._stream(self.add_operands, limit)

    @staticmethod
    def _stream(pairs, limit):
        if not pairs:
            raise ValueError("no operations recorded yet")
        a = np.concatenate([p[0] for p in pairs])
        b = np.concatenate([p[1] for p in pairs])
        if limit is not None:
            a, b = a[:limit], b[:limit]
        return a, b
