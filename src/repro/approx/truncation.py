"""LSB truncation — the paper's generic approximation technique.

Precision reduction by truncating least-significant bits is the
approximation the paper applies ("Without loss of generality, we use
precision reduction through truncation of LSBs as generic approximation
technique"). This module is the single source of truth for its value
semantics and deterministic error bounds; both the RTL component
generators and the value-level arithmetic models build on it.
"""

import numpy as np


def truncate_lsbs(values, drop_bits):
    """Zero the *drop_bits* least-significant bits (two's complement).

    Elementwise on NumPy integer arrays, also accepts Python ints. For
    negative values this matches the hardware behaviour of tying the low
    bits to constant 0 (rounding toward minus infinity).
    """
    if drop_bits < 0:
        raise ValueError("drop_bits must be non-negative")
    if drop_bits == 0:
        return values
    if isinstance(values, np.ndarray):
        return (values >> np.int64(drop_bits)) << np.int64(drop_bits)
    return (values >> drop_bits) << drop_bits


def truncation_error_bound(drop_bits):
    """Largest possible ``value - truncate(value)`` for one operand."""
    if drop_bits < 0:
        raise ValueError("drop_bits must be non-negative")
    return (1 << drop_bits) - 1


def sum_error_bound(drop_bits, operands=2):
    """Worst-case absolute error of a sum of truncated operands."""
    return operands * truncation_error_bound(drop_bits)


def product_error_bound(drop_bits, width):
    """Worst-case absolute error of a product of truncated operands.

    With ``|a|, |b| <= 2**(width-1)`` and per-operand truncation error
    ``e < 2**drop_bits``::

        |ab - a_t b_t| <= e*|b| + e*|a| + e**2
    """
    e = truncation_error_bound(drop_bits)
    mag = 1 << (width - 1)
    return e * mag * 2 + e * e
