"""Gate-level arithmetic models (timing-error injection).

Wraps synthesized component netlists with the timed gate-level simulator
so that arithmetic performed through them exhibits *aging-induced timing
errors*: operands stream through the netlist at a chosen clock period
(normally the fresh critical path, i.e. guardband-free operation), and
any output bit that settles too late samples stale data.

This is the machinery behind the paper's motivational study (Figs. 1-2):
it demonstrates what happens when a guardband is naively removed, and is
exactly the expensive simulation the paper's pre-characterization
approach then renders unnecessary.
"""

import numpy as np

from ..aging.bti import DEFAULT_BTI
from ..sim.logic import bits_to_int, int_to_bits
from ..sim.timing import TimedSimulator
from ..sta.sta import critical_path_delay
from ..synth.synthesize import synthesize_netlist
from .arith import ArithmeticModel


class TimedComponentModel:
    """One RTL component simulated gate-accurately under aging.

    Parameters
    ----------
    component:
        The :class:`~repro.rtl.component.RTLComponent` to model.
    library:
        Cell library for synthesis and timing.
    scenario:
        Aging scenario scaling gate delays (fresh when omitted).
    t_clock_ps:
        Sampling clock. Defaults to the component's **fresh** critical
        path — the paper's guardband-free operating point.
    effort:
        Synthesis effort for the component netlist.
    """

    def __init__(self, component, library, scenario=None, t_clock_ps=None,
                 effort="ultra", bti=DEFAULT_BTI, degradation=None,
                 max_batch=8192, glitch_model="sensitization"):
        self.component = component
        self.library = library
        self.netlist = synthesize_netlist(component, library, effort=effort)
        self.fresh_delay_ps = critical_path_delay(self.netlist, library)
        self.t_clock_ps = (float(t_clock_ps) if t_clock_ps is not None
                           else self.fresh_delay_ps)
        self.scenario = scenario
        self.simulator = TimedSimulator(
            self.netlist, library, self.t_clock_ps, scenario=scenario,
            bti=bti, degradation=degradation, max_batch=max_batch,
            glitch_model=glitch_model)

    def _encode(self, operands):
        parts = []
        for vals, width in zip(operands, self.component.operand_widths):
            parts.append(int_to_bits(np.asarray(vals, dtype=np.int64)
                                     .reshape(-1), width))
        return np.concatenate(parts, axis=1)

    def apply(self, *operands):
        """Stream *operands* through the aged component; return results.

        Operand arrays may have any (common) shape; each element is one
        clock cycle, applied in flattened order, with the previous
        element as the prior circuit state.
        """
        shape = np.asarray(operands[0]).shape
        bits = self._encode(operands)
        result = self.simulator.run_stream(bits)
        out = bits_to_int(result.sampled, signed=True)
        return out.reshape(shape)

    def apply_detailed(self, *operands):
        """Like :meth:`apply` but returns the full
        :class:`~repro.sim.timing.TimedResult` (flattened order)."""
        return self.simulator.run_stream(self._encode(operands))

    def error_statistics(self, *operands):
        """Run a stimulus stream and summarize timing-error impact.

        Returns a dict with ``error_rate`` (fraction of cycles whose
        sampled word is wrong), ``bit_error_rate``, ``mean_abs_error``
        and ``max_abs_error`` of the sampled versus settled words.
        """
        result = self.apply_detailed(*operands)
        sampled = bits_to_int(result.sampled, signed=True)
        settled = bits_to_int(result.settled, signed=True)
        wrong = sampled != settled
        abs_err = np.abs(sampled - settled)
        return {
            "error_rate": float(wrong.mean()),
            "bit_error_rate": float((result.sampled
                                     != result.settled).mean()),
            "mean_abs_error": float(abs_err.mean()),
            "max_abs_error": int(abs_err.max()) if abs_err.size else 0,
            "cycles": int(sampled.size),
        }


class GateLevelArithmetic(ArithmeticModel):
    """Arithmetic whose mul/add run through aged component netlists.

    Operations without a configured model fall back to exact arithmetic
    (e.g. model only the multiplier when only it violates timing).
    """

    def __init__(self, mul_model=None, add_model=None):
        self.mul_model = mul_model
        self.add_model = add_model

    def mul(self, a, b):
        if self.mul_model is None:
            return np.asarray(a, dtype=np.int64) * np.asarray(b,
                                                              dtype=np.int64)
        return self.mul_model.apply(a, b)

    def add(self, a, b):
        if self.add_model is None:
            return np.asarray(a, dtype=np.int64) + np.asarray(b,
                                                              dtype=np.int64)
        return self.add_model.apply(a, b)

    @property
    def label(self):
        parts = []
        if self.mul_model is not None:
            parts.append("mul@%s" % (self.mul_model.scenario.label
                                     if self.mul_model.scenario else "fresh"))
        if self.add_model is not None:
            parts.append("add@%s" % (self.add_model.scenario.label
                                     if self.add_model.scenario else "fresh"))
        return "gate_level(%s)" % ", ".join(parts)


def timed_datapath_arithmetic(library, mul_component=None,
                              add_component=None, scenario=None,
                              t_clock_ps=None, effort="ultra",
                              bti=DEFAULT_BTI, degradation=None,
                              glitch_model="sensitization"):
    """Build a :class:`GateLevelArithmetic` with one shared design clock.

    A pipelined datapath clocks *every* stage at the design's clock —
    the slowest component's fresh critical path when no explicit
    ``t_clock_ps`` is given (the paper's guardband-free operating
    point). This factory synthesizes the given components, derives that
    shared clock, and wires both timed models to it, which is what the
    motivational chain experiments (Figs. 1-2) need.
    """
    models = {}
    for key, component in (("mul", mul_component), ("add", add_component)):
        if component is None:
            continue
        models[key] = TimedComponentModel(
            component, library, scenario=scenario, effort=effort,
            bti=bti, degradation=degradation, glitch_model=glitch_model)
    if not models:
        raise ValueError("need at least one component to model")
    clock = t_clock_ps
    if clock is None:
        clock = max(model.fresh_delay_ps for model in models.values())
    for model in models.values():
        model.t_clock_ps = clock
        model.simulator.t_clock_ps = clock
    return GateLevelArithmetic(mul_model=models.get("mul"),
                               add_model=models.get("add"))
