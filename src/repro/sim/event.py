"""Exact event-driven gate-level simulator (reference model).

A classic transport-delay event simulator used as the ground truth for
the vectorized timed simulator on small circuits: it reproduces glitches
and exact per-net settle times. It is deliberately simple and scalar —
use :mod:`repro.sim.timing` for anything larger than a few hundred gates.
"""

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..aging.bti import DEFAULT_BTI
from ..aging.delay import gate_delays
from ..netlist.net import CONST0, CONST1


@dataclass
class Waveform:
    """Recorded activity of one net: ``[(time_ps, value)]`` transitions."""

    transitions: List[Tuple[float, int]] = field(default_factory=list)

    @property
    def final_value(self):
        return self.transitions[-1][1] if self.transitions else None

    @property
    def settle_time(self):
        """Time of the last transition (0.0 if the net never moved)."""
        return self.transitions[-1][0] if self.transitions else 0.0

    @property
    def glitch_count(self):
        """Number of transitions beyond the first (a settled net has 0)."""
        return max(0, len(self.transitions) - 1)


class EventSimulator:
    """Transport-delay event-driven simulation of one clock cycle.

    Parameters
    ----------
    netlist, library:
        Design and cell library.
    scenario / bti / degradation:
        Optional aging configuration (same plumbing as STA).
    """

    def __init__(self, netlist, library, scenario=None, bti=DEFAULT_BTI,
                 degradation=None):
        self.netlist = netlist
        self.library = library
        self.delays = gate_delays(netlist, library, scenario=scenario,
                                  bti=bti, degradation=degradation)
        self._fanout = netlist.fanout_map()

    def settle(self, prev_inputs, cur_inputs):
        """Apply an input transition and run until quiescence.

        Parameters
        ----------
        prev_inputs / cur_inputs:
            Map PI net id -> bit value before / after the clock edge.

        Returns
        -------
        dict
            Map net id -> :class:`Waveform` (every net gets an entry;
            index 0 of a waveform is its initial settled value at t<=0).
        """
        values = {CONST0: 0, CONST1: 1}
        values.update(prev_inputs)
        # Settle the previous state functionally.
        for gate in self.netlist.topological_gates():
            func = self.library[gate.cell].function
            values[gate.output] = func(*[values[n] for n in gate.inputs])
        waves = {net: Waveform([(0.0, val)]) for net, val in values.items()}

        counter = itertools.count()
        queue = []
        for net, new_val in cur_inputs.items():
            if values.get(net) != new_val:
                heapq.heappush(queue, (0.0, next(counter), net, new_val))

        while queue:
            time, __, net, val = heapq.heappop(queue)
            if values.get(net) == val:
                continue
            values[net] = val
            waves.setdefault(net, Waveform()).transitions.append((time, val))
            for gate in self._fanout.get(net, ()):  # re-evaluate sinks
                func = self.library[gate.cell].function
                new_out = func(*[values[n] for n in gate.inputs])
                heapq.heappush(queue, (time + self.delays[gate.uid],
                                       next(counter), gate.output, new_out))
        return waves

    def sample_outputs(self, prev_inputs, cur_inputs, t_clock_ps):
        """Value captured on each PO at the sampling edge ``t_clock_ps``.

        Returns ``(sampled, settled, settle_times)`` lists in PO order.
        """
        waves = self.settle(prev_inputs, cur_inputs)
        sampled, settled, times = [], [], []
        for net in self.netlist.primary_outputs:
            wave = waves[net]
            value_at_clock = wave.transitions[0][1]
            for time, val in wave.transitions:
                if time <= t_clock_ps:
                    value_at_clock = val
                else:
                    break
            sampled.append(value_at_clock)
            settled.append(wave.final_value)
            times.append(wave.settle_time)
        return sampled, settled, times
