"""Switching-activity and signal-probability extraction.

Runs a (functional, fast) gate-level simulation of a netlist under a
stimulus stream and reduces the per-net waveforms to the statistics the
aging flow needs:

* **signal probability** ``P(net = 1)`` — determines actual-case BTI
  stress factors (Fig. 3(c) of the paper),
* **toggle rate** (transitions per applied vector) — drives the dynamic
  power model.
"""

import time
from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..aging.stress import ActualStress
from ..obs import logs, metrics as obs_metrics, trace as obs_trace
from . import bitpack
from .logic import (all_net_values, all_net_values_packed, compile_netlist,
                    int_to_bits)

_log = logs.get_logger("sim.activity")

#: Functional-simulation engines: ``"packed"`` (64 vectors per uint64
#: word, popcount statistics — the default) and ``"bytes"`` (one bit
#: per uint8 byte — the reference implementation).
ENGINES = ("packed", "bytes")


@dataclass
class ActivityReport:
    """Per-net statistics of one simulated stimulus stream.

    Attributes
    ----------
    signal_probability:
        Map net id -> fraction of vectors where the net is 1.
    toggle_rate:
        Map net id -> transitions per consecutive vector pair.
    vectors:
        Number of stimulus vectors simulated.
    """

    signal_probability: Dict[int, float]
    toggle_rate: Dict[int, float]
    vectors: int

    def gate_output_toggle(self, netlist):
        """Toggle rate of each gate's output net, keyed by gate uid."""
        return {g.uid: self.toggle_rate.get(g.output, 0.0)
                for g in netlist.gates}


def _byte_statistics(compiled, pi_bits):
    """Reference statistics: materialize the full ``uint8`` net matrix."""
    values = all_net_values(compiled, pi_bits)
    p1 = values.mean(axis=0)
    if values.shape[0] > 1:
        toggles = (values[1:] != values[:-1]).mean(axis=0)
    else:
        toggles = np.zeros(values.shape[1])
    return p1, toggles


def _packed_statistics(compiled, pi_bits):
    """Popcount statistics over packed words — internal nets never
    unpack.

    Per-slot ones counts come from ``popcount(w & valid)``; toggle
    counts from ``popcount((w ^ (w << 1 | carry)) & valid')`` where the
    1-bit shift across word boundaries aligns each vector with its
    predecessor and ``valid'`` additionally drops bit 0 of word 0 (the
    first vector has no predecessor).
    """
    batch = pi_bits.shape[0]
    values = all_net_values_packed(compiled, pi_bits)  # (slots, words)
    slots, words = values.shape
    valid = np.full(words, bitpack.ALL_ONES, dtype=np.uint64)
    valid[-1] = bitpack.tail_mask(batch)
    valid[0] &= ~np.uint64(1)  # the first vector has no predecessor
    ones = np.zeros(slots, dtype=np.int64)
    flips = np.zeros(slots, dtype=np.int64)
    # Reduce in slot blocks so the shift/XOR temporaries stay a small
    # fraction of the packed matrix itself (the matrix dominates peak).
    block = max(1, (1 << 21) // max(words * 8, 1))
    for lo in range(0, slots, block):
        chunk = values[lo:lo + block]
        # Tail bits beyond the batch are masked in the last word only.
        ones[lo:lo + block] = bitpack.popcount(chunk[:, :-1]).sum(
            axis=1, dtype=np.int64)
        ones[lo:lo + block] += bitpack.popcount(
            chunk[:, -1] & bitpack.tail_mask(batch))
        if batch > 1:
            # Bit i of `shifted` becomes v[i] ^ v[i-1]: shift the
            # stream up by one (carrying bit 63 across words) and XOR.
            shifted = chunk << np.uint64(1)
            if words > 1:
                shifted[:, 1:] |= chunk[:, :-1] >> np.uint64(63)
            shifted ^= chunk
            shifted &= valid
            flips[lo:lo + block] = bitpack.popcount(shifted).sum(
                axis=1, dtype=np.int64)
    p1 = ones / float(batch)
    toggles = (flips / float(batch - 1) if batch > 1
               else np.zeros(slots))
    return p1, toggles


def simulate_activity(netlist, library, pi_bits, engine="packed"):
    """Measure signal probabilities and toggle rates under *pi_bits*.

    Parameters
    ----------
    netlist, library:
        Design and cell library.
    pi_bits:
        ``(vectors, n_pi)`` bit array; rows are applied as a time
        sequence, so toggle rates reflect consecutive-vector transitions.
    engine:
        ``"packed"`` (default) runs the 64-way bit-parallel engine and
        reduces by popcount; ``"bytes"`` runs the ``uint8`` reference
        engine. Both produce bit-identical statistics.
    """
    if engine not in ENGINES:
        raise ValueError("engine must be one of %r, got %r"
                         % (ENGINES, engine))
    compiled = compile_netlist(netlist, library)
    pi_bits = np.asarray(pi_bits, dtype=np.uint8)
    if pi_bits.ndim != 2 or pi_bits.shape[1] != len(compiled.pi_slots):
        raise ValueError(
            "expected pi_bits of shape (vectors, %d), got %r"
            % (len(compiled.pi_slots), pi_bits.shape))
    vectors = int(pi_bits.shape[0])
    start = time.perf_counter()
    with obs_trace.span("sim.activity", design=netlist.name,
                        engine=engine, vectors=vectors,
                        nets=compiled.slots):
        if vectors == 0:
            p1 = np.zeros(compiled.slots)
            toggles = np.zeros(compiled.slots)
        elif engine == "bytes":
            p1, toggles = _byte_statistics(compiled, pi_bits)
        else:
            p1, toggles = _packed_statistics(compiled, pi_bits)
    elapsed = time.perf_counter() - start
    obs_metrics.inc(obs_metrics.SIM_RUNS)
    obs_metrics.inc(obs_metrics.SIM_VECTORS, vectors)
    if elapsed > 0 and vectors:
        obs_metrics.set_gauge(obs_metrics.SIM_VECTORS_PER_SEC,
                              vectors / elapsed)
    _log.debug("simulated %d vectors over %d nets (%s engine, %.1f ms)",
               vectors, compiled.slots, engine, elapsed * 1e3)
    signal_probability = {}
    toggle_rate = {}
    for net, slot in compiled.slot_of.items():
        signal_probability[net] = float(p1[slot])
        toggle_rate[net] = float(toggles[slot])
    return ActivityReport(signal_probability=signal_probability,
                          toggle_rate=toggle_rate,
                          vectors=int(pi_bits.shape[0]))


def extract_stress(netlist, library, pi_bits, label="actual",
                   engine="packed"):
    """One-call helper: simulate activity and build an actual-case
    :class:`~repro.aging.stress.ActualStress` annotation (Fig. 3(c))."""
    with obs_trace.span("stress.extract", design=netlist.name,
                        label=label, engine=engine):
        report = simulate_activity(netlist, library, pi_bits,
                                   engine=engine)
        annotation = ActualStress.from_signal_probabilities(
            netlist, report.signal_probability, label=label)
    obs_metrics.inc(obs_metrics.STRESS_EXTRACTIONS)
    return annotation


def operand_stream_bits(operands, widths):
    """Pack per-operand integer streams into a PI bit matrix.

    Parameters
    ----------
    operands:
        Sequence of integer arrays, one per operand, equal lengths.
    widths:
        Bit width of each operand; concatenated in order (operand 0's
        LSB is PI 0), matching the RTL component generators' PI layout.
    """
    if len(operands) != len(widths):
        raise ValueError("need one width per operand")
    parts = [int_to_bits(np.asarray(vals), width)
             for vals, width in zip(operands, widths)]
    return np.concatenate(parts, axis=1)
