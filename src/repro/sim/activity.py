"""Switching-activity and signal-probability extraction.

Runs a (functional, fast) gate-level simulation of a netlist under a
stimulus stream and reduces the per-net waveforms to the statistics the
aging flow needs:

* **signal probability** ``P(net = 1)`` — determines actual-case BTI
  stress factors (Fig. 3(c) of the paper),
* **toggle rate** (transitions per applied vector) — drives the dynamic
  power model.
"""

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..aging.stress import ActualStress
from .logic import all_net_values, compile_netlist, int_to_bits


@dataclass
class ActivityReport:
    """Per-net statistics of one simulated stimulus stream.

    Attributes
    ----------
    signal_probability:
        Map net id -> fraction of vectors where the net is 1.
    toggle_rate:
        Map net id -> transitions per consecutive vector pair.
    vectors:
        Number of stimulus vectors simulated.
    """

    signal_probability: Dict[int, float]
    toggle_rate: Dict[int, float]
    vectors: int

    def gate_output_toggle(self, netlist):
        """Toggle rate of each gate's output net, keyed by gate uid."""
        return {g.uid: self.toggle_rate.get(g.output, 0.0)
                for g in netlist.gates}


def simulate_activity(netlist, library, pi_bits):
    """Measure signal probabilities and toggle rates under *pi_bits*.

    Parameters
    ----------
    netlist, library:
        Design and cell library.
    pi_bits:
        ``(vectors, n_pi)`` bit array; rows are applied as a time
        sequence, so toggle rates reflect consecutive-vector transitions.
    """
    compiled = compile_netlist(netlist, library)
    pi_bits = np.asarray(pi_bits, dtype=np.uint8)
    if pi_bits.ndim != 2 or pi_bits.shape[1] != len(compiled.pi_slots):
        raise ValueError(
            "expected pi_bits of shape (vectors, %d), got %r"
            % (len(compiled.pi_slots), pi_bits.shape))
    values = all_net_values(compiled, pi_bits)
    p1 = values.mean(axis=0)
    if values.shape[0] > 1:
        toggles = (values[1:] != values[:-1]).mean(axis=0)
    else:
        toggles = np.zeros(values.shape[1])
    signal_probability = {}
    toggle_rate = {}
    for net, slot in compiled.slot_of.items():
        signal_probability[net] = float(p1[slot])
        toggle_rate[net] = float(toggles[slot])
    return ActivityReport(signal_probability=signal_probability,
                          toggle_rate=toggle_rate,
                          vectors=int(pi_bits.shape[0]))


def extract_stress(netlist, library, pi_bits, label="actual"):
    """One-call helper: simulate activity and build an actual-case
    :class:`~repro.aging.stress.ActualStress` annotation (Fig. 3(c))."""
    report = simulate_activity(netlist, library, pi_bits)
    return ActualStress.from_signal_probabilities(
        netlist, report.signal_probability, label=label)


def operand_stream_bits(operands, widths):
    """Pack per-operand integer streams into a PI bit matrix.

    Parameters
    ----------
    operands:
        Sequence of integer arrays, one per operand, equal lengths.
    widths:
        Bit width of each operand; concatenated in order (operand 0's
        LSB is PI 0), matching the RTL component generators' PI layout.
    """
    if len(operands) != len(widths):
        raise ValueError("need one width per operand")
    parts = [int_to_bits(np.asarray(vals), width)
             for vals, width in zip(operands, widths)]
    return np.concatenate(parts, axis=1)
