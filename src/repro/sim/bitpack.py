"""Bit-packed value representation for 64-way parallel logic simulation.

The functional simulator's batch dimension is embarrassingly
bit-parallel: every cell is a bitwise function, so 64 stimulus vectors
can ride through each gate in a single ``uint64`` word. This module
provides the packed representation and the packed cell kernels:

* **Layout** — a signal's waveform over a batch of ``B`` vectors is a
  1-D ``uint64`` array of ``ceil(B / 64)`` words; vector ``i`` lives in
  word ``i // 64`` at bit ``i % 64`` (LSB first). 2-D packed arrays are
  ``(signals, words)``, one contiguous row per signal.
* **Kernels** — the byte-wide cell functions in
  :mod:`repro.cells.cell` are LSB-only (``_inv`` is ``a ^ 1``), so each
  kind is lowered here to a full-word bitwise form (inversion becomes
  XOR with all-ones, i.e. ``~``). Unknown kinds fall back to a kernel
  synthesized from the byte function's truth table, so any future cell
  kind packs automatically.
* **Popcount** — :func:`popcount` reduces packed words straight to
  statistics (signal probabilities, toggle counts) without unpacking.

Bits at positions ``>= B`` in the last word are *unspecified* for gate
outputs (the constant-1 slot carries ones there); mask with
:func:`tail_mask` before counting, and :func:`unpack_bits` slices them
away.
"""

import sys

import numpy as np

from ..cells.cell import CELL_KINDS

#: Vectors packed per word.
WORD_BITS = 64

#: All-ones word (the packed constant 1).
ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

_ONE = np.uint64(1)


def word_count(batch):
    """Number of ``uint64`` words needed to pack *batch* vectors."""
    return (int(batch) + WORD_BITS - 1) // WORD_BITS


def tail_mask(batch):
    """Mask of valid bits in the last word of a *batch*-vector packing.

    All-ones when ``batch`` is a multiple of 64 (or zero).
    """
    rem = int(batch) % WORD_BITS
    if rem == 0:
        return ALL_ONES
    return np.uint64((1 << rem) - 1)


def pack_bits(bits):
    """Pack a ``(batch, signals)`` 0/1 array into ``(signals, words)``.

    Row ``s`` of the result is signal ``s``'s packed waveform: vector
    ``i`` at word ``i // 64``, bit ``i % 64``. The transpose is
    deliberate — per-signal words are contiguous, which is what the
    packed evaluator and the popcount reductions want.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 2:
        raise ValueError("expected a (batch, signals) bit array, got %r"
                         % (bits.shape,))
    batch, signals = bits.shape
    words = word_count(batch)
    if batch % WORD_BITS:
        cols = np.zeros((signals, words * WORD_BITS), dtype=np.uint8)
        cols[:, :batch] = bits.T
    else:
        cols = np.ascontiguousarray(bits.T)
    packed = np.packbits(cols, axis=1, bitorder="little").view(np.uint64)
    if sys.byteorder == "big":  # pragma: no cover - x86/ARM are little
        packed = packed.byteswap()
    return packed


def unpack_bits(packed, batch):
    """Inverse of :func:`pack_bits`: ``(signals, words)`` -> ``(batch, signals)``.

    Tail bits at positions ``>= batch`` are discarded.
    """
    packed = np.ascontiguousarray(packed, dtype=np.uint64)
    if packed.ndim != 2:
        raise ValueError("expected a (signals, words) packed array, got %r"
                         % (packed.shape,))
    batch = int(batch)
    if batch > packed.shape[1] * WORD_BITS:
        raise ValueError("batch %d exceeds packed capacity %d"
                         % (batch, packed.shape[1] * WORD_BITS))
    if sys.byteorder == "big":  # pragma: no cover
        packed = packed.byteswap()
    bits = np.unpackbits(packed.view(np.uint8), axis=1, bitorder="little")
    return np.ascontiguousarray(bits[:, :batch].T)


# ---------------------------------------------------------------------------
# popcount
# ---------------------------------------------------------------------------

_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)


def _popcount_swar(words):
    """Branch-free SWAR popcount (NumPy < 2.0 fallback)."""
    w = np.array(words, dtype=np.uint64, copy=True)
    w -= (w >> _ONE) & _M1
    w = (w & _M2) + ((w >> np.uint64(2)) & _M2)
    w = (w + (w >> np.uint64(4))) & _M4
    return (w * _H01) >> np.uint64(56)


if hasattr(np, "bitwise_count"):
    def popcount(words):
        """Per-word count of set bits (sum with an explicit wide dtype)."""
        return np.bitwise_count(words)
else:  # pragma: no cover - exercised only on NumPy < 2.0
    popcount = _popcount_swar


# ---------------------------------------------------------------------------
# packed cell kernels
# ---------------------------------------------------------------------------

def _pinv(a):
    return ~a


def _pbuf(a):
    return a


def _pnand2(a, b):
    return ~(a & b)


def _pnor2(a, b):
    return ~(a | b)


def _pand2(a, b):
    return a & b


def _por2(a, b):
    return a | b


def _pxor2(a, b):
    return a ^ b


def _pxnor2(a, b):
    return ~(a ^ b)


def _pmux2(a, b, s):
    """Select *b* when s=1 else *a* (matches the byte kernel)."""
    return (a & ~s) | (b & s)


def _paoi21(a, b, c):
    return ~((a & b) | c)


def _poai21(a, b, c):
    return ~((a | b) & c)


#: kind -> full-word bitwise kernel, mirroring ``CELL_KINDS``.
PACKED_KERNELS = {
    "INV": _pinv,
    "BUF": _pbuf,
    "NAND2": _pnand2,
    "NOR2": _pnor2,
    "AND2": _pand2,
    "OR2": _por2,
    "XOR2": _pxor2,
    "XNOR2": _pxnor2,
    "MUX2": _pmux2,
    "AOI21": _paoi21,
    "OAI21": _poai21,
}

#: kind -> kernel synthesized from a truth table (unknown kinds).
_SYNTHESIZED = {}


def _kernel_from_truth_table(arity, reference):
    """Build a packed kernel as a sum of the byte function's minterms.

    Evaluates *reference* (a scalar/LSB logic function) on all ``2 **
    arity`` input combinations and returns an OR-of-ANDs over the true
    rows — correct for any bitwise-safe cell function, just slower than
    a hand-written kernel.
    """
    minterms = []
    for row in range(1 << arity):
        ins = [(row >> pos) & 1 for pos in range(arity)]
        if reference(*ins) & 1:
            minterms.append(tuple(ins))

    def kernel(*args):
        acc = np.zeros_like(args[0])
        for ins in minterms:
            term = None
            for value, arg in zip(ins, args):
                literal = arg if value else ~arg
                term = literal if term is None else term & literal
            acc |= term
        return acc

    return kernel


def packed_cell_function(kind, arity=None, reference=None):
    """Return the full-word packed kernel for a cell *kind*.

    Known kinds use the hand-written kernels above; anything else is
    synthesized (once) from the kind's byte-level truth table. *arity*
    and *reference* default to the ``CELL_KINDS`` entry and only need
    to be passed for kinds outside the table.
    """
    kernel = PACKED_KERNELS.get(kind)
    if kernel is not None:
        return kernel
    kernel = _SYNTHESIZED.get(kind)
    if kernel is not None:
        return kernel
    if arity is None or reference is None:
        table_arity, table_func = CELL_KINDS[kind]
        arity = table_arity if arity is None else arity
        reference = table_func if reference is None else reference
    kernel = _kernel_from_truth_table(arity, reference)
    _SYNTHESIZED[kind] = kernel
    return kernel
