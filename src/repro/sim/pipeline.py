"""Staged (pipelined) datapath simulation with per-stage diagnostics.

The paper's microarchitectures are pipelines: every combinational block
``B_k`` sits between registers and all registers share the design clock.
:class:`TimedPipeline` composes per-stage
:class:`~repro.approx.gate_level.TimedComponentModel` instances under
that shared clock and streams data through them, reporting per-stage
violation/corruption statistics — the observability a designer needs to
decide *where* (which block) to spend precision, which is exactly the
paper's "when, where and how much" freedom.

Because the pipeline is feed-forward, streaming a whole batch through
stage after stage is cycle-accurate: element ``t`` of a stage's operand
stream is processed with element ``t-1`` as the circuit's previous
state, matching the register transfer that would happen in silicon.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from .logic import bits_to_int


@dataclass
class StageReport:
    """Timing-error statistics of one pipeline stage over a run."""

    name: str
    cycles: int
    violation_rate: float
    corruption_rate: float
    t_clock_ps: float

    @property
    def clean(self):
        return self.violation_rate == 0.0


@dataclass
class PipelineRun:
    """Outcome of :meth:`TimedPipeline.run`."""

    outputs: np.ndarray
    stages: List[StageReport]

    @property
    def clean(self):
        """True when no stage saw a single timing violation."""
        return all(stage.clean for stage in self.stages)

    def worst_stage(self):
        """The stage with the highest violation rate."""
        return max(self.stages, key=lambda s: s.violation_rate)


class TimedPipeline:
    """A chain of timed component stages under one design clock.

    Parameters
    ----------
    stages:
        List of ``(name, model, feed)`` tuples. ``model`` is a
        :class:`~repro.approx.gate_level.TimedComponentModel`; ``feed``
        maps the previous stage's output array to this stage's operand
        tuple (e.g. pairing data with coefficients). ``feed`` may be
        None when the model takes the incoming array as its single
        operand... in practice datapath stages always need an adapter,
        so None simply passes ``(data,)``.
    t_clock_ps:
        Shared clock period; defaults to the slowest stage's fresh
        critical path (guardband-free operation).
    """

    def __init__(self, stages, t_clock_ps=None):
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self._stages = []
        for entry in stages:
            name, model, feed = entry
            self._stages.append((name, model, feed))
        clock = t_clock_ps
        if clock is None:
            clock = max(model.fresh_delay_ps
                        for __, model, __f in self._stages)
        self.t_clock_ps = float(clock)
        for __, model, __f in self._stages:
            model.t_clock_ps = self.t_clock_ps
            model.simulator.t_clock_ps = self.t_clock_ps

    @property
    def latency_cycles(self):
        """Register-to-register latency of the pipeline."""
        return len(self._stages)

    def run(self, data):
        """Stream *data* through every stage; return a :class:`PipelineRun`.

        *data* is the 1-D element stream entering stage 0's ``feed``;
        each stage's ``feed`` must return 1-D operand arrays of one
        element per cycle, and the stage's sampled outputs become the
        next stage's input stream.
        """
        data = np.asarray(data, dtype=np.int64).reshape(-1)
        reports = []
        for name, model, feed in self._stages:
            operands = feed(data) if feed is not None else (data,)
            result = model.apply_detailed(*operands)
            sampled = bits_to_int(result.sampled, signed=True)
            settled = bits_to_int(result.settled, signed=True)
            reports.append(StageReport(
                name=name,
                cycles=int(sampled.size),
                violation_rate=float(result.any_violation.mean()),
                corruption_rate=float((sampled != settled).mean()),
                t_clock_ps=self.t_clock_ps))
            data = sampled
        return PipelineRun(outputs=data, stages=reports)
