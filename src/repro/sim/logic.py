"""Vectorized functional gate-level simulation.

Netlists are compiled once into a flat "program" (a topologically ordered
list of cell-function applications over integer-indexed value slots) and
then evaluated over a whole batch of input vectors at once. This is what
makes million-vector experiments (the paper applies 10^6 stimuli to the
adder/multiplier) tractable in Python.

Two engines share the compiled program:

* the **bytes** engine (:func:`evaluate` / :func:`all_net_values`)
  stores one simulated bit per ``uint8`` byte — the simple reference
  implementation;
* the **packed** engine (:func:`evaluate_packed` /
  :func:`all_net_values_packed`) packs 64 vectors per ``uint64`` word
  (:mod:`repro.sim.bitpack`) and pushes each batch through full-word
  bitwise kernels — 64 vectors per gate-op, an 8th of the memory
  traffic.
"""

import weakref
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..netlist.net import CONST0, CONST1
from . import bitpack


@dataclass
class CompiledNetlist:
    """A netlist lowered to a flat evaluation program.

    Attributes
    ----------
    netlist:
        The source netlist (kept for metadata).
    slots:
        Number of value slots (dense re-indexing of net ids).
    slot_of:
        Map net id -> slot index.
    ops:
        ``(function, input_slots, output_slot, gate_uid)`` in topological
        order.
    pi_slots / po_slots:
        Slot indices of primary inputs / outputs in declaration order.
    last_use:
        For each op index, the list of slots that become dead after it —
        used to release batch memory early.
    packed_funcs:
        Per-op full-word kernels (``uint64`` bitwise forms of the byte
        functions in ``ops``), aligned with ``ops``; used by the packed
        engine.
    """

    netlist: object
    slots: int
    slot_of: dict
    ops: List[Tuple]
    pi_slots: List[int]
    po_slots: List[int]
    last_use: List[List[int]]
    packed_funcs: List = None


#: Per-netlist memo bound (several libraries may compile one netlist).
_COMPILE_MEMO_LIMIT = 8


def compile_netlist(netlist, library, memo=True):
    """Lower *netlist* into a :class:`CompiledNetlist` program.

    The lowering is memoized on the netlist instance (keyed by library
    identity and a fingerprint of the netlist *contents*: interface nets
    plus every gate's cell/pins), so the activity extractor and the
    timed simulator share one compiled program instead of lowering the
    same netlist twice — while any mutation, including in-place gate
    edits that bypass ``rebuild``/``add_gate`` (e.g. assigning
    ``gate.cell`` directly), changes the key and recompiles. Pass
    ``memo=False`` to force a fresh lowering.
    """
    if not memo:
        return _compile_netlist(netlist, library)
    # The token fingerprints what the compiled program actually depends
    # on: the cell (hence logic function), pin nets and output net of
    # every gate, plus the PI/PO orders. A mutation counter would be
    # cheaper but misses in-place gate mutations; building the tuple is
    # O(gates), the same order as one evaluate() row, so the memo still
    # pays for itself on any repeated use.
    #
    # The library is keyed by weak reference, not id(): a collected
    # library's id can be recycled by a new one, and a dead weakref
    # never compares equal to a live one, so a recycled id cannot
    # resurface a stale program.
    try:
        lib_key = weakref.ref(library)
    except TypeError:  # un-weakref-able library stand-in (e.g. a dict)
        lib_key = id(library)
    token = (lib_key, tuple(netlist.primary_inputs),
             tuple(netlist.primary_outputs),
             tuple((g.cell, g.inputs, g.output) for g in netlist.gates))
    cache = getattr(netlist, "_compiled_memo", None)
    if cache is None:
        cache = {}
        netlist._compiled_memo = cache
    compiled = cache.get(token)
    if compiled is None:
        if len(cache) >= _COMPILE_MEMO_LIMIT:
            # Evict the least recently used entry only; hits below
            # refresh an entry's insertion order.
            cache.pop(next(iter(cache)))
        compiled = _compile_netlist(netlist, library)
        cache[token] = compiled
    else:
        cache[token] = cache.pop(token)
    return compiled


def _compile_netlist(netlist, library):
    order = netlist.topological_gates()
    slot_of = {CONST0: 0, CONST1: 1}
    for net in netlist.primary_inputs:
        slot_of.setdefault(net, len(slot_of))
    for gate in order:
        slot_of.setdefault(gate.output, len(slot_of))

    ops = []
    packed_funcs = []
    for gate in order:
        cell = library[gate.cell]
        func = cell.function
        ins = tuple(slot_of[n] for n in gate.inputs)
        ops.append((func, ins, slot_of[gate.output], gate.uid))
        packed_funcs.append(bitpack.packed_cell_function(
            cell.kind, arity=cell.n_inputs, reference=func))

    pi_slots = [slot_of[n] for n in netlist.primary_inputs]
    po_slots = [slot_of[n] for n in netlist.primary_outputs]

    # Liveness: a slot dies after its last reading op, unless it is a PO
    # (or a constant / PI, which callers may inspect afterwards).
    keep = set(po_slots) | {0, 1} | set(pi_slots)
    last_reader = {}
    for idx, (__, ins, out, __uid) in enumerate(ops):
        for slot in ins:
            last_reader[slot] = idx
    last_use = [[] for __ in ops]
    for slot, idx in last_reader.items():
        if slot not in keep:
            last_use[idx].append(slot)
    return CompiledNetlist(netlist=netlist, slots=len(slot_of),
                           slot_of=slot_of, ops=ops, pi_slots=pi_slots,
                           po_slots=po_slots, last_use=last_use,
                           packed_funcs=packed_funcs)


def evaluate(compiled, pi_bits, release=True):
    """Evaluate a compiled netlist on a batch of input vectors.

    Parameters
    ----------
    compiled:
        :class:`CompiledNetlist` from :func:`compile_netlist`.
    pi_bits:
        ``uint8`` array of shape ``(batch, n_primary_inputs)`` holding
        one bit per input, in the netlist's PI order.
    release:
        Free dead intermediate arrays eagerly (bounds peak memory).

    Returns
    -------
    numpy.ndarray
        ``uint8`` array of shape ``(batch, n_primary_outputs)``.
    """
    pi_bits = np.asarray(pi_bits, dtype=np.uint8)
    if pi_bits.ndim != 2 or pi_bits.shape[1] != len(compiled.pi_slots):
        raise ValueError(
            "expected pi_bits of shape (batch, %d), got %r"
            % (len(compiled.pi_slots), pi_bits.shape))
    batch = pi_bits.shape[0]
    values = [None] * compiled.slots
    values[0] = np.zeros(batch, dtype=np.uint8)
    values[1] = np.ones(batch, dtype=np.uint8)
    for col, slot in enumerate(compiled.pi_slots):
        values[slot] = np.ascontiguousarray(pi_bits[:, col])
    for idx, (func, ins, out, __uid) in enumerate(compiled.ops):
        values[out] = func(*[values[s] for s in ins])
        if release:
            for slot in compiled.last_use[idx]:
                values[slot] = None
    outs = np.empty((batch, len(compiled.po_slots)), dtype=np.uint8)
    for col, slot in enumerate(compiled.po_slots):
        outs[:, col] = values[slot]
    return outs


def all_net_values(compiled, pi_bits):
    """Evaluate and return the values of *every* net.

    Returns a ``(batch, slots)`` uint8 array plus the slot map; used by
    activity extraction, which needs internal nets.
    """
    pi_bits = np.asarray(pi_bits, dtype=np.uint8)
    batch = pi_bits.shape[0]
    values = np.zeros((batch, compiled.slots), dtype=np.uint8)
    values[:, 1] = 1
    for col, slot in enumerate(compiled.pi_slots):
        values[:, slot] = pi_bits[:, col]
    for func, ins, out, __uid in compiled.ops:
        values[:, out] = func(*[values[:, s] for s in ins])
    return values


# ---------------------------------------------------------------------------
# packed (64-way) engine
# ---------------------------------------------------------------------------

def evaluate_packed(compiled, pi_bits, release=True):
    """Bit-parallel twin of :func:`evaluate` (64 vectors per word).

    Takes and returns the same byte-wide arrays as :func:`evaluate`
    (``(batch, n_pi)`` in, ``(batch, n_po)`` out) and is bit-identical
    to it; only the internal representation differs — each net's batch
    is packed into ``uint64`` words (:mod:`repro.sim.bitpack`) and each
    gate applies its full-word kernel once per 64 vectors.
    """
    pi_bits = np.asarray(pi_bits, dtype=np.uint8)
    if pi_bits.ndim != 2 or pi_bits.shape[1] != len(compiled.pi_slots):
        raise ValueError(
            "expected pi_bits of shape (batch, %d), got %r"
            % (len(compiled.pi_slots), pi_bits.shape))
    batch = pi_bits.shape[0]
    packed_pi = bitpack.pack_bits(pi_bits)
    words = packed_pi.shape[1]
    values = [None] * compiled.slots
    values[0] = np.zeros(words, dtype=np.uint64)
    values[1] = np.full(words, bitpack.ALL_ONES, dtype=np.uint64)
    for col, slot in enumerate(compiled.pi_slots):
        values[slot] = packed_pi[col]
    for idx, (func, ins, out, __uid) in enumerate(compiled.ops):
        values[out] = compiled.packed_funcs[idx](*[values[s] for s in ins])
        if release:
            for slot in compiled.last_use[idx]:
                values[slot] = None
    outs = np.empty((len(compiled.po_slots), words), dtype=np.uint64)
    for row, slot in enumerate(compiled.po_slots):
        outs[row] = values[slot]
    return bitpack.unpack_bits(outs, batch)


def all_net_values_packed(compiled, pi_bits):
    """Packed twin of :func:`all_net_values`.

    Returns a ``(slots, words)`` ``uint64`` array: row ``s`` is slot
    ``s``'s packed waveform (vector ``i`` at word ``i // 64``, bit
    ``i % 64``). Bits at positions ``>= batch`` in the last word are
    unspecified (the constant-1 row carries ones there) — mask with
    :func:`repro.sim.bitpack.tail_mask` before counting.
    """
    pi_bits = np.asarray(pi_bits, dtype=np.uint8)
    batch = pi_bits.shape[0]
    packed_pi = bitpack.pack_bits(pi_bits)
    words = packed_pi.shape[1]
    values = np.zeros((compiled.slots, words), dtype=np.uint64)
    values[1] = bitpack.ALL_ONES
    for col, slot in enumerate(compiled.pi_slots):
        values[slot] = packed_pi[col]
    for idx, (__func, ins, out, __uid) in enumerate(compiled.ops):
        values[out] = compiled.packed_funcs[idx](*[values[s] for s in ins])
    return values


# ---------------------------------------------------------------------------
# integer <-> bit-vector codecs
# ---------------------------------------------------------------------------

def int_to_bits(values, width):
    """Encode integers as two's-complement bit vectors, LSB first.

    Parameters
    ----------
    values:
        Integer array (any signed dtype); values are taken modulo
        ``2**width``.
    width:
        Number of bits per value.

    Returns
    -------
    numpy.ndarray
        ``uint8`` array of shape ``(len(values), width)``.
    """
    values = np.asarray(values, dtype=np.int64)
    shifts = np.arange(width, dtype=np.int64)
    return ((values.reshape(-1, 1) >> shifts) & 1).astype(np.uint8)


def bits_to_int(bits, signed=True):
    """Decode LSB-first bit vectors back to integers.

    Parameters
    ----------
    bits:
        ``(batch, width)`` array of 0/1 values.
    signed:
        Interpret the MSB as a two's-complement sign bit.
    """
    bits = np.asarray(bits, dtype=np.int64)
    width = bits.shape[1]
    shifts = np.arange(width, dtype=np.int64)
    out = np.bitwise_or.reduce(bits << shifts, axis=1)
    if signed and width < 64:
        sign = bits[:, width - 1] == 1
        out = out - (sign.astype(np.int64) << np.int64(width))
    return out
