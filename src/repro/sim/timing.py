"""Vectorized timed gate-level simulation with timing-violation sampling.

This module makes aging-induced timing errors concrete. It models one
clock cycle of a combinational block between registers:

1. at the clock edge the inputs switch from the previous vector to the
   current one;
2. transitions propagate through the gates, each contributing its
   (possibly aged) delay;
3. at the *next* clock edge, ``t_clock`` later, the outputs are sampled.

An output bit whose last transition settles after ``t_clock`` is sampled
mid-flight; we model the captured value as the *previous* cycle's settled
value (the classic late-transition capture model — deterministic, but
input-history dependent, which is exactly the nondeterminism the paper
warns about).

Arrival times are data dependent, using a *static-sensitization glitch
model* based on the Boolean difference: an input's activity (a settled
transition or a glitch) propagates through a gate when the gate's output
is sensitive to that input given the other inputs' settled values —
e.g. an AND gate passes glitches on one input while the other input is
1, an XOR passes everything. A gate whose settled output changes is
always active. The output's possible-transition time is
``max(arrival of contributing active inputs) + gate delay``.

The exact event-driven simulator in :mod:`repro.sim.event` quantifies
this approximation on small circuits, and static arrival times from
:mod:`repro.sta` upper-bound these dynamic arrivals — both properties
are enforced by the test suite.
"""

from dataclasses import dataclass

import numpy as np

from ..aging.bti import DEFAULT_BTI
from ..aging.delay import gate_delays
from .logic import compile_netlist, int_to_bits, bits_to_int


@dataclass
class TimedResult:
    """Result of one batched timed-simulation call.

    Attributes
    ----------
    sampled:
        ``(batch, n_po)`` uint8 — bits captured at the clock edge.
    settled:
        ``(batch, n_po)`` uint8 — the eventual (error-free) bits.
    arrivals:
        ``(batch, n_po)`` float64 — per-bit settle times in ps.
    violations:
        ``(batch, n_po)`` bool — True where the bit settled after the
        clock edge (sampled may differ from settled there).
    """

    sampled: np.ndarray
    settled: np.ndarray
    arrivals: np.ndarray
    violations: np.ndarray

    @property
    def any_violation(self):
        """Per-vector bool: did any output bit violate timing?"""
        return self.violations.any(axis=1)

    @property
    def error_rate(self):
        """Fraction of vectors whose *sampled* word differs from settled."""
        wrong = (self.sampled != self.settled).any(axis=1)
        return float(wrong.mean()) if wrong.size else 0.0


class TimedSimulator:
    """Reusable timed simulator for one netlist under one aging scenario.

    Parameters
    ----------
    netlist:
        Combinational design to simulate.
    library:
        Cell library.
    scenario:
        Aging scenario scaling the gate delays; fresh when omitted.
    t_clock_ps:
        Sampling clock period. The paper's experiments clock aged
        circuits at the *fresh* maximum frequency, i.e. ``t_clock`` is
        the unaged critical-path delay.
    bti / degradation:
        Aging-model plumbing, as in :mod:`repro.sta`.
    """

    #: Slop added to the clock edge when classifying late arrivals.
    #: Arrival times accumulate in float64 — the same floats static STA
    #: propagates — so a dynamic arrival can never drift past the static
    #: bound and a fresh circuit clocked at its own critical path shows
    #: exactly zero violations without any slop. (Arrivals historically
    #: accumulated in float32, which needed 0.05 ps of tolerance and let
    #: the timed simulator flag "violations" that static STA disproved;
    #: the sta-crosscheck suite pins the agreement now.)
    LATE_TOLERANCE_PS = 0.0

    #: Supported activity-propagation models (ablation axis):
    #: ``"sensitization"`` — Boolean-difference static sensitization (the
    #: default, validated against the event-driven simulator);
    #: ``"optimistic"`` — only settled transitions propagate (no
    #: glitches; underestimates errors);
    #: ``"pessimistic"`` — any input activity propagates (topological;
    #: overestimates errors toward static STA).
    GLITCH_MODELS = ("sensitization", "optimistic", "pessimistic")

    def __init__(self, netlist, library, t_clock_ps, scenario=None,
                 bti=DEFAULT_BTI, degradation=None, max_batch=8192,
                 glitch_model="sensitization"):
        if glitch_model not in self.GLITCH_MODELS:
            raise ValueError("glitch_model must be one of %r"
                             % (self.GLITCH_MODELS,))
        self.glitch_model = glitch_model
        self.netlist = netlist
        self.library = library
        self.t_clock_ps = float(t_clock_ps)
        self.scenario = scenario
        self.compiled = compile_netlist(netlist, library)
        delays = gate_delays(netlist, library, scenario=scenario, bti=bti,
                             degradation=degradation)
        # Align per-gate delays with the compiled op order.
        self._op_delays = np.array(
            [delays[uid] for __f, __i, __o, uid in self.compiled.ops],
            dtype=np.float64)
        self.max_batch = int(max_batch)
        # Per-op constant metadata, hoisted out of the per-chunk batch
        # loop: ``probe`` marks ops that need the Boolean-difference
        # sensitization probe (only the "sensitization" model on
        # multi-input gates), ``always`` marks ops whose inputs always
        # contribute activity (1-input gates are trivially sensitive;
        # the pessimistic model propagates everything).
        self._op_meta = []
        for func, ins, out, __uid in self.compiled.ops:
            always = glitch_model == "pessimistic" or len(ins) == 1
            probe = glitch_model == "sensitization" and len(ins) > 1
            self._op_meta.append((func, ins, out, probe, always))

    # ------------------------------------------------------------------
    def run_bits(self, prev_bits, cur_bits):
        """Simulate one clock cycle for a batch of (previous, current) pairs.

        Both arguments are ``(batch, n_pi)`` bit arrays; the previous
        vector defines the circuit's settled state before the edge.
        """
        prev_bits = np.asarray(prev_bits, dtype=np.uint8)
        cur_bits = np.asarray(cur_bits, dtype=np.uint8)
        if prev_bits.shape != cur_bits.shape:
            raise ValueError("prev/cur batches must have the same shape")
        pieces = []
        for lo in range(0, cur_bits.shape[0], self.max_batch):
            hi = lo + self.max_batch
            pieces.append(self._run_chunk(prev_bits[lo:hi], cur_bits[lo:hi]))
        if len(pieces) == 1:
            return pieces[0]
        return TimedResult(
            sampled=np.concatenate([p.sampled for p in pieces]),
            settled=np.concatenate([p.settled for p in pieces]),
            arrivals=np.concatenate([p.arrivals for p in pieces]),
            violations=np.concatenate([p.violations for p in pieces]))

    def _run_chunk(self, prev_bits, cur_bits):
        comp = self.compiled
        batch = cur_bits.shape[0]
        v_old = [None] * comp.slots
        v_new = [None] * comp.slots
        act = [None] * comp.slots    # net carries (possibly glitch) activity
        arr = [None] * comp.slots    # time of the last possible transition
        zero_u8 = np.zeros(batch, dtype=np.uint8)
        one_u8 = np.ones(batch, dtype=np.uint8)
        zero_f = np.zeros(batch, dtype=np.float64)
        no_act = np.zeros(batch, dtype=bool)
        v_old[0] = v_new[0] = zero_u8
        v_old[1] = v_new[1] = one_u8
        arr[0] = arr[1] = zero_f
        act[0] = act[1] = no_act
        for col, slot in enumerate(comp.pi_slots):
            v_old[slot] = np.ascontiguousarray(prev_bits[:, col])
            v_new[slot] = np.ascontiguousarray(cur_bits[:, col])
            act[slot] = v_old[slot] != v_new[slot]
            arr[slot] = zero_f

        zero_u8.setflags(write=False)
        one_u8.setflags(write=False)
        for idx, (func, ins, out, probe, always) in enumerate(self._op_meta):
            new_ins = [v_new[s] for s in ins]
            old = func(*[v_old[s] for s in ins])
            new = func(*new_ins)
            changed = old != new
            # Boolean-difference sensitization: input i's activity
            # (transition or glitch) reaches the output when toggling
            # input i flips the output given the other inputs' settled
            # values. Simultaneous multi-input changes are covered by
            # the `changed` term.
            a_out_act = changed.copy()
            a_in = zero_f
            for pos, s in enumerate(ins):
                if probe:
                    saved = new_ins[pos]
                    new_ins[pos] = zero_u8
                    low = func(*new_ins)
                    new_ins[pos] = one_u8
                    sens = low != func(*new_ins)
                    new_ins[pos] = saved
                    contributes = act[s] & (sens | changed)
                elif always:
                    contributes = act[s]  # INV/BUF are always sensitive
                else:  # optimistic: only settled transitions propagate
                    contributes = act[s] & changed
                a_out_act = a_out_act | contributes
                a_in = np.maximum(a_in, np.where(contributes, arr[s], 0.0))
            a_out = np.where(a_out_act, a_in + self._op_delays[idx], 0.0)
            v_old[out], v_new[out] = old, new
            act[out], arr[out] = a_out_act, a_out
            for slot in comp.last_use[idx]:
                v_old[slot] = v_new[slot] = arr[slot] = act[slot] = None

        n_po = len(comp.po_slots)
        sampled = np.empty((batch, n_po), dtype=np.uint8)
        settled = np.empty((batch, n_po), dtype=np.uint8)
        arrivals = np.empty((batch, n_po), dtype=np.float64)
        violations = np.empty((batch, n_po), dtype=bool)
        deadline = self.t_clock_ps + self.LATE_TOLERANCE_PS
        for col, slot in enumerate(comp.po_slots):
            late = arr[slot] > deadline
            changed = v_old[slot] != v_new[slot]
            # A late-settling bit that actually changed captures stale
            # data; a late glitch on an unchanged bit is reported as a
            # violation but deterministically resolves to the (equal)
            # settled value.
            sampled[:, col] = np.where(late & changed, v_old[slot],
                                       v_new[slot])
            settled[:, col] = v_new[slot]
            arrivals[:, col] = arr[slot]
            violations[:, col] = late
        return TimedResult(sampled=sampled, settled=settled,
                           arrivals=arrivals, violations=violations)

    # ------------------------------------------------------------------
    def run_stream(self, stream_bits, initial=None):
        """Simulate a stream of consecutive input vectors.

        Vector ``i`` is applied with vector ``i-1`` as the previous state
        (vector 0 uses *initial*, defaulting to itself, i.e. no initial
        transition).

        Returns a :class:`TimedResult` for the whole stream.
        """
        stream_bits = np.asarray(stream_bits, dtype=np.uint8)
        if initial is None:
            initial = stream_bits[:1]
        prev = np.concatenate([np.asarray(initial, dtype=np.uint8),
                               stream_bits[:-1]], axis=0)
        return self.run_bits(prev, stream_bits)


def max_frequency_ghz(t_clock_ps):
    """Convert a clock period in ps to a frequency in GHz."""
    if t_clock_ps <= 0:
        raise ValueError("clock period must be positive")
    return 1000.0 / t_clock_ps
