"""Named stimulus generators for characterization and error studies.

The paper characterizes actual-case aging under "input data following a
normal distribution" and under application-extracted traces, arguing the
choice barely matters. This module provides a broader family of stimulus
classes so that claim can be stress-tested (see the stimulus-sensitivity
benchmark): distributions with very different signal probabilities and
toggle behaviour.

Every generator returns a pair of int64 operand arrays for a two-operand
component of the given width; all are deterministic in ``seed``.
"""

import numpy as np

#: Stimulus classes available to :func:`make_stimulus`.
STIMULUS_NAMES = ("normal", "uniform", "sparse", "bursty",
                  "sign_alternating", "gray", "walking_ones")


def _bounds(width):
    return -(1 << (width - 1)), (1 << (width - 1)) - 1


def normal(width, count, seed=0):
    """Normal distribution at quarter-range sigma (the paper's choice)."""
    rng = np.random.default_rng(seed)
    lo, hi = _bounds(width)
    sigma = (1 << (width - 1)) / 4.0
    a = np.clip(np.rint(rng.normal(0, sigma, count)), lo, hi)
    b = np.clip(np.rint(rng.normal(0, sigma, count)), lo, hi)
    return a.astype(np.int64), b.astype(np.int64)


def uniform(width, count, seed=0):
    """Uniform over the full two's-complement range."""
    rng = np.random.default_rng(seed)
    lo, hi = _bounds(width)
    return (rng.integers(lo, hi + 1, count, dtype=np.int64),
            rng.integers(lo, hi + 1, count, dtype=np.int64))


def sparse(width, count, seed=0, density=0.15):
    """Mostly-zero operands with occasional uniform values."""
    rng = np.random.default_rng(seed)
    a, b = uniform(width, count, seed=seed + 1)
    mask_a = rng.random(count) < density
    mask_b = rng.random(count) < density
    return a * mask_a, b * mask_b


def bursty(width, count, seed=0, burst=32):
    """Value held for *burst* cycles, then re-drawn (low toggle rate)."""
    rng = np.random.default_rng(seed)
    lo, hi = _bounds(width)
    draws = (count + burst - 1) // burst
    a = np.repeat(rng.integers(lo, hi + 1, draws, dtype=np.int64),
                  burst)[:count]
    b = np.repeat(rng.integers(lo, hi + 1, draws, dtype=np.int64),
                  burst)[:count]
    return a, b


def sign_alternating(width, count, seed=0):
    """Magnitudes drawn uniformly, signs flipping every cycle.

    Maximizes sign-extension toggling — the worst case for the upper
    partial products of signed multipliers.
    """
    rng = np.random.default_rng(seed)
    hi = (1 << (width - 1)) - 1
    mag_a = rng.integers(0, hi + 1, count, dtype=np.int64)
    mag_b = rng.integers(0, hi + 1, count, dtype=np.int64)
    sign = np.where(np.arange(count) % 2 == 0, 1, -1)
    return mag_a * sign, mag_b * -sign


def gray(width, count, seed=0):
    """Gray-code counting: exactly one operand bit toggles per cycle."""
    index = np.arange(count, dtype=np.int64)
    code = index ^ (index >> 1)
    mask = (1 << width) - 1
    a = (code & mask)
    b = ((code + (count // 2)) ^ ((code + (count // 2)) >> 1)) & mask
    half = 1 << (width - 1)
    return (np.where(a >= half, a - (1 << width), a),
            np.where(b >= half, b - (1 << width), b))


def walking_ones(width, count, seed=0):
    """A single 1 walking through each operand (classic ATPG pattern)."""
    positions = np.arange(count) % width
    a = np.int64(1) << positions.astype(np.int64)
    b = np.int64(1) << ((positions + width // 2) % width).astype(np.int64)
    half = np.int64(1) << np.int64(width - 1)
    a = np.where(a >= half, a - (np.int64(1) << np.int64(width)), a)
    b = np.where(b >= half, b - (np.int64(1) << np.int64(width)), b)
    return a, b


_GENERATORS = {
    "normal": normal,
    "uniform": uniform,
    "sparse": sparse,
    "bursty": bursty,
    "sign_alternating": sign_alternating,
    "gray": gray,
    "walking_ones": walking_ones,
}


def make_stimulus(name, width, count, seed=0):
    """Generate the named two-operand stimulus."""
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise KeyError("unknown stimulus %r (have %s)"
                       % (name, ", ".join(STIMULUS_NAMES)))
    return generator(width, count, seed=seed)
