"""Gate-level simulation: functional, timed (timing errors), event-driven."""

from .logic import (CompiledNetlist, compile_netlist, evaluate,
                    all_net_values, int_to_bits, bits_to_int)
from .timing import TimedResult, TimedSimulator, max_frequency_ghz
from .event import EventSimulator, Waveform
from .activity import (ActivityReport, simulate_activity, extract_stress,
                       operand_stream_bits)
from .pipeline import PipelineRun, StageReport, TimedPipeline
from .stimuli import STIMULUS_NAMES, make_stimulus

__all__ = [
    "CompiledNetlist", "compile_netlist", "evaluate", "all_net_values",
    "int_to_bits", "bits_to_int",
    "TimedResult", "TimedSimulator", "max_frequency_ghz",
    "EventSimulator", "Waveform",
    "ActivityReport", "simulate_activity", "extract_stress",
    "operand_stream_bits",
    "PipelineRun", "StageReport", "TimedPipeline",
    "STIMULUS_NAMES", "make_stimulus",
]
