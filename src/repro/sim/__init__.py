"""Gate-level simulation: functional, timed (timing errors), event-driven."""

from .bitpack import pack_bits, popcount, unpack_bits
from .logic import (CompiledNetlist, compile_netlist, evaluate,
                    evaluate_packed, all_net_values, all_net_values_packed,
                    int_to_bits, bits_to_int)
from .timing import TimedResult, TimedSimulator, max_frequency_ghz
from .event import EventSimulator, Waveform
from .activity import (ENGINES, ActivityReport, simulate_activity,
                       extract_stress, operand_stream_bits)
from .pipeline import PipelineRun, StageReport, TimedPipeline
from .stimuli import STIMULUS_NAMES, make_stimulus

__all__ = [
    "CompiledNetlist", "compile_netlist", "evaluate", "evaluate_packed",
    "all_net_values", "all_net_values_packed",
    "pack_bits", "unpack_bits", "popcount",
    "int_to_bits", "bits_to_int",
    "TimedResult", "TimedSimulator", "max_frequency_ghz",
    "EventSimulator", "Waveform",
    "ENGINES", "ActivityReport", "simulate_activity", "extract_stress",
    "operand_stream_bits",
    "PipelineRun", "StageReport", "TimedPipeline",
    "STIMULUS_NAMES", "make_stimulus",
]
