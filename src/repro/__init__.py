"""repro — reproduction of "Towards Aging-Induced Approximations" (DAC'17).

Transistor aging (BTI) slows circuits over their lifetime; conventional
designs pay for it with a permanent timing guardband. This library
reproduces the DAC 2017 paper by Amrouch, Khaleghi, Gerstlauer and
Henkel that removes the guardband from error-tolerant datapaths by
converting would-be nondeterministic timing errors into deterministic,
bounded precision reductions.

Quick tour
----------
>>> from repro import Adder, characterize, default_library, worst_case
>>> lib = default_library()
>>> entry = characterize(Adder(16), lib, scenarios=[worst_case(10)],
...                      precisions=range(16, 9, -1))
>>> entry.required_precision("10y_worst")  # largest aging-safe precision
...

Package map
-----------
``repro.aging``     BTI model, stress annotations, aging scenarios
``repro.cells``     standard-cell library + degradation-aware tables
``repro.netlist``   gate-level netlist graph and builders
``repro.rtl``       adder/multiplier/MAC/DCT component generators
``repro.synth``     logic synthesis, sizing, aging-aware baseline [4]
``repro.sta``       aging-aware static timing analysis
``repro.sim``       vectorized functional/timed + event-driven simulation
``repro.approx``    truncation + pluggable arithmetic (incl. gate-level)
``repro.power``     power/energy/area models
``repro.quality``   PSNR and error metrics
``repro.media``     synthetic test images + DCT block codec
``repro.core``      the paper's flow: characterize -> library -> apply
"""

from .aging import (AgingScenario, BTIModel, DEFAULT_BTI, FRESH,
                    ONE_YEAR_WORST, TEN_YEARS_WORST, WORST, BALANCE,
                    ActualStress, balance_case, fresh, worst_case)
from .cells import (CellLibrary, DegradationAwareLibrary, default_library,
                    nangate45)
from .netlist import Netlist, NetlistBuilder, NetlistError, CONST0, CONST1
from .rtl import (Adder, ArrayMultiplier, BoothMultiplier,
                  CarryLookaheadAdder, CarrySelectAdder, CarrySkipAdder,
                  FixedPointFIR, FixedPointTransform8, KoggeStoneAdder,
                  Multiplier, MultiplyAccumulate, RippleCarryAdder,
                  RTLComponent, WallaceMultiplier, dct_microarchitecture,
                  fir_microarchitecture, idct_microarchitecture,
                  lowpass_taps)
from .synth import (aging_aware_synthesize, synthesize, synthesize_netlist,
                    upsize_critical_paths)
from .sta import analyze, critical_path, critical_path_delay, logic_depth
from .sim import (EventSimulator, TimedSimulator, bits_to_int,
                  compile_netlist, evaluate, evaluate_packed,
                  extract_stress, int_to_bits, simulate_activity)
from .approx import (ComponentArithmetic, ExactArithmetic,
                     GateLevelArithmetic, TimedComponentModel,
                     TruncatedArithmetic, truncate_lsbs)
from .power import PowerReport, dynamic_power_uw, power_report, savings
from .quality import ACCEPTABLE_PSNR_DB, error_rate, psnr_db
from .media import IMAGE_NAMES, TransformCodec, make_image, roundtrip_psnr
from .core import (ActualCaseSpec, AgingApproximationLibrary,
                   ApproximationOutcome, Block, ComponentCharacterization,
                   Microarchitecture, PrecisionSchedule,
                   apply_aging_approximations, characterize,
                   compare_with_baseline, plan_graceful_degradation,
                   remove_guardband)

__version__ = "1.0.0"

__all__ = [
    # aging
    "AgingScenario", "BTIModel", "DEFAULT_BTI", "FRESH", "ONE_YEAR_WORST",
    "TEN_YEARS_WORST", "WORST", "BALANCE", "ActualStress", "balance_case",
    "fresh", "worst_case",
    # cells
    "CellLibrary", "DegradationAwareLibrary", "default_library", "nangate45",
    # netlist
    "Netlist", "NetlistBuilder", "NetlistError", "CONST0", "CONST1",
    # rtl
    "Adder", "ArrayMultiplier", "BoothMultiplier", "CarryLookaheadAdder",
    "CarrySelectAdder", "CarrySkipAdder", "FixedPointFIR",
    "FixedPointTransform8", "KoggeStoneAdder", "Multiplier",
    "MultiplyAccumulate", "RippleCarryAdder", "RTLComponent",
    "WallaceMultiplier", "dct_microarchitecture", "fir_microarchitecture",
    "idct_microarchitecture", "lowpass_taps",
    # synth
    "aging_aware_synthesize", "synthesize", "synthesize_netlist",
    "upsize_critical_paths",
    # sta
    "analyze", "critical_path", "critical_path_delay", "logic_depth",
    # sim
    "EventSimulator", "TimedSimulator", "bits_to_int", "compile_netlist",
    "evaluate", "evaluate_packed", "extract_stress", "int_to_bits",
    "simulate_activity",
    # approx
    "ComponentArithmetic", "ExactArithmetic", "GateLevelArithmetic",
    "TimedComponentModel", "TruncatedArithmetic", "truncate_lsbs",
    # power
    "PowerReport", "dynamic_power_uw", "power_report", "savings",
    # quality
    "ACCEPTABLE_PSNR_DB", "error_rate", "psnr_db",
    # media
    "IMAGE_NAMES", "TransformCodec", "make_image", "roundtrip_psnr",
    # core
    "ActualCaseSpec", "AgingApproximationLibrary", "ApproximationOutcome",
    "Block", "ComponentCharacterization", "Microarchitecture",
    "PrecisionSchedule", "apply_aging_approximations", "characterize",
    "compare_with_baseline", "plan_graceful_degradation",
    "remove_guardband",
]
