"""Time-resolved metric sampling over a :class:`MetricsRegistry`.

End-of-run snapshots answer "what happened"; a live service needs
"what is happening *now*". :class:`TimeSeriesRecorder` samples a
registry on a wall-clock interval into a bounded ring buffer, deriving
per-second **rates** from counter deltas and **p50/p95/p99** from
histogram state, so the server can expose `/v1/timeseries` (JSON),
`/metrics` (Prometheus text of the latest state) and the SLO evaluator
(:mod:`repro.obs.slo`) can compute windowed burn rates — all without
any external dependency.

Samples carry *cumulative* counter values and histogram buckets next to
the derived rates: cumulative state is what windowed consumers diff,
and it makes the final sample's quantiles bit-identical to calling
:meth:`Histogram.quantile` on the registry directly (the property
``benchmarks/perf_serve.py`` cross-checks).

The recorder also journals every sample to a JSONL file when
*jsonl_path* is set — one self-contained JSON object per line, suitable
for offline analysis and CI artifacts.
"""

import json
import threading
import time

from . import metrics as _metrics

#: Schema tag stamped into every flushed JSONL row.
TS_SCHEMA = "repro.obs.ts/1"

#: Quantiles recorded per histogram in every sample.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


def _quantile_key(q):
    """``0.95 -> "p95"``, ``0.5 -> "p50"``, ``0.999 -> "p99.9"``."""
    pct = q * 100.0
    if abs(pct - round(pct)) < 1e-9:
        return "p%d" % round(pct)
    return ("p%g" % pct)


class TimeSeriesRecorder:
    """Bounded ring buffer of periodic metric samples.

    :param registry: the :class:`MetricsRegistry` to sample; when None
        the ambient registry is resolved at every sample (so CLI runs
        inside :func:`repro.obs.metrics.scoped` just work).
    :param interval: target seconds between background samples.
    :param capacity: ring size; the oldest sample is dropped (and
        ``obs.ts.dropped`` incremented) once full.
    :param jsonl_path: when set, :meth:`flush` appends newly taken
        samples here, one JSON object per line.
    :param quantiles: quantiles derived per histogram in each sample.
    """

    def __init__(self, registry=None, interval=1.0, capacity=600,
                 jsonl_path=None, quantiles=DEFAULT_QUANTILES):
        if interval <= 0:
            raise ValueError("interval must be positive, got %r"
                             % (interval,))
        if capacity < 2:
            raise ValueError("capacity must be >= 2, got %r"
                             % (capacity,))
        self.interval = float(interval)
        self.capacity = int(capacity)
        self.jsonl_path = jsonl_path
        self.quantiles = tuple(quantiles)
        self._registry = registry
        self._samples = []
        self._unflushed = []
        self._dropped = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = None

    # -- sampling ----------------------------------------------------------
    def _target(self):
        reg = self._registry
        return reg if reg is not None else _metrics.registry()

    def sample_now(self):
        """Take one sample immediately; returns the sample dict."""
        reg = self._target()
        now = time.time()
        snapshot = reg.snapshot()
        sample = {
            "schema": TS_SCHEMA,
            "t": now,
            "counters": dict(snapshot.get("counters", {})),
            "gauges": dict(snapshot.get("gauges", {})),
            "rates": {},
            "histograms": {},
            "quantiles": {},
        }
        for name, state in snapshot.get("histograms", {}).items():
            sample["histograms"][name] = {
                "count": state["count"], "sum": state["sum"],
                "min": state.get("min"), "max": state.get("max"),
                "boundaries": list(state.get("boundaries", ())),
                "buckets": list(state.get("buckets", ())),
            }
            hist = reg.get(name)
            if hist is not None and hist.count:
                sample["quantiles"][name] = {
                    _quantile_key(q): hist.quantile(q)
                    for q in self.quantiles}
        with self._lock:
            prev = self._samples[-1] if self._samples else None
            if prev is not None:
                dt = now - prev["t"]
                if dt > 0:
                    for name, value in sample["counters"].items():
                        delta = value - prev["counters"].get(name, 0)
                        sample["rates"][name] = delta / dt
            self._samples.append(sample)
            self._unflushed.append(sample)
            if len(self._samples) > self.capacity:
                del self._samples[0]
                self._dropped += 1
                reg.counter(_metrics.OBS_TS_DROPPED).inc()
        reg.counter(_metrics.OBS_TS_SAMPLES).inc()
        return sample

    # -- ring access -------------------------------------------------------
    def samples(self, window_s=None):
        """Samples held in the ring, oldest first.

        With *window_s*, only samples whose timestamp falls within the
        trailing window (measured from the newest sample) are returned.
        """
        with self._lock:
            out = list(self._samples)
        if window_s is not None and out:
            horizon = out[-1]["t"] - float(window_s)
            out = [s for s in out if s["t"] >= horizon]
        return out

    def latest(self):
        """The most recent sample, or None before the first one."""
        with self._lock:
            return self._samples[-1] if self._samples else None

    def dropped(self):
        """Samples evicted from the ring so far."""
        with self._lock:
            return self._dropped

    def __len__(self):
        with self._lock:
            return len(self._samples)

    # -- JSONL journal -----------------------------------------------------
    def flush(self):
        """Append samples taken since the last flush to *jsonl_path*.

        No-op without a path. Returns the number of rows written.
        """
        if self.jsonl_path is None:
            return 0
        with self._lock:
            pending, self._unflushed = self._unflushed, []
        if not pending:
            return 0
        with open(self.jsonl_path, "a") as handle:
            for sample in pending:
                handle.write(json.dumps(sample))
                handle.write("\n")
        self._target().counter(_metrics.OBS_TS_FLUSHES).inc()
        return len(pending)

    # -- background thread -------------------------------------------------
    def start(self):
        """Start the background sampling thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-ts", daemon=True)
        self._thread.start()
        return self

    def _run(self):
        while not self._stop.wait(self.interval):
            try:
                self.sample_now()
                self.flush()
            except Exception:  # pragma: no cover - keep sampling alive
                pass

    def stop(self, final_sample=True):
        """Stop sampling; take one last sample and flush by default.

        The final sample makes shutdown state (drained request counts,
        last latency quantiles) visible to offline analysis even when
        the process exits between interval ticks.
        """
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=self.interval + 5.0)
        if final_sample:
            self.sample_now()
        self.flush()
        return self
