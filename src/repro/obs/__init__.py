"""repro.obs — dependency-free observability for the whole flow.

Three pillars, each usable on its own:

* :mod:`repro.obs.trace` — hierarchical spans with ambient
  (contextvars) propagation, process-pool re-parenting, and Chrome
  trace / JSONL export;
* :mod:`repro.obs.metrics` — named counters, gauges and histograms
  with an associative snapshot/merge wire format;
* :mod:`repro.obs.manifest` — one JSON run manifest per top-level run
  (config fingerprints, library identity, stage totals, metric
  snapshot, peak RSS);

plus the live-telemetry layer:

* :mod:`repro.obs.timeseries` — ring-buffer periodic sampling of a
  registry (rates, quantiles, JSONL journal);
* :mod:`repro.obs.profile` — stdlib wall-clock sampling profiler with
  collapsed-stack and Chrome flame-chart export;
* :mod:`repro.obs.slo` — declarative latency/error-budget objectives
  with windowed burn rates;
* :mod:`repro.obs.logs` — the ``repro.*`` :mod:`logging` hierarchy and
  per-request access-log lines.

The legacy per-stage collector, :mod:`repro.core.instrument`, is a thin
compatibility shim over this package.
"""

from . import logs, metrics, profile, slo, timeseries, trace
from . import manifest  # imported last: lazily reaches into repro.core
from .logs import configure as configure_logging, get_logger, log_access
from .manifest import (build_manifest, default_manifest_path,
                       peak_rss_bytes, write_manifest)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry, observe,
                      prometheus_text, registry, scoped)
from .profile import SamplingProfiler
from .slo import SLO, SLOEvaluator, parse_slo
from .timeseries import TimeSeriesRecorder
from .trace import (Span, Tracer, adopt, capture, current_span,
                    parse_traceparent, propagated, propagation_context,
                    span)

__all__ = [
    "logs", "metrics", "trace", "manifest", "timeseries", "profile",
    "slo",
    "configure_logging", "get_logger", "log_access",
    "build_manifest", "default_manifest_path", "peak_rss_bytes",
    "write_manifest",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "observe",
    "prometheus_text", "registry", "scoped",
    "SamplingProfiler", "SLO", "SLOEvaluator", "parse_slo",
    "TimeSeriesRecorder",
    "Span", "Tracer", "adopt", "capture", "current_span",
    "parse_traceparent", "propagated", "propagation_context", "span",
    "propagate",
]


def propagate(fn):
    """Bind *fn* to the caller's trace **and** metrics scope.

    The thread-pool analogue of the process-pool wire formats: submit
    ``propagate(fn)`` to a ``ThreadPoolExecutor`` and the worker thread
    records into the submitting context.
    """
    return trace.wrap(metrics.wrap(fn))
