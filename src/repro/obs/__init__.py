"""repro.obs — dependency-free observability for the whole flow.

Three pillars, each usable on its own:

* :mod:`repro.obs.trace` — hierarchical spans with ambient
  (contextvars) propagation, process-pool re-parenting, and Chrome
  trace / JSONL export;
* :mod:`repro.obs.metrics` — named counters, gauges and histograms
  with an associative snapshot/merge wire format;
* :mod:`repro.obs.manifest` — one JSON run manifest per top-level run
  (config fingerprints, library identity, stage totals, metric
  snapshot, peak RSS);

plus :mod:`repro.obs.logs`, the ``repro.*`` :mod:`logging` hierarchy.

The legacy per-stage collector, :mod:`repro.core.instrument`, is a thin
compatibility shim over this package.
"""

from . import logs, metrics, trace
from . import manifest  # imported last: lazily reaches into repro.core
from .logs import configure as configure_logging, get_logger
from .manifest import (build_manifest, default_manifest_path,
                       peak_rss_bytes, write_manifest)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry, observe,
                      registry, scoped)
from .trace import Span, Tracer, adopt, capture, current_span, span

__all__ = [
    "logs", "metrics", "trace", "manifest",
    "configure_logging", "get_logger",
    "build_manifest", "default_manifest_path", "peak_rss_bytes",
    "write_manifest",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "observe",
    "registry", "scoped",
    "Span", "Tracer", "adopt", "capture", "current_span", "span",
    "propagate",
]


def propagate(fn):
    """Bind *fn* to the caller's trace **and** metrics scope.

    The thread-pool analogue of the process-pool wire formats: submit
    ``propagate(fn)`` to a ``ThreadPoolExecutor`` and the worker thread
    records into the submitting context.
    """
    return trace.wrap(metrics.wrap(fn))
