"""Hierarchical tracing with ambient, contextvars-based propagation.

A :class:`Span` is one timed region with a name and free-form
attributes (component, precision, scenario, cache hit/miss ...); spans
nest into trees under a :class:`Tracer`. Propagation is *ambient*: the
active ``(tracer, span)`` pair lives in a :mod:`contextvars` context
variable, so deeply nested flows record into one trace without
threading a handle through every signature, and concurrent contexts
(threads via :func:`wrap`, asyncio tasks natively) never corrupt each
other's span stack.

Tracing is **off by default** — :func:`span` is a near-free no-op until
a :func:`capture` scope activates a tracer — so instrumented hot paths
cost nothing in normal library use.

Process-pool workers cannot share the parent's context. The supported
pattern (used by :mod:`repro.core.characterize`) is: the worker opens
its own :func:`capture`, runs, and ships ``tracer.to_dicts()`` home in
its result; the parent calls :func:`adopt` while its submitting span is
still open, re-parenting the worker trees under it. Wall-clock starts
(``time.time``) make worker timestamps comparable across processes.

Export formats:

* :meth:`Tracer.write_chrome` — Chrome trace format JSON, loadable in
  ``chrome://tracing`` and https://ui.perfetto.dev;
* :meth:`Tracer.write_jsonl` — one flat JSON object per span with
  ``depth``/``parent`` fields, greppable and stream-parseable.
"""

import contextvars
import json
import os
import threading
import time
from contextlib import contextmanager

#: Bump when the serialized span layout changes.
TRACE_SCHEMA = 1


class Span:
    """One timed, named, attributed region of a trace tree."""

    __slots__ = ("name", "attrs", "t0", "dur", "pid", "tid", "children")

    def __init__(self, name, attrs=None, t0=None, dur=0.0, pid=None,
                 tid=None, children=None):
        self.name = name
        self.attrs = dict(attrs or {})
        self.t0 = time.time() if t0 is None else t0
        self.dur = dur
        self.pid = os.getpid() if pid is None else pid
        self.tid = threading.get_ident() if tid is None else tid
        self.children = list(children or [])

    def to_dict(self):
        """JSON-serializable tree — the worker -> parent wire format."""
        return {"name": self.name, "attrs": self.attrs, "t0": self.t0,
                "dur": self.dur, "pid": self.pid, "tid": self.tid,
                "children": [c.to_dict() for c in self.children]}

    @classmethod
    def from_dict(cls, data):
        return cls(name=data["name"], attrs=data.get("attrs"),
                   t0=data["t0"], dur=data.get("dur", 0.0),
                   pid=data.get("pid"), tid=data.get("tid"),
                   children=[cls.from_dict(c)
                             for c in data.get("children", ())])

    def walk(self, depth=0, parent=None):
        """Yield ``(span, depth, parent)`` over this subtree, pre-order."""
        yield self, depth, parent
        for child in self.children:
            yield from child.walk(depth + 1, self)

    def __repr__(self):
        return "Span(%r, %.3fms, %d children)" % (
            self.name, self.dur * 1e3, len(self.children))


class Tracer:
    """Collects root spans; the unit that is captured, shipped, merged."""

    def __init__(self):
        self.roots = []

    def add_root(self, span):
        self.roots.append(span)

    def walk(self):
        """Yield ``(span, depth, parent)`` over every tree, pre-order."""
        for root in self.roots:
            yield from root.walk()

    def __len__(self):
        return sum(1 for __ in self.walk())

    # -- wire format -------------------------------------------------------
    def to_dicts(self):
        """Serialize every root tree (the process-pool wire format)."""
        return [root.to_dict() for root in self.roots]

    def adopt(self, trees, parent=None):
        """Attach serialized span *trees* under *parent* (or as roots)."""
        spans = [Span.from_dict(tree) for tree in trees]
        if parent is None:
            self.roots.extend(spans)
        else:
            parent.children.extend(spans)
        return spans

    def totals(self):
        """Aggregate ``{span name: {"calls": int, "seconds": float}}``."""
        out = {}
        for span_, __depth, __parent in self.walk():
            entry = out.setdefault(span_.name, {"calls": 0, "seconds": 0.0})
            entry["calls"] += 1
            entry["seconds"] += span_.dur
        return out

    # -- Chrome trace format -----------------------------------------------
    def chrome_events(self):
        """Flatten into Chrome-trace ``X`` (+ ``M`` metadata) events.

        Timestamps are microseconds relative to the earliest span, so
        they are non-negative and monotonically sorted; durations are
        clamped non-negative.
        """
        spans = [s for s, __d, __p in self.walk()]
        if not spans:
            return []
        base = min(s.t0 for s in spans)
        root_pid = os.getpid()
        events = []
        for pid in sorted({s.pid for s in spans}):
            label = ("repro" if pid == root_pid
                     else "repro worker %d" % pid)
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": {"name": label}})
        timed = []
        for s in spans:
            timed.append({
                "name": s.name, "cat": "repro", "ph": "X",
                "ts": max(0.0, (s.t0 - base) * 1e6),
                "dur": max(0.0, s.dur * 1e6),
                "pid": s.pid, "tid": s.tid, "args": dict(s.attrs),
            })
        timed.sort(key=lambda e: e["ts"])
        return events + timed

    def write_chrome(self, path):
        """Write a ``chrome://tracing`` / Perfetto-loadable JSON file."""
        payload = {"traceEvents": self.chrome_events(),
                   "displayTimeUnit": "ms",
                   "otherData": {"schema": TRACE_SCHEMA,
                                 "producer": "repro.obs"}}
        with open(path, "w") as handle:
            json.dump(payload, handle)
            handle.write("\n")

    # -- JSONL -------------------------------------------------------------
    def write_jsonl(self, path):
        """Write one flat JSON object per span (pre-order, depth-tagged)."""
        with open(path, "w") as handle:
            for span_, depth, parent in self.walk():
                handle.write(json.dumps({
                    "name": span_.name, "t0": span_.t0, "dur": span_.dur,
                    "pid": span_.pid, "tid": span_.tid, "depth": depth,
                    "parent": parent.name if parent else None,
                    "attrs": span_.attrs,
                }))
                handle.write("\n")

    def __repr__(self):
        return "Tracer(%d spans)" % len(self)


# ---------------------------------------------------------------------------
# ambient propagation
# ---------------------------------------------------------------------------

#: Active ``(tracer, innermost open span | None)``; None = tracing off.
_ACTIVE = contextvars.ContextVar("repro_obs_trace", default=None)


def active_tracer():
    """The capturing :class:`Tracer`, or None when tracing is off."""
    active = _ACTIVE.get()
    return active[0] if active is not None else None


def current_span():
    """The innermost open :class:`Span`, or None."""
    active = _ACTIVE.get()
    return active[1] if active is not None else None


@contextmanager
def capture(tracer=None):
    """Activate tracing into *tracer* (fresh when omitted) for a scope.

    Nesting is allowed: an inner ``capture`` hides the outer one (used
    by pool workers to build their own shippable tree even on the
    serial in-process path).
    """
    if tracer is None:
        tracer = Tracer()
    token = _ACTIVE.set((tracer, None))
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


@contextmanager
def span(name, **attrs):
    """Record one span under the current one; no-op when tracing is off.

    Yields the open :class:`Span` (or None when off) so callers can add
    attributes discovered mid-region (e.g. ``cache: hit``).
    """
    active = _ACTIVE.get()
    if active is None:
        yield None
        return
    tracer, parent = active
    s = Span(name, attrs)
    token = _ACTIVE.set((tracer, s))
    start = time.perf_counter()
    try:
        yield s
    finally:
        s.dur = time.perf_counter() - start
        _ACTIVE.reset(token)
        if parent is None:
            tracer.add_root(s)
        else:
            parent.children.append(s)


def adopt(trees):
    """Re-parent serialized worker span *trees* under the current span.

    No-op when tracing is off; attaches as roots when no span is open.
    Returns the adopted :class:`Span` objects (empty list when off).
    """
    active = _ACTIVE.get()
    if active is None or not trees:
        return []
    tracer, parent = active
    return tracer.adopt(trees, parent=parent)


def wrap(fn):
    """Bind *fn* to the caller's tracing context, for worker threads.

    ``contextvars`` do not propagate into threads started later (e.g. a
    ``ThreadPoolExecutor`` created before :func:`capture`); submitting
    ``wrap(fn)`` instead of ``fn`` makes the thread record into the
    submitter's trace. The wrapper is re-entrant: safe to run
    concurrently from many threads.
    """
    active = _ACTIVE.get()

    def runner(*args, **kwargs):
        token = _ACTIVE.set(active)
        try:
            return fn(*args, **kwargs)
        finally:
            _ACTIVE.reset(token)

    return runner
