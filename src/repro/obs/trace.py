"""Hierarchical tracing with ambient, contextvars-based propagation.

A :class:`Span` is one timed region with a name and free-form
attributes (component, precision, scenario, cache hit/miss ...); spans
nest into trees under a :class:`Tracer`. Propagation is *ambient*: the
active ``(tracer, span)`` pair lives in a :mod:`contextvars` context
variable, so deeply nested flows record into one trace without
threading a handle through every signature, and concurrent contexts
(threads via :func:`wrap`, asyncio tasks natively) never corrupt each
other's span stack.

Tracing is **off by default** — :func:`span` is a near-free no-op until
a :func:`capture` scope activates a tracer — so instrumented hot paths
cost nothing in normal library use.

Process-pool workers cannot share the parent's context. The supported
pattern (used by :mod:`repro.core.characterize`) is: the worker opens
its own :func:`capture`, runs, and ships ``tracer.to_dicts()`` home in
its result; the parent calls :func:`adopt` while its submitting span is
still open, re-parenting the worker trees under it. Wall-clock starts
(``time.time``) make worker timestamps comparable across processes.

Beyond process pools, spans carry **distributed trace identities**:
every span has a ``trace_id`` (shared by the whole request tree, across
processes and hosts) and a ``span_id``, plus a ``parent_id`` link. A
remote hop — an HTTP request to :mod:`repro.serve`, a task dict shipped
to a pool worker — forwards ``(trace_id, span_id)`` as a **propagation
context** (:func:`propagation_context`, the ``X-Repro-Trace`` header's
payload); the receiving side re-enters it with :func:`propagated`, so
its root spans become children of the remote caller and one
client-issued query yields a single connected span tree stitched from
every process that touched it.

Export formats:

* :meth:`Tracer.write_chrome` — Chrome trace format JSON, loadable in
  ``chrome://tracing`` and https://ui.perfetto.dev;
* :meth:`Tracer.write_jsonl` — one flat JSON object per span with
  ``depth``/``parent`` fields, greppable and stream-parseable.
"""

import contextvars
import json
import os
import threading
import time
from contextlib import contextmanager

#: Bump when the serialized span layout changes. 2 added the
#: ``trace_id``/``span_id``/``parent_id`` identity fields (schema-1
#: trees still load: identities are regenerated on adoption).
TRACE_SCHEMA = 2


def new_id():
    """A fresh 16-hex-digit trace/span identifier."""
    return os.urandom(8).hex()


class Span:
    """One timed, named, attributed region of a trace tree."""

    __slots__ = ("name", "attrs", "t0", "dur", "pid", "tid", "children",
                 "trace_id", "span_id", "parent_id")

    def __init__(self, name, attrs=None, t0=None, dur=0.0, pid=None,
                 tid=None, children=None, trace_id=None, span_id=None,
                 parent_id=None):
        self.name = name
        self.attrs = dict(attrs or {})
        self.t0 = time.time() if t0 is None else t0
        self.dur = dur
        self.pid = os.getpid() if pid is None else pid
        self.tid = threading.get_ident() if tid is None else tid
        self.children = list(children or [])
        self.span_id = span_id if span_id is not None else new_id()
        self.trace_id = trace_id if trace_id is not None else self.span_id
        self.parent_id = parent_id

    def to_dict(self):
        """JSON-serializable tree — the worker -> parent wire format."""
        return {"name": self.name, "attrs": self.attrs, "t0": self.t0,
                "dur": self.dur, "pid": self.pid, "tid": self.tid,
                "trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id,
                "children": [c.to_dict() for c in self.children]}

    @classmethod
    def from_dict(cls, data):
        return cls(name=data["name"], attrs=data.get("attrs"),
                   t0=data["t0"], dur=data.get("dur", 0.0),
                   pid=data.get("pid"), tid=data.get("tid"),
                   trace_id=data.get("trace_id"),
                   span_id=data.get("span_id"),
                   parent_id=data.get("parent_id"),
                   children=[cls.from_dict(c)
                             for c in data.get("children", ())])

    def link_children(self):
        """Stamp this subtree's parent/trace links from its structure.

        Children lacking an explicit identity inherit this span's
        ``trace_id`` and point their ``parent_id`` here — used when
        adopting schema-1 trees that predate span identities.
        """
        for child in self.children:
            if child.parent_id is None:
                child.parent_id = self.span_id
            if child.trace_id == child.span_id:
                child.trace_id = self.trace_id
            child.link_children()

    def walk(self, depth=0, parent=None):
        """Yield ``(span, depth, parent)`` over this subtree, pre-order."""
        yield self, depth, parent
        for child in self.children:
            yield from child.walk(depth + 1, self)

    def __repr__(self):
        return "Span(%r, %.3fms, %d children)" % (
            self.name, self.dur * 1e3, len(self.children))


class Tracer:
    """Collects root spans; the unit that is captured, shipped, merged."""

    def __init__(self):
        self.roots = []

    def add_root(self, span):
        self.roots.append(span)

    def walk(self):
        """Yield ``(span, depth, parent)`` over every tree, pre-order."""
        for root in self.roots:
            yield from root.walk()

    def __len__(self):
        return sum(1 for __ in self.walk())

    # -- wire format -------------------------------------------------------
    def to_dicts(self):
        """Serialize every root tree (the process-pool wire format)."""
        return [root.to_dict() for root in self.roots]

    def adopt(self, trees, parent=None):
        """Attach serialized span *trees* under *parent* (or as roots).

        Adopted roots that were not produced under a propagated context
        (no ``parent_id`` of their own) are stitched into *parent*'s
        trace: they inherit its ``trace_id`` and point their
        ``parent_id`` at it. Roots that already carry a remote identity
        (the worker ran inside :func:`propagated`) keep it — their links
        already name the right parent.
        """
        spans = [Span.from_dict(tree) for tree in trees]
        for span_ in spans:
            if parent is not None and span_.parent_id is None:
                span_.parent_id = parent.span_id
                span_.trace_id = parent.trace_id
            span_.link_children()
        if parent is None:
            self.roots.extend(spans)
        else:
            parent.children.extend(spans)
        return spans

    def totals(self):
        """Aggregate ``{span name: {"calls": int, "seconds": float}}``."""
        out = {}
        for span_, __depth, __parent in self.walk():
            entry = out.setdefault(span_.name, {"calls": 0, "seconds": 0.0})
            entry["calls"] += 1
            entry["seconds"] += span_.dur
        return out

    # -- Chrome trace format -----------------------------------------------
    def chrome_events(self):
        """Flatten into Chrome-trace ``X`` (+ ``M`` metadata) events.

        Timestamps are microseconds relative to the earliest span, so
        they are non-negative and monotonically sorted; durations are
        clamped non-negative.
        """
        spans = [s for s, __d, __p in self.walk()]
        if not spans:
            return []
        base = min(s.t0 for s in spans)
        root_pid = os.getpid()
        events = []
        for pid in sorted({s.pid for s in spans}):
            label = ("repro" if pid == root_pid
                     else "repro worker %d" % pid)
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": {"name": label}})
        timed = []
        for s in spans:
            args = dict(s.attrs)
            args["trace_id"] = s.trace_id
            args["span_id"] = s.span_id
            if s.parent_id is not None:
                args["parent_id"] = s.parent_id
            timed.append({
                "name": s.name, "cat": "repro", "ph": "X",
                "ts": max(0.0, (s.t0 - base) * 1e6),
                "dur": max(0.0, s.dur * 1e6),
                "pid": s.pid, "tid": s.tid, "args": args,
            })
        timed.sort(key=lambda e: e["ts"])
        return events + timed

    def write_chrome(self, path):
        """Write a ``chrome://tracing`` / Perfetto-loadable JSON file."""
        payload = {"traceEvents": self.chrome_events(),
                   "displayTimeUnit": "ms",
                   "otherData": {"schema": TRACE_SCHEMA,
                                 "producer": "repro.obs"}}
        with open(path, "w") as handle:
            json.dump(payload, handle)
            handle.write("\n")

    # -- JSONL -------------------------------------------------------------
    def write_jsonl(self, path):
        """Write one flat JSON object per span (pre-order, depth-tagged)."""
        with open(path, "w") as handle:
            for span_, depth, parent in self.walk():
                handle.write(json.dumps({
                    "name": span_.name, "t0": span_.t0, "dur": span_.dur,
                    "pid": span_.pid, "tid": span_.tid, "depth": depth,
                    "parent": parent.name if parent else None,
                    "trace_id": span_.trace_id, "span_id": span_.span_id,
                    "parent_id": span_.parent_id,
                    "attrs": span_.attrs,
                }))
                handle.write("\n")

    def __repr__(self):
        return "Tracer(%d spans)" % len(self)


# ---------------------------------------------------------------------------
# ambient propagation
# ---------------------------------------------------------------------------

#: Active ``(tracer, innermost open span | None)``; None = tracing off.
_ACTIVE = contextvars.ContextVar("repro_obs_trace", default=None)

#: Remote propagation context: ``(trace_id, parent_span_id)`` carried in
#: from another process/host; new root spans attach to it.
_REMOTE = contextvars.ContextVar("repro_obs_trace_remote", default=None)

#: HTTP header carrying a propagation context between processes.
TRACE_HEADER = "X-Repro-Trace"


def propagation_context():
    """The current span's identity for a remote hop, or None.

    Returns ``{"trace_id", "span_id"}`` of the innermost open span —
    the payload a client puts in the ``X-Repro-Trace`` header, or a
    parent stamps into a worker's task dict (``task["trace"]``) —
    falling back to the inbound remote context when no span is open.
    """
    active = _ACTIVE.get()
    if active is not None and active[1] is not None:
        span_ = active[1]
        return {"trace_id": span_.trace_id, "span_id": span_.span_id}
    remote = _REMOTE.get()
    if remote is not None:
        return {"trace_id": remote[0], "span_id": remote[1]}
    return None


@contextmanager
def propagated(context):
    """Adopt a remote propagation *context* for a scope.

    *context* is a :func:`propagation_context` dict (or None / malformed
    — both no-ops, so receivers can pass untrusted input straight in).
    Root spans opened inside the scope join the remote caller's trace:
    same ``trace_id``, ``parent_id`` pointing at the caller's span.
    """
    trace_id = parent_id = None
    if isinstance(context, dict):
        trace_id = context.get("trace_id")
        parent_id = context.get("span_id")
    if not (isinstance(trace_id, str) and isinstance(parent_id, str)):
        yield
        return
    token = _REMOTE.set((trace_id, parent_id))
    try:
        yield
    finally:
        _REMOTE.reset(token)


def format_traceparent(context=None):
    """``X-Repro-Trace`` header value of *context* (default: ambient).

    Returns ``"<trace_id>-<span_id>"`` or None when there is nothing to
    propagate.
    """
    if context is None:
        context = propagation_context()
    if not context:
        return None
    return "%s-%s" % (context["trace_id"], context["span_id"])


def parse_traceparent(value):
    """Parse an ``X-Repro-Trace`` header into a propagation context.

    Returns ``{"trace_id", "span_id"}`` or None for missing/malformed
    values (propagation is best-effort; bad headers never fail a
    request).
    """
    if not value or not isinstance(value, str):
        return None
    trace_id, sep, span_id = value.strip().partition("-")
    if not sep or not trace_id or not span_id:
        return None
    if not all(c in "0123456789abcdef" for c in trace_id + span_id):
        return None
    return {"trace_id": trace_id, "span_id": span_id}


def active_tracer():
    """The capturing :class:`Tracer`, or None when tracing is off."""
    active = _ACTIVE.get()
    return active[0] if active is not None else None


def current_span():
    """The innermost open :class:`Span`, or None."""
    active = _ACTIVE.get()
    return active[1] if active is not None else None


@contextmanager
def capture(tracer=None):
    """Activate tracing into *tracer* (fresh when omitted) for a scope.

    Nesting is allowed: an inner ``capture`` hides the outer one (used
    by pool workers to build their own shippable tree even on the
    serial in-process path).
    """
    if tracer is None:
        tracer = Tracer()
    token = _ACTIVE.set((tracer, None))
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


@contextmanager
def span(name, **attrs):
    """Record one span under the current one; no-op when tracing is off.

    Yields the open :class:`Span` (or None when off) so callers can add
    attributes discovered mid-region (e.g. ``cache: hit``).
    """
    active = _ACTIVE.get()
    if active is None:
        yield None
        return
    tracer, parent = active
    s = Span(name, attrs)
    if parent is not None:
        s.trace_id = parent.trace_id
        s.parent_id = parent.span_id
    else:
        remote = _REMOTE.get()
        if remote is not None:
            s.trace_id, s.parent_id = remote
    token = _ACTIVE.set((tracer, s))
    start = time.perf_counter()
    try:
        yield s
    finally:
        s.dur = time.perf_counter() - start
        _ACTIVE.reset(token)
        if parent is None:
            tracer.add_root(s)
        else:
            parent.children.append(s)


def adopt(trees):
    """Re-parent serialized worker span *trees* under the current span.

    No-op when tracing is off; attaches as roots when no span is open.
    Returns the adopted :class:`Span` objects (empty list when off).
    """
    active = _ACTIVE.get()
    if active is None or not trees:
        return []
    tracer, parent = active
    return tracer.adopt(trees, parent=parent)


def wrap(fn):
    """Bind *fn* to the caller's tracing context, for worker threads.

    ``contextvars`` do not propagate into threads started later (e.g. a
    ``ThreadPoolExecutor`` created before :func:`capture`); submitting
    ``wrap(fn)`` instead of ``fn`` makes the thread record into the
    submitter's trace. The wrapper is re-entrant: safe to run
    concurrently from many threads.
    """
    active = _ACTIVE.get()

    def runner(*args, **kwargs):
        token = _ACTIVE.set(active)
        try:
            return fn(*args, **kwargs)
        finally:
            _ACTIVE.reset(token)

    return runner
