"""Named counters, gauges and histograms with a mergeable wire format.

The registry answers "how effective was the cache, how fast was the
simulator, what did synthesis produce" as *numbers with stable names*
rather than log lines. Three metric kinds:

* :class:`Counter` — monotonically increasing event count
  (``cache.hits``, ``sim.vectors``);
* :class:`Gauge` — last-observed value (``sim.vectors_per_sec``);
* :class:`Histogram` — distribution with fixed bucket boundaries plus
  count/sum/min/max (``synth.delay_ps``, ``synth.area_um2``).

Every registry serializes to a plain-JSON :meth:`MetricsRegistry.
snapshot` that :meth:`MetricsRegistry.merge` folds back in — the wire
format process-pool workers use to report home. Histogram merging is
associative (bucket-wise sums), so worker snapshots can be folded in
any grouping.

Like tracing, the active registry is ambient (:func:`registry`); unlike
tracing there is always a process-wide default registry, because metric
state is bounded. Scope a fresh one with :func:`scoped` to isolate a
run (the CLI does this per invocation).
"""

import bisect
import contextvars
import threading
from contextlib import contextmanager

#: Bump when the snapshot layout changes.
METRICS_SCHEMA = 1

#: Default histogram boundaries: one bucket per decade, 1e-6 .. 1e6.
DEFAULT_BOUNDARIES = tuple(10.0 ** e for e in range(-6, 7))

# Canonical metric names (the cache keeps its legacy ``cache_*`` counter
# names as aliases — see repro.core.instrument.COUNTER_ALIASES).
CACHE_HITS = "cache.hits"
CACHE_MISSES = "cache.misses"
CACHE_STORES = "cache.stores"
CACHE_ERRORS = "cache.corrupt_recoveries"
CACHE_BYTES_READ = "cache.bytes_read"
CACHE_BYTES_WRITTEN = "cache.bytes_written"
CACHE_MEM_HITS = "cache.mem_hits"
CACHE_MEM_EVICTIONS = "cache.mem_evictions"
NETLIST_MEMO_HITS = "cache.netlist_memo_hits"
SERVE_REQUESTS = "serve.requests"
SERVE_ERRORS = "serve.errors"
SERVE_DEDUP_HITS = "serve.dedup_hits"
SERVE_TIER_MEM = "serve.tier_hits_mem"
SERVE_TIER_DISK = "serve.tier_hits_disk"
SERVE_COMPUTES = "serve.computes"
SERVE_QUEUE_DEPTH = "serve.queue_depth"
SERVE_LATENCY_MS = "serve.latency_ms"
SIM_RUNS = "sim.runs"
SIM_VECTORS = "sim.vectors"
SIM_VECTORS_PER_SEC = "sim.vectors_per_sec"
SYNTH_RUNS = "synth.runs"
SYNTH_DELAY_PS = "synth.delay_ps"
SYNTH_AREA_UM2 = "synth.area_um2"
SYNTH_CONSTPROP_REWRITES = "synth.constprop.rewrites"
SYNTH_DEAD_GATES = "synth.dead_gates"
SYNTH_SIZING_ROUNDS = "synth.sizing.rounds"
SYNTH_SIZING_UPSIZES = "synth.sizing.upsizes"
SYNTH_SWEEP_DERIVES = "synth.sweep.derives"
SYNTH_SWEEP_CONE_GATES = "synth.sweep.cone_gates"
SYNTH_SWEEP_BASE_MEMO_HITS = "synth.sweep.base_memo_hits"
SYNTH_SWEEP_FALLBACKS = "synth.sweep.fallbacks"
STA_RUNS = "sta.runs"
STA_BATCH_RUNS = "sta.batch.runs"
STA_BATCH_CORNERS = "sta.batch.corners"
STA_INCREMENTAL_RUNS = "sta.incremental.runs"
STA_INCREMENTAL_CONE_FRACTION = "sta.incremental.cone_fraction"
STA_CONE_PLAN_HITS = "sta.cone_plan_hits"
TIMING_MEMO_HITS = "cache.timing_memo_hits"
STRESS_EXTRACTIONS = "stress.extractions"
OBS_TS_SAMPLES = "obs.ts.samples"
OBS_TS_DROPPED = "obs.ts.dropped"
OBS_TS_FLUSHES = "obs.ts.flushes"
OBS_PROFILE_SAMPLES = "obs.profile.samples"
SERVE_SLO_BURN_RATE = "serve.slo.burn_rate"
SERVE_SLO_BREACHES = "serve.slo.breaches"
SERVE_SLO_WORST = "serve.slo.worst_burn_rate"
INJECT_CAMPAIGNS = "inject.campaigns"
INJECT_POINTS = "inject.points"
INJECT_VECTORS = "inject.vectors"
INJECT_FAULTS = "inject.faults"
INJECT_FAULTED_VECTORS = "inject.faulted_vectors"
INJECT_VECTORS_PER_SEC = "inject.vectors_per_sec"
INJECT_VIOLATING_FRACTION = "inject.violating_gate_fraction"
MC_RUNS = "mc.runs"
MC_POINTS = "mc.points"
MC_SAMPLES = "mc.samples"
MC_BLOCKS = "mc.blocks"
MC_SAMPLES_PER_SEC = "mc.samples_per_sec"
MC_YIELD_FRACTION = "mc.yield_fraction"
MC_SURROGATE_FITS = "mc.surrogate.fits"
MC_SURROGATE_SKIPPED = "mc.surrogate.skipped_points"

#: Bucket edges for fraction-valued histograms (e.g. cone fractions in
#: [0, 1]); the decade-wide defaults would lump everything together.
FRACTION_BOUNDARIES = tuple(i / 10.0 for i in range(1, 11))

#: Bucket edges for request-latency histograms in milliseconds:
#: quarter-decade steps from 10 us to ~56 s, tight enough that
#: interpolated p50/p95/p99 are meaningful.
LATENCY_BOUNDARIES_MS = tuple(round(10.0 ** (e / 4.0), 6)
                              for e in range(-8, 19))


class Counter:
    """Monotonic event counter."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0

    def inc(self, n=1):
        self.value += n

    def to_snapshot(self):
        return self.value

    def merge_snapshot(self, other):
        self.value += other


class Gauge:
    """Last-write-wins sampled value."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self):
        self.value = 0.0

    def set(self, value):
        self.value = float(value)

    def to_snapshot(self):
        return self.value

    def merge_snapshot(self, other):
        self.value = float(other)


class Histogram:
    """Fixed-boundary histogram with count/sum/min/max.

    *boundaries* are the upper bucket edges; values above the last edge
    land in a final overflow bucket, so there are ``len(boundaries)+1``
    buckets. Merging requires identical boundaries and is associative.
    """

    __slots__ = ("boundaries", "buckets", "count", "sum", "min", "max")
    kind = "histogram"

    def __init__(self, boundaries=DEFAULT_BOUNDARIES):
        self.boundaries = tuple(float(b) for b in boundaries)
        if list(self.boundaries) != sorted(set(self.boundaries)):
            raise ValueError("histogram boundaries must be strictly "
                             "increasing, got %r" % (boundaries,))
        self.buckets = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        value = float(value)
        self.buckets[bisect.bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def add_aggregate(self, count, total):
        """Fold *count* pre-aggregated observations summing to *total*.

        Used when only aggregate data survives (legacy instrumentation
        summaries); the bucket credit goes to the mean value.
        """
        if count <= 0:
            return
        mean = total / count
        self.buckets[bisect.bisect_left(self.boundaries, mean)] += count
        self.count += count
        self.sum += total
        self.min = mean if self.min is None else min(self.min, mean)
        self.max = mean if self.max is None else max(self.max, mean)

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def _bucket_edges(self, index):
        """Effective ``(lo, hi)`` interpolation edges of bucket *index*.

        Observed ``min``/``max`` clamp the open-ended first and overflow
        buckets when known; histograms reconstructed from bucket-only
        wire data (windowed deltas, partial merges) have ``min``/``max``
        of None and fall back to the boundary edges themselves.
        """
        lo = self.boundaries[index - 1] if index > 0 else (
            self.min if self.min is not None else
            min(self.boundaries[0], 0.0))
        hi = (self.boundaries[index] if index < len(self.boundaries)
              else (self.max if self.max is not None
                    else self.boundaries[-1]))
        if self.min is not None:
            lo = max(lo, self.min)
        if self.max is not None:
            hi = min(hi, self.max)
        return lo, max(hi, lo)

    def quantile(self, q):
        """Estimate the *q*-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation inside the containing bucket, with the
        observed ``min``/``max`` (when known) clamping the open-ended
        first and last buckets — exact for q=0/q=1, approximate
        elsewhere (bucket-width resolution). Histograms merged from
        bucket-only wire data (no min/max) interpolate against the
        boundary edges instead. Returns None for an empty histogram.
        """
        if self.count == 0:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1], got %r" % (q,))
        occupied = [i for i, n in enumerate(self.buckets) if n]
        if q == 0.0:
            return (self.min if self.min is not None
                    else self._bucket_edges(occupied[0])[0])
        if q == 1.0:
            return (self.max if self.max is not None
                    else self._bucket_edges(occupied[-1])[1])
        rank = q * self.count
        cumulative = 0
        for index in occupied:
            n = self.buckets[index]
            if cumulative + n >= rank:
                lo, hi = self._bucket_edges(index)
                frac = (rank - cumulative) / n
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
            cumulative += n
        return self._bucket_edges(occupied[-1])[1]

    def to_snapshot(self):
        return {"count": self.count, "sum": self.sum, "min": self.min,
                "max": self.max, "boundaries": list(self.boundaries),
                "buckets": list(self.buckets)}

    def merge_snapshot(self, other):
        if list(other.get("boundaries", ())) != list(self.boundaries):
            raise ValueError(
                "cannot merge histograms with different boundaries: "
                "%r vs %r" % (other.get("boundaries"), self.boundaries))
        self.count += other["count"]
        self.sum += other["sum"]
        for index, n in enumerate(other["buckets"]):
            self.buckets[index] += n
        for name, fold in (("min", min), ("max", max)):
            theirs = other.get(name)
            if theirs is not None:
                ours = getattr(self, name)
                setattr(self, name,
                        theirs if ours is None else fold(ours, theirs))


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _prom_name(name):
    """Sanitize a dotted metric name into a Prometheus identifier."""
    out = []
    for ch in name:
        out.append(ch if (ch.isascii() and ch.isalnum()) or ch == "_"
                   else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return "repro_" + text


def _prom_number(value):
    """Render a float the way Prometheus text format expects."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(snapshot):
    """Render a :meth:`MetricsRegistry.snapshot` in Prometheus text
    exposition format (version 0.0.4, the ``/metrics`` scrape format).

    Counters gain the conventional ``_total`` suffix; histograms emit
    cumulative ``le``-labelled buckets (including ``+Inf``) plus
    ``_sum``/``_count`` series. Dots become underscores and every name
    is prefixed ``repro_`` so scrapes from mixed fleets don't collide.
    """
    lines = []
    for name in sorted(snapshot.get("counters", {})):
        prom = _prom_name(name) + "_total"
        lines.append("# TYPE %s counter" % prom)
        lines.append("%s %s" % (
            prom, _prom_number(snapshot["counters"][name])))
    for name in sorted(snapshot.get("gauges", {})):
        prom = _prom_name(name)
        lines.append("# TYPE %s gauge" % prom)
        lines.append("%s %s" % (
            prom, _prom_number(snapshot["gauges"][name])))
    for name in sorted(snapshot.get("histograms", {})):
        state = snapshot["histograms"][name]
        prom = _prom_name(name)
        lines.append("# TYPE %s histogram" % prom)
        cumulative = 0
        edges = list(state.get("boundaries", ())) + [float("inf")]
        for edge, count in zip(edges, state.get("buckets", ())):
            cumulative += count
            lines.append('%s_bucket{le="%s"} %d' % (
                prom, _prom_number(edge), cumulative))
        lines.append("%s_sum %s" % (prom, _prom_number(state["sum"])))
        lines.append("%s_count %d" % (prom, state["count"]))
    return "\n".join(lines) + "\n" if lines else ""


class MetricsRegistry:
    """Get-or-create store of named metrics with snapshot/merge."""

    def __init__(self):
        self._metrics = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name, cls, *args):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(*args)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError("metric %r already registered as %s"
                                % (name, metric.kind))
            return metric

    def counter(self, name):
        return self._get_or_create(name, Counter)

    def gauge(self, name):
        return self._get_or_create(name, Gauge)

    def histogram(self, name, boundaries=DEFAULT_BOUNDARIES):
        return self._get_or_create(name, Histogram, boundaries)

    def get(self, name):
        """The metric registered under *name*, or None."""
        return self._metrics.get(name)

    def names(self):
        return sorted(self._metrics)

    def value(self, name, default=0):
        """Counter/gauge value under *name* (``default`` when absent)."""
        metric = self._metrics.get(name)
        return default if metric is None else metric.value

    # -- wire format -------------------------------------------------------
    def snapshot(self):
        """Plain-JSON state: ``{"schema", "counters", "gauges",
        "histograms"}`` — the worker -> parent / on-disk wire format."""
        out = {"schema": METRICS_SCHEMA, "counters": {}, "gauges": {},
               "histograms": {}}
        with self._lock:
            for name, metric in self._metrics.items():
                out[metric.kind + "s"][name] = metric.to_snapshot()
        return out

    def merge(self, snapshot):
        """Fold a :meth:`snapshot` dict into this registry."""
        for kind, cls in _KINDS.items():
            for name, state in snapshot.get(kind + "s", {}).items():
                if cls is Histogram:
                    metric = self.histogram(
                        name, state.get("boundaries", DEFAULT_BOUNDARIES))
                else:
                    metric = self._get_or_create(name, cls)
                metric.merge_snapshot(state)
        return self

    def reset(self):
        with self._lock:
            self._metrics.clear()

    def __repr__(self):
        return "MetricsRegistry(%d metrics)" % len(self._metrics)


# ---------------------------------------------------------------------------
# ambient registry
# ---------------------------------------------------------------------------

#: Process-wide fallback registry (metric state is bounded, so always-on).
_DEFAULT = MetricsRegistry()

_ACTIVE = contextvars.ContextVar("repro_obs_metrics", default=None)


def registry():
    """The ambient registry: the innermost :func:`scoped` one, else the
    process-wide default."""
    active = _ACTIVE.get()
    return active if active is not None else _DEFAULT


@contextmanager
def scoped(reg=None):
    """Route ambient metric emission into *reg* (fresh when omitted)."""
    if reg is None:
        reg = MetricsRegistry()
    token = _ACTIVE.set(reg)
    try:
        yield reg
    finally:
        _ACTIVE.reset(token)


def wrap(fn):
    """Bind *fn* to the caller's metrics scope, for worker threads."""
    active = _ACTIVE.get()

    def runner(*args, **kwargs):
        token = _ACTIVE.set(active)
        try:
            return fn(*args, **kwargs)
        finally:
            _ACTIVE.reset(token)

    return runner


# -- one-line emission helpers (all target the ambient registry) -----------

def inc(name, n=1):
    registry().counter(name).inc(n)


def set_gauge(name, value):
    registry().gauge(name).set(value)


def observe(name, value, boundaries=DEFAULT_BOUNDARIES):
    registry().histogram(name, boundaries).observe(value)
