"""The ``repro.*`` :mod:`logging` hierarchy.

Every module logs under a child of the single ``repro`` root logger
(``repro.core.cache``, ``repro.synth`` ...), so one :func:`configure`
call — or the CLI's ``--log-level`` flag — controls the whole library,
and embedding applications can attach their own handlers to any
sub-tree instead. The library itself never configures handlers at
import time (standard library-logging etiquette): without
:func:`configure`, records propagate to whatever the application set
up, or vanish into the default ``lastResort`` handler.
"""

import logging

#: Root logger name of the whole library.
ROOT = "repro"

#: Accepted ``--log-level`` values, least to most verbose.
LEVELS = ("error", "warning", "info", "debug")

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

#: Marker attribute identifying the handler :func:`configure` installs.
_HANDLER_FLAG = "_repro_obs_handler"


def get_logger(name=None):
    """Logger under the ``repro`` hierarchy.

    ``get_logger()`` is the root; ``get_logger("core.cache")`` is
    ``repro.core.cache``. Dotted names are relative to the root — a
    fully qualified ``repro.x`` name is accepted as-is.
    """
    if not name:
        return logging.getLogger(ROOT)
    if name == ROOT or name.startswith(ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger("%s.%s" % (ROOT, name))


#: Logger name for per-request server access lines.
ACCESS = "serve.access"


def access_logger():
    """The ``repro.serve.access`` logger (one line per request)."""
    return get_logger(ACCESS)


def format_access(**fields):
    """Render one access-log line as stable ``key=value`` pairs.

    Core request fields come first in a fixed order (trace id, client,
    method/path/status, latency, tier, dedup) so lines stay greppable;
    any extra fields follow sorted. None values are dropped; values
    with spaces are quoted.
    """
    order = ("trace", "client", "method", "path", "status",
             "latency_ms", "tier", "dedup")
    parts = []
    seen = set()
    for key in order:
        if key in fields and fields[key] is not None:
            parts.append(_access_pair(key, fields[key]))
            seen.add(key)
    for key in sorted(fields):
        if key not in seen and fields[key] is not None:
            parts.append(_access_pair(key, fields[key]))
    return " ".join(parts)


def _access_pair(key, value):
    if isinstance(value, float):
        value = "%.3f" % value
    elif isinstance(value, bool):
        value = "yes" if value else "no"
    else:
        value = str(value)
    if " " in value or '"' in value:
        value = '"%s"' % value.replace('"', "'")
    return "%s=%s" % (key, value)


def log_access(**fields):
    """Emit one per-request access line at INFO on the access logger."""
    access_logger().info("%s", format_access(**fields))


def configure(level="warning", stream=None):
    """Set the ``repro`` root level and attach one stderr handler.

    Idempotent: repeated calls re-level the existing handler instead of
    stacking duplicates. Returns the root logger.
    """
    if level is None:
        level = "warning"
    if isinstance(level, str):
        if level.lower() not in LEVELS:
            raise ValueError("log level must be one of %r, got %r"
                             % (LEVELS, level))
        level = getattr(logging, level.upper())
    root = logging.getLogger(ROOT)
    root.setLevel(level)
    for handler in root.handlers:
        if getattr(handler, _HANDLER_FLAG, False):
            handler.setLevel(level)
            break
    else:
        handler = logging.StreamHandler(stream)
        handler.setLevel(level)
        handler.setFormatter(logging.Formatter(_FORMAT))
        setattr(handler, _HANDLER_FLAG, True)
        root.addHandler(handler)
    return root
