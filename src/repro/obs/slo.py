"""Declarative SLOs evaluated from the metric time series.

An :class:`SLO` states an objective over a trailing window — "99% of
requests complete under 250 ms" (``latency:p99:250``) or "99.9% of
requests succeed" (``errors:99.9``). The :class:`SLOEvaluator` diffs
the oldest and newest :class:`~repro.obs.timeseries.TimeSeriesRecorder`
samples inside the window (counter deltas, histogram bucket deltas — a
window-local view no cumulative snapshot can give) and reports a **burn
rate** per objective:

    burn = bad_fraction / allowed_bad_fraction

1.0 means the error budget is being spent exactly as fast as the
objective allows; above 1.0 the objective is being breached — the
overload signal ``repro.serve`` surfaces in ``/v1/stats`` and the
``serve.slo.*`` gauges.

Windowed bucket deltas have no meaningful min/max, so observed
quantiles are computed through :meth:`Histogram.quantile`'s
boundary-edge fallback path.
"""

from . import metrics as _metrics

#: Default trailing evaluation window, seconds.
DEFAULT_WINDOW_S = 60.0

#: Burn-rate ceiling: reported for a zero-width budget being breached,
#: and capping ordinary ratios. Large finite rather than ``inf`` so
#: results stay strictly-JSON-serializable end to end.
INFINITE_BURN = 1e9


class SLO:
    """One parsed objective.

    :param kind: ``"latency"`` or ``"errors"``.
    :param name: stable identifier used in gauge names and reports.
    :param good_target: required fraction of good events (0..1).
    :param threshold_ms: latency cut-off (latency kind only).
    :param window_s: trailing evaluation window.
    :param histogram: latency histogram metric name.
    :param total_counter / bad_counter: error-ratio counter names.
    """

    __slots__ = ("kind", "name", "good_target", "threshold_ms",
                 "window_s", "histogram", "total_counter", "bad_counter")

    def __init__(self, kind, name, good_target, threshold_ms=None,
                 window_s=DEFAULT_WINDOW_S,
                 histogram=_metrics.SERVE_LATENCY_MS,
                 total_counter=_metrics.SERVE_REQUESTS,
                 bad_counter=_metrics.SERVE_ERRORS):
        if kind not in ("latency", "errors"):
            raise ValueError("SLO kind must be latency|errors, got %r"
                             % (kind,))
        if not 0.0 < good_target < 1.0:
            raise ValueError("SLO target must be in (0, 1), got %r"
                             % (good_target,))
        if kind == "latency" and (threshold_ms is None
                                  or threshold_ms <= 0):
            raise ValueError("latency SLO needs a positive threshold")
        self.kind = kind
        self.name = name
        self.good_target = float(good_target)
        self.threshold_ms = (None if threshold_ms is None
                             else float(threshold_ms))
        self.window_s = float(window_s)
        self.histogram = histogram
        self.total_counter = total_counter
        self.bad_counter = bad_counter

    @property
    def budget(self):
        """Allowed bad fraction (the error budget), e.g. 0.01 for p99."""
        return 1.0 - self.good_target

    def describe(self):
        if self.kind == "latency":
            return "%g%% of requests under %gms over %gs" % (
                self.good_target * 100.0, self.threshold_ms,
                self.window_s)
        return "%g%% of requests succeed over %gs" % (
            self.good_target * 100.0, self.window_s)

    def __repr__(self):
        return "SLO(%s: %s)" % (self.name, self.describe())


def parse_slo(spec):
    """Parse a CLI ``--slo`` spec into an :class:`SLO`.

    Grammar (window optional, seconds):

    * ``latency:p99:250`` / ``latency:p95:50:30`` — pN names both the
      objective quantile and the good-fraction target (p99 -> 99%);
    * ``errors:99.9`` / ``errors:99:300`` — availability percentage.
    """
    parts = [p.strip() for p in str(spec).split(":")]
    kind = parts[0].lower() if parts else ""
    try:
        if kind == "latency" and len(parts) in (3, 4):
            if not parts[1].lower().startswith("p"):
                raise ValueError
            pct = float(parts[1][1:])
            threshold = float(parts[2])
            window = float(parts[3]) if len(parts) == 4 \
                else DEFAULT_WINDOW_S
            name = "latency_%s_under_%gms" % (parts[1].lower(),
                                              threshold)
            return SLO("latency", name, pct / 100.0,
                       threshold_ms=threshold, window_s=window)
        if kind == "errors" and len(parts) in (2, 3):
            pct = float(parts[1])
            window = float(parts[2]) if len(parts) == 3 \
                else DEFAULT_WINDOW_S
            return SLO("errors", "availability_%g" % pct, pct / 100.0,
                       window_s=window)
    except ValueError:
        pass
    raise ValueError(
        "bad SLO spec %r: expected latency:pN:threshold_ms[:window_s] "
        "or errors:availability_pct[:window_s]" % (spec,))


#: Server defaults: p99 under 500 ms, 99.9%% availability, 60 s window.
DEFAULT_SLOS = ("latency:p99:500", "errors:99.9")


def fraction_under(boundaries, buckets, threshold):
    """Fraction of bucketed observations at or below *threshold*.

    Linear interpolation inside the containing bucket; the overflow
    bucket counts as *above* any finite threshold (conservative).
    Returns None when the buckets are empty.
    """
    total = sum(buckets)
    if total == 0:
        return None
    under = 0.0
    for index, count in enumerate(buckets):
        if count == 0:
            continue
        if index >= len(boundaries):
            break  # overflow bucket: above threshold
        hi = boundaries[index]
        lo = boundaries[index - 1] if index > 0 else min(0.0, hi)
        if hi <= threshold:
            under += count
        elif lo < threshold:
            under += count * (threshold - lo) / (hi - lo)
    return under / total


class SLOEvaluator:
    """Evaluates objectives against a recorder; maintains gauges.

    Each :meth:`evaluate` sets ``serve.slo.burn_rate.<name>`` per
    objective and ``serve.slo.worst_burn_rate`` overall, and counts a
    ``serve.slo.breaches`` event on each ok->breach transition.
    """

    def __init__(self, objectives, recorder, registry=None):
        self.objectives = list(objectives)
        self.recorder = recorder
        self._registry = registry
        self._was_ok = {slo.name: True for slo in self.objectives}

    def _reg(self):
        return (self._registry if self._registry is not None
                else _metrics.registry())

    def _window_delta(self, slo):
        """(oldest, newest) samples spanning the objective's window."""
        window = self.recorder.samples(window_s=slo.window_s)
        if len(window) < 2:
            return None, None
        return window[0], window[-1]

    def _evaluate_one(self, slo):
        result = {"name": slo.name, "kind": slo.kind,
                  "objective": slo.describe(),
                  "window_s": slo.window_s, "budget": slo.budget,
                  "events": 0, "bad_fraction": None,
                  "burn_rate": None, "ok": True}
        first, last = self._window_delta(slo)
        if first is None:
            return result  # not enough history: vacuously ok
        if slo.kind == "errors":
            total = (last["counters"].get(slo.total_counter, 0)
                     - first["counters"].get(slo.total_counter, 0))
            bad = (last["counters"].get(slo.bad_counter, 0)
                   - first["counters"].get(slo.bad_counter, 0))
            if total <= 0:
                return result
            bad_fraction = max(0.0, min(1.0, bad / total))
            result["events"] = total
        else:
            newest = last["histograms"].get(slo.histogram)
            oldest = first["histograms"].get(slo.histogram)
            if newest is None:
                return result
            boundaries = newest["boundaries"]
            buckets = list(newest["buckets"])
            if oldest is not None \
                    and oldest["boundaries"] == boundaries:
                for index, count in enumerate(oldest["buckets"]):
                    buckets[index] -= count
            total = sum(buckets)
            if total <= 0:
                return result
            good = fraction_under(boundaries, buckets,
                                  slo.threshold_ms)
            bad_fraction = 1.0 - (good or 0.0)
            result["events"] = total
            # Observed quantile of the window, via the bucket-only
            # (min/max-free) interpolation path.
            delta = _metrics.Histogram(boundaries)
            delta.buckets = buckets
            delta.count = total
            result["observed_quantile_ms"] = delta.quantile(
                slo.good_target)
        result["bad_fraction"] = bad_fraction
        if slo.budget > 0:
            result["burn_rate"] = min(bad_fraction / slo.budget,
                                      INFINITE_BURN)
        else:
            result["burn_rate"] = (0.0 if bad_fraction == 0
                                   else INFINITE_BURN)
        result["ok"] = result["burn_rate"] <= 1.0
        return result

    def evaluate(self):
        """Evaluate every objective; returns the result dicts."""
        reg = self._reg()
        results = [self._evaluate_one(slo) for slo in self.objectives]
        worst = 0.0
        for result in results:
            burn = result["burn_rate"]
            if burn is None:
                continue
            reg.gauge("%s.%s" % (_metrics.SERVE_SLO_BURN_RATE,
                                 result["name"])).set(
                min(burn, 1e9))
            worst = max(worst, burn)
            if not result["ok"] and self._was_ok.get(result["name"],
                                                     True):
                reg.counter(_metrics.SERVE_SLO_BREACHES).inc()
            self._was_ok[result["name"]] = result["ok"]
        reg.gauge(_metrics.SERVE_SLO_WORST).set(min(worst, 1e9))
        return results
