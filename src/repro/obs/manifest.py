"""Run manifests: one JSON artifact answering "what exactly ran".

A manifest pins the identity of a top-level run — the command and its
configuration (with a stable fingerprint reusing the cache's canonical
digests), the cell-library contents, per-stage time totals, a metrics
snapshot, peak RSS and host info — so any result file can be traced
back to the inputs that produced it and compared across machines and
revisions. The CLI writes one next to ``--trace``/``--metrics``
outputs; benchmarks write one next to their result JSON.
"""

import json
import os
import platform
import sys
import time

#: Bump when the manifest layout changes.
MANIFEST_SCHEMA = 1


def peak_rss_bytes():
    """Peak resident set size of this process, in bytes (None when the
    platform lacks :mod:`resource`, e.g. Windows)."""
    try:
        import resource
    except ImportError:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is bytes on macOS but kilobytes on Linux.
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def build_manifest(command, config=None, library=None, stages=None,
                   metrics=None, duration_s=None, extra=None):
    """Assemble a run-manifest dict.

    Parameters
    ----------
    command:
        Name of the entry point that ran (CLI subcommand, benchmark).
    config:
        JSON-serializable configuration mapping; fingerprinted with the
        cache's canonical digest so identical configs hash identically.
    library:
        Optional cell library; recorded by name and content
        fingerprint (see :func:`repro.core.cache.library_fingerprint`).
    stages:
        ``{stage: {"calls", "seconds"}}`` totals (an
        :class:`~repro.core.instrument.Instrumentation` summary's
        ``"stages"`` value or :meth:`~repro.obs.trace.Tracer.totals`).
    metrics:
        A :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict.
    duration_s:
        Wall-clock duration of the run.
    extra:
        Free-form additions merged in under ``"extra"``.
    """
    # Imported lazily: repro.core.cache itself imports repro.obs.
    from ..core import cache as cache_mod

    config = dict(config or {})
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "command": command,
        "created_unix": time.time(),
        "config": config,
        "fingerprints": {"config": cache_mod.fingerprint(config)},
        "stages": dict(stages or {}),
        "metrics": metrics if metrics is not None else {},
        "duration_s": duration_s,
        "peak_rss_bytes": peak_rss_bytes(),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "processor": platform.processor() or platform.machine(),
            "pid": os.getpid(),
        },
    }
    if library is not None:
        manifest["library"] = {
            "name": library.name,
            "fingerprint": cache_mod.library_fingerprint(library),
        }
    if extra:
        manifest["extra"] = dict(extra)
    return manifest


def write_manifest(path, manifest):
    """Write *manifest* as pretty-printed JSON; returns *path*."""
    with open(path, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def default_manifest_path(*candidates):
    """Derive ``<first candidate stem>.manifest.json``.

    Helper for CLIs that write a manifest alongside a trace/metrics
    file; returns None when every candidate is None.
    """
    for path in candidates:
        if path:
            stem, __ext = os.path.splitext(os.fspath(path))
            return stem + ".manifest.json"
    return None
