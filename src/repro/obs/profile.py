"""Wall-clock sampling profiler, stdlib-only.

A background thread wakes every *interval* seconds and snapshots every
thread's Python stack via :func:`sys._current_frames` — no signals (so
it works off the main thread and inside asyncio servers), no tracing
hooks (so overhead stays bounded by ``stack_depth / interval`` rather
than by call rate; at the default 5 ms interval the serve benchmark
measures well under 5%).

Two export formats:

* **collapsed stacks** (:meth:`SamplingProfiler.collapsed`) — the
  ``root;caller;callee <count>`` lines Brendan Gregg's ``flamegraph.pl``
  and https://www.speedscope.app consume directly;
* **Chrome trace** (:meth:`SamplingProfiler.write_chrome`) — a flame
  *chart* (time on the x-axis) built by merging consecutive samples
  that share a stack prefix, loadable in ``chrome://tracing`` and
  Perfetto.

Use as a context manager, or via ``--profile`` on any CLI subcommand
and ``/v1/profile?seconds=N`` on a live server.
"""

import json
import os
import sys
import threading
import time

from . import metrics as _metrics

#: Default seconds between samples: 5 ms = 200 Hz.
DEFAULT_INTERVAL = 0.005


def _frame_label(frame):
    """``function (module.py:line-of-def)`` — stable per function."""
    code = frame.f_code
    return "%s (%s:%d)" % (code.co_name,
                           os.path.basename(code.co_filename),
                           code.co_firstlineno)


def _stack_of(frame):
    """Outermost-first tuple of frame labels for one thread."""
    labels = []
    while frame is not None:
        labels.append(_frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


class SamplingProfiler:
    """Periodic whole-process stack sampler.

    :param interval: seconds between samples.
    :param registry: metrics registry credited with
        ``obs.profile.samples``; ambient when None.
    """

    def __init__(self, interval=DEFAULT_INTERVAL, registry=None):
        if interval <= 0:
            raise ValueError("interval must be positive, got %r"
                             % (interval,))
        self.interval = float(interval)
        self._registry = registry
        #: list of ``(t, {tid: stack tuple})`` in sample order.
        self._samples = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = None
        self._t0 = None
        self._t1 = None

    # -- lifecycle ---------------------------------------------------------
    def start(self):
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._t0 = time.time()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self):
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=self.interval * 10 + 1.0)
        self._t1 = time.time()
        reg = (self._registry if self._registry is not None
               else _metrics.registry())
        reg.counter(_metrics.OBS_PROFILE_SAMPLES).inc(len(self._samples))
        return self

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()
        return False

    def _run(self):
        own = threading.get_ident()
        while not self._stop.wait(self.interval):
            now = time.time()
            stacks = {}
            for tid, frame in sys._current_frames().items():
                if tid == own:
                    continue
                stack = _stack_of(frame)
                if stack:
                    stacks[tid] = stack
            if stacks:
                with self._lock:
                    self._samples.append((now, stacks))

    # -- accessors ---------------------------------------------------------
    def sample_count(self):
        with self._lock:
            return len(self._samples)

    def duration(self):
        """Wall seconds covered by the run (0 before :meth:`stop`)."""
        if self._t0 is None:
            return 0.0
        return max(0.0, (self._t1 or time.time()) - self._t0)

    # -- collapsed stacks --------------------------------------------------
    def collapsed_counts(self):
        """``{stack tuple: sample count}`` across all threads."""
        counts = {}
        with self._lock:
            for __t, stacks in self._samples:
                for stack in stacks.values():
                    counts[stack] = counts.get(stack, 0) + 1
        return counts

    def collapsed(self):
        """Collapsed-stack text: ``frame;frame;frame count`` per line,
        most-sampled first — feed to flamegraph.pl / speedscope."""
        counts = self.collapsed_counts()
        lines = [";".join(stack) + " %d" % count
                 for stack, count in sorted(counts.items(),
                                            key=lambda kv: -kv[1])]
        return "\n".join(lines) + "\n" if lines else ""

    def write_collapsed(self, path):
        with open(path, "w") as handle:
            handle.write(self.collapsed())

    # -- Chrome flame chart ------------------------------------------------
    def chrome_events(self):
        """Flame-chart ``X`` events: consecutive samples sharing a stack
        prefix merge into one slice per frame, per thread."""
        with self._lock:
            samples = list(self._samples)
        if not samples:
            return []
        base = samples[0][0]
        pid = os.getpid()
        events = [{"ph": "M", "name": "process_name", "pid": pid,
                   "tid": 0, "args": {"name": "repro profile"}}]
        by_tid = {}
        for t, stacks in samples:
            for tid, stack in stacks.items():
                by_tid.setdefault(tid, []).append((t, stack))
        for tid, rows in sorted(by_tid.items()):
            open_frames = []  # parallel lists: label, start time
            prev_t = rows[0][0]

            def close_from(depth, end):
                while len(open_frames) > depth:
                    label, start = open_frames.pop()
                    events.append({
                        "name": label, "cat": "sample", "ph": "X",
                        "ts": (start - base) * 1e6,
                        "dur": max(0.0, (end - start) * 1e6),
                        "pid": pid, "tid": tid, "args": {},
                    })

            for t, stack in rows:
                # A gap wider than 4 sampling intervals means the thread
                # was missing from samples in between; close everything.
                if t - prev_t > self.interval * 4:
                    close_from(0, prev_t + self.interval)
                common = 0
                while (common < len(open_frames) and common < len(stack)
                       and open_frames[common][0] == stack[common]):
                    common += 1
                close_from(common, t)
                for label in stack[common:]:
                    open_frames.append((label, t))
                prev_t = t
            close_from(0, prev_t + self.interval)
        events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0.0)))
        return events

    def write_chrome(self, path):
        payload = {"traceEvents": self.chrome_events(),
                   "displayTimeUnit": "ms",
                   "otherData": {"producer": "repro.obs.profile",
                                 "interval_s": self.interval}}
        with open(path, "w") as handle:
            json.dump(payload, handle)
            handle.write("\n")

    def report(self):
        """Summary dict (sample count, duration, top stacks) for JSON
        transports like ``/v1/profile``."""
        counts = self.collapsed_counts()
        total = sum(counts.values())
        top = sorted(counts.items(), key=lambda kv: -kv[1])[:20]
        return {
            "samples": self.sample_count(),
            "stacks": len(counts),
            "duration_s": self.duration(),
            "interval_s": self.interval,
            "top": [{"stack": list(stack), "count": count,
                     "share": (count / total if total else 0.0)}
                    for stack, count in top],
        }

    def __repr__(self):
        return "SamplingProfiler(%d samples @ %.1fms)" % (
            self.sample_count(), self.interval * 1e3)
