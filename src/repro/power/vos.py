"""Voltage overscaling (VOS) — the related-work trade-off axis.

Early approximate-computing work (the paper's refs [14]-[16]) harvested
energy by scaling Vdd below the critical voltage and accepting the
resulting timing errors. This module models that knob so the benchmarks
can compare it against aging-induced precision reduction on the same
quality/energy axes:

* delay scales with the alpha-power law
  ``t ∝ Vdd / (Vdd - Vth - dVth)^alpha`` — note aging (dVth) and
  undervolting compound, which is why VOS designs age badly;
* dynamic energy scales as ``Vdd^2``;
* leakage is approximated as linear in Vdd (good enough for the
  comparison; documented simplification).

Because the voltage multiplier is uniform across gates, running a
circuit at scaled Vdd with clock ``T`` is exactly equivalent to nominal
voltage with clock ``T / m`` — which is how :func:`timing_equivalent_clock`
feeds the existing timed simulator without modification.
"""

from dataclasses import dataclass
from typing import List

from ..aging.bti import DEFAULT_BTI


@dataclass(frozen=True)
class VoltageOperatingPoint:
    """Electrical consequences of running at a scaled supply voltage.

    All ratios are relative to nominal Vdd at fresh silicon.
    """

    vdd: float
    delay_multiplier: float
    dynamic_ratio: float
    leakage_ratio: float

    @property
    def energy_ratio(self):
        """Dynamic energy per operation relative to nominal."""
        return self.dynamic_ratio


def delay_multiplier(vdd, bti=DEFAULT_BTI, dvth=0.0):
    """Gate-delay multiplier at supply *vdd* with *dvth* aging shift."""
    headroom = vdd - bti.vth - dvth
    if headroom <= 0:
        raise ValueError(
            "vdd %.3f V leaves no overdrive (Vth %.3f V + dVth %.3f V)"
            % (vdd, bti.vth, dvth))
    nominal = bti.vdd / bti.overdrive ** bti.alpha
    scaled = vdd / headroom ** bti.alpha
    return scaled / nominal


def operating_point(vdd, bti=DEFAULT_BTI, dvth=0.0):
    """Build a :class:`VoltageOperatingPoint` for supply *vdd*."""
    return VoltageOperatingPoint(
        vdd=vdd,
        delay_multiplier=delay_multiplier(vdd, bti=bti, dvth=dvth),
        dynamic_ratio=(vdd / bti.vdd) ** 2,
        leakage_ratio=vdd / bti.vdd,
    )


def vos_sweep(vdds, bti=DEFAULT_BTI, dvth=0.0):
    """Operating points for a sequence of supply voltages."""
    return [operating_point(v, bti=bti, dvth=dvth) for v in vdds]


def timing_equivalent_clock(t_clock_ps, vdd, bti=DEFAULT_BTI, dvth=0.0):
    """Clock period that emulates supply *vdd* at nominal-voltage delays.

    Scaling every gate delay by ``m`` while sampling at ``T`` is
    indistinguishable from nominal delays sampled at ``T / m``; use the
    returned period with :class:`~repro.sim.timing.TimedSimulator` to
    simulate undervolted operation.
    """
    return t_clock_ps / delay_multiplier(vdd, bti=bti, dvth=dvth)


def critical_voltage(t_clock_ps, fresh_cp_ps, bti=DEFAULT_BTI, dvth=0.0,
                     tolerance=1e-4):
    """Lowest Vdd at which the fresh critical path still meets *t_clock*.

    Solved by bisection on the monotone delay multiplier.
    """
    target = t_clock_ps / fresh_cp_ps
    if target < 1.0:
        raise ValueError("clock is already faster than the critical path")
    lo = bti.vth + dvth + 1e-3
    hi = bti.vdd
    if delay_multiplier(hi, bti=bti, dvth=dvth) > target:
        raise ValueError("even nominal Vdd cannot meet the clock")
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if delay_multiplier(mid, bti=bti, dvth=dvth) > target:
            lo = mid
        else:
            hi = mid
    return hi
