"""Power, energy and efficiency models."""

from .power import PowerReport, dynamic_power_uw, power_report, savings
from .vos import (VoltageOperatingPoint, critical_voltage,
                  delay_multiplier, operating_point,
                  timing_equivalent_clock, vos_sweep)

__all__ = [
    "PowerReport", "dynamic_power_uw", "power_report", "savings",
    "VoltageOperatingPoint", "critical_voltage", "delay_multiplier",
    "operating_point", "timing_equivalent_clock", "vos_sweep",
]
