"""Power, energy and efficiency models.

Reproduces the paper's Synopsys-style power analysis: leakage summed from
the cell library, dynamic power from ``1/2 * C * Vdd^2 * alpha * f`` with
per-net toggle rates extracted from simulated stimuli, and energy as
power over one clock period. These feed the Fig. 8(c) savings comparison
(frequency / leakage / dynamic / energy / area).
"""

from dataclasses import dataclass


@dataclass
class PowerReport:
    """Power/area/timing summary of one netlist.

    Attributes
    ----------
    area_um2:
        Total standard-cell area.
    leakage_nw:
        Total static leakage.
    dynamic_uw:
        Dynamic switching power at the given clock.
    clock_ps:
        Clock period used for dynamic power and energy.
    energy_per_cycle_fj:
        Total (leakage + dynamic) energy per clock cycle.
    """

    area_um2: float
    leakage_nw: float
    dynamic_uw: float
    clock_ps: float

    @property
    def frequency_ghz(self):
        return 1000.0 / self.clock_ps

    @property
    def total_power_uw(self):
        return self.dynamic_uw + self.leakage_nw * 1e-3

    @property
    def energy_per_cycle_fj(self):
        # P [uW] * t [ps] = 1e-6 W * 1e-12 s = 1e-18 J = attojoule;
        # convert to femtojoules.
        return self.total_power_uw * self.clock_ps * 1e-3


def dynamic_power_uw(netlist, library, toggle_rates, clock_ps, vdd=None):
    """Dynamic switching power in uW.

    Parameters
    ----------
    netlist, library:
        Design and cell library.
    toggle_rates:
        Map net id -> average transitions per clock cycle (from
        :func:`repro.sim.activity.simulate_activity`).
    clock_ps:
        Clock period.
    vdd:
        Supply voltage; defaults to the library's.
    """
    if vdd is None:
        vdd = library.vdd
    freq_hz = 1e12 / clock_ps
    loads = netlist.load_caps(library, wire_cap_ff=library.wire_cap_ff)
    watts = 0.0
    for gate in netlist.gates:
        alpha = toggle_rates.get(gate.output, 0.0)
        cap_f = loads[gate.uid] * 1e-15
        watts += 0.5 * cap_f * vdd * vdd * alpha * freq_hz
    return watts * 1e6


def power_report(netlist, library, toggle_rates, clock_ps):
    """Build a full :class:`PowerReport` for a netlist."""
    return PowerReport(
        area_um2=netlist.area(library),
        leakage_nw=netlist.leakage(library),
        dynamic_uw=dynamic_power_uw(netlist, library, toggle_rates,
                                    clock_ps),
        clock_ps=clock_ps,
    )


def savings(ours, baseline):
    """Normalized savings of *ours* versus *baseline* (Fig. 8(c)).

    Returns a dict of ``ours / baseline`` ratios for frequency, leakage,
    dynamic power, energy and area. Frequency > 1 means ours is faster;
    the others < 1 mean ours is cheaper.
    """
    return {
        "frequency": ours.frequency_ghz / baseline.frequency_ghz,
        "leakage": ours.leakage_nw / baseline.leakage_nw,
        "dynamic": ours.dynamic_uw / baseline.dynamic_uw,
        "energy": ours.energy_per_cycle_fj / baseline.energy_per_cycle_fj,
        "area": ours.area_um2 / baseline.area_um2,
    }
