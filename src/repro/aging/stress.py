"""Stress-factor annotations for netlists.

The impact of BTI on a gate depends on how long each transistor network
spent under stress: pMOS devices age while their input is *low*, nMOS
devices while it is *high*. The paper considers three annotation styles,
all reproduced here:

* **worst case** — every transistor at S = 100% (the conservative bound
  that guarantees freedom from aging-induced timing errors),
* **balance case** — every transistor at S = 50% (a "typical" stress),
* **actual case** — per-gate stress factors derived from the signal
  probabilities observed while simulating the netlist with real stimuli
  (Fig. 3(c) / Fig. 5 of the paper).
"""

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..obs import logs, trace as obs_trace

_log = logs.get_logger("aging.stress")


@dataclass(frozen=True)
class UniformStress:
    """Every transistor in the design shares one stress factor."""

    s: float
    label: str

    def gate_stress(self, gate):
        """Return ``(s_pmos, s_nmos)`` for *gate*."""
        return (self.s, self.s)


#: Worst-case aging: 100% stress everywhere (upper bound, Section IV).
WORST = UniformStress(1.0, "worst")
#: Balanced aging: 50% stress everywhere (typical case, Section II).
BALANCE = UniformStress(0.5, "balance")
#: No stress; used for fresh (t = 0) analyses.
NONE = UniformStress(0.0, "fresh")


@dataclass
class ActualStress:
    """Per-gate stress factors extracted from observed switching activity.

    Attributes
    ----------
    per_gate:
        Map from gate uid to ``(s_pmos, s_nmos)``.
    label:
        Name of the stimulus used ("normal", "idct", ...) — shows up in
        characterization table keys.
    default:
        Stress pair for gates missing from the map (e.g. gates added by a
        later synthesis pass); defaults to balanced stress.
    """

    per_gate: Dict[int, Tuple[float, float]]
    label: str = "actual"
    default: Tuple[float, float] = (0.5, 0.5)

    def gate_stress(self, gate):
        return self.per_gate.get(gate.uid, self.default)

    @classmethod
    def from_signal_probabilities(cls, netlist, probabilities, label="actual"):
        """Build an annotation from per-net signal probabilities.

        Parameters
        ----------
        netlist:
            The annotated :class:`~repro.netlist.netlist.Netlist`.
        probabilities:
            Map net id -> probability the net is logic 1. Constant nets
            may be omitted (0 and 1 are implied).
        label:
            Stimulus name.

        Notes
        -----
        A gate's nMOS network is stressed while its inputs are high and
        the pMOS network while they are low, so per gate we use the mean
        input signal probability ``p1``::

            s_nmos = mean(p1(inputs)),  s_pmos = 1 - s_nmos
        """
        from ..netlist.net import CONST0, CONST1

        with obs_trace.span("stress.annotate", label=label,
                            gates=netlist.num_gates):
            probs = dict(probabilities)
            probs.setdefault(CONST0, 0.0)
            probs.setdefault(CONST1, 1.0)
            per_gate = {}
            for gate in netlist.gates:
                vals = [probs[n] for n in gate.inputs if n in probs]
                if not vals:
                    per_gate[gate.uid] = cls.default
                    continue
                p1 = sum(vals) / len(vals)
                per_gate[gate.uid] = (1.0 - p1, p1)
        _log.debug("annotated %d gates with %r stress factors",
                   len(per_gate), label)
        return cls(per_gate=per_gate, label=label)

    def stress_samples(self):
        """Flatten the annotation into a list of stress factors.

        Returns the pMOS and nMOS stress of every annotated gate — the
        quantity histogrammed in the paper's Fig. 5.
        """
        samples = []
        for sp, sn in self.per_gate.values():
            samples.append(sp)
            samples.append(sn)
        return samples


def stress_histogram(annotation, bins=20):
    """Histogram stress factors of an :class:`ActualStress` annotation.

    Returns ``(bin_edges, counts)`` with *bins* equal-width bins over
    [0, 1]; mirrors the paper's Fig. 5.
    """
    import numpy as np

    samples = np.asarray(annotation.stress_samples(), dtype=float)
    counts, edges = np.histogram(samples, bins=bins, range=(0.0, 1.0))
    return edges, counts
