"""BTI aging models, stress annotations and aged-delay computation."""

from .bti import BTIModel, DEFAULT_BTI, SECONDS_PER_YEAR
from .stress import (ActualStress, UniformStress, WORST, BALANCE, NONE,
                     stress_histogram)
from .scenario import (AgingScenario, fresh, worst_case, balance_case,
                       actual_case, FRESH, ONE_YEAR_WORST, TEN_YEARS_WORST,
                       ONE_YEAR_BALANCE, TEN_YEARS_BALANCE)
from .delay import gate_delays, gate_delay_multiplier, guardband_ps

__all__ = [
    "BTIModel", "DEFAULT_BTI", "SECONDS_PER_YEAR",
    "ActualStress", "UniformStress", "WORST", "BALANCE", "NONE",
    "stress_histogram",
    "AgingScenario", "fresh", "worst_case", "balance_case", "actual_case",
    "FRESH", "ONE_YEAR_WORST", "TEN_YEARS_WORST", "ONE_YEAR_BALANCE",
    "TEN_YEARS_BALANCE",
    "gate_delays", "gate_delay_multiplier", "guardband_ps",
]
