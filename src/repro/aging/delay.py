"""Aged gate-delay computation (Eq. 1 of the paper).

Bridges the BTI model, a stress annotation and a cell library into the
per-gate delays consumed by static timing analysis and the timed
gate-level simulator.
"""

from .bti import DEFAULT_BTI


class _AnyGate:
    """Stand-in gate for querying a uniform stress annotation."""

    uid = -1


def gate_delay_multiplier(cell, scenario, bti=DEFAULT_BTI, degradation=None):
    """Delay multiplier (>= 1) of a *cell* instance under *scenario*.

    When a degradation-aware library is supplied, the multiplier is
    looked up (bilinear interpolation) from its 11x11 stress grid —
    mirroring the paper's use of the released degradation-aware cell
    library [4],[9]. Otherwise the closed-form BTI model is evaluated.
    Both paths agree to within the table's interpolation error.

    Only meaningful for uniform stress annotations; per-gate annotations
    need :func:`gate_delays`.
    """
    if scenario is None or scenario.is_fresh:
        return 1.0
    sp, sn = scenario.stress.gate_stress(_AnyGate)
    if degradation is not None:
        return degradation.multiplier(cell.name, sp, sn, scenario.years)
    return bti.cell_multiplier(sp, sn, scenario.years, wp=cell.wp, wn=cell.wn)


def gate_delays(netlist, library, scenario=None, bti=DEFAULT_BTI,
                degradation=None):
    """Per-gate aged delays in ps.

    Parameters
    ----------
    netlist:
        The design under analysis.
    library:
        :class:`~repro.cells.library.CellLibrary` resolving cell names.
    scenario:
        :class:`~repro.aging.scenario.AgingScenario`; fresh when omitted.
    bti:
        BTI model used for closed-form multipliers.
    degradation:
        Optional :class:`~repro.cells.degradation.DegradationAwareLibrary`
        to look multipliers up from tabulated stress grids instead of the
        closed form.

    Returns
    -------
    dict
        Map gate uid -> delay in ps (fresh delay x aging multiplier).
    """
    loads = netlist.load_caps(library, wire_cap_ff=library.wire_cap_ff)
    delays = {}
    fresh = scenario is None or scenario.is_fresh
    for gate in netlist.gates:
        cell = library[gate.cell]
        delay = cell.delay_ps(loads[gate.uid])
        if not fresh:
            sp, sn = scenario.gate_stress(gate)
            if degradation is not None:
                mult = degradation.multiplier(gate.cell, sp, sn,
                                              scenario.years)
            else:
                mult = bti.cell_multiplier(sp, sn, scenario.years,
                                           wp=cell.wp, wn=cell.wn)
            delay *= mult
        delays[gate.uid] = delay
    return delays


def guardband_ps(netlist, library, scenario, bti=DEFAULT_BTI,
                 degradation=None):
    """Critical-path guardband ``t_GB`` in ps required by *scenario*.

    ``t_GB = t_CP(aging) - t_CP(noAging)`` — the extra clock period a
    conventional design must reserve (Eq. 1).
    """
    from ..sta.sta import critical_path_delay

    fresh = critical_path_delay(netlist, library)
    aged = critical_path_delay(netlist, library, scenario=scenario,
                               bti=bti, degradation=degradation)
    return aged - fresh
