"""Aged gate-delay computation (Eq. 1 of the paper).

Bridges the BTI model, a stress annotation and a cell library into the
per-gate delays consumed by static timing analysis and the timed
gate-level simulator.

Aging multipliers are memoized per ``(model, stress, lifetime, cell)``
value: a netlist instantiates each library cell hundreds of times under
identical uniform stress, so the closed-form BTI shift (or the bilinear
table lookup) is computed once per distinct key instead of once per
gate instance. The memo is shared with the batched STA engine
(:mod:`repro.sta.engine`), which is what keeps the scalar and vectorized
paths bit-identical: both read the very same cached float.

The memo is strictly for the **deterministic** corner grid. Per-gate
Monte Carlo variation draws (:mod:`repro.mc`) would flood it with one
key per (gate, sample) — millions of entries that can never hit — so
the sampled path bypasses it entirely, computing delay tensors through
the ndarray-native BTI model
(:func:`repro.sta.engine.corner_delays` with ``dvth=``); array inputs
reaching :func:`_stress_multiplier` are rejected outright rather than
silently degrading the memo.
"""

from functools import lru_cache

import numpy as np

from .bti import DEFAULT_BTI

#: Upper bound on distinct (model, stress, lifetime, cell) multiplier
#: keys kept alive; sweeps reuse a handful of scenarios over a handful
#: of cells, so this is generous.
_MULTIPLIER_MEMO_SIZE = 65536


class _AnyGate:
    """Stand-in gate for querying a uniform stress annotation."""

    uid = -1


@lru_cache(maxsize=_MULTIPLIER_MEMO_SIZE)
def _bti_multiplier(bti, sp, sn, years, wp, wn):
    """Memoized closed-form BTI multiplier.

    *bti* is a frozen dataclass (hashed by value), so value-equal models
    share entries across scenarios and sweeps.
    """
    return bti.cell_multiplier(sp, sn, years, wp=wp, wn=wn)


@lru_cache(maxsize=_MULTIPLIER_MEMO_SIZE)
def _table_multiplier(degradation, cell_name, sp, sn, years):
    """Memoized degradation-aware-library table lookup."""
    return degradation.multiplier(cell_name, sp, sn, years)


def clear_multiplier_memo():
    """Drop all memoized aging multipliers (for tests and benchmarks)."""
    _bti_multiplier.cache_clear()
    _table_multiplier.cache_clear()


def multiplier_memo_info():
    """``(bti_info, table_info)`` lru_cache statistics, for tests."""
    return _bti_multiplier.cache_info(), _table_multiplier.cache_info()


def _stress_multiplier(cell, sp, sn, years, bti, degradation):
    """Multiplier of *cell* at explicit stress factors (memoized).

    Scalar-only by contract: every distinct argument value becomes an
    lru_cache key, so per-gate/per-sample variation arrays must use the
    memo-free vectorized path instead (see module docstring).
    """
    if np.ndim(sp) or np.ndim(sn) or np.ndim(years):
        raise TypeError(
            "per-gate/per-sample stress arrays would flood the multiplier "
            "memo; use repro.sta.engine.corner_delays(..., dvth=...) for "
            "sampled tensors")
    if degradation is not None:
        return _table_multiplier(degradation, cell.name, sp, sn, years)
    return _bti_multiplier(bti, sp, sn, years, cell.wp, cell.wn)


def gate_delay_multiplier(cell, scenario, bti=DEFAULT_BTI, degradation=None):
    """Delay multiplier (>= 1) of a *cell* instance under *scenario*.

    When a degradation-aware library is supplied, the multiplier is
    looked up (bilinear interpolation) from its 11x11 stress grid —
    mirroring the paper's use of the released degradation-aware cell
    library [4],[9]. Otherwise the closed-form BTI model is evaluated.
    Both paths agree to within the table's interpolation error.

    Results are memoized per ``(cell, scenario stress, lifetime, model)``
    value — see :func:`clear_multiplier_memo`.

    Only meaningful for uniform stress annotations; per-gate annotations
    need :func:`gate_delays`.
    """
    if scenario is None or scenario.is_fresh:
        return 1.0
    sp, sn = scenario.stress.gate_stress(_AnyGate)
    return _stress_multiplier(cell, sp, sn, scenario.years, bti, degradation)


def gate_delays(netlist, library, scenario=None, bti=DEFAULT_BTI,
                degradation=None):
    """Per-gate aged delays in ps.

    Parameters
    ----------
    netlist:
        The design under analysis.
    library:
        :class:`~repro.cells.library.CellLibrary` resolving cell names.
    scenario:
        :class:`~repro.aging.scenario.AgingScenario`; fresh when omitted.
    bti:
        BTI model used for closed-form multipliers.
    degradation:
        Optional :class:`~repro.cells.degradation.DegradationAwareLibrary`
        to look multipliers up from tabulated stress grids instead of the
        closed form.

    Returns
    -------
    dict
        Map gate uid -> delay in ps (fresh delay x aging multiplier).
    """
    loads = netlist.load_caps(library, wire_cap_ff=library.wire_cap_ff)
    delays = {}
    fresh = scenario is None or scenario.is_fresh
    for gate in netlist.gates:
        cell = library[gate.cell]
        delay = cell.delay_ps(loads[gate.uid])
        if not fresh:
            sp, sn = scenario.gate_stress(gate)
            mult = _stress_multiplier(cell, sp, sn, scenario.years,
                                      bti, degradation)
            delay *= mult
        delays[gate.uid] = delay
    return delays


def guardband_ps(netlist, library, scenario, bti=DEFAULT_BTI,
                 degradation=None):
    """Critical-path guardband ``t_GB`` in ps required by *scenario*.

    ``t_GB = t_CP(aging) - t_CP(noAging)`` — the extra clock period a
    conventional design must reserve (Eq. 1). Both corners propagate
    through one compiled timing program (:mod:`repro.sta.engine`).
    """
    from ..sta.engine import analyze_batch

    batch = analyze_batch(netlist, library, [None, scenario], bti=bti,
                          degradation=degradation)
    fresh, aged = batch.critical_paths_ps
    return aged - fresh
