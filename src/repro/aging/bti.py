"""Long-term BTI (bias temperature instability) aging model.

Aging shifts the threshold voltage of stressed transistors. Following the
paper's first-order treatment (its Eq. 1, based on the BSIM alpha-power
current model), we model:

* the threshold-voltage shift of a transistor stressed with duty factor
  ``S`` for ``t`` years as a power law in time with a square-root stress
  dependence (the standard long-term reaction-diffusion form with
  recovery folded into the stress factor)::

      dVth(S, t) = A * S**0.5 * t_seconds**(1/6)

* the resulting gate-delay scaling via the alpha-power law with
  ``alpha = 2``::

      m(dVth) = ((Vdd - Vth) / (Vdd - Vth - dVth))**2

The prefactor ``A`` is calibrated so that a fully stressed (S = 100%)
transistor slows a typical gate by about 16% after 10 years — matching
the paper's component characterization (its Fig. 4 adder needs roughly a
15-18% guardband after 10 years of worst-case stress).

pMOS devices suffer NBTI while their gate input is low (transistor on),
nMOS devices suffer PBTI while the input is high; the per-network delay
contributions are combined with the cell's ``(wp, wn)`` weights.

Every model method is **ndarray-native**: scalar inputs take the
original scalar code path (bit-identical to previous releases — the
memoized delay pipeline in :mod:`repro.aging.delay` depends on that),
while array inputs broadcast through the same formulas in vectorized
NumPy, which is what lets the batched STA engine evaluate a whole
``(gates, corners, samples)`` Monte Carlo tensor without a per-gate
Python loop (:mod:`repro.mc`). Validation is broadcast-safe: any
out-of-range *element* raises the same :class:`ValueError` the scalar
path raises for the same value.
"""

import math
from dataclasses import dataclass

import numpy as np

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class BTIModel:
    """Parametric BTI aging model.

    Attributes
    ----------
    prefactor_v:
        ``A`` in volts per second**time_exponent at S = 1.
    time_exponent:
        Power-law time exponent ``n`` (classic reaction-diffusion: 1/6).
    stress_exponent:
        Exponent on the stress duty factor S.
    vdd:
        Supply voltage in volts.
    vth:
        Fresh threshold voltage in volts.
    alpha:
        Alpha-power exponent of the drain-current/delay law.
    """

    prefactor_v: float = 1.8e-3
    time_exponent: float = 1.0 / 6.0
    stress_exponent: float = 0.5
    vdd: float = 1.1
    vth: float = 0.45
    alpha: float = 2.0
    #: Junction temperature the prefactor is calibrated at (85 C, the
    #: usual stress corner).
    temperature_k: float = 358.0
    #: Arrhenius activation energy of the BTI reaction (eV).
    activation_energy_ev: float = 0.15

    @property
    def overdrive(self):
        """Fresh gate overdrive voltage ``Vdd - Vth`` in volts."""
        return self.vdd - self.vth

    def delta_vth(self, stress, years):
        """Threshold-voltage shift in volts.

        Parameters
        ----------
        stress:
            Stress duty factor in [0, 1] (fraction of lifetime under
            stress; recovery happens in the remainder). Scalar or
            ndarray (broadcast against *years*).
        years:
            Operational lifetime in years (>= 0). Scalar or ndarray.
        """
        if np.ndim(stress) == 0 and np.ndim(years) == 0:
            stress, years = float(stress), float(years)
            if not 0.0 <= stress <= 1.0:
                raise ValueError(
                    "stress factor must be in [0, 1], got %r" % stress)
            if years < 0:
                raise ValueError(
                    "lifetime must be non-negative, got %r" % years)
            if years == 0 or stress == 0:
                return 0.0
            t_seconds = years * SECONDS_PER_YEAR
            return (self.prefactor_v
                    * stress ** self.stress_exponent
                    * t_seconds ** self.time_exponent)
        stress = np.asarray(stress, dtype=np.float64)
        years = np.asarray(years, dtype=np.float64)
        if np.any((stress < 0.0) | (stress > 1.0)):
            bad = stress[(stress < 0.0) | (stress > 1.0)].flat[0]
            raise ValueError(
                "stress factor must be in [0, 1], got %r" % float(bad))
        if np.any(years < 0.0):
            bad = years[years < 0.0].flat[0]
            raise ValueError(
                "lifetime must be non-negative, got %r" % float(bad))
        t_seconds = years * SECONDS_PER_YEAR
        shift = (self.prefactor_v
                 * stress ** self.stress_exponent
                 * t_seconds ** self.time_exponent)
        # The scalar path short-circuits zero stress/lifetime to exactly
        # 0.0 before exponentiating; mirror that (0**exponent is 1.0
        # for a zero exponent, so the formula alone would not).
        return np.where((stress == 0.0) | (t_seconds == 0.0), 0.0, shift)

    def delay_multiplier_from_dvth(self, dvth, allow_speedup=False):
        """Delay scaling factor (>= 1) for a transistor shifted by *dvth*.

        *dvth* may be a scalar or an ndarray. *allow_speedup* permits
        negative shifts (multiplier < 1) — process-variation draws can
        land a gate *faster* than nominal, which deterministic aging
        never does; the Monte Carlo path opts in explicitly.
        """
        if np.ndim(dvth) == 0:
            dvth = float(dvth)
            if dvth < 0 and not allow_speedup:
                raise ValueError("dVth must be non-negative, got %r" % dvth)
            headroom = self.overdrive - dvth
            if headroom <= 0:
                raise ValueError(
                    "dVth %.3f V exceeds the gate overdrive %.3f V; the "
                    "device no longer switches" % (dvth, self.overdrive))
            return (self.overdrive / headroom) ** self.alpha
        dvth = np.asarray(dvth, dtype=np.float64)
        if not allow_speedup and np.any(dvth < 0):
            bad = dvth[dvth < 0].flat[0]
            raise ValueError(
                "dVth must be non-negative, got %r" % float(bad))
        headroom = self.overdrive - dvth
        if np.any(headroom <= 0):
            bad = dvth[headroom <= 0].flat[0]
            raise ValueError(
                "dVth %.3f V exceeds the gate overdrive %.3f V; the device "
                "no longer switches" % (float(bad), self.overdrive))
        return (self.overdrive / headroom) ** self.alpha

    def transistor_multiplier(self, stress, years):
        """Delay multiplier of one transistor network under *stress*."""
        return self.delay_multiplier_from_dvth(self.delta_vth(stress, years))

    def cell_multiplier(self, sp, sn, years, wp=0.5, wn=0.5):
        """Delay multiplier of a whole cell.

        Combines pMOS (NBTI, stress ``sp``) and nMOS (PBTI, stress ``sn``)
        degradation with the cell's network weights::

            m = 1 + wp*(m_p - 1) + wn*(m_n - 1)

        All stress/lifetime parameters may be ndarrays (broadcast
        together); scalars keep the historical scalar code path.
        """
        mp = self.transistor_multiplier(sp, years)
        mn = self.transistor_multiplier(sn, years)
        return 1.0 + wp * (mp - 1.0) + wn * (mn - 1.0)

    def guardband_fraction(self, stress, years):
        """Fractional delay guardband needed by a typical (wp=wn=0.5) cell."""
        return self.cell_multiplier(stress, stress, years) - 1.0

    def at_temperature(self, temperature_k):
        """Derive a model recalibrated for another junction temperature.

        BTI is thermally activated (Arrhenius): the ΔVth prefactor
        scales by ``exp(Ea/k * (1/T_ref - 1/T))``, so cooler parts age
        more slowly. Everything else is carried over.
        """
        if temperature_k <= 0:
            raise ValueError("temperature must be positive kelvin")
        boltzmann_ev = 8.617333262e-5
        factor = math.exp(self.activation_energy_ev / boltzmann_ev
                          * (1.0 / self.temperature_k
                             - 1.0 / temperature_k))
        return BTIModel(
            prefactor_v=self.prefactor_v * factor,
            time_exponent=self.time_exponent,
            stress_exponent=self.stress_exponent,
            vdd=self.vdd, vth=self.vth, alpha=self.alpha,
            temperature_k=temperature_k,
            activation_energy_ev=self.activation_energy_ev)

    def years_until_dvth(self, stress, dvth):
        """Invert the model: lifetime (years) to accumulate *dvth* volts."""
        if dvth <= 0:
            return 0.0
        if stress <= 0:
            return math.inf
        t_seconds = (dvth / (self.prefactor_v
                             * stress ** self.stress_exponent)
                     ) ** (1.0 / self.time_exponent)
        return t_seconds / SECONDS_PER_YEAR


#: Model instance used throughout the reproduction unless overridden.
DEFAULT_BTI = BTIModel()
