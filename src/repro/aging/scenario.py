"""Aging scenarios: a lifetime plus a stress annotation.

An :class:`AgingScenario` is the unit of "aging condition" used across
the whole flow: STA, characterization tables and the microarchitecture
flow are all keyed by scenarios such as *10 years, worst-case stress* or
*10 years, actual-case stress under IDCT inputs*.
"""

from dataclasses import dataclass, field
from typing import Union

from .stress import ActualStress, UniformStress, WORST, BALANCE, NONE


@dataclass(frozen=True)
class AgingScenario:
    """One point in (lifetime, stress) space.

    Attributes
    ----------
    years:
        Operational lifetime in years. 0 means fresh silicon.
    stress:
        A stress annotation (:data:`~repro.aging.stress.WORST`,
        :data:`~repro.aging.stress.BALANCE` or an
        :class:`~repro.aging.stress.ActualStress`).
    """

    years: float
    stress: Union[UniformStress, ActualStress] = WORST

    @property
    def label(self):
        """Stable human-readable key, e.g. ``"10y_worst"`` or ``"fresh"``."""
        if self.years == 0:
            return "fresh"
        years = ("%g" % self.years)
        return "%sy_%s" % (years, self.stress.label)

    @property
    def is_fresh(self):
        return self.years == 0

    def gate_stress(self, gate):
        """Per-gate ``(s_pmos, s_nmos)`` under this scenario."""
        return self.stress.gate_stress(gate)

    def __str__(self):
        return self.label


def fresh():
    """The no-aging scenario (t = 0)."""
    return AgingScenario(0.0, NONE)


def worst_case(years):
    """Worst-case (S = 100%) scenario after *years* years."""
    return AgingScenario(float(years), WORST)


def balance_case(years):
    """Balanced (S = 50%) scenario after *years* years."""
    return AgingScenario(float(years), BALANCE)


def actual_case(years, annotation):
    """Actual-case scenario from an :class:`ActualStress` annotation."""
    return AgingScenario(float(years), annotation)


#: Scenarios used throughout the paper's evaluation.
FRESH = fresh()
ONE_YEAR_WORST = worst_case(1)
TEN_YEARS_WORST = worst_case(10)
ONE_YEAR_BALANCE = balance_case(1)
TEN_YEARS_BALANCE = balance_case(10)
