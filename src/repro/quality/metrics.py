"""Quality metrics: PSNR and error statistics.

PSNR is the paper's image-quality metric; 30 dB is cited (after [11]) as
the commonly accepted threshold for acceptable image quality. The error
statistics mirror the quantities reported in the motivational study
(percentage of erroneous outputs of a component, Fig. 1).
"""

import numpy as np

#: PSNR commonly considered acceptable image quality (paper, citing [11]).
ACCEPTABLE_PSNR_DB = 30.0


def mse(reference, test):
    """Mean squared error between two arrays of equal shape."""
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError("shape mismatch: %r vs %r"
                         % (reference.shape, test.shape))
    if reference.size == 0:
        return 0.0
    return float(np.mean((reference - test) ** 2))


def psnr_db(reference, test, peak=255.0):
    """Peak signal-to-noise ratio in dB (infinite for identical inputs)."""
    error = mse(reference, test)
    if error == 0:
        return float("inf")
    return float(10.0 * np.log10(peak * peak / error))


def error_rate(exact, observed):
    """Fraction of positions where *observed* differs from *exact*.

    This is the paper's "percentage of error" for a component: how many
    applied input vectors produced a wrong output word.
    """
    exact = np.asarray(exact)
    observed = np.asarray(observed)
    if exact.shape != observed.shape:
        raise ValueError("shape mismatch: %r vs %r"
                         % (exact.shape, observed.shape))
    if exact.size == 0:
        return 0.0
    return float(np.mean(exact != observed))


def mean_abs_error(exact, observed):
    """Mean absolute numeric error (0.0 for empty inputs)."""
    exact = np.asarray(exact, dtype=np.float64)
    observed = np.asarray(observed, dtype=np.float64)
    if exact.size == 0:
        return 0.0
    return float(np.mean(np.abs(exact - observed)))


def max_abs_error(exact, observed):
    """Largest absolute numeric error."""
    exact = np.asarray(exact, dtype=np.float64)
    observed = np.asarray(observed, dtype=np.float64)
    if exact.size == 0:
        return 0.0
    return float(np.max(np.abs(exact - observed)))


def error_summary(exact, observed):
    """Bundle of all error statistics as a dict."""
    return {
        "error_rate": error_rate(exact, observed),
        "mean_abs_error": mean_abs_error(exact, observed),
        "max_abs_error": max_abs_error(exact, observed),
    }


def is_acceptable_quality(psnr_value_db, threshold_db=ACCEPTABLE_PSNR_DB):
    """Apply the paper's 30 dB acceptability criterion."""
    return psnr_value_db >= threshold_db


def snr_db(reference, test):
    """Signal-to-noise ratio in dB (for the 1-D signal case study).

    Relative to the *reference* signal's own power, so it measures how
    faithfully an (approximate) filter tracks the exact one.
    """
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError("shape mismatch: %r vs %r"
                         % (reference.shape, test.shape))
    noise = np.sum((reference - test) ** 2)
    if noise == 0:
        return float("inf")
    power = np.sum(reference.astype(np.float64) ** 2)
    if power == 0:
        return float("-inf")
    return float(10.0 * np.log10(power / noise))
