"""Quality metrics (PSNR, error rates)."""

from .metrics import (ACCEPTABLE_PSNR_DB, error_rate, error_summary,
                      is_acceptable_quality, max_abs_error, mean_abs_error,
                      mse, psnr_db, snr_db)
from .ssim import ssim

__all__ = [
    "ACCEPTABLE_PSNR_DB", "error_rate", "error_summary",
    "is_acceptable_quality", "max_abs_error", "mean_abs_error", "mse",
    "psnr_db", "snr_db", "ssim",
]
