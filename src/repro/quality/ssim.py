"""Structural similarity (SSIM) for grayscale images.

PSNR (the paper's metric) measures pixel-wise fidelity; SSIM adds a
perceptual axis that the quality benchmarks use as a cross-check — an
approximation that keeps 30 dB PSNR but destroys structure would be a
hollow reproduction. Implemented with an 8x8 sliding window and uniform
weighting (no external dependencies).
"""

import numpy as np

_C1 = (0.01 * 255) ** 2
_C2 = (0.03 * 255) ** 2


def _windows(image, size):
    """All (size x size) windows as a 4-D strided view."""
    h, w = image.shape
    if h < size or w < size:
        raise ValueError("image smaller than the SSIM window")
    shape = (h - size + 1, w - size + 1, size, size)
    strides = image.strides * 2
    return np.lib.stride_tricks.as_strided(image, shape=shape,
                                           strides=strides)


def ssim(reference, test, window=8):
    """Mean SSIM over all sliding windows; 1.0 means identical."""
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError("shape mismatch: %r vs %r"
                         % (reference.shape, test.shape))
    ref_win = _windows(reference, window)
    test_win = _windows(test, window)
    mu_r = ref_win.mean(axis=(2, 3))
    mu_t = test_win.mean(axis=(2, 3))
    var_r = ref_win.var(axis=(2, 3))
    var_t = test_win.var(axis=(2, 3))
    cov = ((ref_win - mu_r[..., None, None])
           * (test_win - mu_t[..., None, None])).mean(axis=(2, 3))
    numerator = (2 * mu_r * mu_t + _C1) * (2 * cov + _C2)
    denominator = (mu_r ** 2 + mu_t ** 2 + _C1) * (var_r + var_t + _C2)
    return float((numerator / denominator).mean())
