"""Paper-fidelity invariants as executable checks.

Each check returns a list of :class:`InvariantResult` — one row per
named invariant, with a human-readable detail string on failure. The
invariants encode what the paper *claims*, independently of how the
code computes it:

* **Eq. 2** (:func:`check_characterization`): aging never speeds a
  circuit up; the required precision ``K_j`` is the *largest* precision
  whose aged delay meets the fresh full-precision constraint
  (``t_Cj(Aging, K_j) <= t_Cj(noAging, N_j)``), and every higher
  precision violates it; aged delays are monotone in lifetime and in
  stress (balanced <= worst case) for every characterized precision.
* **Section-V slack rule** (:func:`check_slack_rule`): exactly the
  blocks with negative slack are approximated, precision never
  increases, and a validated outcome has zero residual guardband with
  no block left violating.
* **EXPERIMENTS.md shape claims** (:func:`check_error_shape`,
  :func:`check_psnr_endpoints`): a guardband-free fresh circuit makes
  zero timing errors; error rates are monotone in lifetime and stress;
  the fresh DCT-IDCT chain is high quality while the naively
  guardband-stripped aged chain collapses.
"""

from dataclasses import dataclass

import numpy as np

#: Absolute delay tolerance (ps) for comparisons between STA runs.
DELAY_EPS_PS = 1e-6


@dataclass
class InvariantResult:
    """One named invariant, checked."""

    name: str
    passed: bool
    detail: str = ""

    def describe(self):
        tag = "PASS" if self.passed else "FAIL"
        tail = (": " + self.detail) if self.detail else ""
        return "%s %s%s" % (tag, self.name, tail)


def _result(name, passed, detail_ok, detail_bad):
    return InvariantResult(name=name, passed=passed,
                           detail=detail_ok if passed else detail_bad)


def _scenario_years(label):
    """Parse ``"<years>y_<kind>"`` labels; None for e.g. ``"fresh"``."""
    if "y_" not in label:
        return None, None
    head, kind = label.split("y_", 1)
    try:
        return float(head), kind
    except ValueError:
        return None, None


def check_characterization(char):
    """Eq. 2 + monotonicity invariants over one characterization table.

    Parameters
    ----------
    char:
        A :class:`~repro.core.characterize.ComponentCharacterization`.
    """
    results = []
    aged_labels = [lbl for lbl in char.scenario_labels if lbl != "fresh"]

    # Aging never helps: t(Aging, P) >= t(noAging, P) for every point.
    bad = [(p, lbl) for p in char.precisions for lbl in aged_labels
           if char.aged_delay_ps(p, lbl) < char.fresh_ps[p] - DELAY_EPS_PS]
    results.append(_result(
        "aging_never_helps", not bad,
        "%d precision/scenario points all slower aged than fresh"
        % (len(char.precisions) * len(aged_labels)),
        "aged faster than fresh at %s" % (bad[:3],)))

    # The "fresh" pseudo-scenario, when characterized, equals fresh STA.
    if "fresh" in char.scenario_labels:
        off = [p for p in char.precisions
               if abs(char.aged_delay_ps(p, "fresh") - char.fresh_ps[p])
               > DELAY_EPS_PS]
        results.append(_result(
            "fresh_scenario_is_fresh", not off,
            "fresh-scenario delays equal fresh STA",
            "fresh-scenario delay differs at precisions %s" % off[:5]))

    # Eq. 2: K is feasible and maximal against the fresh constraint.
    constraint = char.fresh_delay_ps()
    for label in aged_labels:
        required = char.required_precision(label)
        if required is None:
            violating = all(char.aged_delay_ps(p, label)
                            > constraint + DELAY_EPS_PS
                            for p in char.precisions)
            results.append(_result(
                "eq2_required_precision[%s]" % label, violating,
                "no feasible precision, and indeed every candidate "
                "violates the constraint",
                "required_precision returned None but some precision "
                "meets the constraint"))
            continue
        feasible = (char.aged_delay_ps(required, label)
                    <= constraint + DELAY_EPS_PS)
        maximal = all(char.aged_delay_ps(p, label)
                      > constraint + DELAY_EPS_PS
                      for p in char.precisions if p > required)
        results.append(_result(
            "eq2_required_precision[%s]" % label, feasible and maximal,
            "K=%d: t(Aging, K) = %.2f ps <= t(noAging, N) = %.2f ps, "
            "and every higher precision violates"
            % (required, char.aged_delay_ps(required, label), constraint),
            "K=%d is %s against constraint %.2f ps"
            % (required,
               "infeasible" if not feasible else "not maximal",
               constraint)))

    # Monotone in lifetime: same stress kind, more years, >= delay.
    parsed = [(lbl,) + _scenario_years(lbl) for lbl in aged_labels]
    by_kind = {}
    for label, years, kind in parsed:
        if years is not None:
            by_kind.setdefault(kind, []).append((years, label))
    lifetime_bad = []
    for kind, entries in by_kind.items():
        entries.sort()
        for (y_lo, lbl_lo), (y_hi, lbl_hi) in zip(entries, entries[1:]):
            for p in char.precisions:
                if (char.aged_delay_ps(p, lbl_hi)
                        < char.aged_delay_ps(p, lbl_lo) - DELAY_EPS_PS):
                    lifetime_bad.append((p, lbl_lo, lbl_hi))
    if any(len(v) > 1 for v in by_kind.values()):
        results.append(_result(
            "aged_delay_monotone_in_lifetime", not lifetime_bad,
            "longer lifetimes never reduce aged delay",
            "aged delay shrank with lifetime at %s" % lifetime_bad[:3]))

    # Monotone in stress: balanced stress ages less than worst case.
    years_seen = {}
    for label, years, kind in parsed:
        if years is not None:
            years_seen.setdefault(years, {})[kind] = label
    stress_bad = []
    compared = False
    for years, kinds in years_seen.items():
        if "balance" in kinds and "worst" in kinds:
            compared = True
            for p in char.precisions:
                if (char.aged_delay_ps(p, kinds["balance"])
                        > char.aged_delay_ps(p, kinds["worst"])
                        + DELAY_EPS_PS):
                    stress_bad.append((p, years))
    if compared:
        results.append(_result(
            "aged_delay_monotone_in_stress", not stress_bad,
            "balanced stress never exceeds worst-case stress",
            "balanced aged delay exceeds worst case at %s"
            % stress_bad[:3]))
    return results


def check_slack_rule(outcome):
    """Section-V slack-rule invariants over an approximation outcome.

    Parameters
    ----------
    outcome:
        A :class:`~repro.core.microarch.ApproximationOutcome`.
    """
    results = []
    decisions = outcome.decisions.values()

    wrong_trigger = [d.name for d in decisions
                     if d.approximated != (d.slack_before_ps < 0)]
    results.append(_result(
        "slack_rule_trigger", not wrong_trigger,
        "exactly the negative-slack blocks were approximated",
        "approximation/slack mismatch in blocks %s" % wrong_trigger[:5]))

    raised = [d.name for d in decisions
              if d.chosen_precision > d.original_precision]
    results.append(_result(
        "precision_never_increases", not raised,
        "no block gained precision",
        "precision increased in blocks %s" % raised[:5]))

    if outcome.validated:
        results.append(_result(
            "validated_means_no_guardband",
            outcome.residual_guardband_ps <= DELAY_EPS_PS,
            "validated outcome carries zero residual guardband",
            "validated outcome still needs %.3f ps of guardband"
            % outcome.residual_guardband_ps))
        late = [d.name for d in decisions
                if d.slack_after_ps < -DELAY_EPS_PS]
        results.append(_result(
            "validated_blocks_meet_constraint", not late,
            "every block meets the fresh constraint after approximation",
            "blocks %s still violate after approximation" % late[:5]))
    else:
        results.append(_result(
            "unvalidated_documents_guardband",
            outcome.residual_guardband_ps > 0,
            "unvalidated outcome documents its residual guardband",
            "outcome not validated yet residual guardband is zero"))
    return results


def check_error_shape(component, library, years=(1.0, 10.0),
                      vectors=256, rng=None, effort="ultra",
                      netlist=None):
    """EXPERIMENTS.md error-shape claims on one component.

    Streams *vectors* random operands through the component's netlist
    at its **fresh critical path** (the guardband-free clock) under a
    ladder of aging scenarios and checks:

    * the fresh circuit makes zero timing errors,
    * the error rate is monotone non-decreasing in lifetime
      (worst-case stress), and
    * balanced stress never errs more than worst-case stress at the
      longest lifetime.
    """
    from ..aging import balance_case, worst_case
    from ..sim.activity import operand_stream_bits
    from ..sim.timing import TimedSimulator
    from ..sta.sta import critical_path_delay

    if netlist is None:
        from ..synth.synthesize import synthesize_netlist
        netlist = synthesize_netlist(component, library, effort=effort)
    rng = np.random.default_rng(rng)
    operands = component.random_operands(vectors, rng=rng)
    bits = operand_stream_bits(operands, component.operand_widths)
    clock = critical_path_delay(netlist, library)

    def rate(scenario):
        sim = TimedSimulator(netlist, library, clock, scenario=scenario)
        return sim.run_stream(bits).error_rate

    years = sorted(years)
    fresh_rate = rate(None)
    worst_rates = [rate(worst_case(y)) for y in years]
    balance_rate = rate(balance_case(years[-1]))

    results = [_result(
        "zero_fresh_errors", fresh_rate == 0.0,
        "fresh netlist at its own critical path: error rate 0",
        "fresh netlist errs at rate %.4f at its own critical path"
        % fresh_rate)]
    ladder = [fresh_rate] + worst_rates
    monotone = all(lo <= hi + 1e-12 for lo, hi in zip(ladder, ladder[1:]))
    results.append(_result(
        "error_rate_monotone_in_lifetime", monotone,
        "error rate ladder %s over years %s"
        % (["%.4f" % r for r in ladder], [0.0] + years),
        "error rate not monotone in lifetime: %s over years %s"
        % (["%.4f" % r for r in ladder], [0.0] + years)))
    results.append(_result(
        "error_rate_monotone_in_stress",
        balance_rate <= worst_rates[-1] + 1e-12,
        "balanced stress (%.4f) <= worst case (%.4f) at %gy"
        % (balance_rate, worst_rates[-1], years[-1]),
        "balanced stress errs more (%.4f) than worst case (%.4f) at %gy"
        % (balance_rate, worst_rates[-1], years[-1])))
    return results


def check_psnr_endpoints(library, image="akiyo", size=32, width=32,
                         years=10.0, fresh_floor_db=40.0,
                         min_collapse_db=5.0, effort="ultra"):
    """EXPERIMENTS.md PSNR endpoints on the DCT-IDCT chain.

    The fresh fixed-point codec round-trips a synthetic image at high
    quality (paper: ~45 dB); decoding through a gate-level multiplier
    aged *years* at the fresh clock (the naive guardband removal of the
    motivational study) collapses the PSNR. Gate-level simulation of a
    ``width``-bit multiplier makes this the most expensive invariant —
    tier-2 territory.
    """
    from ..approx.gate_level import GateLevelArithmetic, TimedComponentModel
    from ..aging import worst_case
    from ..media import make_image, roundtrip_psnr
    from ..rtl import Multiplier

    img = make_image(image, size=size)
    fresh_psnr = roundtrip_psnr(img)
    aged_model = TimedComponentModel(
        Multiplier(width), library, scenario=worst_case(years),
        effort=effort)
    aged_psnr = roundtrip_psnr(
        img, decode_arithmetic=GateLevelArithmetic(mul_model=aged_model))

    results = [_result(
        "fresh_psnr_endpoint", fresh_psnr >= fresh_floor_db,
        "fresh chain round-trips %s at %.1f dB (floor %.1f)"
        % (image, fresh_psnr, fresh_floor_db),
        "fresh chain only reaches %.1f dB (floor %.1f)"
        % (fresh_psnr, fresh_floor_db))]
    results.append(_result(
        "aged_psnr_collapse",
        aged_psnr <= fresh_psnr - min_collapse_db,
        "guardband-free aged decode drops %s to %.1f dB (fresh %.1f)"
        % (image, aged_psnr, fresh_psnr),
        "aged decode at %.1f dB did not collapse vs fresh %.1f dB"
        % (aged_psnr, fresh_psnr)))
    return results


def check_synth_sweep(component, library, efforts=("medium", "ultra"),
                      precisions=None, target_ps=None):
    """Incremental sweep synthesis vs from-scratch synthesis, bit-exactly.

    :class:`repro.synth.sweep.SweepSynthesis` is a perf optimization
    with the same contract as the vectorized STA engine: identical
    results, no epsilon. For every (effort, precision) pair this check
    derives the truncated variant from the full-precision base by
    cone-restricted replay and compares it against an independent
    ``synthesize()`` of the explicitly truncated component —
    content-fingerprint equality of the netlists plus float-equal
    delay/area/leakage — and requires that no derivation fell back to
    the from-scratch path.
    """
    from ..core.cache import netlist_fingerprint
    from ..obs import metrics as obs_metrics
    from ..synth.sweep import SweepSynthesis
    from ..synth.synthesize import synthesize

    width = component.width
    if precisions is None:
        precisions = [width, width - 1, max(1, width - 3),
                      max(1, width // 2)]
    precisions = sorted(set(p for p in precisions if 1 <= p <= width),
                        reverse=True)
    bad = []
    points = 0
    fallbacks = 0
    for effort in efforts:
        with obs_metrics.scoped() as registry:
            sweep = SweepSynthesis(component, library, effort=effort,
                                   target_ps=target_ps)
            for precision in precisions:
                derived = sweep.derive(precision)
                scratch = synthesize(component.with_precision(precision),
                                     library, effort=effort,
                                     target_ps=target_ps)
                points += 1
                if (netlist_fingerprint(derived.netlist)
                        != netlist_fingerprint(scratch.netlist)
                        or derived.delay_ps != scratch.delay_ps
                        or derived.area_um2 != scratch.area_um2
                        or derived.leakage_nw != scratch.leakage_nw):
                    bad.append("%s@%s" % (precision, effort))
            snap = registry.snapshot()
        # The scope isolates the fallback count; fold the work metrics
        # back into the ambient registry so they still show up in run
        # manifests.
        obs_metrics.registry().merge(snap)
        fallbacks += int(snap.get("counters", {}).get(
            obs_metrics.SYNTH_SWEEP_FALLBACKS, 0))
    results = [_result(
        "synth_sweep_bit_exact", not bad,
        "%d derived point(s) fingerprint-identical to from-scratch "
        "synthesis" % points,
        "sweep-derived synthesis diverges from scratch at: %s"
        % ", ".join(bad))]
    results.append(_result(
        "synth_sweep_no_fallback", fallbacks == 0,
        "every derivation replayed incrementally (no fallbacks)",
        "%d derivation(s) fell back to from-scratch synthesis"
        % fallbacks))
    return results

def check_sta_engine(netlist, library, scenarios, bti=None,
                     degradation=None):
    """Batched/incremental STA vs the scalar oracle, bit-exactly.

    The vectorized engine (:mod:`repro.sta.engine`) is a perf
    optimization with a correctness contract: identical IEEE results.
    This check holds it to that contract without any epsilon —

    * ``analyze_batch`` over the fresh corner plus *scenarios* must
      reproduce :func:`repro.sta.sta.analyze` arrivals, gate delays and
      the critical path float-for-float per corner;
    * ``analyze_incremental`` with the first half of the primary inputs
      tied low must match the scalar analysis of the explicitly swept
      netlist (:func:`repro.sta.engine.tie_low`).
    """
    from ..aging.bti import DEFAULT_BTI
    from ..sta.engine import analyze_batch, analyze_incremental, tie_low
    from ..sta.sta import analyze

    if bti is None:
        bti = DEFAULT_BTI
    corners = [None] + [s for s in scenarios if s is not None]
    batch = analyze_batch(netlist, library, corners, bti=bti,
                          degradation=degradation)
    bad = []
    for idx, corner in enumerate(corners):
        scalar = analyze(netlist, library, scenario=corner, bti=bti,
                         degradation=degradation)
        got = batch.report(idx)
        if (got.arrivals != scalar.arrivals
                or got.gate_delays != scalar.gate_delays
                or got.critical_path_ps != scalar.critical_path_ps):
            bad.append(got.scenario_label)
    results = [_result(
        "sta_batch_bit_exact", not bad,
        "%d corner(s) bit-identical to scalar STA" % len(corners),
        "batched STA diverges from scalar on: %s" % ", ".join(bad))]

    tied = list(netlist.primary_inputs[:max(1, len(netlist.primary_inputs)
                                            // 2)])
    inc = analyze_incremental(netlist, library, tied, corners=corners,
                              bti=bti, degradation=degradation,
                              baseline=batch)
    swept = tie_low(netlist, tied)
    bad = []
    for idx, corner in enumerate(corners):
        scalar = analyze(swept, library, scenario=corner, bti=bti,
                         degradation=degradation)
        got = inc.report(idx)
        if (got.critical_path_ps != scalar.critical_path_ps
                or got.gate_delays != scalar.gate_delays
                or any(got.arrivals[n] != a
                       for n, a in scalar.arrivals.items())):
            bad.append(got.scenario_label)
    results.append(_result(
        "sta_incremental_bit_exact", not bad,
        "cone re-analysis of %d tied input(s) matches swept-netlist STA"
        % len(tied),
        "incremental STA diverges from tie_low oracle on: %s"
        % ", ".join(bad)))
    return results


def check_injection(component, library, years=(1.0, 10.0),
                    clock_scales=(1.0, 0.95), vectors=256, seed=20170618,
                    effort="ultra", stimulus="normal"):
    """Fault-injection campaign invariants on one component.

    Runs a small :mod:`repro.inject` campaign (fresh + worst-case
    scenarios at *years*, clock scales relative to the fresh critical
    path) and checks what the paper's guardband-free framing demands:

    * a fresh circuit clocked at its own critical path suffers exactly
      zero injected faults;
    * a guardbanded circuit (clock = aged critical path) has zero
      violating gates at every scenario;
    * injected-fault and faulted-vector counts are monotone
      non-decreasing in lifetime at fixed clock, and in clock
      aggressiveness at fixed lifetime (the masks are nested — see
      :mod:`repro.inject.masks`);
    * the packed XOR injector agrees bit-for-bit with the scalar uint8
      reference injector on the most aggressive grid point.
    """
    from ..inject import CampaignSpec, run_campaign
    from ..inject.campaign import _prelude, component_spec
    from ..inject.faultload import build_faultload
    from ..inject.inject_sim import (evaluate_bytes_injected,
                                     evaluate_packed_injected,
                                     unpack_op_masks)
    from ..sim.logic import evaluate
    from ..core.specs import parse_scenario
    from ..sta.engine import corner_label

    years = sorted(years)
    scales = sorted(clock_scales, reverse=True)
    scenarios = tuple(["fresh"] + ["worst%gy" % y for y in years])
    spec = CampaignSpec(component=component_spec(component),
                        width=component.width, scenarios=scenarios,
                        clock_scales=tuple(scales), vectors=vectors,
                        seed=seed, effort=effort, stimulus=stimulus)
    result = run_campaign(spec, library=library)
    labels = [corner_label(parse_scenario(s)) for s in spec.scenarios]
    by_point = {(r["scenario"], r["clock_scale"]): r for r in result.rows}

    fresh_row = by_point[("fresh", scales[0])]
    results = [_result(
        "inject_zero_fresh_faults",
        scales[0] == 1.0 and fresh_row["injected_faults"] == 0
        and fresh_row["violating_gates"] == 0,
        "fresh circuit at its own critical path: 0 violating gates, "
        "0 injected faults",
        "fresh circuit at clock scale %g: %d violating gate(s), %d "
        "injected fault(s)" % (scales[0], fresh_row["violating_gates"],
                               fresh_row["injected_faults"]))]

    bad = [g["scenario"] for g in result.guardbanded
           if g["violating_gates"] != 0]
    results.append(_result(
        "inject_zero_when_guardbanded", not bad,
        "aged clock (guardband) leaves no violating gate in %d "
        "scenario(s)" % len(result.guardbanded),
        "guardbanded corners still violate: %s" % ", ".join(bad)))

    bad = []
    for scale in scales:
        for metric in ("injected_faults", "faulted_vectors"):
            ladder = [by_point[(s, scale)][metric] for s in labels]
            if any(lo > hi for lo, hi in zip(ladder, ladder[1:])):
                bad.append("%s @ x%g: %s" % (metric, scale, ladder))
    results.append(_result(
        "inject_faults_monotone_in_lifetime", not bad,
        "fault counts non-decreasing over %s at every clock scale"
        % (labels,),
        "fault counts decrease with lifetime: %s" % "; ".join(bad)))

    bad = []
    for scenario in labels:
        for metric in ("injected_faults", "faulted_vectors"):
            ladder = [by_point[(scenario, scale)][metric]
                      for scale in scales]
            if any(lo > hi for lo, hi in zip(ladder, ladder[1:])):
                bad.append("%s @ %s: %s" % (metric, scenario, ladder))
    results.append(_result(
        "inject_faults_monotone_in_clock", not bad,
        "fault counts non-decreasing as the clock tightens %s"
        % (list(scales),),
        "fault counts decrease with clock aggressiveness: %s"
        % "; ".join(bad)))

    prelude = _prelude(spec, library=library)
    label = labels[-1]
    clock = prelude.fresh_clock_ps * scales[-1]
    faultload = build_faultload(prelude.program, prelude.batch, label,
                                clock, activity=spec.activity)
    masks = faultload.masks(spec.seed, prelude.words)
    packed = evaluate_packed_injected(prelude.compiled, prelude.pi_bits,
                                      masks)
    reference = evaluate_bytes_injected(
        prelude.compiled, prelude.pi_bits,
        unpack_op_masks(masks, spec.vectors))
    agree = bool((packed == reference).all())
    clean_agree = bool(
        (evaluate_packed_injected(prelude.compiled, prelude.pi_bits, {})
         == evaluate(prelude.compiled, prelude.pi_bits)).all())
    results.append(_result(
        "inject_packed_matches_reference", agree and clean_agree,
        "packed XOR injection bit-exact vs scalar reference (%d masked "
        "gate(s), %d vectors)" % (len(masks), spec.vectors),
        "packed and scalar injectors disagree at %s x%g (masked=%d, "
        "clean_path_agrees=%s)" % (label, scales[-1], len(masks),
                                   clean_agree)))
    return results


def check_mc(component, library, years=(1.0, 10.0),
             clock_scales=(1.0, 0.97), sigma_mv=30.0, samples=192,
             seed=20170618, effort="ultra", sweep_bits=2):
    """Monte Carlo variation-engine invariants on one component.

    Runs a small :mod:`repro.mc` yield analysis (fresh + worst-case
    scenarios at *years*) and checks what the stochastic Eq. 2 framing
    demands:

    * **sigma -> 0 convergence** — the worst deviation of sampled
      critical paths from the deterministic engine shrinks (weakly) as
      sigma is quartered, and ``sigma = 0`` is *bit-identical* to
      :func:`repro.sta.engine.analyze_batch` (``==``, no epsilon);
    * **yield monotonicity** — per precision, yield is non-increasing
      in lifetime at a fixed clock and non-increasing as the clock
      tightens at a fixed lifetime;
    * **jobs determinism** — ``run_mc`` under ``jobs=1`` and ``jobs=2``
      produce equal ``to_dict()`` results;
    * **quantile sandwich** — ``p50 <= mean <= p99`` on every exactly
      evaluated row (critical paths are maxima over many gate sums, a
      right-skewed family).
    """
    from ..core.specs import parse_scenario
    from ..inject.campaign import component_spec
    from ..mc import MCSpec, VariationModel, analyze_mc, run_mc
    from ..sta.engine import analyze_batch, corner_label
    from ..synth.synthesize import synthesize_netlist

    years = sorted(years)
    scales = sorted(clock_scales, reverse=True)
    scenarios = tuple(["fresh"] + ["worst%gy" % y for y in years])
    spec = MCSpec(component=component_spec(component),
                  width=component.width, scenarios=scenarios,
                  clock_scales=tuple(scales), sigma_mv=sigma_mv,
                  samples=samples, seed=seed, sweep_bits=sweep_bits,
                  effort=effort)
    r1 = run_mc(spec, library=library, jobs=1)
    r2 = run_mc(spec, library=library, jobs=2)
    results = [_result(
        "mc_jobs_deterministic", r1.to_dict() == r2.to_dict(),
        "run_mc bit-identical across --jobs 1 / --jobs 2 (%d samples)"
        % samples,
        "run_mc results differ between --jobs 1 and --jobs 2")]

    netlist = synthesize_netlist(component, library, effort=effort)
    corners = tuple(parse_scenario(s) for s in scenarios)
    batch = analyze_batch(netlist, library, corners)
    det = batch.critical_path_ps[:, None]
    deviations = []
    for factor in (1.0, 0.25, 0.0625):
        rep = analyze_mc(netlist, library, corners,
                         VariationModel(sigma_mv=sigma_mv * factor,
                                        seed=seed),
                         samples=min(64, samples))
        deviations.append(float(np.abs(rep.critical_path_ps - det).max()))
    shrinking = all(hi >= lo - DELAY_EPS_PS for hi, lo in
                    zip(deviations, deviations[1:]))
    results.append(_result(
        "mc_sigma_converges_to_deterministic", shrinking,
        "max |sampled - deterministic| CP shrinks with sigma: %s ps"
        % ["%.4g" % d for d in deviations],
        "deviation does not shrink as sigma -> 0: %s ps"
        % ["%.4g" % d for d in deviations]))

    zero = analyze_mc(netlist, library, corners,
                      VariationModel(sigma_mv=0.0, seed=seed), samples=8)
    results.append(_result(
        "mc_sigma_zero_bit_identical",
        bool((zero.critical_path_ps == det).all()),
        "sigma = 0 sampled CPs == deterministic batch CPs (exact)",
        "sigma = 0 sampled CPs differ from the deterministic engine"))

    exact = {(row["precision"], row["scenario"], row["clock_scale"]): row
             for row in r1.rows if row["exact"]}
    labels = [corner_label(parse_scenario(s)) for s in scenarios]
    bad = []
    for precision in r1.precisions:
        for scale in scales:
            ladder = [exact[(precision, label, scale)]["yield_fraction"]
                      for label in labels
                      if (precision, label, scale) in exact]
            if any(lo < hi for lo, hi in zip(ladder, ladder[1:])):
                bad.append("precision %d @ x%g: %s"
                           % (precision, scale, ladder))
    results.append(_result(
        "mc_yield_monotone_in_lifetime", not bad,
        "yield non-increasing over %s at every precision/clock" % labels,
        "yield increases with lifetime: %s" % "; ".join(bad)))

    bad = []
    for precision in r1.precisions:
        for label in labels:
            ladder = [exact[(precision, label, scale)]["yield_fraction"]
                      for scale in scales
                      if (precision, label, scale) in exact]
            if any(lo < hi for lo, hi in zip(ladder, ladder[1:])):
                bad.append("precision %d @ %s: %s"
                           % (precision, label, ladder))
    results.append(_result(
        "mc_yield_monotone_in_clock", not bad,
        "yield non-increasing as the clock tightens %s" % (list(scales),),
        "yield increases as the clock tightens: %s" % "; ".join(bad)))

    # Finite-sample tolerance: with S draws the sample median wanders
    # around the sample mean by O(spread / sqrt(S)) even on a perfectly
    # symmetric distribution, so the sandwich is enforced up to a few
    # standard errors of the (p99 - p50) spread. Gross violations
    # (swapped quantiles, broken block reductions) exceed this by far.
    bad = []
    for key, row in sorted(exact.items(), key=repr):
        tol = 4.0 * (row["p99_ps"] - row["p50_ps"]) \
            / max(1.0, float(samples)) ** 0.5 + DELAY_EPS_PS
        if not (row["p50_ps"] <= row["mean_ps"] + tol
                and row["mean_ps"] <= row["p99_ps"] + tol):
            bad.append("%s: p50=%.4f mean=%.4f p99=%.4f"
                       % (key, row["p50_ps"], row["mean_ps"],
                          row["p99_ps"]))
    results.append(_result(
        "mc_quantile_sandwich", not bad,
        "p50 <= mean <= p99 (finite-sample tolerance) on all %d exact "
        "rows" % len(exact),
        "quantile sandwich broken: %s" % "; ".join(bad[:3])))
    return results
