"""Pure-Python golden reference models.

Every RTL component in :mod:`repro.rtl` already carries *two* models of
itself — the arithmetic :meth:`~repro.rtl.component.RTLComponent.exact`
/ ``approximate`` pair (NumPy) and the gate-level netlist. Both were
written by the same hands against the same spec, so a shared
misconception would slip through a two-way diff. This module adds a
third, deliberately *different* implementation: integer-only Python
that manipulates two's-complement encodings digit by digit — ripple
carries for the adders, signed digit-serial accumulation for the
Baugh-Wooley multiplier, an explicit radix-4 recoding loop for the
Booth multiplier, and per-tap/per-coefficient loops for the FIR and
DCT datapaths.

The golden-model contract (enforced by ``tests/test_verify_golden.py``
and the ``repro-aging verify`` CLI):

* ``golden_model(component)`` returns a callable over Python integers
  that equals ``component.approximate`` elementwise for every operand
  tuple and every precision, and
* both equal the synthesized netlist simulated by any engine.

All functions here are scalar and slow on purpose — clarity over speed;
the vectorized engines are the ones under test.
"""

from dataclasses import dataclass
from typing import List

from ..approx.truncation import truncate_lsbs


def wrap(value, width):
    """Reduce an unbounded Python int into the signed *width*-bit range."""
    mask = (1 << width) - 1
    value &= mask
    if value >= 1 << (width - 1):
        value -= 1 << width
    return value


def to_bits(value, width):
    """Two's-complement encoding of *value*, LSB first."""
    return [(value >> i) & 1 for i in range(width)]


def from_bits(bits):
    """Decode an LSB-first two's-complement bit list."""
    value = sum(bit << i for i, bit in enumerate(bits))
    if bits and bits[-1]:
        value -= 1 << len(bits)
    return value


def _truncated(component, operands):
    """Apply the component's LSB truncation to scalar operands."""
    out = []
    for value, opwidth in zip(operands, component.operand_widths):
        drop = min(component.drop_bits, opwidth)
        out.append(truncate_lsbs(int(value), drop))
    return out


# ---------------------------------------------------------------------------
# primitive golden datapaths (bit-level, scalar)
# ---------------------------------------------------------------------------

def golden_add(a, b, width):
    """Ripple-carry sum of two signed *width*-bit values, wrapped.

    Implemented as an explicit full-adder chain over bit lists — the
    same structure as :func:`repro.rtl.adder.ripple_core`, but over
    Python bools instead of gates.
    """
    abits = to_bits(wrap(a, width), width)
    bbits = to_bits(wrap(b, width), width)
    carry = 0
    sums = []
    for abit, bbit in zip(abits, bbits):
        sums.append(abit ^ bbit ^ carry)
        carry = (abit & bbit) | ((abit ^ bbit) & carry)
    return from_bits(sums)


def golden_multiply(a, b, width):
    """Signed product via digit-serial accumulation over ``2*width`` bits.

    Walks the multiplier's bits with explicit two's-complement weights
    (bit ``width-1`` weighs ``-2**(width-1)``), accumulating shifted
    copies of the multiplicand — a different decomposition than both
    the NumPy ``int64`` product and the netlist's Baugh-Wooley columns.
    """
    a = wrap(a, width)
    bbits = to_bits(wrap(b, width), width)
    acc = 0
    for i, bit in enumerate(bbits):
        if not bit:
            continue
        term = a << i
        if i == width - 1:      # the sign bit carries negative weight
            term = -term
        acc += term
    return wrap(acc, 2 * width)


def golden_booth_multiply(a, b, width):
    """Signed product via an explicit radix-4 Booth recoding loop.

    Decodes the multiplier into ``ceil(width/2)`` digits in
    ``{-2, -1, 0, +1, +2}`` from overlapping bit triples and
    accumulates ``digit * a << 2i`` — mirroring the recoding spec the
    Booth netlist implements, independently of its gate structure.
    """
    a = wrap(a, width)
    bbits = to_bits(wrap(b, width), width)

    def bit(i):
        if i < 0:
            return 0
        if i >= width:
            return bbits[width - 1]      # sign extension
        return bbits[i]

    acc = 0
    for i in range((width + 1) // 2):
        triple = (bit(2 * i + 1), bit(2 * i), bit(2 * i - 1))
        digit = {(0, 0, 0): 0, (0, 0, 1): 1, (0, 1, 0): 1, (0, 1, 1): 2,
                 (1, 0, 0): -2, (1, 0, 1): -1, (1, 1, 0): -1,
                 (1, 1, 1): 0}[triple]
        acc += digit * (a << (2 * i))
    return wrap(acc, 2 * width)


def golden_mac(a, b, c, width):
    """``wrap(a*b + c)`` over ``2*width`` bits via the golden product."""
    prod = golden_multiply(a, b, width)
    return wrap(prod + wrap(c, 2 * width), 2 * width)


def golden_descale(value, bits):
    """Round-to-nearest removal of a fixed-point scale (arithmetic shift).

    Mirrors :func:`repro.rtl.dct.descale` on scalars: add half an LSB,
    then shift right (floor division for negatives).
    """
    if bits == 0:
        return int(value)
    return (int(value) + (1 << (bits - 1))) >> bits


def golden_fir(taps, signal, coeff_bits, align_bits):
    """Direct-form FIR over Python ints, one tap product at a time.

    Matches :class:`repro.rtl.fir.FixedPointFIR` with exact arithmetic:
    each product is computed at the aligned coefficient scale and
    descaled *before* accumulation (the hardware's product register
    takes the top slice), so rounding happens in the same place.
    """
    taps = [int(t) for t in taps]
    signal = [int(s) for s in signal]
    n_taps = len(taps)
    out = []
    for n in range(len(signal)):
        acc = 0
        for k, tap in enumerate(taps):
            # tap k multiplies the sample k steps back in time
            idx = n - (n_taps - 1 - k)
            sample = signal[idx] if idx >= 0 else 0
            prod = (tap << align_bits) * sample
            acc += golden_descale(prod, coeff_bits + align_bits)
        out.append(acc)
    return out


def golden_transform_1d(row, coeffs, coeff_bits, align_bits):
    """One 1-D pass of the fixed-point DCT/IDCT datapath.

    ``coeffs`` is the integer coefficient matrix (rows select outputs);
    every product is descaled before the accumulation, matching
    :meth:`repro.rtl.dct.FixedPointTransform8._apply_matrix` with exact
    arithmetic.
    """
    out = []
    for k in range(len(coeffs)):
        acc = 0
        for n, sample in enumerate(row):
            prod = (int(coeffs[k][n]) << align_bits) * int(sample)
            acc += golden_descale(prod, coeff_bits + align_bits)
        out.append(acc)
    return out


def golden_dct_2d(block, coeffs, coeff_bits, align_bits, inverse=False):
    """2-D fixed-point DCT/IDCT of one 8x8 block.

    Pass order matches :class:`repro.rtl.dct.FixedPointTransform8`
    exactly — rows then columns for the forward transform, columns then
    rows for the inverse — because the per-product rounding makes the
    two orders differ by an LSB here and there.
    """
    mat = [[int(coeffs[j][i]) for j in range(len(coeffs))]
           for i in range(len(coeffs))] if inverse else \
          [[int(v) for v in row] for row in coeffs]

    def pass_rows(data):
        return [golden_transform_1d(row, mat, coeff_bits, align_bits)
                for row in data]

    def pass_cols(data):
        done = pass_rows([list(col) for col in zip(*data)])
        return [list(row) for row in zip(*done)]

    if inverse:
        return pass_rows(pass_cols(block))
    return pass_cols(pass_rows(block))


# ---------------------------------------------------------------------------
# component dispatch
# ---------------------------------------------------------------------------

#: component families implementing ``wrap(a + b)``
ADDER_FAMILIES = ("adder", "rca", "ksa", "csel", "cskip")
#: component families implementing the exact signed product
MULTIPLIER_FAMILIES = ("multiplier", "array_multiplier")
#: families with a dedicated recoding-level golden model
BOOTH_FAMILIES = ("booth",)
MAC_FAMILIES = ("mac",)


def golden_model(component):
    """Return the pure-Python golden function of *component*.

    The returned callable takes one Python int per operand and returns
    the signed result at the component's configured precision (operand
    LSBs are truncated exactly as the netlist ties them to 0).

    Raises
    ------
    KeyError
        For component families without a golden model.
    """
    family = component.family
    width = component.width
    if family in ADDER_FAMILIES:
        def model(a, b):
            a, b = _truncated(component, (a, b))
            return golden_add(a, b, width)
    elif family in MULTIPLIER_FAMILIES:
        def model(a, b):
            a, b = _truncated(component, (a, b))
            return golden_multiply(a, b, width)
    elif family in BOOTH_FAMILIES:
        def model(a, b):
            a, b = _truncated(component, (a, b))
            return golden_booth_multiply(a, b, width)
    elif family in MAC_FAMILIES:
        def model(a, b, c):
            a, b, c = _truncated(component, (a, b, c))
            return golden_mac(a, b, c, width)
    else:
        raise KeyError("no golden model for component family %r" % family)
    model.__name__ = "golden_%s_w%d_p%d" % (family, width,
                                            component.precision)
    return model


@dataclass
class GoldenMismatch:
    """One operand tuple where the three models disagree."""

    component: str
    operands: List[int]
    golden: int
    arithmetic: int
    netlist: int

    @property
    def agrees_arithmetic(self):
        return self.golden == self.arithmetic

    @property
    def agrees_netlist(self):
        return self.netlist is None or self.golden == self.netlist

    def describe(self):
        parts = ["%s(%s): golden=%d arithmetic=%d"
                 % (self.component, ", ".join(str(o) for o in self.operands),
                    self.golden, self.arithmetic)]
        if self.netlist is not None:
            parts.append("netlist=%d" % self.netlist)
        return " ".join(parts)


def check_golden(component, library=None, vectors=64, rng=None,
                 effort="high", netlist=None):
    """Diff golden model vs arithmetic model vs (optional) netlist.

    Parameters
    ----------
    component:
        The RTL component (at any precision).
    library:
        Cell library; when given (or *netlist* is passed) the synthesized
        netlist is simulated and included in the three-way diff.
    vectors:
        Number of random operand tuples (corner cases are always added).
    rng:
        NumPy RNG or seed for the random operands.
    effort:
        Synthesis effort when the netlist must be built here.
    netlist:
        Pre-synthesized netlist of *component* (skips synthesis).

    Returns
    -------
    list of GoldenMismatch
        Empty when all models agree on every probed operand tuple.
    """
    import numpy as np

    from ..sim.activity import operand_stream_bits
    from ..sim.logic import bits_to_int, compile_netlist, evaluate

    rng = np.random.default_rng(rng)
    operands = component.random_operands(vectors, rng=rng)
    # Corner rows: all-extreme combinations plus zero.
    corners = []
    for opwidth in component.operand_widths:
        lo = -(1 << (opwidth - 1))
        hi = (1 << (opwidth - 1)) - 1
        corners.append([lo, hi, -1, 0, 1, lo, hi])
    corner_rows = [[col[i] for col in corners]
                   for i in range(len(corners[0]))]
    columns = [np.concatenate([np.asarray(op, dtype=np.int64),
                               np.array([row[j] for row in corner_rows],
                                        dtype=np.int64)])
               for j, op in enumerate(operands)]

    model = golden_model(component)
    arithmetic = np.asarray(component.approximate(*columns), dtype=np.int64)

    net_values = None
    if netlist is None and library is not None:
        from ..synth.synthesize import synthesize_netlist
        netlist = synthesize_netlist(component, library, effort=effort)
    if netlist is not None and library is not None:
        bits = operand_stream_bits(columns, component.operand_widths)
        out = evaluate(compile_netlist(netlist, library, memo=False), bits)
        net_values = bits_to_int(out)

    mismatches = []
    for i in range(len(columns[0])):
        ops = [int(col[i]) for col in columns]
        gold = model(*ops)
        arith = int(arithmetic[i])
        net = int(net_values[i]) if net_values is not None else None
        if gold != arith or (net is not None and net != gold):
            mismatches.append(GoldenMismatch(
                component=component.name, operands=ops, golden=gold,
                arithmetic=arith, netlist=net))
    return mismatches
