"""Differential verification subsystem.

The paper's argument rests on equivalences the rest of the codebase
merely *uses*: every simulation engine must agree on what a netlist
computes, truncated netlists must match their arithmetic models
bit-exactly, and the characterization tables must satisfy Eq. 2 and the
Section-V slack rule. This package makes those equivalences executable:

``golden``
    Pure-Python (integer-only, NumPy-free) reference models for every
    RTL component family at arbitrary precision — a third, independent
    implementation against which both the arithmetic models and the
    synthesized netlists are diffed.
``oracles``
    Cross-engine oracles running one netlist through the functional
    bytes, packed 64-way, event-driven and timed engines and diffing
    the outputs bit-exactly, with minimized counterexample reporting.
``shrink``
    Greedy netlist shrinker that reduces a failing netlist to a minimal
    reproducer (typically a handful of gates).
``fuzz``
    Coverage-guided random-netlist fuzzer with a committed regression
    corpus (``tests/corpus/``) replayed by the tier-1 suite.
``invariants``
    Paper-fidelity invariants: Eq. 2 / monotonicity over
    characterization tables, the Section-V slack rule, and the
    EXPERIMENTS.md shape claims (zero fresh errors, error rates
    monotone in lifetime and stress).
``pytest_plugin``
    Fixtures and markers exposing all of the above to pytest.

The ``repro-aging verify`` (alias ``repro verify``) CLI subcommand
drives the whole stack end to end; see the user guide, section 13.
"""

from .fuzz import (FuzzReport, fuzz_engines, load_corpus, netlist_from_dict,
                   netlist_to_dict, random_netlist, replay_corpus,
                   save_corpus_entry)
from .golden import GoldenMismatch, check_golden, golden_model
from .invariants import (InvariantResult, check_characterization,
                         check_error_shape, check_injection, check_mc,
                         check_psnr_endpoints, check_slack_rule,
                         check_sta_engine, check_synth_sweep)
from .oracles import (ENGINES, Counterexample, EngineMismatch, OracleReport,
                      cross_engine_check, diff_engines, engine_outputs,
                      minimize_counterexample)
from .shrink import shrink_netlist
from .verify import VerificationReport, verify_component

__all__ = [
    "ENGINES", "Counterexample", "EngineMismatch", "FuzzReport",
    "GoldenMismatch", "InvariantResult", "OracleReport",
    "VerificationReport", "check_characterization", "check_error_shape",
    "check_golden", "check_injection", "check_mc",
    "check_psnr_endpoints", "check_slack_rule",
    "check_sta_engine", "check_synth_sweep",
    "cross_engine_check", "diff_engines", "engine_outputs", "fuzz_engines",
    "golden_model", "load_corpus", "minimize_counterexample",
    "netlist_from_dict", "netlist_to_dict", "random_netlist",
    "replay_corpus", "save_corpus_entry", "shrink_netlist",
    "verify_component",
]
