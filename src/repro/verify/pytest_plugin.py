"""Pytest integration for the differential-verification subsystem.

Activated from ``tests/conftest.py`` via
``pytest_plugins = ("repro.verify.pytest_plugin",)``. Provides:

* marker registration (``slow`` for tier-2-only tests, ``verify`` for
  tests belonging to the differential suite);
* ``verify_library`` — a session-scoped default cell library;
* ``assert_engines_agree`` — a callable fixture running the
  cross-engine oracle on a netlist and failing with the full mismatch
  report (counterexample included) on disagreement;
* ``assert_golden`` — a callable fixture enforcing the golden-model
  contract on an RTL component;
* ``assert_injection_invariants`` — a callable fixture running the
  fault-injection campaign invariants
  (:func:`repro.verify.invariants.check_injection`) on a component;
* ``assert_mc_invariants`` — a callable fixture running the Monte
  Carlo variation-engine invariants
  (:func:`repro.verify.invariants.check_mc`) on a component;
* ``corpus_dir`` — the committed regression corpus directory.
"""

import pytest

MARKERS = (
    "slow: deep/expensive test, excluded from tier-1 (run with -m slow)",
    "verify: differential-verification suite test",
)

#: Repository-relative location of the committed regression corpus.
CORPUS_DIRNAME = "corpus"


def pytest_configure(config):
    for marker in MARKERS:
        config.addinivalue_line("markers", marker)


@pytest.fixture(scope="session")
def verify_library():
    from repro.cells import default_library
    return default_library()


@pytest.fixture(scope="session")
def corpus_dir(request):
    """Path of the committed regression corpus (tests/corpus)."""
    return str(request.config.rootpath / "tests" / CORPUS_DIRNAME)


@pytest.fixture
def assert_engines_agree(verify_library):
    """Callable: run the cross-engine oracle, fail on any mismatch."""
    from repro.verify.oracles import ENGINES, cross_engine_check

    def _check(netlist, vectors=None, engines=ENGINES, event_cap=32,
               library=None):
        report = cross_engine_check(netlist, library or verify_library,
                                    vectors=vectors, engines=engines,
                                    event_cap=event_cap)
        if not report.passed:
            detail = report.describe()
            if report.counterexample is not None:
                detail += "\n" + report.counterexample.describe()
                detail += "\n" + report.counterexample.to_json()
            pytest.fail("engine disagreement:\n" + detail)
        return report

    return _check


@pytest.fixture
def assert_injection_invariants(verify_library):
    """Callable: run the fault-injection invariants, fail on any breach."""
    from repro.verify.invariants import check_injection

    def _check(component, library=None, **kwargs):
        results = check_injection(component, library or verify_library,
                                  **kwargs)
        failed = [r for r in results if not r.passed]
        if failed:
            pytest.fail("injection invariants broken:\n"
                        + "\n".join(r.describe() for r in failed))
        return results

    return _check


@pytest.fixture
def assert_mc_invariants(verify_library):
    """Callable: run the Monte Carlo invariants, fail on any breach."""
    from repro.verify.invariants import check_mc

    def _check(component, library=None, **kwargs):
        results = check_mc(component, library or verify_library,
                           **kwargs)
        failed = [r for r in results if not r.passed]
        if failed:
            pytest.fail("mc invariants broken:\n"
                        + "\n".join(r.describe() for r in failed))
        return results

    return _check


@pytest.fixture
def assert_golden(verify_library):
    """Callable: enforce the golden-model contract on a component."""
    from repro.verify.golden import check_golden

    def _check(component, vectors=48, rng=0, library=None, netlist=None):
        mismatches = check_golden(component, library or verify_library,
                                  vectors=vectors, rng=rng,
                                  netlist=netlist)
        if mismatches:
            pytest.fail("golden-model contract broken:\n"
                        + "\n".join(m.describe() for m in mismatches[:10]))

    return _check
