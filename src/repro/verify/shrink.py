"""Greedy netlist shrinking for counterexample minimization.

Given a netlist on which some *predicate* holds (typically "two engines
disagree on this stimulus"), reduce the netlist while the predicate
keeps holding. The passes are standard delta-debugging moves on the
gate graph:

1. **output reduction** — keep a single primary output;
2. **cone pruning** — drop every gate outside the fanin cone of the
   kept outputs;
3. **gate bypass** — remove one gate at a time, rewiring its readers
   (and outputs) to one of its own inputs or a constant;
4. **input simplification** — tie primary-input *reads* to constants
   (the PI list itself is preserved so the failing stimulus keeps its
   shape).

Passes 2–4 iterate to a fixpoint under a predicate-evaluation budget.
The shrinker never trusts a candidate blindly: every candidate is
validated structurally, and a predicate that *raises* counts as "does
not reproduce" (so a crashing engine can't smuggle a broken netlist
out as the minimal reproducer).

The result is deterministic for a deterministic predicate — gates are
visited in reverse topological order, replacements in pin order.
"""

from ..netlist.gate import Gate
from ..netlist.net import CONST0, CONST1

#: Default cap on predicate evaluations per shrink.
DEFAULT_BUDGET = 4000


def _candidate(base, gates, outputs):
    """Fresh netlist with *base*'s interface but the given gates/POs."""
    dup = base.copy()
    dup.primary_outputs = list(outputs)
    dup.rebuild([Gate(uid=g.uid, cell=g.cell, inputs=tuple(g.inputs),
                      output=g.output, name=g.name) for g in gates])
    return dup


def _live_gates(gates, outputs):
    """Gates in the fanin cone of *outputs*, in original order."""
    driver = {g.output: g for g in gates}
    live = set()
    stack = list(outputs)
    while stack:
        gate = driver.get(stack.pop())
        if gate is None or gate.uid in live:
            continue
        live.add(gate.uid)
        stack.extend(gate.inputs)
    return [g for g in gates if g.uid in live]


def _rewire(gates, outputs, victim_output, replacement, drop_uid=None):
    """Replace every read of *victim_output* with *replacement*."""
    new_gates = []
    for gate in gates:
        if drop_uid is not None and gate.uid == drop_uid:
            continue
        inputs = tuple(replacement if net == victim_output else net
                       for net in gate.inputs)
        new_gates.append(Gate(uid=gate.uid, cell=gate.cell, inputs=inputs,
                              output=gate.output, name=gate.name))
    new_outputs = [replacement if net == victim_output else net
                   for net in outputs]
    return new_gates, new_outputs


def shrink_netlist(netlist, predicate, max_rounds=40,
                   budget=DEFAULT_BUDGET):
    """Minimize *netlist* while ``predicate(candidate)`` stays true.

    Parameters
    ----------
    netlist:
        The failing netlist. Never mutated.
    predicate:
        Callable taking a candidate netlist and returning truthy when
        the failure still reproduces. Exceptions count as False.
    max_rounds:
        Fixpoint iteration cap for the bypass/simplify passes.
    budget:
        Maximum number of predicate evaluations (None for unlimited).

    Returns
    -------
    Netlist
        The smallest accepted candidate (at worst, a copy of the
        input). Primary inputs are preserved verbatim.
    """
    calls = [0]

    def check(candidate):
        if budget is not None and calls[0] >= budget:
            return False
        calls[0] += 1
        try:
            candidate.validate()
            return bool(predicate(candidate))
        except Exception:
            return False

    best = _candidate(netlist, netlist.gates, netlist.primary_outputs)

    # Pass 1: keep a single primary output.
    if len(best.primary_outputs) > 1:
        for po in dict.fromkeys(best.primary_outputs):
            cand = _candidate(best, best.gates, [po])
            if check(cand):
                best = cand
                break

    # Pass 2: prune everything outside the kept cone.
    live = _live_gates(best.gates, best.primary_outputs)
    if len(live) < best.num_gates:
        cand = _candidate(best, live, best.primary_outputs)
        if check(cand):
            best = cand

    # Passes 3+4 to fixpoint: bypass gates, then tie PI reads off.
    for __round in range(max_rounds):
        changed = False

        for gate in list(reversed(best.topological_gates())):
            if not any(g.uid == gate.uid for g in best.gates):
                continue            # removed by an earlier acceptance
            replacements = list(dict.fromkeys(gate.inputs))
            replacements += [CONST0, CONST1]
            for rep in replacements:
                if rep == gate.output:
                    continue
                gates, outs = _rewire(best.gates, best.primary_outputs,
                                      gate.output, rep, drop_uid=gate.uid)
                cand = _candidate(best, _live_gates(gates, outs), outs)
                if check(cand):
                    best = cand
                    changed = True
                    break
            if budget is not None and calls[0] >= budget:
                break

        for pi in best.primary_inputs:
            if not any(pi in g.inputs for g in best.gates) \
                    and pi not in best.primary_outputs:
                continue
            for const in (CONST0, CONST1):
                gates, outs = _rewire(best.gates, best.primary_outputs,
                                      pi, const)
                cand = _candidate(best, _live_gates(gates, outs), outs)
                if check(cand):
                    best = cand
                    changed = True
                    break

        if not changed or (budget is not None and calls[0] >= budget):
            break

    return best
