"""Coverage-guided netlist fuzzing with a committed regression corpus.

The generator mirrors ``tests/test_fuzz_properties.py``'s hypothesis
strategy (random gate DAGs over a handful of inputs plus constants) but
runs on a plain NumPy RNG so it can execute outside pytest — in the
``repro-aging verify`` CLI and the tier-2 CI job. Every generated
netlist goes through the cross-engine oracle
(:func:`repro.verify.oracles.cross_engine_check`); disagreements are
shrunk to minimal counterexamples.

Coverage guidance is structural: a netlist that exercises a new cell
kind, a new driver→reader kind pair, or a new size/depth bucket is
*interesting* and gets saved to the corpus directory. The corpus format
is one JSON file per netlist::

    {
      "schema": "repro.verify.netlist/1",
      "name": "fuzz",
      "inputs":  [2, 3, 4, 5],          # PI net ids, LSB-ish order
      "outputs": [17, 9, 4],            # PO net ids (may repeat/alias)
      "gates":   [["XOR2_X1", [2, 3], 8], ...]   # [cell, inputs, output]
    }

(net ids 0/1 are the CONST0/CONST1 rails). Files are named by content
fingerprint, so re-adding an existing netlist is a no-op. The committed
corpus under ``tests/corpus/`` is replayed by the tier-1 suite.
"""

import json
import os
from dataclasses import dataclass, field
from typing import List, Set, Tuple

import numpy as np

from ..core.cache import fingerprint
from ..netlist.builder import NetlistBuilder
from ..netlist.net import CONST0, CONST1
from ..netlist.netlist import Netlist
from .oracles import ENGINES, EVENT_VECTOR_CAP, cross_engine_check

NETLIST_SCHEMA = "repro.verify.netlist/1"

_BINARY = ("and2", "or2", "xor2", "xnor2", "nand2", "nor2")


def random_netlist(rng=None, n_inputs=4, max_gates=30, n_outputs=3,
                   name="fuzz"):
    """Random combinational DAG, same shape as the hypothesis strategy.

    Gates draw uniformly from the 2-input kinds plus INV and MUX2;
    operands draw uniformly from everything built so far (primary
    inputs, constants, and earlier gate outputs), so deep reconvergent
    cones arise naturally.
    """
    rng = np.random.default_rng(rng)
    builder = NetlistBuilder(name=name)
    pool = list(builder.inputs(n_inputs, "x")) + [CONST0, CONST1]
    n_gates = int(rng.integers(1, max_gates + 1))
    for __ in range(n_gates):
        choice = int(rng.integers(0, len(_BINARY) + 2))
        if choice == len(_BINARY):
            pool.append(builder.inv(pool[int(rng.integers(len(pool)))]))
        elif choice == len(_BINARY) + 1:
            a = pool[int(rng.integers(len(pool)))]
            b = pool[int(rng.integers(len(pool)))]
            s = pool[int(rng.integers(len(pool)))]
            pool.append(builder.mux2(a, b, s))
        else:
            a = pool[int(rng.integers(len(pool)))]
            b = pool[int(rng.integers(len(pool)))]
            pool.append(getattr(builder, _BINARY[choice])(a, b))
    outputs = [pool[-(i % len(pool)) - 1] for i in range(n_outputs)]
    return builder.outputs(outputs)


# ---------------------------------------------------------------------------
# serialization (corpus + counterexample format)
# ---------------------------------------------------------------------------

def netlist_to_dict(netlist):
    """Serialize *netlist* to the corpus JSON schema."""
    return {
        "schema": NETLIST_SCHEMA,
        "name": netlist.name,
        "inputs": [int(n) for n in netlist.primary_inputs],
        "outputs": [int(n) for n in netlist.primary_outputs],
        "gates": [[g.cell, [int(n) for n in g.inputs], int(g.output)]
                  for g in netlist.gates],
    }


def netlist_from_dict(data):
    """Rebuild a netlist from :func:`netlist_to_dict` output.

    Net ids are preserved verbatim so serialized stimulus/witness bits
    stay aligned with the primary-input order.
    """
    schema = data.get("schema", NETLIST_SCHEMA)
    if schema != NETLIST_SCHEMA:
        raise ValueError("unsupported netlist schema %r" % schema)
    netlist = Netlist(data.get("name", "netlist"))
    netlist.primary_inputs = [int(n) for n in data["inputs"]]
    for i, net in enumerate(netlist.primary_inputs):
        netlist.net_names.setdefault(net, "x[%d]" % i)
    highest = max([CONST1] + netlist.primary_inputs
                  + [int(row[2]) for row in data["gates"]]
                  + [int(n) for row in data["gates"] for n in row[1]])
    netlist._next_net = highest + 1
    for cell, inputs, output in data["gates"]:
        netlist.add_gate(str(cell), [int(n) for n in inputs],
                         output=int(output))
    netlist.set_outputs([int(n) for n in data["outputs"]])
    netlist.validate()
    return netlist


# ---------------------------------------------------------------------------
# structural coverage
# ---------------------------------------------------------------------------

def coverage_features(netlist):
    """Structural feature set of *netlist* for coverage guidance.

    Features are hashable tuples: cell kinds, driver-kind → reader-kind
    edges (``"pi"``/``"const"`` for undriven sources), PO source kinds,
    and bucketed gate count / logic depth.
    """
    features = set()
    driver_kind = {}
    for gate in netlist.gates:
        driver_kind[gate.output] = gate.kind
    depth = {}
    for gate in netlist.topological_gates():
        features.add(("cell", gate.kind))
        level = 0
        for net in gate.inputs:
            level = max(level, depth.get(net, 0))
            if net in driver_kind:
                features.add(("edge", driver_kind[net], gate.kind))
            elif net in (CONST0, CONST1):
                features.add(("edge", "const", gate.kind))
            else:
                features.add(("edge", "pi", gate.kind))
        depth[gate.output] = level + 1
    for net in netlist.primary_outputs:
        features.add(("po", driver_kind.get(net, "pi/const")))
    features.add(("gates", min(netlist.num_gates // 8, 4)))
    features.add(("depth", min(max(depth.values(), default=0) // 4, 4)))
    return features


# ---------------------------------------------------------------------------
# corpus management
# ---------------------------------------------------------------------------

def save_corpus_entry(directory, netlist, prefix="fuzz"):
    """Write *netlist* into the corpus; return its path (idempotent)."""
    data = netlist_to_dict(netlist)
    digest = fingerprint({k: v for k, v in data.items() if k != "name"})
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "%s_%s.json" % (prefix, digest[:16]))
    if not os.path.exists(path):
        with open(path, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return path


def load_corpus(directory):
    """Load every corpus entry; returns sorted ``(path, netlist)`` pairs."""
    if not os.path.isdir(directory):
        return []
    pairs = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        with open(path) as handle:
            pairs.append((path, netlist_from_dict(json.load(handle))))
    return pairs


def replay_corpus(directory, library, engines=ENGINES, vectors=None,
                  event_cap=EVENT_VECTOR_CAP):
    """Re-run the cross-engine oracle on every committed corpus entry.

    Returns ``(path, OracleReport)`` pairs; all reports pass on a
    healthy tree.
    """
    results = []
    for path, netlist in load_corpus(directory):
        report = cross_engine_check(netlist, library, vectors=vectors,
                                    engines=engines, event_cap=event_cap,
                                    minimize=False)
        results.append((path, report))
    return results


# ---------------------------------------------------------------------------
# the fuzzing loop
# ---------------------------------------------------------------------------

@dataclass
class FuzzReport:
    """Outcome of one :func:`fuzz_engines` campaign."""

    rounds: int
    engines: Tuple[str, ...]
    features: int
    interesting: int
    corpus_saved: List[str] = field(default_factory=list)
    counterexamples: List[object] = field(default_factory=list)

    @property
    def passed(self):
        return not self.counterexamples

    def describe(self):
        head = ("fuzz: %d netlists through %s — %d structural features, "
                "%d interesting, %d saved, %d counterexample(s)"
                % (self.rounds, "/".join(self.engines), self.features,
                   self.interesting, len(self.corpus_saved),
                   len(self.counterexamples)))
        lines = [head]
        lines += ["  " + cx.describe() for cx in self.counterexamples]
        return "\n".join(lines)


def fuzz_engines(library, rounds=200, rng=None, engines=ENGINES,
                 corpus_dir=None, n_inputs=4, max_gates=30, n_outputs=3,
                 vectors=None, event_cap=EVENT_VECTOR_CAP, log=None):
    """Fuzz the simulation engines against each other.

    Generates *rounds* random netlists, runs each through the
    cross-engine oracle, shrinks any disagreement, and (when
    *corpus_dir* is given) saves netlists that exercise new structural
    coverage.

    Parameters
    ----------
    log:
        Optional callable taking a progress string (used by the CLI).

    Returns
    -------
    FuzzReport
    """
    rng = np.random.default_rng(rng)
    seen: Set[tuple] = set()
    saved = []
    counterexamples = []
    interesting = 0
    for round_idx in range(rounds):
        netlist = random_netlist(rng, n_inputs=n_inputs,
                                 max_gates=max_gates, n_outputs=n_outputs,
                                 name="fuzz_%04d" % round_idx)
        features = coverage_features(netlist)
        fresh = features - seen
        if fresh:
            interesting += 1
            seen |= features
            if corpus_dir is not None:
                saved.append(save_corpus_entry(corpus_dir, netlist))
        report = cross_engine_check(netlist, library, vectors=vectors,
                                    engines=engines, rng=rng,
                                    event_cap=event_cap)
        if not report.passed:
            counterexamples.append(report.counterexample)
            if log is not None:
                log(report.describe())
        if log is not None and (round_idx + 1) % 50 == 0:
            log("fuzz: %d/%d netlists, %d feature(s), %d counterexample(s)"
                % (round_idx + 1, rounds, len(seen), len(counterexamples)))
    return FuzzReport(rounds=rounds, engines=tuple(engines),
                      features=len(seen), interesting=interesting,
                      corpus_saved=saved, counterexamples=counterexamples)
