"""End-to-end component verification (the ``repro-aging verify`` core).

:func:`verify_component` chains the whole differential stack on one RTL
component:

1. **golden** — the pure-Python golden model, the NumPy arithmetic
   model and the synthesized netlist are diffed on random + corner
   operands (:func:`repro.verify.golden.check_golden`);
2. **oracle** — the same netlist runs through every simulation engine
   and the outputs are diffed bit-exactly
   (:func:`repro.verify.oracles.cross_engine_check`);
3. **invariants** — the component is characterized across precisions
   and scenarios, then Eq. 2 / monotonicity and the error-shape claims
   are checked (:mod:`repro.verify.invariants`);
4. **fuzz** (optional) — random netlists stress the engines beyond
   this component's structure
   (:func:`repro.verify.fuzz.fuzz_engines`).

The returned :class:`VerificationReport` aggregates pass/fail plus
human-readable describe() output for the CLI.
"""

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..aging.bti import DEFAULT_BTI
from ..aging.scenario import AgingScenario
from ..core import cache as cache_mod
from ..core.characterize import characterize
from ..obs import logs, trace as obs_trace
from .fuzz import FuzzReport, fuzz_engines
from .golden import GoldenMismatch, check_golden
from .invariants import (InvariantResult, check_characterization,
                         check_error_shape, check_injection, check_mc,
                         check_sta_engine, check_synth_sweep)
from .oracles import ENGINES, EVENT_VECTOR_CAP, OracleReport, \
    cross_engine_check

_log = logs.get_logger("verify")


@dataclass
class VerificationReport:
    """Everything :func:`verify_component` checked, aggregated."""

    component: str
    scenario_labels: List[str]
    golden_mismatches: List[GoldenMismatch] = field(default_factory=list)
    golden_vectors: int = 0
    oracle: Optional[OracleReport] = None
    invariants: List[InvariantResult] = field(default_factory=list)
    fuzz: Optional[FuzzReport] = None

    @property
    def passed(self):
        return (not self.golden_mismatches
                and (self.oracle is None or self.oracle.passed)
                and all(r.passed for r in self.invariants)
                and (self.fuzz is None or self.fuzz.passed))

    @property
    def counterexamples(self):
        """Every minimized counterexample collected along the way."""
        found = []
        if self.oracle is not None and self.oracle.counterexample:
            found.append(self.oracle.counterexample)
        if self.fuzz is not None:
            found.extend(self.fuzz.counterexamples)
        return found

    def describe(self):
        lines = ["verify %s [%s]" % (self.component,
                                     "PASS" if self.passed else "FAIL")]
        tag = "PASS" if not self.golden_mismatches else "FAIL"
        lines.append("%s golden: 3-way diff (golden/arithmetic/netlist) "
                     "on %d operand tuples, %d mismatch(es)"
                     % (tag, self.golden_vectors,
                        len(self.golden_mismatches)))
        lines += ["  " + m.describe()
                  for m in self.golden_mismatches[:5]]
        if self.oracle is not None:
            tag = "PASS" if self.oracle.passed else "FAIL"
            lines.append("%s oracle: %s" % (tag, self.oracle.describe()))
        for inv in self.invariants:
            lines.append(inv.describe())
        if self.fuzz is not None:
            tag = "PASS" if self.fuzz.passed else "FAIL"
            lines.append("%s %s" % (tag, self.fuzz.describe()))
        return "\n".join(lines)


def verify_component(component, library, scenarios, vectors=96,
                     oracle_vectors=None, engines=ENGINES,
                     event_cap=EVENT_VECTOR_CAP, precisions=None,
                     error_shape_years=(1.0, 10.0), fuzz_rounds=0,
                     corpus_dir=None, rng=None, effort="ultra",
                     bti=DEFAULT_BTI, degradation=None, jobs=None,
                     cache=cache_mod.AMBIENT):
    """Run the full differential-verification stack on one component.

    Parameters
    ----------
    component:
        Full-precision :class:`~repro.rtl.component.RTLComponent`.
    scenarios:
        Aging scenarios for the characterization invariants (e.g.
        ``[worst_case(1), worst_case(10), balance_case(10)]`` — at
        least the design scenario).
    vectors:
        Random operand tuples for the golden three-way diff.
    oracle_vectors:
        Stimulus vectors for the cross-engine oracle (None: exhaustive
        for narrow interfaces, 128 random otherwise).
    event_cap:
        Vector cap for the scalar event engine inside the oracle.
    precisions:
        Precision sweep for characterization (None: the
        :func:`~repro.core.characterize.characterize` default).
    fuzz_rounds:
        Extra random-netlist fuzzing rounds (0 to skip).
    corpus_dir:
        Corpus directory for interesting fuzzed netlists.

    Returns
    -------
    VerificationReport
    """
    rng = np.random.default_rng(rng)
    labels = [s.label for s in scenarios]
    report = VerificationReport(component=component.name,
                                scenario_labels=labels)

    with obs_trace.span("verify.component", component=component.name,
                        scenarios=labels):
        from ..synth.synthesize import synthesize_netlist
        with obs_trace.span("verify.synthesize"):
            netlist = synthesize_netlist(component, library, effort=effort)

        with obs_trace.span("verify.golden", vectors=vectors):
            report.golden_vectors = vectors + 7   # corner rows ride along
            report.golden_mismatches = check_golden(
                component, library, vectors=vectors, rng=rng,
                netlist=netlist)
        _log.info("golden: %d mismatches on %s",
                  len(report.golden_mismatches), component.name)

        with obs_trace.span("verify.oracle", engines=list(engines)):
            report.oracle = cross_engine_check(
                netlist, library, vectors=oracle_vectors, engines=engines,
                rng=rng, event_cap=event_cap)
        _log.info("oracle: %s", report.oracle.describe())

        with obs_trace.span("verify.invariants"):
            char = characterize(component, library, scenarios,
                                precisions=precisions, effort=effort,
                                bti=bti, degradation=degradation,
                                jobs=jobs, cache=cache)
            report.invariants = check_characterization(char)
            uniform = [s for s in scenarios
                       if isinstance(s, AgingScenario)]
            report.invariants += check_sta_engine(
                netlist, library, uniform, bti=bti,
                degradation=degradation)
            report.invariants += check_error_shape(
                component, library, years=error_shape_years, rng=rng,
                effort=effort, netlist=netlist)
            report.invariants += check_synth_sweep(
                component, library, efforts=(effort,))
            report.invariants += check_injection(
                component, library, years=error_shape_years,
                effort=effort)
            report.invariants += check_mc(
                component, library, years=error_shape_years,
                effort=effort)
        failed = [r.name for r in report.invariants if not r.passed]
        _log.info("invariants: %d checked, %d failed%s",
                  len(report.invariants), len(failed),
                  " (%s)" % ", ".join(failed) if failed else "")

        if fuzz_rounds:
            with obs_trace.span("verify.fuzz", rounds=fuzz_rounds):
                report.fuzz = fuzz_engines(
                    library, rounds=fuzz_rounds, rng=rng, engines=engines,
                    corpus_dir=corpus_dir, event_cap=event_cap,
                    log=_log.info)
    return report
