"""Cross-engine oracles: four simulators, one truth.

The codebase grew four ways to compute what a combinational netlist
settles to:

* ``bytes`` — the vectorized ``uint8`` reference engine
  (:func:`repro.sim.logic.evaluate`),
* ``packed`` — the 64-way bit-parallel engine
  (:func:`repro.sim.logic.evaluate_packed`),
* ``event`` — the scalar event-driven simulator
  (:class:`repro.sim.event.EventSimulator`), whose quiescent values are
  produced by a completely different mechanism (a delay-ordered event
  queue),
* ``timed`` — the vectorized timed simulator
  (:class:`repro.sim.timing.TimedSimulator`), whose ``settled`` word is
  its functional answer (and whose ``sampled`` word must equal it at a
  relaxed clock).

This module runs one netlist through all of them on one stimulus and
diffs the outputs bit-exactly. Disagreements become
:class:`Counterexample` records: a shrunken netlist (via
:mod:`repro.verify.shrink`), the stimulus bits, and the engine pair
that disagrees — small enough to paste into a regression test.

Netlists are always compiled with ``memo=False`` here so that an
injected kernel fault (or any global-table mutation) is picked up
instead of being masked by a previously cached program.
"""

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..sim.event import EventSimulator
from ..sim.logic import compile_netlist, evaluate, evaluate_packed
from ..sim.timing import TimedSimulator

#: Engine names, in reporting order; ``bytes`` is the reference.
ENGINES = ("bytes", "packed", "event", "timed")

#: Clock period (ps) at which the timed engine cannot be late.
RELAXED_CLOCK_PS = 1e9

#: Default cap on vectors pushed through the scalar event engine.
EVENT_VECTOR_CAP = 64


def exhaustive_bits(n_inputs):
    """All ``2**n_inputs`` input vectors as a ``(batch, n_pi)`` array."""
    count = 1 << n_inputs
    return np.array([[(row >> i) & 1 for i in range(n_inputs)]
                     for row in range(count)], dtype=np.uint8)


def default_stimulus(netlist, vectors=None, rng=None, exhaustive_limit=6):
    """Stimulus for *netlist*: exhaustive when small, random otherwise.

    Up to ``2**exhaustive_limit`` vectors are enumerated exhaustively;
    wider interfaces draw *vectors* random rows (default 128).
    """
    n_pi = len(netlist.primary_inputs)
    if n_pi <= exhaustive_limit and vectors is None:
        return exhaustive_bits(n_pi)
    rng = np.random.default_rng(rng)
    count = 128 if vectors is None else int(vectors)
    return rng.integers(0, 2, size=(count, n_pi), dtype=np.uint8)


def engine_outputs(netlist, library, pi_bits, engine):
    """Settled PO bits of *netlist* under one engine.

    Returns a ``(batch, n_po)`` ``uint8`` array in PO order. The
    ``timed`` engine additionally asserts its own internal consistency
    (``sampled == settled`` at the relaxed clock).
    """
    pi_bits = np.asarray(pi_bits, dtype=np.uint8)
    if engine == "bytes":
        compiled = compile_netlist(netlist, library, memo=False)
        return evaluate(compiled, pi_bits)
    if engine == "packed":
        compiled = compile_netlist(netlist, library, memo=False)
        return evaluate_packed(compiled, pi_bits)
    if engine == "timed":
        sim = TimedSimulator(netlist, library, t_clock_ps=RELAXED_CLOCK_PS)
        result = sim.run_stream(pi_bits)
        if not np.array_equal(result.sampled, result.settled):
            raise AssertionError(
                "timed engine sampled != settled at a relaxed clock on %s"
                % netlist.name)
        return result.settled
    if engine == "event":
        sim = EventSimulator(netlist, library)
        pis = netlist.primary_inputs
        outs = np.empty((pi_bits.shape[0], len(netlist.primary_outputs)),
                        dtype=np.uint8)
        prev_row = pi_bits[0]
        for row_idx in range(pi_bits.shape[0]):
            cur_row = pi_bits[row_idx]
            prev = {net: int(prev_row[col]) for col, net in enumerate(pis)}
            cur = {net: int(cur_row[col]) for col, net in enumerate(pis)}
            waves = sim.settle(prev, cur)
            for col, net in enumerate(netlist.primary_outputs):
                outs[row_idx, col] = waves[net].final_value
            prev_row = cur_row
        return outs
    raise ValueError("unknown engine %r (choose from %s)"
                     % (engine, ", ".join(ENGINES)))


@dataclass
class EngineMismatch:
    """First disagreement between one engine and the reference engine."""

    engine: str
    reference: str
    vector_index: int
    output_index: int
    inputs: List[int]
    expected: int
    got: int
    total_mismatching_vectors: int = 1

    def describe(self):
        return ("%s != %s at vector %d output bit %d (inputs %s): "
                "expected %d, got %d (%d vector(s) differ)"
                % (self.engine, self.reference, self.vector_index,
                   self.output_index,
                   "".join(str(b) for b in self.inputs),
                   self.expected, self.got,
                   self.total_mismatching_vectors))


def diff_engines(netlist, library, pi_bits, engines=ENGINES,
                 reference="bytes", event_cap=EVENT_VECTOR_CAP):
    """Diff every engine in *engines* against *reference* bit-exactly.

    The scalar ``event`` engine only sees the first *event_cap* vectors
    (it is orders of magnitude slower); all vectorized engines see the
    full stimulus.

    Returns a list of :class:`EngineMismatch` (empty on agreement).
    """
    pi_bits = np.asarray(pi_bits, dtype=np.uint8)
    ref_out = engine_outputs(netlist, library, pi_bits, reference)
    mismatches = []
    for engine in engines:
        if engine == reference:
            continue
        bits = pi_bits[:event_cap] if engine == "event" else pi_bits
        try:
            out = engine_outputs(netlist, library, bits, engine)
        except AssertionError as exc:
            mismatches.append(EngineMismatch(
                engine=engine, reference=reference, vector_index=-1,
                output_index=-1, inputs=[], expected=-1, got=-1))
            mismatches[-1].describe = lambda exc=exc: str(exc)
            continue
        ref = ref_out[:bits.shape[0]]
        if np.array_equal(out, ref):
            continue
        wrong = np.argwhere(out != ref)
        row, col = (int(wrong[0][0]), int(wrong[0][1]))
        mismatches.append(EngineMismatch(
            engine=engine, reference=reference, vector_index=row,
            output_index=col,
            inputs=[int(b) for b in bits[row]],
            expected=int(ref[row, col]), got=int(out[row, col]),
            total_mismatching_vectors=int(
                (out != ref).any(axis=1).sum())))
    return mismatches


@dataclass
class OracleReport:
    """Result of one cross-engine check."""

    design: str
    engines: Tuple[str, ...]
    vectors: int
    gates: int
    mismatches: List[EngineMismatch] = field(default_factory=list)
    counterexample: Optional["Counterexample"] = None

    @property
    def passed(self):
        return not self.mismatches

    def describe(self):
        if self.passed:
            return ("%s: %s agree on %d vectors (%d gates)"
                    % (self.design, "/".join(self.engines), self.vectors,
                       self.gates))
        lines = ["%s: ENGINE DISAGREEMENT (%d gates)"
                 % (self.design, self.gates)]
        lines += ["  " + m.describe() for m in self.mismatches]
        if self.counterexample is not None:
            lines.append("  shrunk to %d gate(s)"
                         % self.counterexample.gates)
        return "\n".join(lines)


def cross_engine_check(netlist, library, vectors=None, engines=ENGINES,
                       rng=None, event_cap=EVENT_VECTOR_CAP, minimize=True):
    """Run the full cross-engine oracle on one netlist.

    Exhaustive stimulus for narrow interfaces, random otherwise; on
    disagreement the netlist is shrunk to a minimal counterexample
    (unless ``minimize=False``).
    """
    pi_bits = default_stimulus(netlist, vectors=vectors, rng=rng)
    mismatches = diff_engines(netlist, library, pi_bits, engines=engines,
                              event_cap=event_cap)
    report = OracleReport(design=netlist.name, engines=tuple(engines),
                          vectors=int(pi_bits.shape[0]),
                          gates=netlist.num_gates, mismatches=mismatches)
    if mismatches and minimize:
        report.counterexample = minimize_counterexample(
            netlist, library, pi_bits, mismatches, engines=engines,
            event_cap=event_cap)
    return report


# ---------------------------------------------------------------------------
# counterexamples
# ---------------------------------------------------------------------------

@dataclass
class Counterexample:
    """A minimized engine-disagreement reproducer.

    Attributes
    ----------
    netlist_dict:
        Serialized shrunken netlist
        (:func:`repro.verify.fuzz.netlist_to_dict` format — the same
        JSON schema as the regression corpus).
    engines:
        The ``(reference, engine)`` pair that disagrees.
    inputs:
        One PI bit vector exposing the disagreement on the shrunken
        netlist (LSB-first PI order).
    gates:
        Gate count of the shrunken netlist.
    original_design / original_gates:
        Where the counterexample came from.
    """

    netlist_dict: Dict
    engines: Tuple[str, str]
    inputs: List[int]
    gates: int
    original_design: str
    original_gates: int

    def to_json(self):
        return json.dumps({
            "schema": "repro.verify.counterexample/1",
            "engines": list(self.engines),
            "inputs": list(self.inputs),
            "gates": self.gates,
            "original_design": self.original_design,
            "original_gates": self.original_gates,
            "netlist": self.netlist_dict,
        }, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text):
        data = json.loads(text)
        return cls(netlist_dict=data["netlist"],
                   engines=tuple(data["engines"]),
                   inputs=list(data["inputs"]), gates=int(data["gates"]),
                   original_design=data.get("original_design", "?"),
                   original_gates=int(data.get("original_gates", -1)))

    def netlist(self):
        """Rebuild the shrunken netlist."""
        from .fuzz import netlist_from_dict
        return netlist_from_dict(self.netlist_dict)

    def replay(self, library):
        """Re-run the disagreeing engine pair; return the mismatches."""
        netlist = self.netlist()
        bits = np.array([self.inputs], dtype=np.uint8)
        reference, engine = self.engines
        return diff_engines(netlist, library, bits, engines=(engine,),
                            reference=reference)

    def describe(self):
        return ("counterexample: %s vs %s disagree on %d-gate netlist "
                "(shrunk from %s, %d gates), inputs %s"
                % (self.engines[0], self.engines[1], self.gates,
                   self.original_design, self.original_gates,
                   "".join(str(b) for b in self.inputs)))


def minimize_counterexample(netlist, library, pi_bits, mismatches,
                            engines=ENGINES, event_cap=EVENT_VECTOR_CAP):
    """Shrink a disagreeing netlist to a minimal reproducer.

    Keeps the first mismatching engine pair, shrinks the netlist while
    the pair still disagrees on *any* stimulus vector, then reduces the
    stimulus to the single first disagreeing vector.
    """
    from .fuzz import netlist_to_dict
    from .shrink import shrink_netlist

    first = mismatches[0]
    pair = (first.reference, first.engine)
    bits = (pi_bits[:event_cap] if first.engine == "event"
            else pi_bits)

    def still_fails(candidate):
        found = diff_engines(candidate, library, bits,
                             engines=(pair[1],), reference=pair[0],
                             event_cap=event_cap)
        return bool(found)

    shrunk = shrink_netlist(netlist, still_fails)
    final = diff_engines(shrunk, library, bits, engines=(pair[1],),
                         reference=pair[0], event_cap=event_cap)
    if final:
        witness = [int(b) for b in bits[final[0].vector_index]]
    else:  # pragma: no cover - shrinker guarantees the predicate
        witness = [int(b) for b in bits[first.vector_index]]
    return Counterexample(
        netlist_dict=netlist_to_dict(shrunk), engines=pair,
        inputs=witness, gates=shrunk.num_gates,
        original_design=netlist.name, original_gates=netlist.num_gates)
