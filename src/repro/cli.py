"""Command-line interface: ``repro-aging``.

Exposes the library's main flows without writing Python:

* ``characterize`` — build a component's aging/precision table and
  optionally persist it into an approximation-library JSON;
* ``timing`` — fresh/aged delays and the guardband of one component;
* ``flow`` — run the Section-V guardband-removal flow on a built-in
  microarchitecture (IDCT, DCT or FIR);
* ``schedule`` — plan a graceful-degradation precision schedule;
* ``export`` — dump a synthesized component as structural Verilog
  and/or an aging-annotated SDF;
* ``verify`` — run the differential-verification stack (golden models,
  cross-engine oracles, paper-fidelity invariants, optional fuzzing) on
  a component;
* ``serve`` — run the characterization service: an asyncio HTTP/JSON
  job server over the sharded multi-tier cache (see :mod:`repro.serve`).

Every command accepts ``--width`` and lifetime lists, uses the bundled
cell library, and prints plain-text reports (see :mod:`repro.report`).
Component names accept a compact ``<name><width>`` spelling (e.g.
``mult16``, ``adder8``) that overrides ``--width``.
"""

import argparse
import asyncio
import contextlib
import json
import os
import sys
import time

from .aging import balance_case, worst_case
from .cells import default_library
from .core import AgingApproximationLibrary, characterize, remove_guardband
from .core import cache as cache_mod
from .core import instrument
from .core import specs as specs_mod
from .core.adaptive import plan_graceful_degradation
from .core.parallel import resolve_jobs
from . import bench_report as bench_report_mod
from .obs import logs as obs_logs
from .obs import manifest as obs_manifest
from .obs import metrics as obs_metrics
from .obs import slo as obs_slo
from .obs import trace as obs_trace
from .netlist.netlist import NetlistError
from .report import (characterization_report, flow_report_text,
                     inject_report_text, instrumentation_report_text,
                     mc_report_text, metrics_report_text,
                     schedule_report_text, screen_report,
                     timing_report_text, verify_report_text)
from .rtl import (fir_microarchitecture, dct_microarchitecture,
                  idct_microarchitecture)

#: Component registry and compact-spec aliases, shared with the server
#: (:mod:`repro.core.specs` owns the vocabulary).
COMPONENTS = specs_mod.component_registry()
COMPONENT_ALIASES = specs_mod.COMPONENT_ALIASES

DESIGNS = {
    "idct": idct_microarchitecture,
    "dct": dct_microarchitecture,
    "fir": fir_microarchitecture,
}


def _years_list(text):
    return [float(part) for part in text.split(",") if part]


def _scenarios(years, stress):
    factory = worst_case if stress == "worst" else balance_case
    return [factory(y) for y in years]


def _component(args):
    """Resolve ``--component``, accepting compact ``<name><width>`` specs.

    ``mult16`` means the 16-bit multiplier regardless of ``--width``;
    plain registry names (``multiplier``) keep using ``--width``.
    """
    try:
        return specs_mod.parse_component(
            args.component, width=args.width,
            precision=getattr(args, "precision", None))
    except specs_mod.SpecError as exc:
        raise SystemExit(str(exc))


def _parse_scenario(spec):
    """One scenario spec: ``fresh``, ``worst10y``/``balance1y`` or the
    characterization-label spelling ``10y_worst``."""
    try:
        return specs_mod.parse_scenario(spec)
    except specs_mod.SpecError as exc:
        raise SystemExit(str(exc))


def _verify_scenarios(text):
    specs = [part.strip() for part in text.split(",") if part.strip()]
    if not specs:
        raise SystemExit("no scenarios given (try --scenario worst10y)")
    return [_parse_scenario(spec) for spec in specs]


def _manifest_config(args):
    """JSON-serializable view of the parsed arguments."""
    config = {}
    for name, value in sorted(vars(args).items()):
        if name == "func" or name.startswith("_") or callable(value):
            continue
        if isinstance(value, (list, tuple)):
            value = [v for v in value]
        config[name] = value
    return config


@contextlib.contextmanager
def _engine(args):
    """Observability + cache scope shared by every subcommand.

    Applies ``--cache-dir`` and ``--log-level``, collects per-stage
    timings (``--timings``), captures a span tree when ``--trace`` or
    a manifest is requested, scopes a fresh metrics registry, and on
    exit writes the ``--trace`` / ``--metrics`` / ``--manifest``
    artifacts.
    """
    try:
        resolve_jobs(getattr(args, "jobs", None))
    except ValueError as exc:
        raise SystemExit(str(exc))
    if getattr(args, "log_level", None):
        obs_logs.configure(args.log_level)
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    manifest_path = getattr(args, "manifest", None)
    profile_path = getattr(args, "profile", None)
    if manifest_path is None:
        # A trace/metrics request implies provenance: derive a path.
        manifest_path = obs_manifest.default_manifest_path(metrics_path,
                                                           trace_path)
    tracing = trace_path is not None or manifest_path is not None
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir and not os.path.isdir(cache_dir):
        raise SystemExit("cache directory %r does not exist "
                         "(create it first, or drop --cache-dir)"
                         % cache_dir)
    # A command may pre-build its own cache instance (repro serve shards
    # its cache); scope that so the manifest reports its stats.
    cache_instance = getattr(args, "_cache_instance", None)
    if cache_instance is not None:
        scope = cache_mod.cache_enabled(cache_instance)
    elif cache_dir:
        scope = cache_mod.cache_enabled(cache_dir)
    else:
        scope = contextlib.nullcontext(cache_mod.get_cache())
    tracer = obs_trace.Tracer()
    profiler = None
    start = time.perf_counter()
    with scope as cache:
        with obs_metrics.scoped() as registry:
            capture = (obs_trace.capture(tracer) if tracing
                       else contextlib.nullcontext())
            with capture:
                with obs_trace.span("cli." + args.command,
                                    command=args.command):
                    with instrument.collect() as instr:
                        if profile_path:
                            from .obs.profile import SamplingProfiler
                            profiler = SamplingProfiler(registry=registry)
                            profiler.start()
                        try:
                            yield
                        finally:
                            if profiler is not None:
                                profiler.stop()
            duration = time.perf_counter() - start
            snapshot = registry.snapshot()
        if getattr(args, "timings", False):
            print()
            print(instrumentation_report_text(
                instr, cache.stats if cache is not None else None))
            print()
            print(metrics_report_text(snapshot))
        if trace_path:
            if trace_path.endswith(".jsonl"):
                tracer.write_jsonl(trace_path)
            else:
                tracer.write_chrome(trace_path)
            print("trace written to %s (%d spans)"
                  % (trace_path, len(tracer)))
        if metrics_path:
            with open(metrics_path, "w") as handle:
                json.dump(snapshot, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print("metrics written to %s" % metrics_path)
        if profiler is not None:
            profiler.write_collapsed(profile_path)
            chrome_path = profile_path + ".chrome.json"
            profiler.write_chrome(chrome_path)
            print("profile written to %s (collapsed stacks) and %s "
                  "(Chrome flame chart, %d samples)"
                  % (profile_path, chrome_path, profiler.sample_count()))
        if manifest_path:
            manifest = obs_manifest.build_manifest(
                "repro-aging " + args.command,
                config=_manifest_config(args),
                library=default_library(),
                stages=instr.summary()["stages"],
                metrics=snapshot,
                duration_s=duration,
                extra={"cache_stats": cache.stats.as_dict()
                       if cache is not None else None})
            obs_manifest.write_manifest(manifest_path, manifest)
            print("run manifest written to %s" % manifest_path)


def cmd_characterize(args):
    lib = default_library()
    component = _component(args)
    sweep = None
    if args.sweep_bits:
        sweep = range(args.width, args.width - args.sweep_bits - 1, -1)
    with _engine(args):
        scenarios = _scenarios(args.years, args.stress)
        entry = characterize(component, lib, scenarios=scenarios,
                             precisions=sweep, effort=args.effort,
                             jobs=args.jobs, sta=args.sta,
                             synth=args.synth)
        print(characterization_report(entry))
        if args.screen:
            from .core.characterize import truncation_screen
            screen = truncation_screen(component, lib, scenarios,
                                       precisions=sweep,
                                       effort=args.effort)
            print()
            print(screen_report(screen))
    if args.output:
        store = (AgingApproximationLibrary.load(args.output)
                 if args.update else AgingApproximationLibrary())
        store.add(entry)
        store.save(args.output)
        print("\nsaved to %s (%d entries)" % (args.output, len(store)))
    return 0


def cmd_timing(args):
    from .sta import analyze_batch
    from .synth import synthesize

    lib = default_library()
    component = _component(args)
    with _engine(args):
        with instrument.current().stage(instrument.STAGE_SYNTHESIZE):
            netlist = synthesize(component, lib,
                                 effort=args.effort).netlist
        scenarios = [(worst_case if args.stress == "worst"
                      else balance_case)(years) for years in args.years]
        with instrument.current().stage(instrument.STAGE_STA):
            batch = analyze_batch(netlist, lib, [None] + scenarios)
        fresh = batch.report(0)
        print(timing_report_text(netlist, lib, fresh))
        for idx, scenario in enumerate(scenarios, start=1):
            aged_ps = batch.critical_paths_ps[idx]
            print("\n%s: critical path %.1f ps (guardband %+.1f ps, "
                  "%+.1f%%)"
                  % (scenario.label, aged_ps,
                     aged_ps - fresh.critical_path_ps,
                     100 * (aged_ps / fresh.critical_path_ps - 1)))
    return 0


def cmd_flow(args):
    lib = default_library()
    try:
        micro = DESIGNS[args.design](width=args.width)
    except KeyError:
        raise SystemExit("unknown design %r (choose from %s)"
                         % (args.design, ", ".join(sorted(DESIGNS))))
    store = (AgingApproximationLibrary.load(args.library)
             if args.library else None)
    with _engine(args):
        report = remove_guardband(
            micro, lib, worst_case(args.years[0]),
            report_scenarios=[worst_case(y) for y in args.years[1:]],
            approx_library=store, effort=args.effort, jobs=args.jobs)
        print(flow_report_text(report))
    return 0 if report.meets_constraint else 1


def cmd_schedule(args):
    lib = default_library()
    micro = DESIGNS[args.design](width=args.width)
    with _engine(args):
        schedule = plan_graceful_degradation(micro, lib, args.years,
                                             effort=args.effort)
        print(schedule_report_text(schedule))
    return 0


def cmd_export(args):
    from .netlist import to_verilog
    from .sta import to_sdf
    from .synth import synthesize_netlist

    lib = default_library()
    component = _component(args)
    if not (args.verilog or args.sdf):
        raise SystemExit("nothing to export: pass --verilog and/or --sdf")
    with _engine(args):
        with instrument.current().stage(instrument.STAGE_SYNTHESIZE):
            netlist = synthesize_netlist(component, lib,
                                         effort=args.effort)
        wrote = []
        if args.verilog:
            with open(args.verilog, "w") as handle:
                handle.write(to_verilog(netlist))
            wrote.append(args.verilog)
        if args.sdf:
            scenario = worst_case(args.years[0]) if args.years else None
            with open(args.sdf, "w") as handle:
                handle.write(to_sdf(netlist, lib, scenario=scenario))
            wrote.append(args.sdf)
        print("wrote %s (%d gates)" % (", ".join(wrote),
                                       netlist.num_gates))
    return 0


def cmd_verify(args):
    from .verify import verify_component

    lib = default_library()
    component = _component(args)
    scenarios = _verify_scenarios(args.scenario)
    sweep = None
    if args.sweep_bits:
        lo = max(component.width - args.sweep_bits, 1)
        sweep = range(component.width, lo - 1, -1)
    with _engine(args):
        report = verify_component(
            component, lib, scenarios, vectors=args.vectors,
            oracle_vectors=args.oracle_vectors, event_cap=args.event_cap,
            precisions=sweep, fuzz_rounds=args.fuzz,
            corpus_dir=args.corpus, rng=args.seed, effort=args.effort,
            jobs=args.jobs)
        print(verify_report_text(report))
        if args.counterexamples and report.counterexamples:
            os.makedirs(args.counterexamples, exist_ok=True)
            for index, cx in enumerate(report.counterexamples):
                path = os.path.join(args.counterexamples,
                                    "counterexample_%02d.json" % index)
                with open(path, "w") as handle:
                    handle.write(cx.to_json())
                print("counterexample written to %s" % path)
    return 0 if report.passed else 1


def cmd_inject(args):
    from .inject import CampaignSpec, run_campaign
    from .inject.campaign import component_spec

    component = _component(args)
    scenarios = ["fresh"] + ["%s%gy" % (args.stress, y)
                             for y in args.years]
    try:
        spec = CampaignSpec(
            component=component_spec(component), width=component.width,
            scenarios=tuple(scenarios), clock_scales=tuple(args.clocks),
            vectors=args.vectors, seed=args.seed, stimulus=args.stimulus,
            activity=args.activity, effort=args.effort).validated()
    except specs_mod.SpecError as exc:
        raise SystemExit(str(exc))
    with _engine(args):
        result = run_campaign(spec, jobs=args.jobs)
        print(inject_report_text(result))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("campaign result written to %s" % args.output)
    return 0


def cmd_mc(args):
    from .inject.campaign import component_spec
    from .mc import DEFAULT_BLOCK, MCSpec, run_mc

    component = _component(args)
    scenarios = ["fresh"] + ["%s%gy" % (args.stress, y)
                             for y in args.years]
    try:
        spec = MCSpec(
            component=component_spec(component), width=component.width,
            scenarios=tuple(scenarios), clock_scales=tuple(args.clocks),
            sigma_mv=args.sigma, samples=args.samples, seed=args.seed,
            sweep_bits=args.sweep_bits, min_yield=args.min_yield,
            effort=args.effort,
            block=DEFAULT_BLOCK if args.block is None else args.block,
            surrogate=args.surrogate).validated()
    except specs_mod.SpecError as exc:
        raise SystemExit(str(exc))
    with _engine(args):
        result = run_mc(spec, jobs=args.jobs)
        print(mc_report_text(result))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("mc result written to %s" % args.output)
    return 0


def cmd_serve(args):
    from .serve import CharacterizationServer

    root = args.cache_dir or os.environ.get(cache_mod.CACHE_DIR_ENV)
    if not root:
        raise SystemExit("serve needs a cache directory "
                         "(--cache-dir or $REPRO_CACHE_DIR)")
    os.makedirs(root, exist_ok=True)
    args.cache_dir = root
    try:
        jobs = resolve_jobs(args.jobs)
        cache = cache_mod.CharacterizationCache(
            root, shards=jobs if args.shards is None else args.shards,
            mem_entries=0 if args.no_mem_tier else args.mem_entries)
    except ValueError as exc:
        raise SystemExit(str(exc))
    # Scope the ambient cache to the server's sharded instance so the
    # run manifest reports the session's real cache statistics.
    args._cache_instance = cache

    def ready(server):
        print("serving characterization on http://%s:%d "
              "(workers=%d, shards=%d, mem_entries=%d, dedup=%s)"
              % (server.host, server.port, server.pool.jobs,
                 server.cache.shards, server.cache.mem_entries,
                 server.dedup), flush=True)

    try:
        slos = ([] if args.no_slo
                else [obs_slo.parse_slo(spec) for spec in args.slo]
                if args.slo else None)
    except ValueError as exc:
        raise SystemExit(str(exc))
    with _engine(args):
        server = CharacterizationServer(
            cache, host=args.host, port=args.port, workers=jobs,
            dedup=not args.no_dedup, max_requests=args.max_requests,
            ts_interval=args.ts_interval, ts_jsonl=args.timeseries,
            slos=slos, drain_grace_s=args.drain_grace)
        try:
            asyncio.run(server.run(ready=ready))
        except KeyboardInterrupt:
            pass
        stats = server.stats()
        print("served %d requests, %d points (%d dedup, %d mem, %d disk, "
              "%d computed), %d errors"
              % (stats["requests"], stats["points"], stats["dedup_hits"],
                 stats["tier_hits"]["mem"], stats["tier_hits"]["disk"],
                 stats["computes"], stats["errors"]))
        slo_stats = stats.get("slo", {})
        if slo_stats.get("objectives"):
            print("slo: worst burn rate %.2f, %d breach(es) across %d "
                  "objective(s)"
                  % (slo_stats["worst_burn_rate"], slo_stats["breaches"],
                     len(slo_stats["objectives"])))
        if args.timeseries:
            print("time series journaled to %s (%d samples)"
                  % (args.timeseries, stats["timeseries"]["samples"]))
    return 0


def cmd_bench_report(args):
    from .bench_report import run_report

    return run_report(args.paths, check=args.check,
                      tolerance=args.tolerance)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-aging",
        description="Aging-induced approximations (DAC'17 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, design=False, sweep=True):
        if sweep:
            p.add_argument("--width", type=int, default=32,
                           help="operand bit width (default 32)")
            p.add_argument("--years", type=_years_list, default=[10.0],
                           help="comma-separated lifetimes, e.g. 1,10")
            p.add_argument("--stress", choices=("worst", "balance"),
                           default="worst")
            p.add_argument("--effort", default="ultra",
                           choices=specs_mod.EFFORTS)
        p.add_argument("--jobs", type=int, default=None,
                       help="characterization worker processes "
                            "(default: $REPRO_JOBS or 1; 0 = one per CPU)")
        p.add_argument("--cache-dir", default=None,
                       help="characterization result cache directory "
                            "(default: $REPRO_CACHE_DIR, else disabled)")
        p.add_argument("--timings", action="store_true",
                       help="print per-stage timing and cache statistics")
        p.add_argument("--trace", default=None, metavar="PATH",
                       help="write a span trace of the run: Chrome trace "
                            "JSON (chrome://tracing / Perfetto), or flat "
                            "JSONL when PATH ends in .jsonl")
        p.add_argument("--metrics", default=None, metavar="PATH",
                       help="write a metrics-registry snapshot JSON "
                            "(counters, gauges, histograms)")
        p.add_argument("--manifest", default=None, metavar="PATH",
                       help="write a run-manifest JSON (default: derived "
                            "from --metrics/--trace as "
                            "<stem>.manifest.json)")
        p.add_argument("--log-level", default=None,
                       choices=obs_logs.LEVELS,
                       help="verbosity of the repro.* logging hierarchy")
        p.add_argument("--profile", default=None, metavar="PATH",
                       help="run the wall-clock sampling profiler and "
                            "write collapsed stacks to PATH plus a "
                            "Chrome flame chart to PATH.chrome.json")
        if design:
            p.add_argument("--design", default="idct",
                           help="idct | dct | fir")
        elif sweep:
            p.add_argument("--component", default="adder",
                           help=" | ".join(sorted(COMPONENTS)))

    p = sub.add_parser("characterize",
                       help="build a precision/aged-delay table")
    common(p)
    p.add_argument("--sweep-bits", type=int, default=12,
                   help="how many LSBs to sweep (default 12)")
    p.add_argument("--output", help="approximation-library JSON to write")
    p.add_argument("--update", action="store_true",
                   help="merge into an existing JSON library")
    p.add_argument("--synth", choices=("sweep", "scratch"),
                   default="sweep",
                   help="variant synthesis strategy: one base synthesis "
                        "per worker with cone-restricted derivation "
                        "(sweep, default) or independent per-point "
                        "synthesis (scratch); bit-identical results")
    p.add_argument("--sta", choices=("batched", "scalar"),
                   default="batched",
                   help="STA engine for the sweep (default batched)")
    p.add_argument("--screen", action="store_true",
                   help="also print the fast incremental-STA truncation "
                        "screen (one netlist, no re-synthesis)")
    p.set_defaults(func=cmd_characterize)

    p = sub.add_parser("timing", help="fresh vs aged timing of a component")
    common(p)
    p.add_argument("--precision", type=int, default=None)
    p.set_defaults(func=cmd_timing)

    p = sub.add_parser("flow", help="run the guardband-removal flow")
    common(p, design=True)
    p.add_argument("--library", help="pre-built approximation-library JSON")
    p.set_defaults(func=cmd_flow)

    p = sub.add_parser("schedule",
                       help="plan a graceful-degradation schedule")
    common(p, design=True)
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser("export", help="write Verilog / aged SDF")
    common(p)
    p.add_argument("--precision", type=int, default=None)
    p.add_argument("--verilog", help="output .v path")
    p.add_argument("--sdf", help="output .sdf path")
    p.set_defaults(func=cmd_export)

    p = sub.add_parser(
        "verify",
        help="differential verification: golden models, cross-engine "
             "oracles, paper-fidelity invariants")
    common(p)
    p.add_argument("--scenario", default="worst1y,worst10y,balance10y",
                   help="comma-separated aging scenarios for the "
                        "invariants: worst10y, balance1y, 10y_worst, "
                        "fresh (default worst1y,worst10y,balance10y)")
    p.add_argument("--vectors", type=int, default=96,
                   help="operand tuples for the golden 3-way diff "
                        "(default 96; corners always added)")
    p.add_argument("--oracle-vectors", type=int, default=None,
                   help="stimulus vectors for the cross-engine oracle "
                        "(default: exhaustive when narrow, else 128)")
    p.add_argument("--event-cap", type=int, default=32,
                   help="vector cap for the scalar event engine "
                        "(default 32)")
    p.add_argument("--sweep-bits", type=int, default=12,
                   help="precision sweep depth for the Eq. 2 invariants "
                        "(default 12)")
    p.add_argument("--fuzz", type=int, default=0, metavar="N",
                   help="additionally fuzz the engines on N random "
                        "netlists (default 0)")
    p.add_argument("--corpus", default=None, metavar="DIR",
                   help="save fuzzed netlists with new structural "
                        "coverage into this corpus directory")
    p.add_argument("--counterexamples", default=None, metavar="DIR",
                   help="write minimized counterexample JSONs here")
    p.add_argument("--seed", type=int, default=20170618,
                   help="RNG seed for operands, stimulus and fuzzing")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "inject",
        help="statistical timing-fault injection campaign "
             "(guardband-free baseline vs approximation vs guardband)")
    common(p)
    p.add_argument("--clocks", type=_years_list, default=[1.0, 0.95],
                   metavar="SCALES",
                   help="comma-separated clock scales relative to the "
                        "fresh critical path (default 1.0,0.95)")
    p.add_argument("--vectors", type=int, default=4096,
                   help="stimulus vectors per grid point (default 4096)")
    p.add_argument("--seed", type=int, default=20170618,
                   help="campaign seed; results are bit-reproducible "
                        "from it (see the seed-splitting scheme in "
                        "repro.inject.masks)")
    p.add_argument("--stimulus", default="normal",
                   help="stimulus name (default normal)")
    p.add_argument("--activity", type=float, default=0.5,
                   help="output toggle activity scaling flip "
                        "probabilities (default 0.5)")
    p.add_argument("--output", default=None, metavar="PATH",
                   help="write the campaign result JSON")
    p.set_defaults(func=cmd_inject)

    p = sub.add_parser(
        "mc",
        help="Monte Carlo variation analysis: yield curves and the "
             "yield-constrained max precision K (stochastic Eq. 2)")
    common(p)
    p.add_argument("--clocks", type=_years_list, default=[1.0, 0.97],
                   metavar="SCALES",
                   help="comma-separated clock scales relative to the "
                        "fresh critical path (default 1.0,0.97)")
    p.add_argument("--sigma", type=float, default=30.0, metavar="MV",
                   help="per-gate Vth variation sigma in mV "
                        "(default 30; 0 reproduces the deterministic "
                        "engine exactly)")
    p.add_argument("--samples", type=int, default=2000,
                   help="Monte Carlo samples per grid point "
                        "(default 2000)")
    p.add_argument("--seed", type=int, default=20170618,
                   help="variation seed; results are bit-reproducible "
                        "from it (see the per-gate Philox streams in "
                        "repro.mc.variation)")
    p.add_argument("--min-yield", type=float, default=0.99,
                   help="yield target defining K (default 0.99)")
    p.add_argument("--sweep-bits", type=int, default=8,
                   help="precision sweep depth below the full width "
                        "(default 8)")
    p.add_argument("--block", type=int, default=None,
                   help="sample-block size bounding peak memory "
                        "(never affects results; default 256)")
    p.add_argument("--surrogate", choices=("off", "screen"),
                   default="off",
                   help="'screen' prescreens the precision sweep with "
                        "the cross-validated least-squares surrogate "
                        "and samples only near feasibility boundaries")
    p.add_argument("--output", default=None, metavar="PATH",
                   help="write the mc result JSON")
    p.set_defaults(func=cmd_mc)

    p = sub.add_parser(
        "serve",
        help="serve characterization queries over HTTP/JSON (asyncio "
             "job server over the sharded multi-tier cache)")
    common(p, sweep=False)
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8737,
                   help="bind port (default 8737; 0 = ephemeral, "
                        "printed on startup)")
    p.add_argument("--shards", type=int, default=None,
                   help="on-disk cache shard directories "
                        "(default: one per worker)")
    p.add_argument("--mem-entries", type=int, default=None,
                   help="in-memory LRU tier capacity (default: "
                        "$REPRO_CACHE_MEM_ENTRIES or %d)"
                        % cache_mod.DEFAULT_MEM_ENTRIES)
    p.add_argument("--no-mem-tier", action="store_true",
                   help="disable the in-memory cache tier")
    p.add_argument("--no-dedup", action="store_true",
                   help="disable single-flight dedup of identical "
                        "in-flight queries (for benchmarking)")
    p.add_argument("--max-requests", type=int, default=None,
                   help="shut down after serving N requests "
                        "(smoke tests)")
    p.add_argument("--timeseries", default=None, metavar="PATH",
                   help="journal periodic metric time-series samples "
                        "to this JSONL file")
    p.add_argument("--ts-interval", type=float, default=1.0,
                   metavar="SECONDS",
                   help="time-series sampling interval (default 1.0)")
    p.add_argument("--slo", action="append", default=None, metavar="SPEC",
                   help="service-level objective, repeatable: "
                        "latency:pN:threshold_ms[:window_s] or "
                        "errors:availability_pct[:window_s] "
                        "(default: %s)" % ", ".join(obs_slo.DEFAULT_SLOS))
    p.add_argument("--no-slo", action="store_true",
                   help="disable SLO evaluation entirely")
    p.add_argument("--drain-grace", type=float, default=10.0,
                   metavar="SECONDS",
                   help="seconds to wait for in-flight requests during "
                        "shutdown before force-closing (default 10)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "bench-report",
        help="analyze committed BENCH_*.json perf trajectories for "
             "speedup regressions")
    p.add_argument("paths", nargs="*", metavar="BENCH.json",
                   help="trajectory files (default: ./BENCH_*.json)")
    p.add_argument("--check", action="store_true",
                   help="exit nonzero on any regression (CI gate)")
    p.add_argument("--tolerance", type=float,
                   default=bench_report_mod.DEFAULT_TOLERANCE,
                   metavar="FRAC",
                   help="allowed fractional drop below the historical "
                        "floor (default %.2f)"
                        % bench_report_mod.DEFAULT_TOLERANCE)
    p.set_defaults(func=cmd_bench_report)
    return parser


def main(argv=None):
    """CLI entry point; returns the process exit code.

    User-facing failures (unknown component/scenario/design names,
    missing cache directories or input files, malformed netlists) exit
    non-zero with a one-line ``error:`` diagnostic on stderr instead of
    a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except SystemExit as exc:
        if not isinstance(exc.code, str):
            raise
        print("error: %s" % exc.code, file=sys.stderr)
        return 2
    except (OSError, NetlistError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
