#!/usr/bin/env python
"""Quickstart: convert an adder's aging guardband into a precision cut.

The five-minute tour of the library:

1. build a cell library and an RTL component,
2. synthesize it and see how BTI aging slows it down,
3. characterize the precision <-> aged-delay trade (Section IV of the
   paper),
4. read off the precision K that lets the *aged* component keep the
   *fresh* clock — the guardband is gone, replaced by a bounded,
   deterministic approximation.

Run:  python examples/quickstart.py
"""

from repro import (Adder, characterize, critical_path_delay,
                   default_library, synthesize_netlist, worst_case)

WIDTH = 16
LIFETIMES = (1, 10)


def main():
    lib = default_library()
    adder = Adder(WIDTH)

    # -- step 1: what does aging cost? ---------------------------------
    netlist = synthesize_netlist(adder, lib)
    fresh = critical_path_delay(netlist, lib)
    print("%d-bit adder, synthesized: %d gates, %.1f ps fresh"
          % (WIDTH, netlist.num_gates, fresh))
    for years in LIFETIMES:
        aged = critical_path_delay(netlist, lib,
                                   scenario=worst_case(years))
        print("  after %2d years of worst-case stress: %.1f ps "
              "(guardband %.1f ps = %.1f%%)"
              % (years, aged, aged - fresh, 100 * (aged / fresh - 1)))

    # -- step 2: characterize precision vs aged delay -------------------
    scenarios = [worst_case(y) for y in LIFETIMES]
    entry = characterize(adder, lib, scenarios=scenarios,
                         precisions=range(WIDTH, WIDTH - 9, -1))
    print("\nprecision sweep (delays in ps):")
    print("  prec   fresh   1y(WC)  10y(WC)  gates")
    for p in entry.precisions:
        print("  %4d  %6.1f  %6.1f  %7.1f  %5d"
              % (p, entry.fresh_ps[p], entry.aged_ps[(p, "1y_worst")],
                 entry.aged_ps[(p, "10y_worst")], entry.gates[p]))

    # -- step 3: the paper's Eq. 2 lookup --------------------------------
    print("\nrequired precision K (aged delay <= fresh full-precision "
          "constraint of %.1f ps):" % entry.fresh_delay_ps())
    for years in LIFETIMES:
        label = "%dy_worst" % years
        k = entry.required_precision(label)
        if k is None:
            print("  %2d years: not compensable by truncation alone" % years)
            continue
        print("  %2d years: keep %d of %d bits (drop %d) -> "
              "max |error| <= %d, guardband removed"
              % (years, k, WIDTH, WIDTH - k,
                 adder.with_precision(k).max_error_bound()))


if __name__ == "__main__":
    main()
