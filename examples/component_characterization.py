#!/usr/bin/env python
"""Build and persist a library of aging-induced approximations.

Characterizes the paper's three RTL components (adder, multiplier, MAC)
under worst-case, balanced and *actual-case* aging — the latter with both
normal-distribution stimuli and operands recorded from a live IDCT, which
demonstrates the paper's point that artificial stimuli are sufficient.
The result is saved as JSON: the reusable artifact a design team would
ship next to its cell library.

Run:  python examples/component_characterization.py [output.json]
"""

import sys

from repro import (Adder, Multiplier, MultiplyAccumulate,
                   default_library, worst_case, balance_case)
from repro.approx import RecordingArithmetic
from repro.core import (ActualCaseSpec, AgingApproximationLibrary,
                        characterize)
from repro.media import TransformCodec, make_image

WIDTH = 16            # keep the demo quick; the paper uses 32
SWEEP_BITS = 10       # precisions WIDTH .. WIDTH-SWEEP_BITS


def recorded_idct_operands(limit=4000):
    """Multiplier operand streams captured from a decoding IDCT."""
    recorder = RecordingArithmetic()
    codec = TransformCodec(decode_arithmetic=recorder)
    codec.roundtrip(make_image("foreman", 64))
    return recorder.recorded_mul_stream(limit=limit)


def main():
    lib = default_library()
    store = AgingApproximationLibrary()

    mult = Multiplier(WIDTH)
    nd_ops = mult.random_operands(4000, rng=2017)
    idct_ops = recorded_idct_operands()

    components = {
        "adder": (Adder(WIDTH), [worst_case(1), worst_case(10),
                                 balance_case(10)]),
        "multiplier": (mult, [worst_case(1), worst_case(10),
                              balance_case(10),
                              ActualCaseSpec(10, "actual_nd", tuple(nd_ops)),
                              ActualCaseSpec(10, "actual_idct",
                                             tuple(idct_ops))]),
        "mac": (MultiplyAccumulate(WIDTH), [worst_case(1),
                                            worst_case(10)]),
    }

    precisions = range(WIDTH, WIDTH - SWEEP_BITS - 1, -1)
    for name, (component, scenarios) in components.items():
        print("characterizing %s (%d precisions x %d scenarios)..."
              % (name, len(list(precisions)), len(scenarios)))
        entry = characterize(component, lib, scenarios=scenarios,
                             precisions=precisions)
        store.add(entry)
        print("  fresh constraint: %.1f ps" % entry.fresh_delay_ps())
        for label in entry.scenario_labels:
            k = entry.required_precision(label)
            if k is None:
                print("    %-16s K = (not compensable in sweep)" % label)
            else:
                print("    %-16s K = %2d bits (drop %d), removes the "
                      "%.1f ps guardband"
                      % (label, k, WIDTH - k, entry.guardband_ps(label)))

    # The paper's "sufficiency of normal distribution" observation:
    entry = store.get("multiplier_w%d" % WIDTH)
    k_nd = entry.required_precision("10y_actual_nd")
    k_idct = entry.required_precision("10y_actual_idct")
    print("\nactual-case stimuli comparison (paper Section IV):")
    print("  normal-distribution stimuli -> K = %s" % k_nd)
    print("  recorded IDCT stimuli       -> K = %s" % k_idct)
    print("  difference: %d bit(s) -- artificial stimuli characterize "
          "the component%s" % (abs(k_nd - k_idct),
                               "" if k_nd == k_idct else " almost exactly"))

    path = sys.argv[1] if len(sys.argv) > 1 else "aging_approx_library.json"
    store.save(path)
    print("\nsaved %d characterizations to %s" % (len(store), path))


if __name__ == "__main__":
    main()
