#!/usr/bin/env python
"""Graceful degradation over a design's lifetime (the paper's vision).

The paper closes with: "By applying approximations adaptively we can
envision future systems that gradually degrade in quality as they age."
This example makes that concrete: for every year of a 20-year life, look
up the smallest precision reduction that keeps the (aging) IDCT
multiplier at the fresh clock, then show the image quality delivered at
that point of life. Quality steps down a bit at a time instead of the
circuit failing.

Run:  python examples/graceful_degradation.py
"""

import numpy as np

from repro import Multiplier, default_library, worst_case
from repro.approx import ComponentArithmetic
from repro.core import characterize
from repro.media import TransformCodec, make_image
from repro.quality import psnr_db

WIDTH = 32
YEARS = (0.5, 1, 2, 3, 5, 7, 10, 15, 20)


def main():
    lib = default_library()
    mult = Multiplier(WIDTH)
    print("characterizing %d-bit multiplier for %d lifetimes..."
          % (WIDTH, len(YEARS)))
    entry = characterize(mult, lib,
                         scenarios=[worst_case(y) for y in YEARS],
                         precisions=range(WIDTH, WIDTH - 13, -1))

    image = make_image("mother", 64)
    fresh_quality = psnr_db(image, TransformCodec().roundtrip(image))
    print("\nfresh chain quality: %.1f dB" % fresh_quality)
    print("\n  age     K (bits)  dropped   PSNR     quality")
    print("  ----    --------  -------   ------   -------")
    previous_k = None
    for years in YEARS:
        label = worst_case(years).label
        k = entry.required_precision(label)
        if k is None:
            print("  %4gy   truncation alone no longer suffices" % years)
            continue
        arithmetic = ComponentArithmetic(
            mul_component=mult.with_precision(k))
        quality = psnr_db(image, TransformCodec(
            decode_arithmetic=arithmetic).roundtrip(image))
        step = "" if k == previous_k else "  <- adapt precision"
        previous_k = k
        bar = "#" * int(np.clip((quality - 20) / 2, 0, 18))
        print("  %4gy   %8d  %7d   %5.1f dB %-18s%s"
              % (years, k, WIDTH - k, quality, bar, step))

    print("\nEvery row is timing-error free at the original clock: the")
    print("guardband never existed, and quality steps down gradually as")
    print("the precision adapts to the accumulated aging.")


if __name__ == "__main__":
    main()
