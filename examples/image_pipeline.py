#!/usr/bin/env python
"""Image-processing case study: the paper's DCT/IDCT scenario end to end.

Three acts, mirroring the paper:

1. **Naive guardband removal** — the aged multiplier, clocked at its
   fresh f_max, injects timing errors into the IDCT and image quality
   collapses (the paper's Fig. 2 motivation).
2. **The flow** — apply the Section-V microarchitecture flow to the IDCT:
   the multiplier block gives up a few LSBs, every block meets the fresh
   clock for 10 years of worst-case aging.
3. **Quality check** — decode all nine test images with the approximated
   IDCT: a bounded PSNR cost instead of catastrophe (Fig. 8(b)).

Run:  python examples/image_pipeline.py
"""

import numpy as np

from repro import (ComponentArithmetic, GateLevelArithmetic, Multiplier,
                   TimedComponentModel, default_library, balance_case,
                   worst_case)
from repro.core import remove_guardband
from repro.media import IMAGE_NAMES, TransformCodec, make_image
from repro.quality import ACCEPTABLE_PSNR_DB, psnr_db
from repro.rtl import WallaceMultiplier, idct_microarchitecture

IMAGE_SIZE = 64


def act_one_naive_removal(lib, image):
    print("=" * 64)
    print("Act 1: remove the guardband and just let it age (Fig. 2)")
    print("=" * 64)
    exact = TransformCodec().roundtrip(image)
    print("  fresh chain: PSNR %.1f dB" % psnr_db(image, exact))
    # The motivational study uses the performance-optimal multiplier.
    mult = WallaceMultiplier(32, final_adder="ks")
    for scenario in (balance_case(1), balance_case(10)):
        aged = TimedComponentModel(mult, lib, scenario=scenario)
        codec = TransformCodec(
            decode_arithmetic=GateLevelArithmetic(mul_model=aged))
        recon = codec.roundtrip(image)
        print("  aged %-11s PSNR %5.1f dB  <- nondeterministic timing "
              "errors" % (scenario.label + ":", psnr_db(image, recon)))


def act_two_flow(lib):
    print()
    print("=" * 64)
    print("Act 2: convert the guardband into approximations (Fig. 6 flow)")
    print("=" * 64)
    micro = idct_microarchitecture(width=32)
    report = remove_guardband(micro, lib, worst_case(10),
                              report_scenarios=[worst_case(1)])
    print("  timing constraint (fresh f_max): %.1f ps"
          % report.constraint_ps)
    for name, decision in report.outcome.decisions.items():
        print("  block %-5s precision %2d -> %2d   slack %+6.1f -> %+6.1f ps"
              % (name, decision.original_precision,
                 decision.chosen_precision, decision.slack_before_ps,
                 decision.slack_after_ps))
    print("  validated: %s (residual guardband %.2f ps)"
          % (report.outcome.validated,
             report.outcome.residual_guardband_ps))
    for label in report.approximated_delays_ps:
        print("    %-10s original %6.1f ps | approximated %6.1f ps"
              % (label, report.original_delays_ps[label],
                 report.approximated_delays_ps[label]))
    return report


def act_three_quality(report):
    print()
    print("=" * 64)
    print("Act 3: quality with aging-induced approximations (Fig. 8(b))")
    print("=" * 64)
    precision = report.outcome.decisions["mult"].chosen_precision
    arithmetic = ComponentArithmetic(
        mul_component=Multiplier(32, precision=precision))
    rows = []
    for name in IMAGE_NAMES:
        image = make_image(name, IMAGE_SIZE)
        fresh = psnr_db(image, TransformCodec().roundtrip(image))
        approx = psnr_db(image, TransformCodec(
            decode_arithmetic=arithmetic).roundtrip(image))
        rows.append((name, fresh, approx))
    print("  image        fresh    approximated")
    for name, fresh, approx in rows:
        marker = "" if approx >= ACCEPTABLE_PSNR_DB else "  (< 30 dB)"
        print("  %-10s %6.1f dB %9.1f dB%s" % (name, fresh, approx, marker))
    avg_drop = np.mean([f - a for __, f, a in rows])
    print("  average PSNR cost of 10 aging-free years: %.1f dB" % avg_drop)


def main():
    lib = default_library()
    image = make_image("akiyo", IMAGE_SIZE)
    act_one_naive_removal(lib, image)
    report = act_two_flow(lib)
    act_three_quality(report)


if __name__ == "__main__":
    main()
