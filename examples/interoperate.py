#!/usr/bin/env python
"""Interoperating with standard EDA formats.

Round-trips one synthesized, aging-analyzed component through the
bundled interchange formats:

1. synthesize an adder and export it as flat structural Verilog,
2. run aging-aware STA and export the aged delays as an SDF file (the
   artifact the paper feeds to its gate-level simulator),
3. export the cell library itself as Liberty-style text for the same
   aging corner,
4. read everything back and prove the loop is closed: the re-imported
   netlist computes the same function and the SDF delays drive the
   event-driven simulator to the same settle times STA predicted.

Run:  python examples/interoperate.py [output_dir]
"""

import os
import sys

import numpy as np

from repro import (Adder, default_library, synthesize_netlist, worst_case)
from repro.cells import to_liberty
from repro.netlist import from_verilog, to_verilog
from repro.sim import (EventSimulator, bits_to_int, compile_netlist,
                       evaluate, int_to_bits)
from repro.sta import analyze, gate_delays_from_sdf, to_sdf

WIDTH = 12
SCENARIO = worst_case(10)


def main():
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "interop_out"
    os.makedirs(out_dir, exist_ok=True)
    lib = default_library()
    component = Adder(WIDTH)
    netlist = synthesize_netlist(component, lib)

    paths = {
        "verilog": os.path.join(out_dir, "adder.v"),
        "sdf": os.path.join(out_dir, "adder_10y_worst.sdf"),
        "liberty": os.path.join(out_dir, "repro45_10y_worst.lib"),
    }
    with open(paths["verilog"], "w") as handle:
        handle.write(to_verilog(netlist))
    with open(paths["sdf"], "w") as handle:
        handle.write(to_sdf(netlist, lib, scenario=SCENARIO))
    with open(paths["liberty"], "w") as handle:
        handle.write(to_liberty(lib, scenario=SCENARIO))
    for kind, path in paths.items():
        print("wrote %-8s %s (%d bytes)"
              % (kind, path, os.path.getsize(path)))

    # -- close the loop -------------------------------------------------
    with open(paths["verilog"]) as handle:
        reloaded = from_verilog(handle.read())
    a, b = component.random_operands(2000, rng=42)
    bits = np.concatenate([int_to_bits(a, WIDTH), int_to_bits(b, WIDTH)],
                          axis=1)
    original = bits_to_int(evaluate(compile_netlist(netlist, lib), bits))
    roundtrip = bits_to_int(evaluate(compile_netlist(reloaded, lib), bits))
    print("verilog round-trip functional match: %s"
          % bool(np.array_equal(original, roundtrip)))

    with open(paths["sdf"]) as handle:
        sdf_delays = gate_delays_from_sdf(handle.read())
    report = analyze(netlist, lib, scenario=SCENARIO)
    worst_gate = max(sdf_delays, key=sdf_delays.get)
    print("SDF parses %d instances; worst IOPATH %.1f ps (STA gate "
          "delay %.1f ps)" % (len(sdf_delays), sdf_delays[worst_gate],
                              report.gate_delays[worst_gate]))

    # Event-driven simulation honours the aged SDF timing: settle times
    # never exceed the STA arrival of the corresponding output.
    simulator = EventSimulator(netlist, lib, scenario=SCENARIO)
    pis = netlist.primary_inputs
    worst_settle = 0.0
    for i in range(1, 50):
        waves = simulator.settle(dict(zip(pis, bits[i - 1].tolist())),
                                 dict(zip(pis, bits[i].tolist())))
        worst_settle = max(worst_settle,
                           max(waves[po].settle_time
                               for po in netlist.primary_outputs))
    print("event-driven worst settle over 49 cycles: %.1f ps "
          "(STA bound %.1f ps)" % (worst_settle,
                                   report.critical_path_ps))
    assert worst_settle <= report.critical_path_ps + 1e-6
    print("loop closed: formats round-trip and timing is consistent")


if __name__ == "__main__":
    main()
