#!/usr/bin/env python
"""FIR audio-filter case study: the flow generalizes beyond the IDCT.

The paper's method is application-agnostic — any error-tolerant datapath
built from precision-scalable components can trade its aging guardband
for approximation. This example applies the identical Section-V flow to
a 16-tap low-pass FIR filter and reports the signal-to-noise cost across
five synthetic audio-style signals.

Run:  python examples/audio_filter.py
"""

import numpy as np

from repro import Multiplier, default_library, worst_case
from repro.approx import ComponentArithmetic
from repro.core import remove_guardband
from repro.media import SIGNAL_NAMES, make_signal
from repro.quality import snr_db
from repro.rtl import FixedPointFIR, fir_microarchitecture, lowpass_taps

SAMPLES = 4096
TAPS = 16


def main():
    lib = default_library()
    micro = fir_microarchitecture(width=32, taps=TAPS)

    print("applying the guardband-removal flow to a %d-tap FIR..." % TAPS)
    report = remove_guardband(micro, lib, worst_case(10))
    decision = report.outcome.decisions["mult"]
    print("  constraint: %.1f ps (fresh f_max)" % report.constraint_ps)
    print("  tap multiplier: %d -> %d bits (slack %+.1f -> %+.1f ps)"
          % (decision.original_precision, decision.chosen_precision,
             decision.slack_before_ps, decision.slack_after_ps))
    print("  validated guardband-free for 10 years: %s"
          % report.meets_constraint)

    taps = lowpass_taps(TAPS)
    exact = FixedPointFIR(taps)
    approx = FixedPointFIR(taps, arithmetic=ComponentArithmetic(
        mul_component=Multiplier(32,
                                 precision=decision.chosen_precision)))

    print("\nfiltering fidelity (approximate vs exact filter output):")
    print("  signal     SNR")
    snrs = []
    for name in SIGNAL_NAMES:
        signal = make_signal(name, SAMPLES)
        value = snr_db(exact.filter(signal), approx.filter(signal))
        snrs.append(value)
        print("  %-9s %6.1f dB" % (name, value))
    print("  average   %6.1f dB" % np.mean(snrs))
    print("\nSame flow, different application: the multiplier gives up "
          "the same LSBs,\nand the filter stays timing-clean at its "
          "original clock for its whole life.")


if __name__ == "__main__":
    main()
