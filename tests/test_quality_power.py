"""Tests for quality metrics and power/energy models."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.power import PowerReport, dynamic_power_uw, power_report, savings
from repro.quality import (ACCEPTABLE_PSNR_DB, error_rate, error_summary,
                           is_acceptable_quality, max_abs_error,
                           mean_abs_error, mse, psnr_db)
from repro.rtl import Adder
from repro.sim import operand_stream_bits, simulate_activity
from repro.synth import synthesize_netlist


class TestQualityMetrics:
    def test_identical_inputs(self):
        img = np.arange(64).reshape(8, 8)
        assert mse(img, img) == 0.0
        assert psnr_db(img, img) == float("inf")
        assert error_rate(img, img) == 0.0

    def test_known_psnr(self):
        ref = np.zeros((10, 10))
        test = np.full((10, 10), 16.0)
        # MSE = 256 -> PSNR = 10*log10(255^2/256) ~ 24.05 dB
        assert psnr_db(ref, test) == pytest.approx(24.05, abs=0.01)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse(np.zeros(4), np.zeros(5))
        with pytest.raises(ValueError):
            error_rate(np.zeros(4), np.zeros(5))

    def test_error_rate_counts_mismatches(self):
        exact = np.array([1, 2, 3, 4])
        observed = np.array([1, 0, 3, 0])
        assert error_rate(exact, observed) == 0.5

    def test_error_magnitudes(self):
        exact = np.array([10, 20])
        observed = np.array([12, 15])
        assert mean_abs_error(exact, observed) == pytest.approx(3.5)
        assert max_abs_error(exact, observed) == 5

    def test_error_summary_bundle(self):
        summary = error_summary(np.array([1, 2]), np.array([1, 4]))
        assert set(summary) == {"error_rate", "mean_abs_error",
                                "max_abs_error"}

    def test_acceptability_threshold(self):
        assert is_acceptable_quality(30.0)
        assert is_acceptable_quality(45.0)
        assert not is_acceptable_quality(29.9)
        assert ACCEPTABLE_PSNR_DB == 30.0

    @given(st.lists(st.integers(0, 255), min_size=4, max_size=64))
    def test_psnr_nonnegative_for_8bit_data(self, pixels):
        ref = np.array(pixels, dtype=float)
        test = np.clip(ref + 1, 0, 255)
        value = psnr_db(ref, test)
        assert value > 0

    def test_lower_noise_means_higher_psnr(self, rng):
        ref = rng.integers(0, 256, (16, 16)).astype(float)
        small = np.clip(ref + rng.normal(0, 2, ref.shape), 0, 255)
        large = np.clip(ref + rng.normal(0, 20, ref.shape), 0, 255)
        assert psnr_db(ref, small) > psnr_db(ref, large)


class TestPowerModels:
    @pytest.fixture(scope="class")
    def activity(self, lib, adder8, rng=None):
        component = Adder(8)
        rng = np.random.default_rng(7)
        a, b = component.random_operands(400, rng=rng)
        bits = operand_stream_bits((a, b), component.operand_widths)
        return simulate_activity(adder8, lib, bits)

    def test_dynamic_power_positive(self, lib, adder8, activity):
        power = dynamic_power_uw(adder8, lib, activity.toggle_rate, 100.0)
        assert power > 0

    def test_dynamic_power_scales_with_frequency(self, lib, adder8,
                                                 activity):
        slow = dynamic_power_uw(adder8, lib, activity.toggle_rate, 200.0)
        fast = dynamic_power_uw(adder8, lib, activity.toggle_rate, 100.0)
        assert fast == pytest.approx(2 * slow)

    def test_zero_activity_means_zero_dynamic(self, lib, adder8):
        assert dynamic_power_uw(adder8, lib, {}, 100.0) == 0.0

    def test_power_report_roll_up(self, lib, adder8, activity):
        report = power_report(adder8, lib, activity.toggle_rate, 100.0)
        assert report.area_um2 == pytest.approx(adder8.area(lib))
        assert report.leakage_nw == pytest.approx(adder8.leakage(lib))
        assert report.frequency_ghz == pytest.approx(10.0)
        assert report.total_power_uw == pytest.approx(
            report.dynamic_uw + report.leakage_nw * 1e-3)
        assert report.energy_per_cycle_fj == pytest.approx(
            report.total_power_uw * 100.0 * 1e-3)

    def test_savings_ratios(self):
        ours = PowerReport(area_um2=80, leakage_nw=70, dynamic_uw=9,
                           clock_ps=100)
        base = PowerReport(area_um2=100, leakage_nw=100, dynamic_uw=10,
                           clock_ps=110)
        ratios = savings(ours, base)
        assert ratios["frequency"] == pytest.approx(1.1)
        assert ratios["area"] == pytest.approx(0.8)
        assert ratios["leakage"] == pytest.approx(0.7)
        assert ratios["dynamic"] == pytest.approx(0.9)
        assert ratios["energy"] < 1.0

    def test_smaller_netlist_uses_less_power(self, lib, rng):
        component_full = Adder(16)
        component_cut = Adder(16, precision=8)
        full = synthesize_netlist(component_full, lib, effort="high")
        cut = synthesize_netlist(component_cut, lib, effort="high")
        a, b = component_full.random_operands(300, rng=rng)
        bits = operand_stream_bits((a, b), component_full.operand_widths)
        act_full = simulate_activity(full, lib, bits)
        act_cut = simulate_activity(cut, lib, bits)
        p_full = power_report(full, lib, act_full.toggle_rate, 100.0)
        p_cut = power_report(cut, lib, act_cut.toggle_rate, 100.0)
        assert p_cut.dynamic_uw < p_full.dynamic_uw
        assert p_cut.leakage_nw < p_full.leakage_nw
        assert p_cut.area_um2 < p_full.area_um2
