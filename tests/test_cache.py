"""Tests for the content-addressed characterization cache."""

import json
import os
import time

import pytest

from repro.aging import worst_case
from repro.aging.bti import BTIModel
from repro.cells import nangate45
from repro.cells.degradation import DegradationAwareLibrary
from repro.core import (ActualCaseSpec, CharacterizationCache, characterize,
                        cache_enabled, get_cache, set_cache)
from repro.core import cache as cache_mod
from repro.rtl import Adder, Multiplier


PRECISIONS = [8, 7, 6]
SCENARIOS = [worst_case(10)]


def small_characterize(lib, cache, **overrides):
    kwargs = dict(scenarios=SCENARIOS, precisions=PRECISIONS,
                  effort="high", cache=cache)
    kwargs.update(overrides)
    return characterize(Adder(8), lib, **kwargs)


def entries_equal(a, b):
    return (a.key == b.key and a.precisions == b.precisions
            and a.scenario_labels == b.scenario_labels
            and a.fresh_ps == b.fresh_ps and a.aged_ps == b.aged_ps
            and a.area_um2 == b.area_um2 and a.leakage_nw == b.leakage_nw
            and a.gates == b.gates and a.depth == b.depth)


class TestHitMiss:
    def test_cold_run_misses_then_warm_run_hits(self, lib, tmp_path):
        cache = CharacterizationCache(tmp_path)
        first = small_characterize(lib, cache)
        assert cache.stats.misses == len(PRECISIONS)
        assert cache.stats.hits == 0
        assert cache.stats.stores == len(PRECISIONS)

        warm = CharacterizationCache(tmp_path)
        second = small_characterize(lib, warm)
        assert warm.stats.hits == len(PRECISIONS)
        assert warm.stats.misses == 0
        assert entries_equal(first, second)

    def test_cached_result_identical_to_uncached(self, lib, tmp_path):
        cache = CharacterizationCache(tmp_path)
        small_characterize(lib, cache)
        cached = small_characterize(lib, CharacterizationCache(tmp_path))
        plain = small_characterize(lib, None)
        assert entries_equal(cached, plain)

    def test_cache_disabled_writes_nothing(self, lib, tmp_path):
        small_characterize(lib, None)
        assert list(tmp_path.iterdir()) == []

    def test_new_scenario_extends_entry(self, lib, tmp_path):
        cache = CharacterizationCache(tmp_path)
        small_characterize(lib, cache)
        both = [worst_case(10), worst_case(1)]
        extended = small_characterize(
            lib, CharacterizationCache(tmp_path), scenarios=both)
        assert extended.scenario_labels == ["10y_worst", "1y_worst"]
        # Third run over both scenarios is now a pure hit.
        warm = CharacterizationCache(tmp_path)
        again = small_characterize(lib, warm, scenarios=both)
        assert warm.stats.hits == len(PRECISIONS)
        assert warm.stats.misses == 0
        assert entries_equal(extended, again)

    def test_partial_entry_reuses_stored_aged_delay(self, lib, tmp_path):
        cache = CharacterizationCache(tmp_path)
        first = small_characterize(lib, cache)
        both = [worst_case(10), worst_case(1)]
        mixed = CharacterizationCache(tmp_path)
        extended = small_characterize(lib, mixed, scenarios=both)
        # Re-synthesis was needed, so the points count as misses ...
        assert mixed.stats.misses == len(PRECISIONS)
        # ... but the 10y delays come out identical to the stored ones.
        for p in PRECISIONS:
            assert extended.aged_ps[(p, "10y_worst")] == \
                first.aged_ps[(p, "10y_worst")]


class TestInvalidation:
    def test_library_change_invalidates(self, lib, tmp_path):
        cache = CharacterizationCache(tmp_path)
        small_characterize(lib, cache)
        other_lib = nangate45(drives=(1, 2))
        fresh = CharacterizationCache(tmp_path)
        small_characterize(other_lib, fresh)
        assert fresh.stats.hits == 0
        assert fresh.stats.misses == len(PRECISIONS)

    def test_bti_change_invalidates(self, lib, tmp_path):
        cache = CharacterizationCache(tmp_path)
        small_characterize(lib, cache)
        fresh = CharacterizationCache(tmp_path)
        small_characterize(lib, fresh,
                           bti=BTIModel(prefactor_v=2.2e-3))
        assert fresh.stats.hits == 0
        assert fresh.stats.misses == len(PRECISIONS)

    def test_effort_change_invalidates(self, lib, tmp_path):
        cache = CharacterizationCache(tmp_path)
        small_characterize(lib, cache)
        fresh = CharacterizationCache(tmp_path)
        small_characterize(lib, fresh, effort="low")
        assert fresh.stats.hits == 0
        assert fresh.stats.misses == len(PRECISIONS)

    def test_degradation_library_keys_separately(self, lib, tmp_path):
        cache = CharacterizationCache(tmp_path)
        small_characterize(lib, cache)
        degr = DegradationAwareLibrary(lib, lifetimes=(10.0,))
        fresh = CharacterizationCache(tmp_path)
        small_characterize(lib, fresh, degradation=degr)
        assert fresh.stats.hits == 0
        assert fresh.stats.misses == len(PRECISIONS)

    def test_actual_case_operands_fingerprinted(self, lib, rng, tmp_path):
        component = Adder(8)
        a, b = component.random_operands(64, rng=rng)
        spec = ActualCaseSpec(10, "actual", (a, b))
        cache = CharacterizationCache(tmp_path)
        characterize(component, lib, scenarios=[spec], precisions=[8, 7],
                     effort="high", cache=cache)
        # Same operands: hit. Different operands: miss.
        warm = CharacterizationCache(tmp_path)
        characterize(component, lib, scenarios=[spec], precisions=[8, 7],
                     effort="high", cache=warm)
        assert warm.stats.hits == 2
        other = ActualCaseSpec(10, "actual", (a + 1, b))
        cold = CharacterizationCache(tmp_path)
        characterize(component, lib, scenarios=[other], precisions=[8, 7],
                     effort="high", cache=cold)
        assert cold.stats.hits == 0


class TestCorruption:
    def warm(self, lib, tmp_path):
        small_characterize(lib, CharacterizationCache(tmp_path))
        files = sorted(tmp_path.rglob("*.json"))
        assert len(files) == len(PRECISIONS)
        return files

    def test_garbage_entries_recovered(self, lib, tmp_path):
        files = self.warm(lib, tmp_path)
        for path in files:
            path.write_text("{ not json !!")
        cache = CharacterizationCache(tmp_path)
        entry = small_characterize(lib, cache)
        assert cache.stats.errors == len(PRECISIONS)
        assert cache.stats.misses == len(PRECISIONS)
        assert entries_equal(entry, small_characterize(lib, None))
        # The corrupted files were rewritten; a follow-up run hits.
        again = CharacterizationCache(tmp_path)
        small_characterize(lib, again)
        assert again.stats.hits == len(PRECISIONS)

    def test_corrupt_entries_quarantined_not_deleted(self, lib, tmp_path):
        files = self.warm(lib, tmp_path)
        garbage = "{ not json !!"
        files[0].write_text(garbage)
        cache = CharacterizationCache(tmp_path)
        assert cache.load(files[0].stem) is None
        assert cache.stats.errors == 1
        # The bad bytes were renamed aside for post-mortems, not lost.
        assert not files[0].exists()
        quarantined = files[0].with_name(files[0].name + ".corrupt")
        assert quarantined.read_text() == garbage
        # A repeated load is a plain miss: no re-parse, no new error.
        assert cache.load(files[0].stem) is None
        assert cache.stats.errors == 1

    def test_wrong_schema_is_a_miss(self, lib, tmp_path):
        files = self.warm(lib, tmp_path)
        entry = json.loads(files[0].read_text())
        entry["schema"] = 999
        files[0].write_text(json.dumps(entry))
        cache = CharacterizationCache(tmp_path)
        small_characterize(lib, cache)
        assert cache.stats.misses == 1
        assert cache.stats.hits == len(PRECISIONS) - 1

    def test_missing_metric_fields_is_a_miss(self, lib, tmp_path):
        files = self.warm(lib, tmp_path)
        entry = json.loads(files[0].read_text())
        del entry["metrics"]["depth"]
        files[0].write_text(json.dumps(entry))
        cache = CharacterizationCache(tmp_path)
        small_characterize(lib, cache)
        assert cache.stats.misses == 1


class TestMemoryTier:
    def warm_key(self, lib, tmp_path):
        cache = CharacterizationCache(tmp_path)
        small_characterize(lib, cache)
        return sorted(tmp_path.rglob("*.json"))[0].stem

    def test_disk_hit_populates_mem_tier(self, lib, tmp_path):
        key = self.warm_key(lib, tmp_path)
        cache = CharacterizationCache(tmp_path)
        entry, source = cache.load_with_source(key)
        assert entry is not None and source == "disk"
        assert cache.stats.mem_hits == 0
        again, source = cache.load_with_source(key)
        assert source == "mem"
        assert again is entry
        assert cache.stats.hits == 2
        assert cache.stats.mem_hits == 1

    def test_mem_hit_never_touches_disk(self, lib, tmp_path):
        key = self.warm_key(lib, tmp_path)
        cache = CharacterizationCache(tmp_path)
        assert cache.load(key) is not None
        # Remove the backing file: the memory tier still answers.
        for path in tmp_path.rglob(key + ".json"):
            path.unlink()
        assert cache.load(key) is not None
        # A fresh instance (empty memory tier) misses.
        assert CharacterizationCache(tmp_path).load(key) is None

    def test_store_populates_mem_tier(self, lib, tmp_path):
        key = self.warm_key(lib, tmp_path)
        cache = CharacterizationCache(tmp_path)
        entry = cache.load(key)
        cache.store(key, entry["metrics"], {})
        for path in tmp_path.rglob(key + ".json"):
            path.unlink()
        __entry, source = cache.load_with_source(key)
        assert source == "mem"

    def test_lru_eviction_counted(self, tmp_path):
        cache = CharacterizationCache(tmp_path, mem_entries=2)
        metrics = {"delay_ps": 1.0, "area_um2": 1.0, "leakage_nw": 1.0,
                   "gates": 1, "depth": 1}
        for key in ("aa" * 32, "bb" * 32, "cc" * 32):
            cache.store(key, metrics, {})
        assert len(cache._mem) == 2
        assert cache.stats.mem_evictions == 1

    def test_lru_evicts_least_recently_used(self, tmp_path):
        cache = CharacterizationCache(tmp_path, mem_entries=2)
        metrics = {"delay_ps": 1.0, "area_um2": 1.0, "leakage_nw": 1.0,
                   "gates": 1, "depth": 1}
        keys = ["aa" * 32, "bb" * 32, "cc" * 32]
        for key in keys[:2]:
            cache.store(key, metrics, {})
        assert cache.load_with_source(keys[0])[1] == "mem"  # refresh aa
        cache.store(keys[2], metrics, {})                   # evicts bb
        assert cache.load_with_source(keys[0])[1] == "mem"
        assert cache.load_with_source(keys[2])[1] == "mem"
        assert cache.load_with_source(keys[1])[1] == "disk"

    def test_mem_tier_disabled(self, lib, tmp_path):
        key = self.warm_key(lib, tmp_path)
        cache = CharacterizationCache(tmp_path, mem_entries=0)
        assert cache.load_with_source(key)[1] == "disk"
        assert cache.load_with_source(key)[1] == "disk"
        assert cache.stats.mem_hits == 0
        assert cache._mem == {}

    def test_env_var_caps_mem_tier(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache_mod.MEM_ENTRIES_ENV, "7")
        assert CharacterizationCache(tmp_path).mem_entries == 7
        monkeypatch.setenv(cache_mod.MEM_ENTRIES_ENV, "lots")
        with pytest.raises(ValueError, match=cache_mod.MEM_ENTRIES_ENV):
            CharacterizationCache(tmp_path)
        monkeypatch.delenv(cache_mod.MEM_ENTRIES_ENV)
        assert CharacterizationCache(tmp_path).mem_entries == \
            cache_mod.DEFAULT_MEM_ENTRIES
        with pytest.raises(ValueError, match="mem_entries"):
            CharacterizationCache(tmp_path, mem_entries=-1)

    def test_mem_metrics_emitted(self, lib, tmp_path):
        from repro.obs import metrics as obs_metrics
        key = self.warm_key(lib, tmp_path)
        cache = CharacterizationCache(tmp_path)
        with obs_metrics.scoped() as registry:
            cache.load(key)
            cache.load(key)
        assert registry.value(obs_metrics.CACHE_MEM_HITS) == 1
        assert registry.value(obs_metrics.CACHE_HITS) == 2


class TestSharding:
    def test_sharded_characterize_round_trip(self, lib, tmp_path):
        cache = CharacterizationCache(tmp_path, shards=4)
        first = small_characterize(lib, cache)
        assert cache.stats.misses == len(PRECISIONS)
        # Entries landed under shard directories.
        shard_dirs = {p.parts[len(tmp_path.parts)]
                      for p in tmp_path.rglob("*.json")}
        assert shard_dirs <= {"shard-%02d" % i for i in range(4)}
        warm = CharacterizationCache(tmp_path, shards=4)
        second = small_characterize(lib, warm)
        assert warm.stats.hits == len(PRECISIONS)
        assert entries_equal(first, second)

    def test_shard_index_deterministic(self):
        key = "deadbeef" * 8
        assert cache_mod.shard_index(key, 8) == \
            cache_mod.shard_index(key, 8)
        assert 0 <= cache_mod.shard_index(key, 8) < 8
        with pytest.raises(ValueError, match="shards"):
            CharacterizationCache("x", shards=-1)

    def test_characterize_tasks_inherit_shards(self, lib, tmp_path):
        """Pool workers must write into the same sharded layout the
        parent reads: the shard count rides along in the point task."""
        cache = CharacterizationCache(tmp_path, shards=4)
        small_characterize(lib, cache, jobs=2)
        warm = CharacterizationCache(tmp_path, shards=4)
        small_characterize(lib, warm)
        assert warm.stats.hits == len(PRECISIONS)


class TestAmbientCache:
    def test_set_cache_round_trip(self, lib, tmp_path):
        previous = set_cache(str(tmp_path))
        try:
            active = get_cache()
            assert isinstance(active, CharacterizationCache)
            small_characterize(lib, cache_mod.AMBIENT)
            assert active.stats.misses == len(PRECISIONS)
        finally:
            set_cache(previous)

    def test_cache_enabled_scopes_and_restores(self, lib, tmp_path):
        before = get_cache()
        with cache_enabled(str(tmp_path)) as cache:
            assert get_cache() is cache
            small_characterize(lib, cache_mod.AMBIENT)
            assert cache.stats.misses == len(PRECISIONS)
        assert get_cache() is before

    def test_env_var_enables_cache(self, lib, tmp_path, monkeypatch):
        monkeypatch.setenv(cache_mod.CACHE_DIR_ENV, str(tmp_path))
        with cache_enabled(cache_mod.AMBIENT):
            cache = get_cache()
            assert cache is not None
            assert cache.root == str(tmp_path)

    def test_explicit_none_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache_mod.CACHE_DIR_ENV, str(tmp_path))
        with cache_enabled(None):
            assert get_cache() is None


class TestFingerprints:
    def test_library_fingerprint_content_addressed(self):
        a = nangate45()
        b = nangate45()
        assert cache_mod.library_fingerprint(a) == \
            cache_mod.library_fingerprint(b)
        c = nangate45(drives=(1,))
        assert cache_mod.library_fingerprint(a) != \
            cache_mod.library_fingerprint(c)

    def test_component_fingerprint_separates_families(self):
        assert cache_mod.component_fingerprint(Adder(8)) != \
            cache_mod.component_fingerprint(Multiplier(8))
        assert cache_mod.component_fingerprint(Adder(8)) != \
            cache_mod.component_fingerprint(Adder(8, precision=6))
        assert cache_mod.component_fingerprint(Adder(8)) == \
            cache_mod.component_fingerprint(Adder(8))

    def test_scenario_fingerprint_stable(self):
        assert cache_mod.scenario_fingerprint(worst_case(10)) == \
            cache_mod.scenario_fingerprint(worst_case(10))
        assert cache_mod.scenario_fingerprint(worst_case(10)) != \
            cache_mod.scenario_fingerprint(worst_case(1))


class TestWarmSpeedup:
    def test_mult16_second_run_5x_faster(self, lib, tmp_path):
        """Acceptance: warm-cache rerun of the 16-bit multiplier default
        sweep is at least 5x faster than the cold run."""
        component = Multiplier(16)
        start = time.perf_counter()
        cold = characterize(component, lib, scenarios=[worst_case(10)],
                            cache=CharacterizationCache(tmp_path))
        cold_s = time.perf_counter() - start

        warm_cache = CharacterizationCache(tmp_path)
        start = time.perf_counter()
        warm = characterize(component, lib, scenarios=[worst_case(10)],
                            cache=warm_cache)
        warm_s = time.perf_counter() - start

        assert warm_cache.stats.hits == len(cold.precisions)
        assert warm_cache.stats.misses == 0
        assert entries_equal(cold, warm)
        assert cold_s >= 5.0 * warm_s, \
            "cold %.3fs vs warm %.3fs (< 5x)" % (cold_s, warm_s)
