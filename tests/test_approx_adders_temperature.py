"""Tests for the LOA approximate adder and temperature-aware BTI."""

import numpy as np
import pytest

from repro.aging import DEFAULT_BTI, worst_case
from repro.rtl import Adder, LowerOrAdder, wrap_signed
from repro.sta import critical_path_delay
from repro.synth import synthesize_netlist

from helpers import run_netlist


class TestLowerOrAdder:
    def test_full_precision_is_exact(self, lib, rng):
        component = LowerOrAdder(8)
        a, b = component.random_operands(400, rng=rng,
                                         distribution="uniform")
        assert np.array_equal(run_netlist(component, lib, (a, b)),
                              component.exact(a, b))

    @pytest.mark.parametrize("precision", [6, 4, 2])
    def test_netlist_matches_value_model(self, lib, precision, rng):
        component = LowerOrAdder(8, precision=precision)
        a, b = component.random_operands(500, rng=rng,
                                         distribution="uniform")
        assert np.array_equal(run_netlist(component, lib, (a, b)),
                              component.approximate(a, b))

    def test_exhaustive_modular_error_bound(self):
        component = LowerOrAdder(8, precision=5)
        vals = np.arange(-128, 128, dtype=np.int64)
        a, b = np.meshgrid(vals, vals)
        a, b = a.ravel(), b.ravel()
        err = wrap_signed(component.exact(a, b)
                          - component.approximate(a, b), 8)
        assert np.abs(err).max() <= component.max_error_bound()

    def test_or_guess_exact_when_columns_disjoint(self):
        component = LowerOrAdder(8, precision=4)
        a = np.array([0b0101_0000 - 128 + 0b0101], dtype=np.int64)
        b = np.array([0b1010], dtype=np.int64)   # no shared low 1s, no carry
        assert component.approximate(a, b)[0] == component.exact(a, b)[0]

    def test_approximation_shortens_critical_path(self, lib):
        delays = []
        for precision in (8, 6, 4):
            net = synthesize_netlist(LowerOrAdder(8, precision=precision),
                                     lib, effort="high")
            delays.append(critical_path_delay(net, lib))
        assert delays == sorted(delays, reverse=True)
        assert delays[-1] < delays[0]

    def test_more_accurate_than_truncation_per_bit(self, rng):
        """LOA's selling point: smaller mean error than truncation at
        the same number of approximated bits."""
        drop = 4
        loa = LowerOrAdder(12, precision=12 - drop)
        trunc = Adder(12, precision=12 - drop)
        a, b = loa.random_operands(5000, rng=rng, distribution="uniform")
        err_loa = np.abs(wrap_signed(loa.exact(a, b)
                                     - loa.approximate(a, b), 12))
        err_trunc = np.abs(wrap_signed(trunc.exact(a, b)
                                       - trunc.approximate(a, b), 12))
        assert err_loa.mean() < err_trunc.mean()

    def test_characterization_flow_compatible(self, lib):
        from repro.core import characterize
        entry = characterize(LowerOrAdder(10), lib,
                             scenarios=[worst_case(10)],
                             precisions=range(10, 4, -1), effort="high")
        assert entry.required_precision("10y_worst") is not None

    def test_with_precision_keeps_group(self):
        cut = LowerOrAdder(16, group=8).with_precision(12)
        assert cut.group == 8
        assert cut.drop_bits == 4


class TestTemperature:
    def test_reference_temperature_is_identity(self):
        same = DEFAULT_BTI.at_temperature(DEFAULT_BTI.temperature_k)
        assert same.prefactor_v == pytest.approx(DEFAULT_BTI.prefactor_v)

    def test_cooler_parts_age_less(self):
        cool = DEFAULT_BTI.at_temperature(298.0)
        assert cool.delta_vth(1.0, 10.0) < DEFAULT_BTI.delta_vth(1.0, 10.0)

    def test_hotter_parts_age_more(self):
        hot = DEFAULT_BTI.at_temperature(398.0)
        assert hot.delta_vth(1.0, 10.0) > DEFAULT_BTI.delta_vth(1.0, 10.0)

    def test_arrhenius_monotone(self):
        temps = [280.0, 320.0, 360.0, 400.0]
        shifts = [DEFAULT_BTI.at_temperature(t).delta_vth(1.0, 10.0)
                  for t in temps]
        assert shifts == sorted(shifts)

    def test_invalid_temperature_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_BTI.at_temperature(0.0)

    def test_temperature_carries_into_sta(self, lib, adder8):
        cool = DEFAULT_BTI.at_temperature(298.0)
        hot = critical_path_delay(adder8, lib, scenario=worst_case(10))
        mild = critical_path_delay(adder8, lib, scenario=worst_case(10),
                                   bti=cool)
        fresh = critical_path_delay(adder8, lib)
        assert fresh < mild < hot
