"""Property-based fuzzing across the whole substrate.

Hypothesis generates random combinational netlists; every synthesis pass
and simulator must agree with plain functional evaluation on them, and
timing invariants must hold regardless of structure.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.aging import worst_case
from repro.cells import default_library
from repro.netlist import CONST0, CONST1, NetlistBuilder
from repro.sim import TimedSimulator, compile_netlist, evaluate
from repro.sta import analyze
from repro.synth import optimize, upsize_critical_paths

LIB = default_library()

_BINARY = ("and2", "or2", "xor2", "xnor2", "nand2", "nor2")


@st.composite
def random_netlists(draw, max_gates=30):
    """Random DAG of gates over 4 inputs (plus constants)."""
    n_gates = draw(st.integers(min_value=1, max_value=max_gates))
    builder = NetlistBuilder(name="fuzz")
    pool = list(builder.inputs(4, "x")) + [CONST0, CONST1]
    for __ in range(n_gates):
        choice = draw(st.integers(min_value=0, max_value=len(_BINARY) + 1))
        if choice == len(_BINARY):
            src = pool[draw(st.integers(0, len(pool) - 1))]
            pool.append(builder.inv(src))
        elif choice == len(_BINARY) + 1:
            a = pool[draw(st.integers(0, len(pool) - 1))]
            b = pool[draw(st.integers(0, len(pool) - 1))]
            s = pool[draw(st.integers(0, len(pool) - 1))]
            pool.append(builder.mux2(a, b, s))
        else:
            a = pool[draw(st.integers(0, len(pool) - 1))]
            b = pool[draw(st.integers(0, len(pool) - 1))]
            pool.append(getattr(builder, _BINARY[choice])(a, b))
    outputs = [pool[-(i % len(pool)) - 1] for i in range(3)]
    return builder.outputs(outputs)


ALL_INPUTS = np.array([[b >> i & 1 for i in range(4)]
                       for b in range(16)], dtype=np.uint8)


def truth_vector(netlist):
    return evaluate(compile_netlist(netlist, LIB), ALL_INPUTS)


@given(netlist=random_netlists())
def test_optimize_preserves_function(netlist):
    before = truth_vector(netlist)
    optimized = optimize(netlist.copy(), LIB)
    optimized.validate()
    assert np.array_equal(truth_vector(optimized), before)
    assert optimized.num_gates <= netlist.num_gates


@given(netlist=random_netlists())
def test_sizing_preserves_function_and_improves_delay(netlist):
    optimized = optimize(netlist.copy(), LIB)
    before = truth_vector(optimized)
    cp_before = analyze(optimized, LIB).critical_path_ps
    upsize_critical_paths(optimized, LIB, target_ps=0.0, max_rounds=6)
    assert np.array_equal(truth_vector(optimized), before)
    assert analyze(optimized, LIB).critical_path_ps <= cp_before + 1e-9


@given(netlist=random_netlists())
def test_sta_bounds_timed_simulation(netlist):
    scenario = worst_case(10)
    report = analyze(netlist, LIB, scenario=scenario)
    sim = TimedSimulator(netlist, LIB, report.critical_path_ps,
                         scenario=scenario)
    result = sim.run_stream(np.tile(ALL_INPUTS, (2, 1)))
    static = np.array([report.arrivals[n]
                       for n in netlist.primary_outputs])
    assert (result.arrivals <= static[None, :] + 1e-2).all()
    # Sampled at the aged critical path, nothing can be late.
    assert result.error_rate == 0.0


@given(netlist=random_netlists())
def test_aging_never_speeds_up_any_netlist(netlist):
    fresh = analyze(netlist, LIB).critical_path_ps
    aged = analyze(netlist, LIB, scenario=worst_case(10)).critical_path_ps
    if netlist.gates and fresh > 0:
        assert aged > fresh
    else:
        assert aged == fresh


@given(netlist=random_netlists())
def test_verilog_roundtrip_any_netlist(netlist):
    from repro.netlist import from_verilog, to_verilog
    back = from_verilog(to_verilog(netlist))
    assert np.array_equal(truth_vector(back), truth_vector(netlist))


@given(netlist=random_netlists())
def test_settled_equals_functional(netlist):
    sim = TimedSimulator(netlist, LIB, 1e6)
    result = sim.run_stream(ALL_INPUTS)
    assert np.array_equal(result.settled, truth_vector(netlist))
    assert np.array_equal(result.sampled, result.settled)
