"""Tests for timing-wall statistics and the SSIM metric."""

import numpy as np
import pytest

from repro.aging import worst_case
from repro.media import make_image
from repro.quality import psnr_db, ssim
from repro.rtl import Adder, Multiplier, RippleCarryAdder
from repro.sta import (TimingWallReport, output_arrival_spread,
                       timing_wall)
from repro.synth import synthesize_netlist


class TestTimingWall:
    def test_slacks_nonnegative(self, lib, adder8):
        wall = timing_wall(adder8, lib)
        assert wall.critical_path_ps > 0
        assert all(s >= -1e-9 for s in wall.slacks_ps)
        assert len(wall.slacks_ps) == adder8.num_gates

    def test_critical_gate_has_zero_slack(self, lib, adder8):
        wall = timing_wall(adder8, lib)
        assert min(wall.slacks_ps) == pytest.approx(0.0, abs=1e-9)

    def test_fraction_within_monotone(self, lib, adder8):
        wall = timing_wall(adder8, lib)
        fractions = [wall.fraction_within(m)
                     for m in (0.01, 0.1, 0.5, 1.0)]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_empty_report(self):
        wall = TimingWallReport(critical_path_ps=10.0, slacks_ps=[])
        assert wall.fraction_within(0.5) == 0.0

    def test_histogram_sums_to_gate_count(self, lib, adder8):
        wall = timing_wall(adder8, lib)
        __, counts = wall.histogram(bins=7)
        assert counts.sum() == len(wall.slacks_ps)

    def test_text_histogram_renders(self, lib, adder8):
        wall = timing_wall(adder8, lib)
        text = wall.text_histogram(bins=4)
        assert text.count("\n") == 3
        assert "#" in text

    def test_performance_sizing_flattens_the_wall(self, lib):
        component = Multiplier(12)
        plain = timing_wall(
            synthesize_netlist(component, lib, effort="high"), lib)
        sized = timing_wall(
            synthesize_netlist(component, lib, effort="ultra"), lib)
        # More of the sized design crowds the near-critical region.
        assert sized.fraction_within(0.2) > plain.fraction_within(0.2)

    def test_output_arrival_spread_normalized(self, lib, adder8):
        spread = output_arrival_spread(adder8, lib,
                                       scenario=worst_case(10))
        values = list(spread.values())
        assert max(values) == pytest.approx(1.0)
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in values)


class TestSsim:
    def test_identity(self):
        img = make_image("miss", 32).astype(float)
        assert ssim(img, img) == pytest.approx(1.0)

    def test_noise_reduces_ssim(self, rng):
        img = make_image("miss", 32).astype(float)
        mild = np.clip(img + rng.normal(0, 4, img.shape), 0, 255)
        harsh = np.clip(img + rng.normal(0, 40, img.shape), 0, 255)
        assert 1.0 > ssim(img, mild) > ssim(img, harsh)

    def test_constant_shift_barely_hurts_ssim(self):
        # SSIM is less sensitive to luminance shifts than PSNR.
        img = make_image("miss", 32).astype(float)
        shifted = np.clip(img + 8, 0, 255)
        assert ssim(img, shifted) > 0.9
        assert psnr_db(img, shifted) < 32.0

    def test_structure_loss_detected(self, rng):
        img = make_image("mobile", 32).astype(float)
        shuffled = rng.permutation(img.ravel()).reshape(img.shape)
        assert ssim(img, shuffled) < 0.2

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((16, 16)), np.zeros((16, 8)))

    def test_tiny_image_rejected(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((4, 4)), np.zeros((4, 4)))

    def test_range(self, rng):
        a = rng.integers(0, 256, (24, 24)).astype(float)
        b = rng.integers(0, 256, (24, 24)).astype(float)
        assert -1.0 <= ssim(a, b) <= 1.0
