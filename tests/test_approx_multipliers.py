"""Tests for the partial-product truncated (PPT) multiplier."""

import numpy as np
import pytest

from repro.rtl import Multiplier, TruncatedProductMultiplier
from repro.synth import synthesize_netlist
from repro.sta import critical_path_delay

from helpers import run_netlist


class TestFunctional:
    def test_full_precision_is_exact(self, lib, rng):
        component = TruncatedProductMultiplier(8)
        a, b = component.random_operands(400, rng=rng,
                                         distribution="uniform")
        assert np.array_equal(run_netlist(component, lib, (a, b)),
                              component.exact(a, b))

    @pytest.mark.parametrize("cut", [1, 3, 5])
    def test_netlist_matches_closed_form(self, lib, cut, rng):
        component = TruncatedProductMultiplier(8, precision=8 - cut)
        a, b = component.random_operands(600, rng=rng,
                                         distribution="uniform")
        assert np.array_equal(run_netlist(component, lib, (a, b)),
                              component.approximate(a, b))

    def test_exhaustive_4bit(self, lib):
        component = TruncatedProductMultiplier(4, precision=2)
        values = np.arange(-8, 8, dtype=np.int64)
        a, b = np.meshgrid(values, values)
        a, b = a.ravel(), b.ravel()
        assert np.array_equal(run_netlist(component, lib, (a, b)),
                              component.approximate(a, b))

    def test_low_output_bits_are_zero(self, rng):
        component = TruncatedProductMultiplier(8, precision=5)
        a, b = component.random_operands(300, rng=rng,
                                         distribution="uniform")
        out = component.approximate(a, b)
        assert (out % (1 << 3) == 0).all()

    def test_error_bound(self, rng):
        component = TruncatedProductMultiplier(10, precision=6)
        a, b = component.random_operands(3000, rng=rng,
                                         distribution="uniform")
        err = np.abs(component.exact(a, b) - component.approximate(a, b))
        assert err.max() <= component.max_error_bound()

    def test_bound_value(self):
        # columns 0..2 hold 1, 2, 3 partial products.
        component = TruncatedProductMultiplier(8, precision=5)
        assert component.max_error_bound() == 1 * 1 + 2 * 2 + 3 * 4


class TestStructure:
    def test_cut_into_sign_region_rejected(self):
        with pytest.raises(ValueError, match="sign region"):
            TruncatedProductMultiplier(8, precision=1)
        with pytest.raises(ValueError):
            TruncatedProductMultiplier(8, final_adder="ks")

    def test_cut_shrinks_and_speeds_up(self, lib):
        full = synthesize_netlist(TruncatedProductMultiplier(10), lib,
                                  effort="high")
        cut = synthesize_netlist(
            TruncatedProductMultiplier(10, precision=5), lib,
            effort="high")
        assert cut.num_gates < full.num_gates
        assert critical_path_delay(cut, lib) < \
            critical_path_delay(full, lib)

    def test_more_accurate_than_operand_truncation(self, rng):
        """Per dropped output bit, PPT keeps more information than
        zeroing operand LSBs."""
        width, drop = 12, 5
        ppt = TruncatedProductMultiplier(width, precision=width - drop)
        op_trunc = Multiplier(width, precision=width - drop)
        a, b = ppt.random_operands(5000, rng=rng, distribution="uniform")
        err_ppt = np.abs(ppt.exact(a, b) - ppt.approximate(a, b))
        err_op = np.abs(op_trunc.exact(a, b)
                        - op_trunc.approximate(a, b))
        assert err_ppt.mean() < err_op.mean()

    def test_with_precision(self):
        cut = TruncatedProductMultiplier(10).with_precision(7)
        assert cut.drop_bits == 3
        assert isinstance(cut, TruncatedProductMultiplier)

    def test_characterization_compatible(self, lib):
        # The Section-IV machinery accepts the PPT multiplier unchanged.
        # Column cuts buy less critical-path relief than operand
        # truncation (the tall middle columns survive), so depending on
        # width they may only *narrow* the guardband rather than remove
        # it -- the characterization table is exactly how a designer
        # would find that out.
        from repro.aging import worst_case
        from repro.core import characterize
        entry = characterize(TruncatedProductMultiplier(10), lib,
                             scenarios=[worst_case(10)],
                             precisions=range(10, 5, -1), effort="high")
        deepest = min(entry.precisions)
        assert entry.aged_ps[(deepest, "10y_worst")] < \
            entry.aged_ps[(10, "10y_worst")]
        assert entry.guardband_narrowing("10y_worst", deepest) > 0.0
