"""Cross-engine oracle tests.

The headline guarantee: all four simulation engines (bytes / packed /
event / timed-at-relaxed-clock) are bit-identical, and when one lies
the oracle catches it and shrinks the disagreement to a few gates.
"""

import json

import numpy as np
import pytest

from repro.netlist import CONST1, NetlistBuilder
from repro.sim import bitpack
from repro.verify import (ENGINES, Counterexample, cross_engine_check,
                          diff_engines, engine_outputs,
                          minimize_counterexample, shrink_netlist)
from repro.verify.oracles import default_stimulus, exhaustive_bits

pytestmark = pytest.mark.verify


def _xor_chain(n=3):
    builder = NetlistBuilder(name="xchain")
    nets = builder.inputs(n, "i")
    acc = nets[0]
    for net in nets[1:]:
        acc = builder.xor2(acc, net)
    return builder.outputs([acc])


class TestStimulus:
    def test_exhaustive_bits_shape(self):
        bits = exhaustive_bits(3)
        assert bits.shape == (8, 3)
        assert len({tuple(r) for r in bits.tolist()}) == 8

    def test_narrow_interface_gets_exhaustive(self):
        net = _xor_chain(3)
        bits = default_stimulus(net)
        assert bits.shape[0] == 8

    def test_wide_interface_gets_random(self, adder8):
        bits = default_stimulus(adder8, rng=0)
        assert bits.shape == (128, len(adder8.primary_inputs))


class TestEnginesAgree:
    def test_all_engines_on_xor_chain(self, lib):
        net = _xor_chain(4)
        report = cross_engine_check(net, lib, rng=0)
        assert report.passed
        assert report.engines == ENGINES
        assert report.vectors == 16
        assert "agree" in report.describe()

    def test_all_engines_on_adder8(self, lib, adder8):
        report = cross_engine_check(adder8, lib, vectors=48, rng=1,
                                    event_cap=16)
        assert report.passed

    def test_engine_outputs_shapes(self, lib):
        net = _xor_chain(3)
        bits = exhaustive_bits(3)
        outs = {e: engine_outputs(net, lib, bits, e) for e in ENGINES}
        for engine, got in outs.items():
            assert got.shape == (8, 1), engine
            assert np.array_equal(got, outs["bytes"])

    def test_unknown_engine_rejected(self, lib):
        with pytest.raises(ValueError, match="unknown engine"):
            engine_outputs(_xor_chain(2), lib, exhaustive_bits(2),
                           "spice")

    def test_assert_engines_agree_fixture(self, assert_engines_agree):
        report = assert_engines_agree(_xor_chain(3))
        assert report.passed


class TestFaultInjection:
    """Deliberately break one packed kernel; the oracle must catch it
    and shrink the reproducer to a handful of gates (acceptance
    criterion: <= 8)."""

    @pytest.fixture()
    def broken_packed_xor(self):
        original = bitpack.PACKED_KERNELS["XOR2"]
        # Lies only when both inputs are 1 (claims XOR(1,1) == 1).
        bitpack.PACKED_KERNELS["XOR2"] = lambda a, b: a | b
        try:
            yield
        finally:
            bitpack.PACKED_KERNELS["XOR2"] = original

    def test_broken_kernel_is_caught_and_shrunk(self, lib, adder8,
                                                broken_packed_xor):
        report = cross_engine_check(adder8, lib, vectors=64, rng=2,
                                    engines=("bytes", "packed"))
        assert not report.passed
        assert report.mismatches
        cx = report.counterexample
        assert cx is not None
        assert cx.engines == ("bytes", "packed")
        assert cx.gates <= 8
        assert cx.original_design == adder8.name
        assert cx.original_gates == adder8.num_gates
        # The witness still reproduces on the shrunken netlist...
        assert cx.replay(lib)
        assert "ENGINE DISAGREEMENT" in report.describe()

    def test_counterexample_round_trips_json(self, lib, adder8,
                                             broken_packed_xor):
        report = cross_engine_check(adder8, lib, vectors=64, rng=2,
                                    engines=("bytes", "packed"))
        cx = report.counterexample
        data = json.loads(cx.to_json())
        assert data["schema"] == "repro.verify.counterexample/1"
        loaded = Counterexample.from_json(cx.to_json())
        assert loaded.engines == cx.engines
        assert loaded.inputs == cx.inputs
        assert loaded.netlist().num_gates == cx.gates
        assert loaded.replay(lib)

    def test_replay_is_clean_once_kernel_is_fixed(self, lib, adder8):
        original = bitpack.PACKED_KERNELS["XOR2"]
        bitpack.PACKED_KERNELS["XOR2"] = lambda a, b: a | b
        try:
            report = cross_engine_check(adder8, lib, vectors=64, rng=2,
                                        engines=("bytes", "packed"))
            cx = report.counterexample
        finally:
            bitpack.PACKED_KERNELS["XOR2"] = original
        # Healthy kernels: the saved reproducer no longer fires.
        assert cx.replay(lib) == []

    def test_diff_engines_reports_gate_and_vector(self, lib,
                                                  broken_packed_xor):
        net = _xor_chain(2)
        bits = exhaustive_bits(2)
        found = diff_engines(net, lib, bits, engines=("packed",))
        assert found
        first = found[0]
        assert first.reference == "bytes"
        assert first.engine == "packed"
        assert first.vector_index == 3  # the (1, 1) row
        assert "packed" in first.describe()


class TestShrinker:
    def test_shrinks_to_single_gate(self, lib, adder8):
        # Predicate: netlist still contains an XOR2 fed by two ones —
        # the structural signature of the broken-kernel reproducer.
        def has_hot_xor(candidate):
            return any(g.kind == "XOR2" for g in candidate.gates)

        shrunk = shrink_netlist(adder8, has_hot_xor)
        assert shrunk.num_gates <= 2
        assert any(g.kind == "XOR2" for g in shrunk.gates)
        shrunk.validate()

    def test_preserves_pi_count(self, lib, adder8):
        shrunk = shrink_netlist(adder8, lambda n: True)
        # Stimulus shape must stay valid for the original PI order.
        assert len(shrunk.primary_inputs) == len(adder8.primary_inputs)

    def test_never_returns_failing_candidate(self, lib):
        net = _xor_chain(4)
        gates_goal = net.num_gates  # predicate pins the original size

        def full_size(candidate):
            return candidate.num_gates >= gates_goal

        shrunk = shrink_netlist(net, full_size)
        assert shrunk.num_gates == gates_goal

    def test_predicate_exception_treated_as_pass_through(self, lib,
                                                         adder8):
        calls = {"n": 0}

        def flaky(candidate):
            calls["n"] += 1
            raise RuntimeError("boom")

        shrunk = shrink_netlist(adder8, flaky)
        assert shrunk.num_gates == adder8.num_gates
        assert calls["n"] > 0


class TestMinimizer:
    def test_minimize_direct(self, lib, adder8):
        original = bitpack.PACKED_KERNELS["XOR2"]
        bitpack.PACKED_KERNELS["XOR2"] = lambda a, b: a | b
        try:
            bits = default_stimulus(adder8, vectors=64, rng=3)
            mismatches = diff_engines(adder8, lib, bits,
                                      engines=("packed",))
            assert mismatches
            cx = minimize_counterexample(adder8, lib, bits, mismatches,
                                         engines=("bytes", "packed"))
            assert cx.gates <= 8
            # The shrunken witness drives the surviving XOR2 with ones.
            net = cx.netlist()
            assert any(g.kind == "XOR2" for g in net.gates)
            assert cx.replay(lib)
        finally:
            bitpack.PACKED_KERNELS["XOR2"] = original
