"""Tests for distributed trace propagation (repro.obs.trace schema 2).

Covers span identity (trace/span/parent ids), the ``X-Repro-Trace``
header wire format, remote-parent adoption via ``propagated()``,
cross-process re-parenting under nested pools (a worker's
``characterize.point`` tree — itself containing ``parallel.map``
sub-spans — stitching under a remote parent), and Chrome-trace export
of the identity fields.
"""

import pytest

from repro.aging import worst_case
from repro.core import characterize
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.rtl import Adder


class TestSpanIdentity:
    def test_ids_assigned_and_inherited(self):
        with obs_trace.capture():
            with obs_trace.span("root") as root:
                with obs_trace.span("child") as child:
                    pass
        assert len(root.trace_id) == 16 and len(root.span_id) == 16
        assert root.parent_id is None
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_sibling_roots_get_distinct_traces(self):
        with obs_trace.capture():
            with obs_trace.span("a") as a:
                pass
            with obs_trace.span("b") as b:
                pass
        assert a.trace_id != b.trace_id


class TestHeaderWireFormat:
    def test_round_trip(self):
        with obs_trace.capture():
            with obs_trace.span("client.call"):
                ctx = obs_trace.propagation_context()
                header = obs_trace.format_traceparent()
        assert ctx is not None
        assert header == "%s-%s" % (ctx["trace_id"], ctx["span_id"])
        assert obs_trace.parse_traceparent(header) == ctx

    def test_no_active_span_yields_none(self):
        assert obs_trace.propagation_context() is None
        assert obs_trace.format_traceparent() is None

    @pytest.mark.parametrize("header", [
        None, "", "nodash", "xyz-abc", "abcd-", "-abcd",
        "0123456789abcdef", "g" * 16 + "-" + "0" * 16,
        "0" * 16 + "-" + "Z" * 16,
    ])
    def test_parse_rejects_malformed(self, header):
        assert obs_trace.parse_traceparent(header) is None

    def test_parse_accepts_hex_ids(self):
        ctx = obs_trace.parse_traceparent("a" * 16 + "-" + "1" * 16)
        assert ctx == {"trace_id": "a" * 16, "span_id": "1" * 16}


class TestPropagatedContext:
    def test_span_adopts_remote_parent(self):
        remote = {"trace_id": "f" * 16, "span_id": "e" * 16}
        with obs_trace.capture() as tracer:
            with obs_trace.propagated(remote):
                with obs_trace.span("server.request") as request:
                    with obs_trace.span("inner") as inner:
                        pass
        assert request.trace_id == remote["trace_id"]
        assert request.parent_id == remote["span_id"]
        assert inner.trace_id == remote["trace_id"]
        assert inner.parent_id == request.span_id
        assert tracer.roots == [request]

    def test_propagated_none_is_noop(self):
        with obs_trace.capture():
            with obs_trace.propagated(None):
                with obs_trace.span("plain") as s:
                    pass
        assert s.parent_id is None

    def test_local_parent_wins_over_remote(self):
        remote = {"trace_id": "f" * 16, "span_id": "e" * 16}
        with obs_trace.capture():
            with obs_trace.span("local") as local:
                with obs_trace.propagated(remote):
                    with obs_trace.span("child") as child:
                        pass
        # An active in-process span is a closer parent than the header.
        assert child.parent_id == local.span_id
        assert child.trace_id == local.trace_id


class TestNestedPoolReparenting:
    def test_worker_map_tasks_subtree_keeps_remote_identity(self, lib):
        """Cross-process re-parenting under nested pools: a remote
        parent (as a serve worker sees it) propagates through
        ``characterize`` -> ``parallel.map`` -> pool workers, and the
        adopted worker trees chain back to the remote trace."""
        remote = {"trace_id": "ab" * 8, "span_id": "cd" * 8}
        with obs_trace.capture() as tracer, obs_metrics.scoped():
            with obs_trace.propagated(remote):
                with obs_trace.span("serve.point") as serving:
                    characterize(Adder(6), lib,
                                 scenarios=[worst_case(10)],
                                 precisions=[6, 5], effort="high",
                                 jobs=2)

        assert serving.trace_id == remote["trace_id"]
        assert serving.parent_id == remote["span_id"]

        spans = {s.span_id: s for s, __d, __p in tracer.walk()}
        points = [s for s in spans.values()
                  if s.name == "characterize.point"]
        assert len(points) == 2
        for point in points:
            # The worker span kept the remote trace id end to end...
            assert point.trace_id == remote["trace_id"]
            # ...and its parent chain walks up to the remote root.
            hops, cursor = 0, point
            while cursor.parent_id in spans:
                cursor = spans[cursor.parent_id]
                hops += 1
                assert cursor.trace_id == remote["trace_id"]
            assert cursor is serving and hops >= 1
            # The map fan-out span sits on the chain.
            chain_names = set()
            cursor = point
            while cursor.parent_id in spans:
                cursor = spans[cursor.parent_id]
                chain_names.add(cursor.name)
            assert "parallel.map" in chain_names

    def test_chrome_export_carries_identity(self):
        with obs_trace.capture() as tracer:
            with obs_trace.span("root"):
                with obs_trace.span("child"):
                    pass
        events = [e for e in tracer.chrome_events()
                  if e.get("ph") == "X"]
        assert len(events) == 2
        by_name = {e["name"]: e for e in events}
        root_args = by_name["root"]["args"]
        child_args = by_name["child"]["args"]
        assert root_args["trace_id"] == child_args["trace_id"]
        assert child_args["parent_id"] == root_args["span_id"]
