"""Tests for the microarchitecture model and the Fig. 6 flow."""

import pytest

from repro.aging import worst_case
from repro.core import (AgingApproximationLibrary, Block, Microarchitecture,
                        apply_aging_approximations)
from repro.rtl import Adder, Multiplier
from repro.sta import critical_path_delay


def small_idct_like(width=10):
    """Multiplier-dominated two-block design (small IDCT stand-in)."""
    return Microarchitecture("mini", [
        Block(name="mult", component=Multiplier(width), instances=2),
        Block(name="acc", component=Adder(width), instances=1),
    ])


@pytest.fixture(scope="module")
def mini(lib):
    micro = small_idct_like()
    micro.synthesize(lib, effort="high")
    return micro


class TestMicroarchitecture:
    def test_duplicate_block_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Microarchitecture("bad", [
                Block(name="x", component=Adder(4)),
                Block(name="x", component=Adder(4)),
            ])

    def test_block_lookup(self, mini):
        assert mini.block("mult").component.family == "multiplier"
        with pytest.raises(KeyError):
            mini.block("missing")

    def test_constraint_is_slowest_block(self, lib, mini):
        constraint = mini.timing_constraint_ps(lib, effort="high")
        delays = [critical_path_delay(b.synthesized(lib, "high"), lib)
                  for b in mini.blocks]
        assert constraint == pytest.approx(max(delays))

    def test_timing_rows(self, lib, mini):
        timing = mini.timing(lib, scenario=worst_case(10), effort="high")
        assert set(timing) == {"mult", "acc"}
        mult = timing["mult"]
        assert mult.aged_ps > mult.fresh_ps
        assert mult.violates         # slowest block must violate
        assert not timing["acc"].violates

    def test_relative_slack_normalization(self, lib, mini):
        constraint = mini.timing_constraint_ps(lib, effort="high")
        timing = mini.timing(lib, scenario=worst_case(10),
                             constraint_ps=constraint, effort="high")
        for row in timing.values():
            assert row.relative_slack == pytest.approx(
                row.slack_ps / constraint)

    def test_with_precisions_copies(self, mini):
        derived = mini.with_precisions({"mult": 6})
        assert derived.block("mult").component.precision == 6
        assert derived.block("acc").component.precision == 10
        assert mini.block("mult").component.precision == 10
        assert derived.block("mult").netlist is None  # fresh synthesis

    def test_area_rollup_counts_instances(self, lib, mini):
        per_block = {b.name: b.synthesized(lib, "high").area(lib)
                     for b in mini.blocks}
        assert mini.area_um2(lib, effort="high") == pytest.approx(
            2 * per_block["mult"] + per_block["acc"])

    def test_iter_and_repr(self, mini):
        assert [b.name for b in mini] == ["mult", "acc"]
        assert "mult" in repr(mini)


class TestApplyApproximations:
    @pytest.fixture(scope="class")
    def outcome(self, lib):
        micro = small_idct_like()
        store = AgingApproximationLibrary()
        return apply_aging_approximations(micro, lib, worst_case(10),
                                          store, effort="high"), micro

    def test_violating_block_approximated(self, outcome):
        result, __ = outcome
        assert result.decisions["mult"].approximated
        assert result.decisions["mult"].chosen_precision < 10

    def test_healthy_block_untouched(self, outcome):
        result, __ = outcome
        assert not result.decisions["acc"].approximated
        assert result.decisions["acc"].chosen_precision == 10

    def test_validated_design_meets_constraint(self, outcome, lib):
        result, __ = outcome
        assert result.validated
        assert result.residual_guardband_ps == 0.0
        timing = result.design.timing(lib, scenario=worst_case(10),
                                      constraint_ps=result.constraint_ps,
                                      effort="high")
        for row in timing.values():
            assert row.slack_ps >= 0

    def test_slacks_recorded(self, outcome):
        result, __ = outcome
        mult = result.decisions["mult"]
        assert mult.slack_before_ps < 0
        assert mult.slack_after_ps >= 0

    def test_precision_map(self, outcome):
        result, __ = outcome
        pmap = result.precision_map
        assert set(pmap) == {"mult", "acc"}
        assert pmap["acc"] == 10

    def test_library_filled_on_demand(self, lib):
        micro = small_idct_like()
        store = AgingApproximationLibrary()
        apply_aging_approximations(micro, lib, worst_case(10), store,
                                   effort="high")
        assert "multiplier_w10" in store
        assert "adder_w10" not in store  # never violated -> never needed

    def test_invalid_rule_rejected(self, lib):
        with pytest.raises(ValueError, match="rule"):
            apply_aging_approximations(small_idct_like(), lib,
                                       worst_case(10),
                                       AgingApproximationLibrary(),
                                       rule="bogus")

    def test_relative_rule_is_more_conservative(self, lib):
        store = AgingApproximationLibrary()
        eq2 = apply_aging_approximations(small_idct_like(), lib,
                                         worst_case(10), store,
                                         effort="high", rule="eq2")
        rel = apply_aging_approximations(small_idct_like(), lib,
                                         worst_case(10), store,
                                         effort="high", rule="relative")
        assert rel.decisions["mult"].chosen_precision <= \
            eq2.decisions["mult"].chosen_precision

    def test_quality_check_backoff(self, lib):
        store = AgingApproximationLibrary()
        seen = []

        def reject_everything(design):
            seen.append(design)
            return False

        result = apply_aging_approximations(
            small_idct_like(), lib, worst_case(10), store, effort="high",
            quality_check=reject_everything, max_refinements=3)
        # Quality can never be satisfied, so the flow must fall back to a
        # residual guardband instead of looping forever.
        assert len(seen) >= 1
        assert not result.validated or result.residual_guardband_ps >= 0
