"""Tests for the Monte Carlo variation engine (``repro.mc``).

Covers the Philox draw streams (determinism, prefix stability,
partition independence, domain separation from the fault-mask
streams), the sample-axis batched engine (zero-sigma bit-identity,
block independence, agreement with the scalar-loop oracle), the memo
bypass on the sampled path, spec validation, ``run_mc`` jobs
determinism plus the surrogate screen, the ``repro mc`` CLI, the
report renderer, the served ``/v1/mc`` endpoint and the ``mc.*``
observability metrics.
"""

import json

import numpy as np
import pytest

from repro import cli
from repro.aging.bti import DEFAULT_BTI
from repro.aging.delay import clear_multiplier_memo, multiplier_memo_info
from repro.core.specs import SpecError, parse_scenario
from repro.inject import masks as inject_masks
from repro.mc import (DEFAULT_BLOCK, MCSpec, SAMPLE_CHUNK, VariationModel,
                      analyze_mc, analyze_mc_reference, cross_validate,
                      design_matrix, fit_surrogate, n_terms, pick_degree,
                      run_mc, sample_blocks, standard_draws)
from repro.obs import metrics as obs_metrics
from repro.report import mc_report_text
from repro.sta.engine import analyze_batch, compile_timing, corner_delays

SCENARIOS = ("fresh", "worst1y", "worst10y")


@pytest.fixture(scope="module")
def corners():
    return tuple(parse_scenario(s) for s in SCENARIOS)


@pytest.fixture(scope="module")
def adder_mc(lib, adder8, corners):
    """One shared sampled analysis with arrivals kept."""
    variation = VariationModel(sigma_mv=30.0, seed=7)
    return analyze_mc(adder8, lib, corners, variation, samples=96,
                      keep_arrivals=True)


class TestSampleBlocks:
    def test_partition_covers_axis(self):
        blocks = sample_blocks(1000, 256)
        assert blocks[0] == (0, 256)
        assert blocks[-1] == (768, 232)
        assert sum(count for _, count in blocks) == 1000
        starts = [start for start, _ in blocks]
        assert starts == sorted(starts)

    def test_single_block(self):
        assert sample_blocks(10, 256) == [(0, 10)]

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_blocks(0)
        with pytest.raises(ValueError):
            sample_blocks(10, 0)


class TestDrawStreams:
    def test_deterministic_and_seed_sensitive(self):
        a = standard_draws(7, 42, 0, 64)
        assert (a == standard_draws(7, 42, 0, 64)).all()
        assert (a != standard_draws(8, 42, 0, 64)).any()
        assert (a != standard_draws(7, 43, 0, 64)).any()

    def test_prefix_stability(self):
        # Extending a run reproduces every earlier draw, across chunk
        # boundaries.
        long = standard_draws(7, 42, 0, 3 * SAMPLE_CHUNK + 5)
        assert (standard_draws(7, 42, 0, 10) == long[:10]).all()
        assert (standard_draws(7, 42, SAMPLE_CHUNK - 3, 50)
                == long[SAMPLE_CHUNK - 3:SAMPLE_CHUNK + 47]).all()

    def test_partition_independence(self):
        whole = standard_draws(7, 42, 0, 300)
        pieces = np.concatenate([standard_draws(7, 42, 0, 17),
                                 standard_draws(7, 42, 17, 200),
                                 standard_draws(7, 42, 217, 83)])
        assert (whole == pieces).all()

    def test_empty_range(self):
        assert standard_draws(7, 42, 100, 0).shape == (0,)
        with pytest.raises(ValueError):
            standard_draws(7, 42, -1, 4)

    def test_domain_separation_from_fault_masks(self):
        # Same (seed, uid) must not replay the inject mask stream.
        ours = standard_draws(7, 42, 0, 8)
        theirs = inject_masks.gate_stream(7, 42, 0).standard_normal(8)
        assert (ours != theirs).any()

    def test_gate_dvth_scaling_and_clipping(self):
        model = VariationModel(sigma_mv=30.0, seed=7, clip_sigmas=1.0)
        draws = model.gate_dvth([1, 2, 3], 0, 512)
        assert draws.shape == (3, 512)
        assert np.abs(draws).max() <= model.sigma_v + 1e-15
        unclipped = VariationModel(sigma_mv=30.0, seed=7)
        raw = unclipped.gate_dvth([1], 0, 512)
        assert np.abs(raw).max() > model.sigma_v  # clip actually bit

    def test_zero_sigma_draws_are_zero(self):
        model = VariationModel(sigma_mv=0.0)
        assert model.is_zero
        assert not model.gate_dvth([1, 2], 5, 16).any()


class TestAnalyzeMC:
    def test_shapes_and_labels(self, adder8, adder_mc):
        assert adder_mc.critical_path_ps.shape == (3, 96)
        assert adder_mc.arrivals.shape[1:] == (3, 96)
        assert adder_mc.labels == ("fresh", "1y_worst", "10y_worst")
        assert adder_mc.samples == 96

    def test_zero_sigma_bit_identical(self, lib, adder8, corners):
        batch = analyze_batch(adder8, lib, corners)
        rep = analyze_mc(adder8, lib, corners, VariationModel(sigma_mv=0.0),
                         samples=5, keep_arrivals=True)
        assert (rep.critical_path_ps
                == batch.critical_path_ps[:, None]).all()
        assert (rep.arrivals == batch.arrivals[:, :, None]).all()

    def test_block_size_never_changes_results(self, lib, adder8, corners,
                                              adder_mc):
        odd = analyze_mc(adder8, lib, corners,
                         VariationModel(sigma_mv=30.0, seed=7), samples=96,
                         block=7, keep_arrivals=True)
        assert (odd.critical_path_ps == adder_mc.critical_path_ps).all()
        assert (odd.arrivals == adder_mc.arrivals).all()

    def test_matches_scalar_loop_oracle(self, lib, adder8, corners):
        variation = VariationModel(sigma_mv=30.0, seed=7)
        fast = analyze_mc(adder8, lib, corners, variation, samples=6)
        slow = analyze_mc_reference(adder8, lib, corners, variation,
                                    samples=6)
        np.testing.assert_allclose(fast.critical_path_ps, slow,
                                   rtol=1e-12, atol=0.0)

    def test_report_helpers(self, adder_mc):
        assert adder_mc.corner_index("10y_worst") == 2
        with pytest.raises(KeyError):
            adder_mc.corner_index("nope")
        cp = adder_mc.critical_path_ps[0]
        assert adder_mc.quantile_ps(0.5, "fresh") == pytest.approx(
            np.quantile(cp, 0.5))
        assert adder_mc.mean_ps(0) == pytest.approx(cp.mean())
        assert adder_mc.yield_fraction(np.inf, 0) == 1.0
        assert adder_mc.yield_fraction(0.0, 0) == 0.0

    def test_needs_a_corner(self, lib, adder8):
        with pytest.raises(ValueError):
            analyze_mc(adder8, lib, (), VariationModel(), samples=4)

    def test_metrics_emitted(self, lib, adder8, corners):
        with obs_metrics.scoped() as registry:
            analyze_mc(adder8, lib, corners,
                       VariationModel(sigma_mv=30.0, seed=7), samples=20,
                       block=8)
        snap = registry.snapshot()
        assert snap["counters"][obs_metrics.MC_SAMPLES] == 20
        assert snap["counters"][obs_metrics.MC_BLOCKS] == 3
        assert obs_metrics.MC_SAMPLES_PER_SEC in snap["gauges"]


class TestMemoBypass:
    def test_sampled_run_leaves_memo_untouched(self, lib, adder8, corners):
        # Satellite: variation draws must never become lru_cache keys.
        clear_multiplier_memo()
        analyze_batch(adder8, lib, corners)  # warm the deterministic memo
        before = multiplier_memo_info()
        analyze_mc(adder8, lib, corners,
                   VariationModel(sigma_mv=30.0, seed=7), samples=32)
        after = multiplier_memo_info()
        assert after[0].currsize == before[0].currsize
        assert after[0].misses == before[0].misses
        assert after[1] == before[1]

    def test_stress_multiplier_rejects_arrays(self, lib):
        from repro.aging.delay import _stress_multiplier
        cell = lib["INV_X1"]
        with pytest.raises(TypeError):
            _stress_multiplier(cell, np.ones(3), 0.5, 10.0, DEFAULT_BTI,
                               None)
        with pytest.raises(TypeError):
            _stress_multiplier(cell, 0.5, 0.5, np.ones(2), DEFAULT_BTI,
                               None)

    def test_corner_delays_dvth_validation(self, lib, adder8, corners):
        program = compile_timing(adder8, lib)
        with pytest.raises(ValueError):
            corner_delays(program, corners,
                          dvth=np.zeros((program.n_gates + 1, 4)))
        with pytest.raises(ValueError):
            corner_delays(program, corners, degradation=object(),
                          dvth=np.zeros((program.n_gates, 4)))


class TestMCSpec:
    def test_round_trip(self):
        spec = MCSpec(component="adder8", scenarios=SCENARIOS,
                      clock_scales=(1.0, 0.97), samples=64, seed=3,
                      sweep_bits=2, effort="high").validated()
        again = MCSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.key() == spec.key()

    def test_variation_model(self):
        spec = MCSpec(component="adder8", sigma_mv=12.5, seed=11)
        model = spec.variation()
        assert model.sigma_mv == 12.5 and model.seed == 11

    @pytest.mark.parametrize("patch", [
        {"bogus": 1},
        {"scenarios": []},
        {"scenarios": ["fresh", "fresh"]},
        {"clock_scales": []},
        {"clock_scales": [0.0]},
        {"sigma_mv": -1.0},
        {"sigma_mv": 60.0},
        {"samples": 0},
        {"seed": -1},
        {"sweep_bits": -1},
        {"min_yield": 0.0},
        {"block": 0},
        {"surrogate": "always"},
        {"effort": "warp"},
    ])
    def test_rejects_bad_specs(self, patch):
        base = MCSpec(component="adder8", samples=16).to_dict()
        base.update(patch)
        with pytest.raises(SpecError):
            MCSpec.from_dict(base)

    def test_needs_component(self):
        with pytest.raises(SpecError):
            MCSpec.from_dict({"samples": 16})
        with pytest.raises(SpecError):
            MCSpec.from_dict([1, 2])


class TestSurrogate:
    def test_design_matrix_shapes(self):
        X = np.arange(6.0).reshape(3, 2)
        assert design_matrix(X, 1).shape == (3, n_terms(2, 1))
        assert design_matrix(X, 2).shape == (3, n_terms(2, 2))
        with pytest.raises(ValueError):
            design_matrix(X, 3)
        with pytest.raises(ValueError):
            design_matrix(np.arange(3.0), 1)

    def test_recovers_linear_map_exactly(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(40, 3))
        Y = 2.0 + X @ np.asarray([[1.0], [-2.0], [0.5]])
        fit = fit_surrogate(X, Y, ("a", "b", "c"), ("y",), degree=1)
        np.testing.assert_allclose(fit.predict(X), Y, atol=1e-9)
        cv = cross_validate(X, Y, ("a", "b", "c"), ("y",), degree=1)
        assert cv["targets"]["y"]["max_abs_err"] < 1e-8
        assert cv["folds"] == 4

    def test_quadratic_recovery(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(60, 2))
        Y = 1.0 + X[:, 0] * X[:, 1] + X[:, 1] ** 2
        fit = fit_surrogate(X, Y, ("a", "b"), ("y",), degree=2)
        np.testing.assert_allclose(fit.predict(X)[:, 0], Y, atol=1e-9)

    def test_constant_feature_is_harmless(self):
        X = np.ones((8, 2))
        X[:, 0] = np.arange(8.0)
        Y = 3.0 * X[:, 0]
        fit = fit_surrogate(X, Y, ("a", "const"), ("y",), degree=1)
        np.testing.assert_allclose(fit.predict(X)[:, 0], Y, atol=1e-9)

    def test_pick_degree(self):
        assert pick_degree(4, 6) == 1
        assert pick_degree(2 * n_terms(2, 2), 2) == 2

    def test_cv_clamps_folds(self):
        X = np.arange(4.0)[:, None]
        Y = 2.0 * X
        cv = cross_validate(X, Y, ("a",), ("y",), folds=10)
        assert cv["folds"] == 4
        cv1 = cross_validate(X[:1], Y[:1], ("a",), ("y",), folds=4)
        assert cv1["folds"] == 1

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            fit_surrogate(np.zeros((0, 2)), np.zeros((0, 1)),
                          ("a", "b"), ("y",))
        with pytest.raises(ValueError):
            fit_surrogate(np.zeros((3, 2)), np.zeros((4, 1)),
                          ("a", "b"), ("y",))
        fit = fit_surrogate(np.zeros((3, 2)), np.zeros((3, 1)),
                            ("a", "b"), ("y",))
        with pytest.raises(ValueError):
            fit.predict(np.zeros((2, 5)))


@pytest.fixture(scope="module")
def adder_run(lib):
    spec = MCSpec(component="adder8", scenarios=SCENARIOS,
                  clock_scales=(1.0, 0.97), samples=96, seed=7,
                  sweep_bits=2, effort="high")
    return spec, run_mc(spec, library=lib)


class TestRunMC:
    def test_jobs_deterministic(self, lib, adder_run):
        spec, result = adder_run
        again = run_mc(spec, library=lib, jobs=2)
        assert result.to_dict() == again.to_dict()

    def test_rows_cover_grid(self, adder_run):
        spec, result = adder_run
        assert result.precisions == (8, 7, 6)
        assert len(result.rows) == 3 * 3 * 2
        assert all(row["exact"] for row in result.rows)
        assert len(result.k_rows) == 3 * 2

    def test_det_precision_matches_deterministic_cp(self, adder_run):
        _, result = adder_run
        for k_row in result.k_rows:
            det = [row for row in result.rows
                   if row["scenario"] == k_row["scenario"]
                   and row["clock_scale"] == k_row["clock_scale"]
                   and row["det_cp_ps"] <= k_row["clock_ps"]]
            expect = max((row["precision"] for row in det), default=None)
            assert k_row["det_precision"] == expect

    def test_yield_k_is_exact_and_feasible(self, adder_run):
        spec, result = adder_run
        rows = {(r["precision"], r["scenario"], r["clock_scale"]): r
                for r in result.rows}
        for k_row in result.k_rows:
            k = k_row["yield_precision"]
            if k is None:
                continue
            row = rows[(k, k_row["scenario"], k_row["clock_scale"])]
            assert row["exact"]
            assert row["yield_fraction"] >= spec.min_yield
            assert k_row["yield_at_k"] == row["yield_fraction"]

    def test_json_round_trip(self, adder_run):
        _, result = adder_run
        data = json.loads(json.dumps(result.to_dict(), sort_keys=True))
        assert data["schema"] == "repro.mc/1"
        assert data["spec"]["component"] == "adder8"

    def test_zero_sigma_matches_deterministic_yields(self, lib):
        spec = MCSpec(component="adder8", scenarios=("fresh", "worst10y"),
                      clock_scales=(1.0,), sigma_mv=0.0, samples=16,
                      sweep_bits=1, effort="high")
        result = run_mc(spec, library=lib)
        for row in result.rows:
            expect = 1.0 if row["det_cp_ps"] <= row["clock_ps"] else 0.0
            assert row["yield_fraction"] == expect
        for k_row in result.k_rows:
            assert k_row["yield_precision"] == k_row["det_precision"]

    def test_metrics_emitted(self, lib):
        spec = MCSpec(component="adder8", scenarios=("worst10y",),
                      clock_scales=(1.0,), samples=16, sweep_bits=1,
                      effort="high")
        with obs_metrics.scoped() as registry:
            run_mc(spec, library=lib)
        snap = registry.snapshot()
        assert snap["counters"][obs_metrics.MC_RUNS] == 1
        assert snap["counters"][obs_metrics.MC_POINTS] == 2


class TestSurrogateScreen:
    def test_screen_skips_points_but_reports_same_k(self, lib):
        base = MCSpec(component="adder8", scenarios=("fresh", "worst10y"),
                      clock_scales=(1.0, 0.95), samples=96, seed=7,
                      sweep_bits=6, effort="high")
        full = run_mc(base, library=lib)
        screened = run_mc(
            MCSpec.from_dict({**base.to_dict(), "surrogate": "screen"}),
            library=lib)
        info = screened.surrogate
        assert info is not None and full.surrogate is None
        assert set(info["anchors"]) <= set(info["evaluated"])
        assert sorted(info["evaluated"] + info["skipped"], reverse=True) \
            == sorted(screened.precisions, reverse=True)
        # Exact rows agree verbatim with the unscreened run, and the
        # reported K (always exact by construction) is the same.
        full_rows = {(r["precision"], r["scenario"], r["clock_scale"]): r
                     for r in full.rows}
        for row in screened.rows:
            if row["exact"]:
                key = (row["precision"], row["scenario"],
                       row["clock_scale"])
                assert row == full_rows[key]
        assert screened.k_rows == full.k_rows

    def test_zero_sigma_never_screens(self, lib):
        spec = MCSpec(component="adder8", scenarios=("worst10y",),
                      clock_scales=(1.0,), sigma_mv=0.0, samples=8,
                      sweep_bits=6, effort="high", surrogate="screen")
        result = run_mc(spec, library=lib)
        assert result.surrogate is None
        assert all(row["exact"] for row in result.rows)


class TestReportAndCLI:
    def test_report_text(self, adder_run):
        _, result = adder_run
        text = mc_report_text(result)
        assert "monte carlo yield analysis" in text
        assert "yield-constrained max precision K" in text
        assert "10y_worst" in text and "det_K" in text

    def test_report_marks_screened_rows(self, lib):
        spec = MCSpec(component="adder8", scenarios=("worst10y",),
                      clock_scales=(1.0,), samples=64, seed=7,
                      sweep_bits=6, effort="high", surrogate="screen")
        text = mc_report_text(run_mc(spec, library=lib))
        assert "est" in text and "surrogate screen" in text

    def test_cli_mc(self, capsys, tmp_path):
        out = tmp_path / "mc.json"
        rc = cli.main(["mc", "--component", "adder8", "--years", "1,10",
                       "--samples", "64", "--sweep-bits", "1",
                       "--clocks", "1.0,0.97", "--seed", "7",
                       "--effort", "high", "--output", str(out)])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "yield-constrained max precision K" in stdout
        data = json.loads(out.read_text())
        assert data["schema"] == "repro.mc/1"
        assert data["spec"]["seed"] == 7
        labels = [r["scenario"] for r in data["rows"]]
        assert "fresh" in labels and "10y_worst" in labels

    def test_cli_rejects_bad_spec(self, capsys):
        rc = cli.main(["mc", "--component", "adder8", "--sigma", "99"])
        assert rc != 0
        assert "sigma_mv" in capsys.readouterr().err


def test_mc_invariants_adder(assert_mc_invariants, adder8_component, lib):
    results = assert_mc_invariants(adder8_component, lib, years=(10.0,),
                                   samples=48, sweep_bits=1,
                                   effort="high")
    assert {r.name for r in results} == {
        "mc_jobs_deterministic", "mc_sigma_converges_to_deterministic",
        "mc_sigma_zero_bit_identical", "mc_yield_monotone_in_lifetime",
        "mc_yield_monotone_in_clock", "mc_quantile_sandwich"}
