"""Regression-corpus replay.

Every netlist under ``tests/corpus`` once exercised a new structural
coverage feature in the fuzzer; replaying them through all four engines
in tier-1 keeps the cross-engine contract pinned on exactly the shapes
that were interesting enough to save.
"""

import json
import os

import pytest

from repro.verify import (load_corpus, netlist_from_dict,
                          netlist_to_dict, replay_corpus)
from repro.verify.fuzz import NETLIST_SCHEMA, coverage_features

pytestmark = pytest.mark.verify


def _entries(corpus_dir):
    return sorted(f for f in os.listdir(corpus_dir)
                  if f.endswith(".json"))


def test_corpus_is_committed_and_nonempty(corpus_dir):
    assert os.path.isdir(corpus_dir)
    assert len(_entries(corpus_dir)) >= 10


def test_corpus_files_match_schema(corpus_dir):
    for name in _entries(corpus_dir):
        with open(os.path.join(corpus_dir, name)) as handle:
            data = json.load(handle)
        assert data["schema"] == NETLIST_SCHEMA, name
        assert data["gates"], name


def test_corpus_round_trips_serialization(corpus_dir):
    for path, netlist in load_corpus(corpus_dir):
        netlist.validate()
        again = netlist_from_dict(netlist_to_dict(netlist))
        assert netlist_to_dict(again) == netlist_to_dict(netlist), path


def test_corpus_entries_are_structurally_distinct(corpus_dir):
    features = [frozenset(coverage_features(netlist))
                for __, netlist in load_corpus(corpus_dir)]
    assert len(set(features)) == len(features)


def test_corpus_replays_green_on_all_engines(corpus_dir, verify_library):
    results = replay_corpus(corpus_dir, verify_library)
    assert len(results) == len(_entries(corpus_dir))
    failures = [(path, report.describe())
                for path, report in results if not report.passed]
    assert failures == []
