"""Functional tests for the signed multipliers (Baugh-Wooley + Wallace)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.rtl import ArrayMultiplier, Multiplier, WallaceMultiplier
from repro.synth import synthesize_netlist

from helpers import run_netlist


def test_exhaustive_4bit(lib):
    component = Multiplier(4)
    values = np.arange(-8, 8, dtype=np.int64)
    a, b = np.meshgrid(values, values)
    a, b = a.ravel(), b.ravel()
    assert np.array_equal(run_netlist(component, lib, (a, b)),
                          component.exact(a, b))


def test_exhaustive_3bit_array(lib):
    component = ArrayMultiplier(3)
    values = np.arange(-4, 4, dtype=np.int64)
    a, b = np.meshgrid(values, values)
    a, b = a.ravel(), b.ravel()
    assert np.array_equal(run_netlist(component, lib, (a, b)),
                          component.exact(a, b))


@pytest.mark.parametrize("width", [2, 5, 8])
def test_random_widths(lib, width, rng):
    component = Multiplier(width)
    a, b = component.random_operands(200, rng=rng, distribution="uniform")
    assert np.array_equal(run_netlist(component, lib, (a, b)),
                          component.exact(a, b))


def test_wide_multiplier(lib, rng):
    component = Multiplier(16)
    a, b = component.random_operands(150, rng=rng)
    assert np.array_equal(run_netlist(component, lib, (a, b)),
                          component.exact(a, b))


def test_extreme_values(lib):
    component = Multiplier(8)
    corner = np.array([-128, -128, 127, 127, -128, 0, -1],
                      dtype=np.int64)
    other = np.array([-128, 127, 127, -128, 1, 0, -1], dtype=np.int64)
    assert np.array_equal(run_netlist(component, lib, (corner, other)),
                          component.exact(corner, other))


def test_ks_final_adder_variant(lib, rng):
    component = WallaceMultiplier(8, final_adder="ks")
    a, b = component.random_operands(200, rng=rng, distribution="uniform")
    assert np.array_equal(run_netlist(component, lib, (a, b)),
                          component.exact(a, b))


def test_invalid_final_adder():
    with pytest.raises(ValueError):
        WallaceMultiplier(8, final_adder="rca")


def test_with_precision_preserves_final_adder():
    base = WallaceMultiplier(16, final_adder="ks")
    cut = base.with_precision(12)
    assert cut.final_adder == "ks"
    assert cut.precision == 12


@given(a=st.integers(-(1 << 15), (1 << 15) - 1),
       b=st.integers(-(1 << 15), (1 << 15) - 1))
def test_exact_is_true_product(a, b):
    component = Multiplier(16)
    assert int(component.exact(np.array([a]), np.array([b]))[0]) == a * b


class TestTruncation:
    @pytest.mark.parametrize("precision", [6, 4, 2])
    def test_truncated_netlist_matches_approximate(self, lib, precision,
                                                   rng):
        component = Multiplier(6, precision=precision)
        a, b = component.random_operands(300, rng=rng,
                                         distribution="uniform")
        assert np.array_equal(run_netlist(component, lib, (a, b)),
                              component.approximate(a, b))

    def test_truncation_shrinks_netlist(self, lib):
        full = synthesize_netlist(Multiplier(8), lib, effort="high")
        cut = synthesize_netlist(Multiplier(8, precision=5), lib,
                                 effort="high")
        assert cut.num_gates < full.num_gates
        assert cut.area(lib) < full.area(lib)

    def test_error_bound_holds(self, rng):
        component = Multiplier(10, precision=7)
        a, b = component.random_operands(2000, rng=rng,
                                         distribution="uniform")
        err = np.abs(component.exact(a, b) - component.approximate(a, b))
        assert err.max() <= component.max_error_bound()

    def test_zero_drop_bound_is_zero(self):
        assert Multiplier(8).max_error_bound() == 0


class TestMetadata:
    def test_output_width_doubles(self):
        assert Multiplier(12).output_width == 24
        assert Multiplier(12).operand_widths == [12, 12]

    def test_array_and_wallace_agree(self, lib, rng):
        wallace = Multiplier(5)
        array = ArrayMultiplier(5)
        a, b = wallace.random_operands(200, rng=rng,
                                       distribution="uniform")
        assert np.array_equal(run_netlist(wallace, lib, (a, b)),
                              run_netlist(array, lib, (a, b)))

    def test_array_is_deeper_than_wallace(self, lib):
        from repro.sta import logic_depth
        wal = synthesize_netlist(Multiplier(8), lib, effort="high")
        arr = synthesize_netlist(ArrayMultiplier(8), lib, effort="high")
        assert logic_depth(arr) > logic_depth(wal)
