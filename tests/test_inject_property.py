"""Property tests for the packed fault injector (satellite 1).

The packed 64-way XOR injector must be bit-exact against the scalar
uint8 reference injector on arbitrary netlists, masks, and seeds —
random DAGs from the fuzz generator plus every committed corpus entry
in ``tests/corpus/``. Also pins the mask sampler's monotone-nesting
property on arbitrary probability pairs.
"""

import os

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cells import default_library
from repro.inject.inject_sim import (count_mask_bits,
                                     evaluate_bytes_injected,
                                     evaluate_packed_injected,
                                     unpack_op_masks)
from repro.inject.masks import (PROB_ONE, bernoulli_words, flip_threshold)
from repro.sim import bitpack, compile_netlist, evaluate
from repro.verify import load_corpus, random_netlist
from repro.verify.pytest_plugin import CORPUS_DIRNAME

LIB = default_library()
CORPUS_DIR = os.path.join(os.path.dirname(__file__), CORPUS_DIRNAME)
_CORPUS = load_corpus(CORPUS_DIR)


def _random_masks(compiled, vectors, rng, seed):
    """Masks for a random subset of op rows at random probabilities."""
    words = bitpack.word_count(vectors)
    op_masks = {}
    for row in range(len(compiled.ops)):
        if rng.random() < 0.4:
            threshold = flip_threshold(float(rng.random()))
            op_masks[row] = bernoulli_words(seed, row, threshold, words)
    return op_masks


def _assert_packed_matches_scalar(netlist, vectors, rng, seed):
    compiled = compile_netlist(netlist, LIB)
    pi_bits = rng.integers(0, 2, size=(vectors, len(
        netlist.primary_inputs)), dtype=np.uint8)
    op_masks = _random_masks(compiled, vectors, rng, seed)
    packed = evaluate_packed_injected(compiled, pi_bits, op_masks)
    scalar = evaluate_bytes_injected(
        compiled, pi_bits, unpack_op_masks(op_masks, vectors))
    assert packed.shape == scalar.shape
    assert (packed == scalar).all()
    if not op_masks:
        assert (packed == evaluate(compiled, pi_bits)).all()
    injected, faulted = count_mask_bits(op_masks, vectors)
    assert faulted <= min(injected, vectors)


@given(seed=st.integers(0, 2**32 - 1),
       vectors=st.integers(1, 200))
def test_packed_matches_scalar_on_random_netlists(seed, vectors):
    """Packed XOR injection == scalar uint8 reference, bit for bit."""
    rng = np.random.default_rng(seed)
    netlist = random_netlist(rng, n_inputs=4, max_gates=30, n_outputs=3)
    _assert_packed_matches_scalar(netlist, vectors, rng, seed)


@pytest.mark.verify
@pytest.mark.skipif(not _CORPUS, reason="no fuzz corpus committed")
@given(data=st.data())
def test_packed_matches_scalar_on_corpus(data):
    """Same bit-exactness over every committed regression netlist."""
    __, netlist = data.draw(st.sampled_from(_CORPUS))
    seed = data.draw(st.integers(0, 2**32 - 1))
    vectors = data.draw(st.sampled_from([1, 63, 64, 65, 128, 200]))
    rng = np.random.default_rng(seed)
    _assert_packed_matches_scalar(netlist, vectors, rng, seed)


@given(seed=st.integers(0, 2**32 - 1),
       uid=st.integers(0, 2**20),
       p1=st.floats(0.0, 1.0, allow_nan=False),
       p2=st.floats(0.0, 1.0, allow_nan=False),
       words=st.integers(1, 64))
def test_mask_nesting_and_determinism(seed, uid, p1, p2, words):
    """Lower probability => subset mask; same inputs => same mask."""
    lo, hi = sorted([p1, p2])
    t_lo, t_hi = flip_threshold(lo), flip_threshold(hi)
    assert 0 <= t_lo <= t_hi <= PROB_ONE
    m_lo = bernoulli_words(seed, uid, t_lo, words)
    m_hi = bernoulli_words(seed, uid, t_hi, words)
    assert not (m_lo & ~m_hi).any()
    assert (m_lo == bernoulli_words(seed, uid, t_lo, words)).all()
    # Prefix stability: a shorter mask is a prefix of a longer one.
    if words > 1:
        assert (bernoulli_words(seed, uid, t_hi, words - 1)
                == m_hi[:words - 1]).all()
