"""Tests for the exact event-driven reference simulator."""

import numpy as np
import pytest

from repro.aging import worst_case
from repro.netlist import NetlistBuilder
from repro.rtl import Adder
from repro.sim import EventSimulator, TimedSimulator, int_to_bits
from repro.sta import analyze
from repro.synth import synthesize_netlist


def inv_chain(length):
    builder = NetlistBuilder(name="chain")
    a = builder.inputs(1, "a")[0]
    cur = a
    for __ in range(length):
        cur = builder.inv(cur)
    return builder.outputs([cur])


class TestBasics:
    def test_chain_settle_time_accumulates(self, lib):
        net = inv_chain(3)
        sim = EventSimulator(net, lib)
        a = net.primary_inputs[0]
        waves = sim.settle({a: 0}, {a: 1})
        out = net.primary_outputs[0]
        expected = sum(sim.delays[g.uid] for g in net.gates)
        assert waves[out].settle_time == pytest.approx(expected)

    def test_no_input_change_is_quiescent(self, lib):
        net = inv_chain(3)
        sim = EventSimulator(net, lib)
        a = net.primary_inputs[0]
        waves = sim.settle({a: 1}, {a: 1})
        assert all(w.glitch_count == 0 for w in waves.values())

    def test_final_values_match_functional(self, lib, rng):
        component = Adder(4)
        net = synthesize_netlist(component, lib, effort="high")
        sim = EventSimulator(net, lib)
        pis = net.primary_inputs
        a, b = component.random_operands(20, rng=rng,
                                         distribution="uniform")
        bits = np.concatenate([int_to_bits(a, 4), int_to_bits(b, 4)],
                              axis=1)
        for i in range(1, 20):
            waves = sim.settle(dict(zip(pis, bits[i - 1].tolist())),
                               dict(zip(pis, bits[i].tolist())))
            value = sum(waves[n].final_value << k
                        for k, n in enumerate(net.primary_outputs))
            expected = int(component.exact(a[i:i + 1], b[i:i + 1])[0]) & 0xF
            assert value == expected

    def test_glitch_is_produced_on_reconvergence(self, lib):
        # XOR with one delayed input glitches when both inputs change.
        builder = NetlistBuilder(name="glitch")
        a = builder.inputs(1, "a")[0]
        slow = builder.inv(builder.inv(a))
        out = builder.xor2(a, slow)
        net = builder.outputs([out])
        sim = EventSimulator(net, lib)
        waves = sim.settle({a: 0}, {a: 1})
        wave = waves[net.primary_outputs[0]]
        # Settles back to 0 but pulses 1 in between.
        assert wave.final_value == 0
        assert wave.glitch_count >= 2


class TestSampling:
    def test_sample_before_settle_captures_stale_value(self, lib):
        net = inv_chain(4)
        sim = EventSimulator(net, lib)
        a = net.primary_inputs[0]
        out = net.primary_outputs[0]
        waves = sim.settle({a: 0}, {a: 1})
        settle = waves[out].settle_time
        sampled, settled, __ = sim.sample_outputs({a: 0}, {a: 1},
                                                  settle / 2)
        assert sampled != settled
        sampled2, settled2, __ = sim.sample_outputs({a: 0}, {a: 1},
                                                    settle * 1.01)
        assert sampled2 == settled2

    def test_settle_time_bounded_by_sta(self, lib, rng):
        component = Adder(6)
        net = synthesize_netlist(component, lib, effort="high")
        scenario = worst_case(10)
        report = analyze(net, lib, scenario=scenario)
        sim = EventSimulator(net, lib, scenario=scenario)
        pis = net.primary_inputs
        a, b = component.random_operands(30, rng=rng,
                                         distribution="uniform")
        bits = np.concatenate([int_to_bits(a, 6), int_to_bits(b, 6)],
                              axis=1)
        for i in range(1, 30):
            waves = sim.settle(dict(zip(pis, bits[i - 1].tolist())),
                               dict(zip(pis, bits[i].tolist())))
            for net_id, wave in waves.items():
                if net_id in report.arrivals:
                    assert wave.settle_time <= \
                        report.arrivals[net_id] + 1e-6


class TestCrossValidation:
    def test_vectorized_model_tracks_event_sim(self, lib, rng):
        """Settled values agree exactly between the two simulators, and
        their settle-time estimates stay in the same regime (the
        vectorized model uses static sensitization, the event simulator
        full dynamic glitching, so individual nets may differ — but both
        are bounded by static STA and correlate in aggregate)."""
        component = Adder(6)
        net = synthesize_netlist(component, lib, effort="high")
        scenario = worst_case(10)
        event = EventSimulator(net, lib, scenario=scenario)
        from repro.sta import critical_path_delay
        t_clock = critical_path_delay(net, lib)
        timed = TimedSimulator(net, lib, t_clock, scenario=scenario)
        pis = net.primary_inputs
        a, b = component.random_operands(40, rng=rng,
                                         distribution="uniform")
        bits = np.concatenate([int_to_bits(a, 6), int_to_bits(b, 6)],
                              axis=1)
        result = timed.run_stream(bits)
        event_max, model_max = [], []
        for i in range(1, 40):
            waves = event.settle(dict(zip(pis, bits[i - 1].tolist())),
                                 dict(zip(pis, bits[i].tolist())))
            for col, po in enumerate(net.primary_outputs):
                assert waves[po].final_value == result.settled[i, col]
            event_max.append(max(waves[po].settle_time
                                 for po in net.primary_outputs))
            model_max.append(float(result.arrivals[i].max()))
        # Aggregate agreement: mean settle estimates within 35%.
        assert np.mean(model_max) == pytest.approx(np.mean(event_max),
                                                   rel=0.35)
