"""Tests for Verilog and SDF interchange."""

import numpy as np
import pytest

from repro.aging import gate_delays, worst_case
from repro.netlist import NetlistBuilder, from_verilog, to_verilog
from repro.rtl import Adder, Multiplier
from repro.sta import (critical_path_delay, from_sdf, gate_delays_from_sdf,
                       to_sdf)
from repro.synth import synthesize_netlist

from helpers import run_netlist


class TestVerilogExport:
    def test_contains_module_and_ports(self, lib, adder8):
        text = to_verilog(adder8, module_name="adder8")
        assert "module adder8 (" in text
        assert text.count("input wire") == 16
        assert text.count("output wire") == 8
        assert "endmodule" in text

    def test_every_gate_emitted(self, adder8):
        text = to_verilog(adder8)
        for gate in adder8.gates:
            assert "g%d (" % gate.uid in text
        assert text.count(".Y(") == adder8.num_gates

    def test_constants_as_literals(self, lib):
        builder = NetlistBuilder(name="c")
        a = builder.inputs(1, "a")[0]
        out = builder.and2(a, builder.const0)
        net = builder.outputs([out])
        assert "1'b0" in to_verilog(net)

    def test_sanitizes_names(self, lib):
        builder = NetlistBuilder(name="weird design!")
        a = builder.inputs(1, "a[0]")[0]
        net = builder.outputs([builder.inv(a)])
        text = to_verilog(net)
        assert "a[0]" not in text.split("//")[1]
        assert "module weird_design_" in text


class TestVerilogRoundtrip:
    @pytest.mark.parametrize("component", [Adder(8), Adder(8, precision=5),
                                           Multiplier(4)])
    def test_functional_equivalence(self, lib, component, rng):
        net = synthesize_netlist(component, lib, effort="high")
        back = from_verilog(to_verilog(net))
        assert back.num_gates == net.num_gates
        ops = component.random_operands(300, rng=rng,
                                        distribution="uniform")
        assert np.array_equal(
            run_netlist(component, lib, ops, netlist=net),
            run_netlist(component, lib, ops, netlist=back))

    def test_timing_preserved(self, lib, adder8):
        back = from_verilog(to_verilog(adder8))
        assert critical_path_delay(back, lib) == pytest.approx(
            critical_path_delay(adder8, lib))

    def test_passthrough_output(self, lib):
        builder = NetlistBuilder(name="wire")
        a = builder.inputs(1, "a")[0]
        net = builder.outputs([a, builder.inv(a)])
        back = from_verilog(to_verilog(net))
        assert back.primary_outputs[0] == back.primary_inputs[0]

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="module"):
            from_verilog("this is not verilog")

    def test_rejects_missing_output_pin(self):
        text = ("module m (\n  input wire a,\n  output wire y_0\n);\n"
                "  INV_X1 g0 (\n    .A(a)\n  );\n"
                "  assign y_0 = a;\nendmodule\n")
        with pytest.raises(ValueError, match="output pin"):
            from_verilog(text)


class TestSdf:
    def test_header_mentions_scenario(self, lib, adder8):
        text = to_sdf(adder8, lib, scenario=worst_case(10))
        assert '(PROCESS "aging:10y_worst")' in text
        assert '(SDFVERSION "3.0")' in text

    def test_every_instance_annotated(self, lib, adder8):
        text = to_sdf(adder8, lib)
        parsed = from_sdf(text)
        assert set(parsed) == {g.uid for g in adder8.gates}
        for gate in adder8.gates:
            assert len(parsed[gate.uid]) == len(gate.inputs)

    def test_delays_roundtrip_exactly(self, lib, adder8):
        scenario = worst_case(10)
        parsed = gate_delays_from_sdf(to_sdf(adder8, lib,
                                             scenario=scenario))
        golden = gate_delays(adder8, lib, scenario=scenario)
        for uid, delay in golden.items():
            assert parsed[uid] == pytest.approx(delay, abs=1e-3)

    def test_aged_sdf_is_slower(self, lib, adder8):
        fresh = gate_delays_from_sdf(to_sdf(adder8, lib))
        aged = gate_delays_from_sdf(to_sdf(adder8, lib,
                                           scenario=worst_case(10)))
        assert all(aged[uid] > fresh[uid] for uid in fresh)
