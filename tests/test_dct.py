"""Tests for the fixed-point DCT/IDCT datapath model."""

import numpy as np
import pytest

from repro.rtl import (DEFAULT_COEFF_BITS, FixedPointTransform8, POINTS,
                       dct_matrix, dct_microarchitecture, descale,
                       fixed_coefficients, idct_microarchitecture)


class TestCoefficients:
    def test_dct_matrix_is_orthonormal(self):
        mat = dct_matrix()
        assert np.allclose(mat @ mat.T, np.eye(POINTS), atol=1e-12)

    def test_fixed_coefficients_scale(self):
        coeffs = fixed_coefficients(10)
        assert np.allclose(coeffs / 1024.0, dct_matrix(), atol=0.5 / 1024)
        assert coeffs.dtype == np.int64

    def test_descale_rounds_to_nearest(self):
        vals = np.array([15, 16, 17, -15, -16, -17])
        assert descale(vals, 5).tolist() == [0, 1, 1, 0, 0, -1]


class TestTransform:
    @pytest.fixture(scope="class")
    def transform(self):
        return FixedPointTransform8()

    def test_forward_matches_float_dct(self, transform, rng):
        data = rng.integers(-128, 128, (5, POINTS))
        scaled = transform.scale_in(data)
        got = transform.forward_1d(scaled)
        expected = (dct_matrix() @ data.T).T * (1 << transform.data_frac_bits)
        assert np.abs(got - expected).max() < 2 * (
            1 << transform.data_frac_bits)

    def test_inverse_undoes_forward(self, transform, rng):
        data = rng.integers(-128, 128, (6, POINTS))
        scaled = transform.scale_in(data)
        back = transform.scale_out(transform.inverse_1d(
            transform.forward_1d(scaled)))
        assert np.abs(back - data).max() <= 1

    def test_2d_roundtrip(self, transform, rng):
        blocks = rng.integers(-128, 128, (4, POINTS, POINTS))
        scaled = transform.scale_in(blocks)
        back = transform.scale_out(transform.inverse_2d(
            transform.forward_2d(scaled)))
        assert np.abs(back - blocks).max() <= 1

    def test_dc_coefficient(self, transform):
        flat = transform.scale_in(np.full((1, POINTS), 64))
        out = transform.forward_1d(flat)
        expected_dc = 64 * np.sqrt(8) * (1 << transform.data_frac_bits)
        assert abs(out[0, 0] - expected_dc) < (
            1 << transform.data_frac_bits)
        assert np.abs(out[0, 1:]).max() <= 2 * (
            1 << transform.data_frac_bits)

    def test_scale_roundtrip(self, transform):
        vals = np.array([-3, 0, 5])
        assert np.array_equal(transform.scale_out(transform.scale_in(vals)),
                              vals)

    def test_arithmetic_is_pluggable(self, rng):
        calls = []

        class Spy:
            def mul(self, a, b):
                calls.append("mul")
                return np.asarray(a, dtype=np.int64) * b

            def add(self, a, b):
                calls.append("add")
                return np.asarray(a, dtype=np.int64) + b

        transform = FixedPointTransform8(arithmetic=Spy())
        transform.forward_1d(np.zeros((1, POINTS), dtype=np.int64))
        # one batched mul + 3 adder-tree levels
        assert calls == ["mul", "add", "add", "add"]


class TestMicroarchitectures:
    def test_idct_block_structure(self):
        micro = idct_microarchitecture(width=16)
        names = [b.name for b in micro.blocks]
        assert names == ["mult", "acc"]
        assert micro.block("mult").component.width == 16
        assert micro.block("mult").instances == POINTS

    def test_dct_variant_renamed(self):
        micro = dct_microarchitecture(width=16)
        assert micro.name.startswith("dct8")

    def test_multiplier_is_critical_component(self, lib):
        micro = idct_microarchitecture(width=16)
        constraint = micro.timing_constraint_ps(lib, effort="high")
        timing = micro.timing(lib, constraint_ps=constraint,
                              effort="high")
        assert timing["mult"].fresh_ps > timing["acc"].fresh_ps
        assert constraint == pytest.approx(timing["mult"].fresh_ps)

    def test_metadata_carried(self):
        micro = idct_microarchitecture(width=16, coeff_bits=11)
        assert micro.metadata["coeff_bits"] == 11
        assert micro.metadata["points"] == POINTS
