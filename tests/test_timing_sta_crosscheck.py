"""Regression suite for the timed-simulation / static-STA contract
(satellite 4).

The timed simulator historically accumulated arrivals in float32 and
carried a 0.05 ps late tolerance, letting its per-vector arrivals drift
past the static STA bound and produce violation verdicts static timing
disproved. Arrivals now propagate in float64 with the same delay floats
as the static engine, so dynamic arrivals are bounded by static ones
*exactly*. These tests pin that agreement on the synthesized
components, the committed fuzz corpus, and random DAGs, and exercise
the delta-debugging shrinker's no-disagreement contract.
"""

import os

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.aging import worst_case
from repro.cells import default_library
from repro.inject import crosscheck_violations, minimize_disagreement
from repro.sim import TimedSimulator
from repro.sim.timing import TimedResult
from repro.sta import analyze
from repro.verify import load_corpus, random_netlist
from repro.verify.oracles import default_stimulus
from repro.verify.pytest_plugin import CORPUS_DIRNAME

LIB = default_library()
CORPUS_DIR = os.path.join(os.path.dirname(__file__), CORPUS_DIRNAME)
_CORPUS = load_corpus(CORPUS_DIR)


def test_late_tolerance_is_gone():
    """The float32-era slack is retired: verdicts use the exact clock."""
    assert TimedSimulator.LATE_TOLERANCE_PS == 0.0


class TestComponents:
    @pytest.mark.parametrize("scenario", [None, worst_case(10.0)])
    def test_adder_guardband_free_point(self, adder8, scenario):
        report = crosscheck_violations(adder8, LIB, scenario=scenario,
                                       vectors=256, rng=11)
        assert report.passed, report.describe()
        assert set(report.dynamic_violating) \
            <= set(report.static_violating)
        if scenario is not None:
            # Aged gates at the fresh clock: the campaign regime really
            # does violate — the crosscheck is not vacuous.
            assert report.static_violating

    def test_multiplier_guardband_free_point(self, mult6):
        report = crosscheck_violations(mult6, LIB,
                                       scenario=worst_case(10.0),
                                       vectors=128, rng=11)
        assert report.passed, report.describe()

    def test_aggressive_clock_still_contained(self, adder8):
        fresh_cp = analyze(adder8, LIB).critical_path_ps
        report = crosscheck_violations(adder8, LIB,
                                       clock_ps=0.8 * fresh_cp,
                                       scenario=worst_case(10.0),
                                       vectors=128, rng=3)
        assert report.passed, report.describe()
        assert report.dynamic_violating

    def test_minimize_requires_a_disagreement(self, adder8):
        with pytest.raises(ValueError, match="no timed/static"):
            minimize_disagreement(adder8, LIB, scenario=worst_case(10.0),
                                  vectors=64, rng=0)


@pytest.mark.verify
@pytest.mark.skipif(not _CORPUS, reason="no fuzz corpus committed")
def test_corpus_replay():
    for path, netlist in _CORPUS:
        report = crosscheck_violations(netlist, LIB,
                                       scenario=worst_case(10.0),
                                       vectors=64, rng=5)
        assert report.passed, "%s:\n%s" % (path, report.describe())


@given(seed=st.integers(0, 2**32 - 1))
def test_dynamic_bounded_by_static_exactly(seed):
    """float64 end to end: dynamic arrival <= static arrival, no epsilon."""
    rng = np.random.default_rng(seed)
    netlist = random_netlist(rng, n_inputs=4, max_gates=25, n_outputs=3)
    scenario = worst_case(10.0)
    static = analyze(netlist, LIB, scenario=scenario)
    sim = TimedSimulator(netlist, LIB, static.critical_path_ps,
                         scenario=scenario)
    result = sim.run_stream(default_stimulus(netlist, vectors=32, rng=rng))
    assert isinstance(result, TimedResult)
    assert result.arrivals.dtype == np.float64
    for col, net in enumerate(netlist.primary_outputs):
        assert (result.arrivals[:, col] <= static.arrivals[net]).all()
    # At the scenario's own critical path nothing can be late.
    assert not result.violations.any()
